//! Reproduce the §4.3 finding: traffic fuzzing against TCP Reno rediscovers a
//! pattern similar to the classic low-rate TCP attack (Kuzmanovic & Knightly,
//! SIGCOMM 2003) — short periodic bursts that keep knocking out the same
//! packets and drive Reno into repeated RTO backoff.
//!
//! For comparison the example also replays a hand-written low-rate attack
//! (periodic bursts synchronised with the 1 s min-RTO) and shows that the
//! evolved trace achieves a similar effect, usually with fewer packets.
//!
//! ```sh
//! cargo run --release --example lowrate_attack
//! ```

use cc_fuzz::analysis::report::one_line_summary;
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::genome::TrafficGenome;
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::stats::TransportEvent;
use cc_fuzz::netsim::time::SimDuration;
use cc_fuzz::netsim::trace::TrafficTrace;

fn main() {
    let duration = SimDuration::from_secs(5);
    let mut ga = GaParams::quick();
    ga.generations = 15;
    ga.seed = 11;
    let campaign = Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, ga);

    println!("fuzzing Reno for low throughput...");
    let result = campaign.run_traffic();
    let evaluator = campaign.evaluator();
    let evolved = evaluator.simulate_traffic(&result.best_genome, true);

    // Hand-written low-rate attack: a burst of ~90 packets every second
    // (matching the 1s min-RTO), enough to overflow the 100-packet queue
    // together with Reno's own packets.
    let handmade_trace = TrafficTrace::periodic_bursts(
        SimDuration::from_secs(1),
        90,
        SimDuration::from_micros(200),
        duration,
    );
    let handmade = TrafficGenome {
        timestamps: handmade_trace.injections().to_vec(),
        duration,
        max_packets: campaign.traffic_max_packets,
    };
    let handmade_run = evaluator.simulate_traffic(&handmade, true);

    let backoffs = |stats: &cc_fuzz::netsim::stats::RunStats| {
        stats
            .transport
            .iter()
            .filter_map(|r| match r.event {
                TransportEvent::RtoFired { backoff } => Some(backoff),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    };

    println!(
        "\n=== evolved trace ({} cross-traffic packets) ===",
        result.best_genome.timestamps.len()
    );
    println!(
        "  {}",
        one_line_summary(&evolved.stats, duration.as_secs_f64(), campaign.sim.mss)
    );
    println!("  max RTO backoff exponent: {}", backoffs(&evolved.stats));

    println!(
        "\n=== hand-written low-rate attack ({} packets) ===",
        handmade.timestamps.len()
    );
    println!(
        "  {}",
        one_line_summary(
            &handmade_run.stats,
            duration.as_secs_f64(),
            campaign.sim.mss
        )
    );
    println!(
        "  max RTO backoff exponent: {}",
        backoffs(&handmade_run.stats)
    );

    println!("\nBoth patterns rely on the same mechanism: bursts aligned with Reno's");
    println!("retransmissions keep losing the same packets, so the flow spends most of");
    println!("its time in exponential RTO backoff instead of ramping up.");
}
