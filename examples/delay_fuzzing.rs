//! Reproduce the §4.3 / Figure 4e experiment: change the scoring function to
//! the 10th-percentile queuing delay and let traffic fuzzing find a
//! cross-traffic pattern that makes BBR build a large standing queue.
//!
//! ```sh
//! cargo run --release --example delay_fuzzing
//! ```

use cc_fuzz::analysis::figures::queuing_delay_series;
use cc_fuzz::analysis::plot::{ascii_chart, to_csv};
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn main() {
    let duration = SimDuration::from_secs(5);
    let mut ga = GaParams::quick();
    ga.generations = 12;
    ga.seed = 31;
    let campaign = Campaign::paper_high_delay(FuzzMode::Traffic, CcaKind::Bbr, duration, ga);

    println!("traffic fuzzing vs BBR with the high-delay objective (p10 queuing delay)...");
    let result = campaign.run_traffic();
    println!(
        "best trace: {} cross-traffic packets, p10-delay score {:.3}",
        result.best_genome.timestamps.len(),
        result.best_outcome.performance_score
    );

    let replay = campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);
    let (bbr_delay, cross_delay) = queuing_delay_series(&replay.stats);
    println!(
        "\nBBR flow queuing delay: mean {:.1} ms, max {:.1} ms",
        bbr_delay.mean_y(),
        bbr_delay.max_y()
    );
    println!(
        "cross traffic queuing delay: mean {:.1} ms, max {:.1} ms",
        cross_delay.mean_y(),
        cross_delay.max_y()
    );

    println!(
        "\n{}",
        ascii_chart(
            "Queuing delay over time (ms) — compare with Figure 4e",
            &[&bbr_delay, &cross_delay],
            90,
            18,
        )
    );

    println!("CSV data:\n{}", to_csv(&[&bbr_delay, &cross_delay]));
}
