//! Fairness fuzzing: evolve multi-flow scenarios where heterogeneous CCAs
//! share the paper's 12 Mbps / 20 ms bottleneck badly.
//!
//! ```sh
//! cargo run --release --example fairness_fuzzing
//! ```
//!
//! The GA controls the flow mix (BBR vs. Reno to start), each flow's
//! start/stop schedule and an optional unresponsive cross-traffic helper,
//! and maximises `(1 - Jain's index) + 0.5 * starvation fraction`.

use cc_fuzz::analysis::table::per_flow_table;
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::Campaign;
use cc_fuzz::fuzz::genome::Genome;
use cc_fuzz::fuzz::scoring::fairness_breakdown;
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn main() {
    // 1. The fairness campaign preset: BBR competing with Reno.
    let duration = SimDuration::from_secs(5);
    let mut ga = GaParams::quick();
    ga.generations = 10;
    ga.seed = 7;
    let campaign = Campaign::paper_fairness(vec![CcaKind::Bbr, CcaKind::Reno], duration, ga);

    println!("CC-Fuzz fairness fuzzing: BBR vs. Reno on a shared bottleneck");
    println!(
        "population = {} across {} islands, {} generations\n",
        campaign.ga.total_population(),
        campaign.ga.islands,
        campaign.ga.generations
    );

    // 2. Run the genetic algorithm over scenario genomes.
    let result = campaign.run_fairness();
    for summary in &result.history {
        println!(
            "gen {:>3}: best unfairness {:.3}, mean {:.3}",
            summary.generation, summary.best_score, summary.mean_score
        );
    }

    // 3. Replay the most unfair scenario found and print the flow split.
    let best = &result.best_genome;
    let evaluator = campaign.evaluator();
    let replay = evaluator.simulate_scenario(best, false);
    let breakdown = fairness_breakdown(&replay, campaign.sim.mss);

    println!("\nworst scenario found ({} flows):", best.flow_count());
    for (i, flow) in best.flows.iter().enumerate() {
        println!(
            "  flow {i}: {:<6} start {:.2}s stop {}",
            flow.cca.name(),
            flow.start.as_secs_f64(),
            flow.stop
                .map(|t| format!("{:.2}s", t.as_secs_f64()))
                .unwrap_or_else(|| "end".to_string())
        );
    }
    println!(
        "  cross traffic: {} packets\n",
        best.traffic.as_ref().map(|t| t.packet_count()).unwrap_or(0)
    );
    let ccas: Vec<String> = best
        .flows
        .iter()
        .map(|f| f.cca.name().to_string())
        .collect();
    print!(
        "{}",
        per_flow_table(
            &ccas,
            &breakdown.per_flow_goodput_bps,
            &breakdown.per_flow_delivered,
        )
    );
    println!(
        "\njain index = {:.4}, max starvation = {:.3}s, unfairness score = {:.6}",
        breakdown.jain_index, breakdown.max_starvation_secs, result.best_outcome.score
    );
}
