//! Link fuzzing (§3.2): evolve bottleneck *service curves* (rather than cross
//! traffic) that hurt a CCA, with trace annealing enabled so the resulting
//! curve is easier to read.
//!
//! ```sh
//! cargo run --release --example link_fuzzing [-- <cca>]
//! ```
//! where `<cca>` is one of `reno`, `cubic`, `bbr`, `vegas` (default `bbr`).

use cc_fuzz::analysis::figures::cumulative_packet_curve;
use cc_fuzz::analysis::plot::ascii_chart;
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn main() {
    let cca = std::env::args()
        .nth(1)
        .and_then(|name| CcaKind::from_name(&name))
        .unwrap_or(CcaKind::Bbr);
    let duration = SimDuration::from_secs(5);
    let mut ga = GaParams::quick();
    ga.generations = 12;
    ga.anneal = true;
    ga.seed = 21;

    let campaign = Campaign::paper_standard(FuzzMode::Link, cca, duration, ga);
    println!(
        "link fuzzing vs {}: evolving 12 Mbps-average service curves ({} per generation)",
        cca.name(),
        campaign.ga.total_population()
    );
    let result = campaign.run_link();

    println!(
        "\nbest trace: {} transmission opportunities, {} goodput {:.2} Mbps (fitness {:.3})",
        result.best_genome.timestamps.len(),
        cca.name(),
        result.best_outcome.goodput_bps / 1e6,
        result.best_outcome.score
    );

    for summary in result.history.iter().step_by(3) {
        println!(
            "gen {:>3}: best {:.3}  mean {:.3}  top-{} mean delivered {:>6.0}",
            summary.generation,
            summary.best_score,
            summary.mean_score,
            campaign.ga.report_top_k,
            summary.top_k_mean_delivered
        );
    }

    // Show the adversarial service curve the way Figure 4b does (cumulative
    // packet count over time).
    let curve = cumulative_packet_curve(&result.best_genome.timestamps, 80, duration);
    println!(
        "\n{}",
        ascii_chart(
            "Adversarial service curve (cumulative packets)",
            &[&curve],
            80,
            16
        )
    );
}
