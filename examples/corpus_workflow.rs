//! End-to-end corpus workflow: hunt -> persist -> minimize -> replay.
//!
//! This is the library-level equivalent of:
//!
//! ```text
//! ccfuzz hunt --cca reno --generations 3 --seconds 2 --corpus /tmp/demo
//! ccfuzz minimize --corpus /tmp/demo
//! ccfuzz replay --corpus /tmp/demo
//! ccfuzz report --corpus /tmp/demo
//! ```
//!
//! Run with `cargo run --release --example corpus_workflow`.

use cc_fuzz::cca::CcaKind;
use cc_fuzz::corpus::hunt::{hunt, HuntConfig};
use cc_fuzz::corpus::minimize::{minimize_finding, MinimizeConfig};
use cc_fuzz::corpus::replay::replay_corpus;
use cc_fuzz::corpus::report::corpus_report;
use cc_fuzz::corpus::store::Corpus;
use cc_fuzz::fuzz::campaign::FuzzMode;
use cc_fuzz::netsim::time::SimDuration;

fn main() {
    let dir = std::env::temp_dir().join(format!("ccfuzz-workflow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = Corpus::open(&dir).expect("corpus directory");
    println!("corpus at {}", dir.display());

    // 1. Hunt: a short Reno traffic-fuzzing campaign.
    let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Traffic, 3, 42);
    config.duration = SimDuration::from_secs(2);
    let (finding, decision) = hunt(&corpus, &config).expect("hunt");
    println!(
        "\nhunted {}: score {:.4}, {} cross-traffic packets ({decision:?})",
        finding.id,
        finding.outcome.score,
        finding.genome.packet_count()
    );

    // 2. Minimize: shrink the trace while retaining >= 80% of its score.
    // `update` drops the pre-minimization file and, if the behaviour bucket
    // moved onto an existing finding, keeps whichever is stronger.
    let (minimized, report) = minimize_finding(&finding, &MinimizeConfig::default());
    corpus
        .update(&finding.id, &minimized)
        .expect("store minimized");
    println!(
        "\nminimized: {} -> {} packets, score {:.4} -> {:.4} ({} simulations)",
        report.original_packets,
        report.minimized_packets,
        report.original_score,
        report.minimized_score,
        report.evaluations
    );
    for pass in &report.passes {
        println!("  {pass}");
    }

    // 3. Replay: deterministic regression check.
    let replay = replay_corpus(&corpus, None).expect("replay");
    println!("\n{}", replay.to_text());
    assert!(replay.is_clean(), "fresh findings must replay cleanly");

    // 4. Report: per-bucket summary.
    println!("{}", corpus_report(&corpus).expect("report"));

    let _ = std::fs::remove_dir_all(&dir);
}
