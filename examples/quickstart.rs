//! Quickstart: run a tiny CC-Fuzz traffic-fuzzing campaign against TCP Reno
//! and replay the worst trace it finds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cc_fuzz::analysis::report::one_line_summary;
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn main() {
    // 1. Describe the campaign: the paper's standard scenario (12 Mbps
    //    bottleneck, 20 ms delay, SACK + delayed ACKs, 1 s min-RTO), traffic
    //    fuzzing against Reno, hunting for low throughput.
    let duration = SimDuration::from_secs(5);
    let mut ga = GaParams::quick();
    ga.generations = 12;
    ga.seed = 42;
    let campaign = Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, ga);

    println!(
        "CC-Fuzz quickstart: traffic fuzzing vs {}",
        campaign.cca.name()
    );
    println!(
        "population = {} across {} islands, {} generations\n",
        campaign.ga.total_population(),
        campaign.ga.islands,
        campaign.ga.generations
    );

    // 2. Run the genetic algorithm.
    let result = campaign.run_traffic();
    for summary in &result.history {
        println!(
            "gen {:>3}: best score {:.3}, mean score {:.3}, top-{} mean delivered {:>6.0} pkts",
            summary.generation,
            summary.best_score,
            summary.mean_score,
            campaign.ga.report_top_k,
            summary.top_k_mean_delivered
        );
    }

    // 3. Replay the best adversarial trace with full event recording and
    //    print what it does to the flow.
    let evaluator = campaign.evaluator();
    let replay = evaluator.simulate_traffic(&result.best_genome, true);
    println!(
        "\nworst trace found ({} cross-traffic packets):",
        result.best_genome.timestamps.len()
    );
    println!(
        "  {}",
        one_line_summary(&replay.stats, duration.as_secs_f64(), campaign.sim.mss)
    );
    println!(
        "  fitness {:.3} (performance {:.3}, trace minimality {:.3})",
        result.best_outcome.score,
        result.best_outcome.performance_score,
        result.best_outcome.trace_score
    );
    println!("\ntotal simulations: {}", result.total_evaluations);
}
