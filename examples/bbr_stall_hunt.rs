//! Hunt for the BBR stall (§4.1 of the paper) with traffic fuzzing, then
//! compare default BBR against the paper's "ProbeRTT on RTO" mitigation on
//! the worst trace found.
//!
//! ```sh
//! cargo run --release --example bbr_stall_hunt [-- --paper-scale]
//! ```

use cc_fuzz::analysis::report::{
    retransmission_triggered_rounds, rto_timeline, spurious_retransmissions,
};
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let duration = SimDuration::from_secs(5);
    let mut ga = if paper_scale {
        GaParams::paper_default()
    } else {
        GaParams::quick()
    };
    ga.generations = if paper_scale { 40 } else { 15 };
    ga.seed = 7;

    let campaign = Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Bbr, duration, ga);
    println!(
        "fuzzing BBR with cross-traffic patterns ({} simulations per generation)...",
        campaign.ga.total_population()
    );
    let result = campaign.run_traffic();

    println!(
        "\nbest trace: {} cross-traffic packets, BBR goodput {:.2} Mbps (score {:.3})",
        result.best_genome.timestamps.len(),
        result.best_outcome.goodput_bps / 1e6,
        result.best_outcome.score
    );

    // Replay against both BBR variants.
    let evaluator = campaign.evaluator();
    let default_run = evaluator.simulate_traffic(&result.best_genome, true);

    let mut fixed_campaign = campaign.clone();
    fixed_campaign.cca = CcaKind::BbrProbeRttOnRto;
    let fixed_run = fixed_campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);

    println!("\n=== default BBR on the adversarial trace ===");
    println!("delivered {} packets, {} RTOs, {} spurious retransmissions, {} retransmission-triggered probe rounds",
        default_run.stats.flow().delivered_packets,
        default_run.stats.flow().rto_count,
        spurious_retransmissions(&default_run.stats, SimDuration::from_millis(100)),
        retransmission_triggered_rounds(&default_run.stats));

    println!("\n=== BBR with ProbeRTT-on-RTO (the paper's fix) ===");
    println!("delivered {} packets, {} RTOs, {} spurious retransmissions, {} retransmission-triggered probe rounds",
        fixed_run.stats.flow().delivered_packets,
        fixed_run.stats.flow().rto_count,
        spurious_retransmissions(&fixed_run.stats, SimDuration::from_millis(100)),
        retransmission_triggered_rounds(&fixed_run.stats));

    println!("\n=== timeline around the first RTO (default BBR) ===");
    print!(
        "{}",
        rto_timeline(&default_run.stats, SimDuration::from_millis(400), 60)
    );
}
