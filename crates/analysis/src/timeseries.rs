//! Time-series and summary-statistic helpers.

use ccfuzz_netsim::time::{SimDuration, SimTime};

/// Computes throughput over fixed windows from per-packet delivery times.
///
/// Returns one `(window start, bits per second)` entry per window covering
/// `[0, duration)`. Windows with no deliveries have rate 0 — this matters for
/// the paper's "average of the lowest 20 % of windows" score, which exists
/// precisely to reward traces that starve the flow for part of the run.
pub fn windowed_throughput_bps(
    delivery_times: &[SimTime],
    packet_size_bytes: u32,
    window: SimDuration,
    duration: SimDuration,
) -> Vec<(SimTime, f64)> {
    let window_ns = window.as_nanos().max(1);
    let total_ns = duration.as_nanos().max(1);
    let n_windows = total_ns.div_ceil(window_ns) as usize;
    let mut counts = vec![0u64; n_windows.max(1)];
    for t in delivery_times {
        let idx = (t.as_nanos() / window_ns) as usize;
        if idx < counts.len() {
            counts[idx] += 1;
        }
    }
    let window_secs = window.as_secs_f64();
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                SimTime::from_nanos(i as u64 * window_ns),
                c as f64 * packet_size_bytes as f64 * 8.0 / window_secs,
            )
        })
        .collect()
}

/// Scratch-based core of [`windowed_throughput_bps`] for the scoring hot
/// path: fills `counts` with per-window delivery counts and `rates` with the
/// per-window bits-per-second values (the `f64` column of
/// [`windowed_throughput_bps`], in the same order), reusing both buffers so
/// a warm evaluator performs no allocation here.
pub fn windowed_rates_into(
    delivery_times: &[SimTime],
    packet_size_bytes: u32,
    window: SimDuration,
    duration: SimDuration,
    counts: &mut Vec<u64>,
    rates: &mut Vec<f64>,
) {
    let window_ns = window.as_nanos().max(1);
    let total_ns = duration.as_nanos().max(1);
    let n_windows = (total_ns.div_ceil(window_ns) as usize).max(1);
    counts.clear();
    counts.resize(n_windows, 0);
    for t in delivery_times {
        let idx = (t.as_nanos() / window_ns) as usize;
        if idx < counts.len() {
            counts[idx] += 1;
        }
    }
    let window_secs = window.as_secs_f64();
    rates.clear();
    rates.extend(
        counts
            .iter()
            .map(|&c| c as f64 * packet_size_bytes as f64 * 8.0 / window_secs),
    );
}

/// Converts a cumulative `(time, bytes)` step curve into a bucketed rate
/// curve in bits per second (used for the ingress/egress/traffic curves of
/// Figures 4a and 4b).
pub fn rate_curve_bps(
    cumulative: &[(SimTime, u64)],
    window: SimDuration,
    duration: SimDuration,
) -> Vec<(SimTime, f64)> {
    let window_ns = window.as_nanos().max(1);
    let total_ns = duration.as_nanos().max(1);
    let n_windows = total_ns.div_ceil(window_ns) as usize;
    let mut per_window = vec![0u64; n_windows.max(1)];
    let mut prev_total = 0u64;
    for &(t, total) in cumulative {
        let idx = (t.as_nanos() / window_ns) as usize;
        let delta = total.saturating_sub(prev_total);
        prev_total = total;
        if idx < per_window.len() {
            per_window[idx] += delta;
        }
    }
    let window_secs = window.as_secs_f64();
    per_window
        .iter()
        .enumerate()
        .map(|(i, &bytes)| {
            (
                SimTime::from_nanos(i as u64 * window_ns),
                bytes as f64 * 8.0 / window_secs,
            )
        })
        .collect()
}

/// The mean of the lowest `fraction` of `values` (the paper's low-utilization
/// performance score uses `fraction = 0.2`). Returns 0 for empty input.
pub fn mean_of_lowest_fraction(values: &[f64], fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let k =
        ((sorted.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize).clamp(1, sorted.len());
    sorted[..k].iter().sum::<f64>() / k as f64
}

/// In-place variant of [`mean_of_lowest_fraction`]: sorts `values` itself
/// instead of copying them. Uses an unstable sort (no allocation, ever) —
/// the result is identical because equal values contribute the same sum
/// regardless of their relative order.
pub fn mean_of_lowest_fraction_mut(values: &mut [f64], fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let k =
        ((values.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize).clamp(1, values.len());
    values[..k].iter().sum::<f64>() / k as f64
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns 0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Simple mean. Returns 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_throughput_counts_per_window() {
        // 3 packets in [0,1s), 1 packet in [1,2s), none in [2,3s).
        let times = vec![
            SimTime::from_millis(100),
            SimTime::from_millis(200),
            SimTime::from_millis(900),
            SimTime::from_millis(1_500),
        ];
        let tp = windowed_throughput_bps(
            &times,
            1_000,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        );
        assert_eq!(tp.len(), 3);
        assert_eq!(tp[0].1, 24_000.0);
        assert_eq!(tp[1].1, 8_000.0);
        assert_eq!(tp[2].1, 0.0);
    }

    #[test]
    fn windowed_throughput_empty_input() {
        let tp = windowed_throughput_bps(
            &[],
            1500,
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
        );
        assert_eq!(tp.len(), 4);
        assert!(tp.iter().all(|(_, r)| *r == 0.0));
    }

    #[test]
    fn rate_curve_differences_cumulative() {
        let cumulative = vec![
            (SimTime::from_millis(100), 1_000u64),
            (SimTime::from_millis(600), 3_000),
            (SimTime::from_millis(1_100), 6_000),
        ];
        let curve = rate_curve_bps(
            &cumulative,
            SimDuration::from_millis(500),
            SimDuration::from_millis(1_500),
        );
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].1, 1_000.0 * 8.0 / 0.5);
        assert_eq!(curve[1].1, 2_000.0 * 8.0 / 0.5);
        assert_eq!(curve[2].1, 3_000.0 * 8.0 / 0.5);
    }

    #[test]
    fn lowest_fraction_mean() {
        let values = vec![10.0, 1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0, 7.0, 6.0];
        // Lowest 20% of 10 values = 2 values: 1 and 2 → mean 1.5.
        assert_eq!(mean_of_lowest_fraction(&values, 0.2), 1.5);
        // Whole range.
        assert_eq!(mean_of_lowest_fraction(&values, 1.0), 5.5);
        assert_eq!(mean_of_lowest_fraction(&[], 0.2), 0.0);
        // Tiny fraction still uses at least one value.
        assert_eq!(mean_of_lowest_fraction(&values, 0.0001), 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 100.0), 5.0);
        assert_eq!(percentile(&values, 50.0), 3.0);
        assert_eq!(percentile(&values, 10.0), 1.4);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
