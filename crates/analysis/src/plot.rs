//! Plain-text output: ASCII plots and CSV export for figure data.
//!
//! The benchmark binaries print both an ASCII rendering (for a quick look in
//! the terminal) and CSV rows (for regenerating publication-style plots with
//! any external tool).

use crate::figures::FigureSeries;
use std::fmt::Write as _;

/// Renders one or more series as a fixed-size ASCII chart.
///
/// Each series gets its own glyph; axes are annotated with the data range.
pub fn ascii_chart(title: &str, series: &[&FigureSeries], width: usize, height: usize) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(5, 60);
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];

    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y: f64 = 0.0;
    let mut max_y = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if !min_x.is_finite() || !max_x.is_finite() || max_y <= min_y {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let x_span = (max_x - min_x).max(1e-12);
    let y_span = (max_y - min_y).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in &s.points {
            let col = (((x - min_x) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - min_y) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y_label = max_y - (i as f64 / (height - 1) as f64) * y_span;
        let _ = writeln!(out, "{y_label:>10.2} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10}  {:<.2}{}{:>.2}",
        "",
        min_x,
        " ".repeat(width.saturating_sub(12)),
        max_x
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "   [{}] {}", glyphs[si % glyphs.len()], s.name);
    }
    out
}

/// Serialises series as CSV: a header row (`x,<name1>,<name2>,...`) followed
/// by one row per x value of the *first* series; other series are sampled at
/// their own index (series are expected to share the x grid, as all figure
/// extractors in this crate produce).
pub fn to_csv(series: &[&FigureSeries]) -> String {
    let mut out = String::new();
    let header: Vec<String> = std::iter::once("x".to_string())
        .chain(series.iter().map(|s| s.name.replace(',', ";")))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(i as f64);
        let mut row = vec![format!("{x}")];
        for s in series {
            row.push(
                s.points
                    .get(i)
                    .map(|p| format!("{}", p.1))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, points: Vec<(f64, f64)>) -> FigureSeries {
        FigureSeries::new(name, points)
    }

    #[test]
    fn ascii_chart_contains_title_and_legend() {
        let a = series("throughput", vec![(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)]);
        let b = series("delay", vec![(0.0, 2.0), (1.0, 2.0), (2.0, 3.0)]);
        let chart = ascii_chart("Figure X", &[&a, &b], 40, 10);
        assert!(chart.contains("== Figure X =="));
        assert!(chart.contains("throughput"));
        assert!(chart.contains("delay"));
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
    }

    #[test]
    fn ascii_chart_handles_empty_series() {
        let a = series("empty", vec![]);
        let chart = ascii_chart("Nothing", &[&a], 40, 10);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let a = series("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        let b = series("b", vec![(0.0, 3.0), (1.0, 4.0)]);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "1,2,4");
    }

    #[test]
    fn csv_with_uneven_series_pads_missing_values() {
        let a = series("a", vec![(0.0, 1.0)]);
        let b = series("b", vec![(0.0, 3.0), (1.0, 4.0)]);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "1,,4");
    }
}
