//! Deterministic plain-text tables.
//!
//! Used by the corpus report and replay tooling, which need byte-identical
//! output across runs: columns are padded to the widest cell, floats must be
//! pre-formatted by the caller with a fixed precision, and row order is
//! whatever the caller passes.

/// Renders a left-aligned text table with a header row and a separator.
///
/// Returns the empty string when there are no rows, so callers can append
/// unconditionally.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        for (i, width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            out.push_str(cell);
            if i + 1 < cols {
                out.push_str(&" ".repeat(width - cell.len() + 2));
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render_row(&header_cells, &mut out);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out
}

/// Formats a fraction (0..=1) as a fixed-width percentage, e.g. `42.50%`.
pub fn percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats bits per second as fixed-precision Mbps, e.g. `11.834 Mbps`.
pub fn mbps(bps: f64) -> String {
    format!("{:.3} Mbps", bps / 1e6)
}

/// Renders a deterministic per-flow results table for multi-flow runs: one
/// row per flow with its CCA, goodput, delivered packets and share of the
/// total goodput. The inputs are parallel slices indexed by flow.
pub fn per_flow_table(ccas: &[String], goodput_bps: &[f64], delivered: &[u64]) -> String {
    let total: f64 = goodput_bps.iter().sum();
    let rows: Vec<Vec<String>> = ccas
        .iter()
        .enumerate()
        .map(|(i, cca)| {
            let goodput = goodput_bps.get(i).copied().unwrap_or(0.0);
            let share = if total > 0.0 { goodput / total } else { 0.0 };
            vec![
                i.to_string(),
                cca.clone(),
                mbps(goodput),
                delivered.get(i).copied().unwrap_or(0).to_string(),
                percent(share),
            ]
        })
        .collect();
    text_table(&["flow", "cca", "goodput", "delivered", "share"], &rows)
}

/// Renders a deterministic gateway-discipline table for AQM findings: one
/// row per finding with the qdisc label, ECN negotiation and the headline
/// score/goodput. The inputs are parallel slices indexed by finding.
pub fn qdisc_table(
    ids: &[String],
    qdisc_labels: &[String],
    ecn: &[bool],
    scores: &[f64],
    goodput_bps: &[f64],
) -> String {
    let rows: Vec<Vec<String>> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            vec![
                id.clone(),
                qdisc_labels.get(i).cloned().unwrap_or_default(),
                if ecn.get(i).copied().unwrap_or(false) {
                    "on".to_string()
                } else {
                    "off".to_string()
                },
                format!("{:.6}", scores.get(i).copied().unwrap_or(0.0)),
                mbps(goodput_bps.get(i).copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    text_table(&["finding", "qdisc", "ecn", "score", "goodput"], &rows)
}

/// Renders a deterministic per-hop table for multi-hop topology findings:
/// one row per hop with its rate, one-way delay, buffer and discipline,
/// with the bottleneck (slowest) hop flagged. The inputs are parallel
/// slices indexed by hop.
pub fn hop_table(
    rates_bps: &[u64],
    delays_ms: &[u64],
    buffers_pkts: &[usize],
    qdisc_labels: &[String],
) -> String {
    let bottleneck = rates_bps
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| **r)
        .map(|(i, _)| i);
    let rows: Vec<Vec<String>> = rates_bps
        .iter()
        .enumerate()
        .map(|(i, rate)| {
            vec![
                i.to_string(),
                mbps(*rate as f64),
                format!("{} ms", delays_ms.get(i).copied().unwrap_or(0)),
                format!("{} pkts", buffers_pkts.get(i).copied().unwrap_or(0)),
                qdisc_labels.get(i).cloned().unwrap_or_default(),
                if Some(i) == bottleneck {
                    "<- bottleneck".to_string()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    text_table(&["hop", "rate", "delay", "buffer", "qdisc", ""], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_deterministic() {
        let rows = vec![
            vec!["reno".to_string(), "0.812345".to_string()],
            vec!["cubic-ns3-buggy".to_string(), "0.900000".to_string()],
        ];
        let a = text_table(&["cca", "score"], &rows);
        let b = text_table(&["cca", "score"], &rows);
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("cca"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Score column starts at the same offset in every row.
        let col = lines[2].find("0.812345").unwrap();
        assert_eq!(lines[3].find("0.900000").unwrap(), col);
        assert_eq!(lines[0].find("score").unwrap(), col);
    }

    #[test]
    fn empty_tables_render_empty() {
        assert_eq!(text_table(&["a"], &[]), "");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.425), "42.50%");
        assert_eq!(mbps(11_834_000.0), "11.834 Mbps");
    }

    #[test]
    fn qdisc_table_renders_labels_and_ecn() {
        let out = qdisc_table(
            &["bbr-aqm-01".to_string(), "reno-aqm-02".to_string()],
            &[
                "red(min=20,max=60,p=0.10)".to_string(),
                "codel(target=5ms,interval=100ms)".to_string(),
            ],
            &[true, false],
            &[0.75, 0.5],
            &[3e6, 6e6],
        );
        assert!(out.contains("red(min=20,max=60,p=0.10)"));
        assert!(out.contains("codel(target=5ms,interval=100ms)"));
        assert!(out.lines().nth(2).unwrap().contains("on"));
        assert!(out.lines().nth(3).unwrap().contains("off"));
        assert!(out.contains("3.000 Mbps"));
    }

    #[test]
    fn hop_table_flags_the_bottleneck() {
        let out = hop_table(
            &[12_000_000, 6_000_000, 10_000_000],
            &[10, 5, 5],
            &[100, 60, 80],
            &[
                "droptail".to_string(),
                "red(min=10,max=40,p=0.20)".to_string(),
                "droptail".to_string(),
            ],
        );
        assert!(out.contains("12.000 Mbps"));
        assert!(out.contains("6.000 Mbps"));
        assert!(out.contains("red(min=10,max=40,p=0.20)"));
        let bottleneck_line = out
            .lines()
            .find(|l| l.contains("<- bottleneck"))
            .expect("one hop is flagged");
        assert!(
            bottleneck_line.contains("6.000 Mbps"),
            "the slowest hop is the bottleneck: {bottleneck_line}"
        );
        assert_eq!(
            out.lines().filter(|l| l.contains("<- bottleneck")).count(),
            1
        );
        // Deterministic.
        assert_eq!(
            out,
            hop_table(
                &[12_000_000, 6_000_000, 10_000_000],
                &[10, 5, 5],
                &[100, 60, 80],
                &[
                    "droptail".to_string(),
                    "red(min=10,max=40,p=0.20)".to_string(),
                    "droptail".to_string(),
                ],
            )
        );
    }

    #[test]
    fn per_flow_table_shows_shares() {
        let out = per_flow_table(
            &["bbr".to_string(), "reno".to_string()],
            &[9e6, 3e6],
            &[900, 300],
        );
        assert!(out.contains("bbr"));
        assert!(out.contains("9.000 Mbps"));
        assert!(out.contains("75.00%"));
        assert!(out.contains("25.00%"));
        // Deterministic.
        assert_eq!(
            out,
            per_flow_table(
                &["bbr".to_string(), "reno".to_string()],
                &[9e6, 3e6],
                &[900, 300],
            )
        );
    }
}
