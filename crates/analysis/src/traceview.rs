//! Rendering and export of sim-level structured traces.
//!
//! Consumes the [`SimTrace`] captured by the simulator's trace recorder
//! (`ccfuzz trace` replays a corpus finding to get one) and renders:
//!
//! * a per-flow **timeline table**: the trace span split into fixed time
//!   buckets, each row showing the congestion window at the end of the
//!   bucket plus the drops / ECN marks / RTOs / recovery entries inside it;
//! * a per-hop **queue table**: occupancy statistics and loss/mark counts
//!   for every bottleneck hop;
//! * lossless **JSONL / CSV exports** of the raw event stream.
//!
//! Everything is deterministic text over a deterministic trace, so outputs
//! are stable across runs and platforms.

use crate::table::text_table;
use ccfuzz_netsim::packet::FlowId;
use ccfuzz_netsim::simtrace::{SimTrace, TraceEvent};

/// Default number of time buckets in a timeline table.
pub const DEFAULT_TIMELINE_BUCKETS: usize = 20;

fn flow_label(flow: FlowId) -> String {
    match flow {
        FlowId::Cca(i) => i.to_string(),
        FlowId::CrossTraffic => "cross".to_string(),
    }
}

/// Number of CCA flows observed in the trace (max flow index + 1).
pub fn flow_count(trace: &SimTrace) -> usize {
    let mut max: Option<u32> = None;
    let mut seen = |f: u32| max = Some(max.map_or(f, |m: u32| m.max(f)));
    for r in &trace.events {
        match r.event {
            TraceEvent::FlowStart { flow }
            | TraceEvent::CwndUpdate { flow, .. }
            | TraceEvent::RecoveryEnter { flow }
            | TraceEvent::RecoveryExit { flow }
            | TraceEvent::RtoFired { flow } => seen(flow),
            TraceEvent::Drop {
                flow: FlowId::Cca(flow),
                ..
            }
            | TraceEvent::EcnMark {
                flow: FlowId::Cca(flow),
                ..
            } => seen(flow),
            _ => {}
        }
    }
    max.map_or(0, |m| m as usize + 1)
}

/// Number of hops observed in the trace (max hop index + 1).
pub fn hop_count(trace: &SimTrace) -> usize {
    let mut max: Option<u32> = None;
    for r in &trace.events {
        match r.event {
            TraceEvent::Drop { hop, .. }
            | TraceEvent::EcnMark { hop, .. }
            | TraceEvent::QueueSample { hop, .. } => {
                max = Some(max.map_or(hop, |m: u32| m.max(hop)));
            }
            _ => {}
        }
    }
    max.map_or(0, |m| m as usize + 1)
}

/// One aggregated timeline bucket of [`flow_timeline`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimelineBucket {
    /// Bucket start, seconds.
    pub start_secs: f64,
    /// Congestion window at the end of the bucket (carried forward through
    /// buckets without updates), packets.
    pub cwnd: u64,
    /// Packets in flight at the last update inside (or before) the bucket.
    pub in_flight: u64,
    /// Packets of this flow dropped inside the bucket.
    pub drops: u64,
    /// Packets of this flow CE-marked inside the bucket.
    pub ecn_marks: u64,
    /// RTO firings inside the bucket.
    pub rtos: u64,
    /// Loss-recovery entries inside the bucket.
    pub recoveries: u64,
}

/// Aggregates one flow's events into `buckets` equal time slices spanning
/// the whole trace. Returns an empty vector for an empty trace.
pub fn flow_timeline(trace: &SimTrace, flow: u32, buckets: usize) -> Vec<TimelineBucket> {
    if trace.events.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let end = trace
        .events
        .last()
        .map(|r| r.at.as_secs_f64())
        .unwrap_or(0.0);
    let width = if end > 0.0 { end / buckets as f64 } else { 1.0 };
    let mut out = vec![TimelineBucket::default(); buckets];
    for (i, bucket) in out.iter_mut().enumerate() {
        bucket.start_secs = i as f64 * width;
    }
    let index = |secs: f64| ((secs / width) as usize).min(buckets - 1);
    let mut cwnd = 0u64;
    let mut in_flight = 0u64;
    let mut last_filled = 0usize;
    for r in trace.flow_events(flow) {
        let i = index(r.at.as_secs_f64());
        // Carry the last-known window forward through bucket boundaries.
        for b in out.iter_mut().take(i + 1).skip(last_filled) {
            b.cwnd = cwnd;
            b.in_flight = in_flight;
        }
        last_filled = i;
        let bucket = &mut out[i];
        match r.event {
            TraceEvent::CwndUpdate {
                cwnd: c,
                in_flight: f,
                ..
            } => {
                cwnd = c;
                in_flight = f;
                bucket.cwnd = c;
                bucket.in_flight = f;
            }
            TraceEvent::Drop { .. } => bucket.drops += 1,
            TraceEvent::EcnMark { .. } => bucket.ecn_marks += 1,
            TraceEvent::RtoFired { .. } => bucket.rtos += 1,
            TraceEvent::RecoveryEnter { .. } => bucket.recoveries += 1,
            _ => {}
        }
    }
    for b in out.iter_mut().skip(last_filled + 1) {
        b.cwnd = cwnd;
        b.in_flight = in_flight;
    }
    out
}

/// Renders one flow's timeline as a text table.
pub fn flow_timeline_table(trace: &SimTrace, flow: u32, buckets: usize) -> String {
    let timeline = flow_timeline(trace, flow, buckets);
    let rows: Vec<Vec<String>> = timeline
        .iter()
        .map(|b| {
            vec![
                format!("{:.3}", b.start_secs),
                b.cwnd.to_string(),
                b.in_flight.to_string(),
                b.drops.to_string(),
                b.ecn_marks.to_string(),
                b.rtos.to_string(),
                b.recoveries.to_string(),
            ]
        })
        .collect();
    text_table(
        &[
            "t(s)",
            "cwnd",
            "in_flight",
            "drops",
            "ecn",
            "rto",
            "recovery",
        ],
        &rows,
    )
}

/// Per-hop aggregate of queue samples, drops and marks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HopSummary {
    /// Hop index.
    pub hop: u32,
    /// Queue-depth samples observed.
    pub samples: u64,
    /// Mean sampled queue occupancy, packets.
    pub mean_packets: f64,
    /// Peak sampled queue occupancy, packets.
    pub max_packets: u32,
    /// Peak sampled queue occupancy, bytes.
    pub max_bytes: u64,
    /// Packets dropped at this hop (all flows).
    pub drops: u64,
    /// Packets CE-marked at this hop (all flows).
    pub ecn_marks: u64,
}

/// Aggregates the trace's per-hop queue samples and loss/mark events.
pub fn hop_summaries(trace: &SimTrace) -> Vec<HopSummary> {
    let hops = hop_count(trace);
    let mut out: Vec<HopSummary> = (0..hops)
        .map(|h| HopSummary {
            hop: h as u32,
            ..Default::default()
        })
        .collect();
    let mut packet_sums = vec![0u64; hops];
    for r in &trace.events {
        match r.event {
            TraceEvent::QueueSample {
                hop,
                packets,
                bytes,
            } => {
                let s = &mut out[hop as usize];
                s.samples += 1;
                packet_sums[hop as usize] += packets as u64;
                s.max_packets = s.max_packets.max(packets);
                s.max_bytes = s.max_bytes.max(bytes);
            }
            TraceEvent::Drop { hop, .. } => out[hop as usize].drops += 1,
            TraceEvent::EcnMark { hop, .. } => out[hop as usize].ecn_marks += 1,
            _ => {}
        }
    }
    for (s, sum) in out.iter_mut().zip(packet_sums) {
        if s.samples > 0 {
            s.mean_packets = sum as f64 / s.samples as f64;
        }
    }
    out
}

/// Renders the per-hop queue table.
pub fn hop_queue_table(trace: &SimTrace) -> String {
    let rows: Vec<Vec<String>> = hop_summaries(trace)
        .iter()
        .map(|s| {
            vec![
                s.hop.to_string(),
                s.samples.to_string(),
                format!("{:.1}", s.mean_packets),
                s.max_packets.to_string(),
                s.max_bytes.to_string(),
                s.drops.to_string(),
                s.ecn_marks.to_string(),
            ]
        })
        .collect();
    text_table(
        &[
            "hop",
            "samples",
            "mean_q(pkts)",
            "max_q(pkts)",
            "max_q(bytes)",
            "drops",
            "ecn",
        ],
        &rows,
    )
}

/// One event as ordered `(key, value)` pairs, shared by the JSONL and CSV
/// exporters so both formats agree on field names.
fn event_fields(event: &TraceEvent) -> Vec<(&'static str, String)> {
    match *event {
        TraceEvent::FlowStart { flow } => vec![("flow", flow.to_string())],
        TraceEvent::CwndUpdate {
            flow,
            cwnd,
            in_flight,
        } => vec![
            ("flow", flow.to_string()),
            ("cwnd", cwnd.to_string()),
            ("in_flight", in_flight.to_string()),
        ],
        TraceEvent::RecoveryEnter { flow }
        | TraceEvent::RecoveryExit { flow }
        | TraceEvent::RtoFired { flow } => vec![("flow", flow.to_string())],
        TraceEvent::Drop { flow, hop } | TraceEvent::EcnMark { flow, hop } => {
            vec![("flow", flow_label(flow)), ("hop", hop.to_string())]
        }
        TraceEvent::QueueSample {
            hop,
            packets,
            bytes,
        } => vec![
            ("hop", hop.to_string()),
            ("packets", packets.to_string()),
            ("bytes", bytes.to_string()),
        ],
    }
}

/// Exports the raw event stream as JSONL: one object per event with `at`
/// (seconds), `kind` and the event's own fields. All values are numbers
/// except `kind` and the cross-traffic `flow` label.
pub fn trace_to_jsonl(trace: &SimTrace) -> String {
    let mut out = String::new();
    for r in &trace.events {
        out.push_str(&format!(
            "{{\"at\":{:.9},\"kind\":\"{}\"",
            r.at.as_secs_f64(),
            r.event.kind()
        ));
        for (key, value) in event_fields(&r.event) {
            if value.parse::<u64>().is_ok() {
                out.push_str(&format!(",\"{key}\":{value}"));
            } else {
                out.push_str(&format!(",\"{key}\":\"{value}\""));
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Exports the raw event stream as CSV with a fixed column set
/// (`at,kind,flow,hop,cwnd,in_flight,packets,bytes`); fields an event does
/// not carry are left empty.
pub fn trace_to_csv(trace: &SimTrace) -> String {
    const COLUMNS: [&str; 8] = [
        "at",
        "kind",
        "flow",
        "hop",
        "cwnd",
        "in_flight",
        "packets",
        "bytes",
    ];
    let mut out = String::new();
    out.push_str(&COLUMNS.join(","));
    out.push('\n');
    for r in &trace.events {
        let fields = event_fields(&r.event);
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        out.push_str(&format!(
            "{:.9},{},{},{},{},{},{},{}\n",
            r.at.as_secs_f64(),
            r.event.kind(),
            get("flow"),
            get("hop"),
            get("cwnd"),
            get("in_flight"),
            get("packets"),
            get("bytes"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::simtrace::{TraceRecord, TraceRecorder};
    use ccfuzz_netsim::time::SimTime;

    fn sample_trace() -> SimTrace {
        let mut rec = TraceRecorder::new(64, 2);
        rec.push(SimTime::from_millis(0), TraceEvent::FlowStart { flow: 0 });
        rec.sample_sender(SimTime::from_millis(10), 0, 10, 5, false);
        rec.push(
            SimTime::from_millis(100),
            TraceEvent::QueueSample {
                hop: 0,
                packets: 4,
                bytes: 6_000,
            },
        );
        rec.sample_sender(SimTime::from_millis(450), 0, 20, 18, false);
        rec.push(
            SimTime::from_millis(500),
            TraceEvent::Drop {
                flow: FlowId::Cca(0),
                hop: 0,
            },
        );
        rec.sample_sender(SimTime::from_millis(510), 0, 10, 18, true);
        rec.push(
            SimTime::from_millis(600),
            TraceEvent::QueueSample {
                hop: 1,
                packets: 9,
                bytes: 13_500,
            },
        );
        rec.push(
            SimTime::from_millis(800),
            TraceEvent::EcnMark {
                flow: FlowId::CrossTraffic,
                hop: 1,
            },
        );
        rec.sample_sender(SimTime::from_millis(1000), 1, 4, 2, false);
        rec.finish()
    }

    #[test]
    fn counts_flows_and_hops() {
        let trace = sample_trace();
        assert_eq!(flow_count(&trace), 2);
        assert_eq!(hop_count(&trace), 2);
        assert_eq!(flow_count(&SimTrace::default()), 0);
    }

    #[test]
    fn timeline_buckets_aggregate_and_carry_cwnd_forward() {
        let trace = sample_trace();
        let timeline = flow_timeline(&trace, 0, 4);
        assert_eq!(timeline.len(), 4);
        // Bucket 0 ends with the first cwnd update.
        assert_eq!(timeline[0].cwnd, 10);
        // Bucket 1 ([250,500) ms) ends on the ramp to 20.
        assert_eq!(timeline[1].cwnd, 20);
        // Bucket 2 ([500,750) ms) holds the drop and the recovery cut.
        assert_eq!(timeline[2].cwnd, 10);
        assert_eq!(timeline[2].drops, 1);
        assert_eq!(timeline[2].recoveries, 1);
        // Later buckets carry the last window forward.
        assert_eq!(timeline[3].cwnd, 10);
        let table = flow_timeline_table(&trace, 0, 4);
        assert!(table.contains("cwnd"));
        assert_eq!(table.lines().count(), 2 + 4); // header + rule + rows
    }

    #[test]
    fn hop_table_aggregates_samples_drops_and_marks() {
        let trace = sample_trace();
        let hops = hop_summaries(&trace);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].samples, 1);
        assert_eq!(hops[0].max_packets, 4);
        assert_eq!(hops[0].drops, 1);
        assert_eq!(hops[1].ecn_marks, 1);
        assert_eq!(hops[1].max_bytes, 13_500);
        let table = hop_queue_table(&trace);
        assert!(table.contains("mean_q(pkts)"));
    }

    #[test]
    fn exports_are_lossless_over_the_event_count() {
        let trace = sample_trace();
        let jsonl = trace_to_jsonl(&trace);
        assert_eq!(jsonl.lines().count(), trace.events.len());
        assert!(jsonl.contains("\"kind\":\"drop\""));
        assert!(jsonl.contains("\"flow\":\"cross\""));
        let csv = trace_to_csv(&trace);
        assert_eq!(csv.lines().count(), trace.events.len() + 1);
        assert!(csv.starts_with("at,kind,flow,hop,cwnd,in_flight,packets,bytes"));
    }

    #[test]
    fn empty_trace_renders_empty_tables() {
        let trace = SimTrace {
            events: Vec::<TraceRecord>::new(),
            overwritten: 0,
            capacity: 16,
        };
        assert_eq!(flow_timeline_table(&trace, 0, 8), "");
        assert_eq!(hop_queue_table(&trace), "");
        assert_eq!(trace_to_jsonl(&trace), "");
    }
}
