//! Per-figure data extraction.
//!
//! Each of the paper's figures is, at heart, a set of named `(x, y)` series.
//! This module turns a [`RunStats`] into those series so the figure binaries
//! in `ccfuzz-bench` (and the examples) only have to print or plot them.

use crate::timeseries::rate_curve_bps;
use ccfuzz_netsim::packet::FlowId;
use ccfuzz_netsim::stats::RunStats;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points (x is usually seconds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Legend label.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl FigureSeries {
    /// Builds a series from a label and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        FigureSeries {
            name: name.into(),
            points,
        }
    }

    /// Maximum y value (0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Mean y value (0 for an empty series).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
        }
    }
}

/// The ingress/egress/cross-traffic rate curves plotted in Figures 4a/4b.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateCurves {
    /// Rate at which the CCA flow's packets arrive at the bottleneck queue
    /// (offered load), Mbps.
    pub ingress_mbps: FigureSeries,
    /// Rate at which the CCA flow's packets cross the bottleneck, Mbps.
    pub egress_mbps: FigureSeries,
    /// Rate at which cross traffic arrives at the queue, Mbps.
    pub traffic_mbps: FigureSeries,
    /// The bottleneck's service rate over time (what the link could carry), Mbps.
    pub link_rate_mbps: FigureSeries,
}

/// Extracts the Figure 4a/4b rate curves from a run.
///
/// `link_capacity` is the cumulative `(time, bytes)` service curve of the
/// bottleneck (for a fixed-rate link, a straight line; for a trace-driven
/// link, the trace itself).
pub fn rate_curves(
    stats: &RunStats,
    link_capacity: &[(SimTime, u64)],
    window: SimDuration,
    duration: SimDuration,
) -> RateCurves {
    let to_mbps = |series: Vec<(SimTime, f64)>| -> Vec<(f64, f64)> {
        series
            .into_iter()
            .map(|(t, bps)| (t.as_secs_f64(), bps / 1e6))
            .collect()
    };
    let ingress = rate_curve_bps(&stats.ingress_bytes(FlowId::Cca(0)), window, duration);
    let egress = rate_curve_bps(&stats.egress_bytes(FlowId::Cca(0)), window, duration);
    let traffic = rate_curve_bps(&stats.ingress_bytes(FlowId::CrossTraffic), window, duration);
    let link = rate_curve_bps(link_capacity, window, duration);
    RateCurves {
        ingress_mbps: FigureSeries::new("Ingress", to_mbps(ingress)),
        egress_mbps: FigureSeries::new("Egress", to_mbps(egress)),
        traffic_mbps: FigureSeries::new("Traffic", to_mbps(traffic)),
        link_rate_mbps: FigureSeries::new("Link Rate", to_mbps(link)),
    }
}

/// Builds the cumulative `(time, bytes)` curve of a constant-rate link, for
/// use as the `link_capacity` argument of [`rate_curves`].
pub fn constant_rate_capacity(
    rate_bps: u64,
    window: SimDuration,
    duration: SimDuration,
) -> Vec<(SimTime, u64)> {
    let mut points = Vec::new();
    let mut t = SimTime::ZERO;
    while t.as_nanos() <= duration.as_nanos() {
        let bytes = (rate_bps as f64 / 8.0 * t.as_secs_f64()) as u64;
        points.push((t, bytes));
        t += window;
    }
    points
}

/// Builds the cumulative `(time, bytes)` curve of a trace-driven link.
pub fn trace_capacity(opportunities: &[SimTime], packet_size: u32) -> Vec<(SimTime, u64)> {
    opportunities
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, (i as u64 + 1) * packet_size as u64))
        .collect()
}

/// Queuing-delay series for Figure 4e: per-packet queuing delay (ms) against
/// the time the packet left the queue, for both flows.
pub fn queuing_delay_series(stats: &RunStats) -> (FigureSeries, FigureSeries) {
    let extract = |flow: FlowId, name: &str| {
        FigureSeries::new(
            name,
            stats
                .queuing_delays(flow)
                .into_iter()
                .map(|(t, d)| (t.as_secs_f64(), d.as_secs_f64() * 1e3))
                .collect(),
        )
    };
    (
        extract(FlowId::Cca(0), "BBR Flow"),
        extract(FlowId::CrossTraffic, "Cross Traffic"),
    )
}

/// Cumulative packet-count curve of a trace (Figure 3 / Figure 5): one point
/// per sample instant.
pub fn cumulative_packet_curve(
    timestamps: &[SimTime],
    samples: usize,
    duration: SimDuration,
) -> FigureSeries {
    let samples = samples.max(2);
    let total_ns = duration.as_nanos().max(1);
    let mut points = Vec::with_capacity(samples);
    let mut idx = 0usize;
    let sorted: Vec<SimTime> = {
        let mut v = timestamps.to_vec();
        v.sort_unstable();
        v
    };
    for s in 0..samples {
        let t_ns = total_ns * s as u64 / (samples as u64 - 1);
        while idx < sorted.len() && sorted[idx].as_nanos() <= t_ns {
            idx += 1;
        }
        points.push((t_ns as f64 / 1e6, idx as f64)); // x in milliseconds, as in Fig 3
    }
    FigureSeries::new("Packet Count", points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::stats::{BottleneckEvent, BottleneckRecord};

    fn record(at_ms: u64, flow: FlowId, event: BottleneckEvent) -> BottleneckRecord {
        BottleneckRecord {
            at: SimTime::from_millis(at_ms),
            flow,
            hop: 0,
            size: 1_000,
            event,
        }
    }

    #[test]
    fn figure_series_helpers() {
        let s = FigureSeries::new("x", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.max_y(), 3.0);
        assert_eq!(s.mean_y(), 2.0);
        let empty = FigureSeries::new("e", vec![]);
        assert_eq!(empty.max_y(), 0.0);
        assert_eq!(empty.mean_y(), 0.0);
    }

    #[test]
    fn rate_curves_extracts_all_four_series() {
        let stats = RunStats {
            bottleneck: vec![
                record(100, FlowId::Cca(0), BottleneckEvent::Enqueued),
                record(
                    200,
                    FlowId::Cca(0),
                    BottleneckEvent::Dequeued {
                        queuing_delay: SimDuration::from_millis(100),
                    },
                ),
                record(300, FlowId::CrossTraffic, BottleneckEvent::Enqueued),
            ],
            ..Default::default()
        };
        let capacity = constant_rate_capacity(
            12_000_000,
            SimDuration::from_millis(500),
            SimDuration::from_secs(1),
        );
        let curves = rate_curves(
            &stats,
            &capacity,
            SimDuration::from_millis(500),
            SimDuration::from_secs(1),
        );
        assert_eq!(curves.ingress_mbps.points.len(), 2);
        assert!(curves.ingress_mbps.points[0].1 > 0.0);
        assert!(curves.egress_mbps.points[0].1 > 0.0);
        assert!(curves.traffic_mbps.points[0].1 > 0.0);
        // 12 Mbps link: each 0.5s bucket carries ~12 Mbit/s.
        assert!((curves.link_rate_mbps.points[1].1 - 12.0).abs() < 0.5);
    }

    #[test]
    fn queuing_delay_series_splits_flows() {
        let stats = RunStats {
            bottleneck: vec![
                record(
                    100,
                    FlowId::Cca(0),
                    BottleneckEvent::Dequeued {
                        queuing_delay: SimDuration::from_millis(30),
                    },
                ),
                record(
                    200,
                    FlowId::CrossTraffic,
                    BottleneckEvent::Dequeued {
                        queuing_delay: SimDuration::from_millis(5),
                    },
                ),
            ],
            ..Default::default()
        };
        let (cca, cross) = queuing_delay_series(&stats);
        assert_eq!(cca.points, vec![(0.1, 30.0)]);
        assert_eq!(cross.points, vec![(0.2, 5.0)]);
    }

    #[test]
    fn cumulative_curve_is_monotone_and_ends_at_total() {
        let ts: Vec<SimTime> = (0..100).map(|i| SimTime::from_millis(i * 10)).collect();
        let curve = cumulative_packet_curve(&ts, 20, SimDuration::from_secs(1));
        assert_eq!(curve.points.len(), 20);
        assert!(curve.points.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve.points.last().unwrap().1, 100.0);
    }

    #[test]
    fn trace_capacity_accumulates_bytes() {
        let opp = vec![SimTime::from_millis(1), SimTime::from_millis(2)];
        let cap = trace_capacity(&opp, 1500);
        assert_eq!(
            cap,
            vec![
                (SimTime::from_millis(1), 1500),
                (SimTime::from_millis(2), 3000)
            ]
        );
    }
}
