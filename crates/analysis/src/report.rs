//! Root-cause reporting from the transport event log.
//!
//! Figure 4c of the paper is a hand-drawn timeline of how the BBR stall is
//! triggered: an RTO, spurious retransmissions of packets whose SACKs are in
//! flight, SACKs arriving right after, and premature probe-round ends. This
//! module extracts exactly that window of events from a run's transport log
//! so the `fig4c` binary (and debugging sessions) can print it.

use ccfuzz_netsim::stats::{RunStats, TransportEvent, TransportRecord};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A compact textual timeline of the events around each RTO in the run.
pub fn rto_timeline(stats: &RunStats, context_after: SimDuration, max_events: usize) -> String {
    let mut out = String::new();
    let rto_times: Vec<SimTime> = stats
        .transport
        .iter()
        .filter(|r| matches!(r.event, TransportEvent::RtoFired { .. }))
        .map(|r| r.at)
        .collect();
    if rto_times.is_empty() {
        let _ = writeln!(out, "(no RTO fired during this run)");
        return out;
    }
    for (i, &rto_at) in rto_times.iter().enumerate() {
        let _ = writeln!(out, "--- RTO #{} at {} ---", i + 1, rto_at);
        let window_end = rto_at + context_after;
        let mut shown = 0usize;
        for rec in &stats.transport {
            if rec.at < rto_at || rec.at > window_end {
                continue;
            }
            if shown >= max_events {
                let _ = writeln!(out, "  ... (truncated)");
                break;
            }
            let _ = writeln!(out, "  {}", format_record(rec));
            shown += 1;
        }
    }
    out
}

/// Counts the spurious retransmissions in the run: retransmissions of packets
/// that are later SACKed/ACKed without the retransmitted copy being needed.
/// We approximate this (as the paper's narrative does) by counting
/// retransmissions whose sequence is SACKed within `window` after the
/// retransmission was sent.
pub fn spurious_retransmissions(stats: &RunStats, window: SimDuration) -> usize {
    let mut count = 0usize;
    for (i, rec) in stats.transport.iter().enumerate() {
        let TransportEvent::Sent {
            seq,
            retransmission: true,
            ..
        } = rec.event
        else {
            continue;
        };
        let deadline = rec.at + window;
        let sacked_soon = stats.transport[i + 1..]
            .iter()
            .take_while(|r| r.at <= deadline)
            .any(|r| matches!(r.event, TransportEvent::Sacked { seq: s } if s == seq));
        if sacked_soon {
            count += 1;
        }
    }
    count
}

/// Counts BBR probe rounds that were started by a retransmitted sample (the
/// signature of the §4.1 interaction), based on the CC event log.
pub fn retransmission_triggered_rounds(stats: &RunStats) -> usize {
    stats
        .transport
        .iter()
        .filter(|r| match &r.event {
            TransportEvent::Cc { detail } => detail.contains("RETRANSMITTED"),
            _ => false,
        })
        .count()
}

/// One-line summary of a run, used by example binaries.
pub fn one_line_summary(stats: &RunStats, duration_secs: f64, mss: u32) -> String {
    let goodput =
        stats.flow().delivered_packets as f64 * mss as f64 * 8.0 / duration_secs.max(1e-9);
    format!(
        "delivered={} pkts ({:.2} Mbps), retx={}, lost={}, rtos={}, queue drops={}, cross delivered={}",
        stats.flow().delivered_packets,
        goodput / 1e6,
        stats.flow().retransmissions,
        stats.flow().marked_lost,
        stats.flow().rto_count,
        stats.flow().queue_drops,
        stats.cross_delivered
    )
}

fn format_record(rec: &TransportRecord) -> String {
    let t = format!("{:>10.4}s", rec.at.as_secs_f64());
    match &rec.event {
        TransportEvent::Sent {
            seq,
            retransmission,
            delivered_stamp,
        } => {
            if *retransmission {
                format!("{t}  RETX   seq={seq} (stamped delivered={delivered_stamp})")
            } else {
                format!("{t}  SEND   seq={seq}")
            }
        }
        TransportEvent::CumAckAdvanced { cum_ack } => format!("{t}  ACK    cum={cum_ack}"),
        TransportEvent::Sacked { seq } => format!("{t}  SACK   seq={seq}"),
        TransportEvent::MarkedLost { seq } => format!("{t}  LOST   seq={seq}"),
        TransportEvent::RtoFired { backoff } => format!("{t}  RTO    backoff={backoff}"),
        TransportEvent::EnterRecovery => format!("{t}  ENTER-RECOVERY"),
        TransportEvent::ExitRecovery => format!("{t}  EXIT-RECOVERY"),
        TransportEvent::Cc { detail } => format!("{t}  CC     {detail}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::stats::FlowSummary;

    fn rec(at_ms: u64, event: TransportEvent) -> TransportRecord {
        TransportRecord {
            at: SimTime::from_millis(at_ms),
            event,
        }
    }

    fn stats_with(transport: Vec<TransportRecord>) -> RunStats {
        RunStats {
            transport,
            ..Default::default()
        }
    }

    #[test]
    fn timeline_mentions_rto_and_following_events() {
        let stats = stats_with(vec![
            rec(
                100,
                TransportEvent::Sent {
                    seq: 5,
                    retransmission: false,
                    delivered_stamp: 0,
                },
            ),
            rec(1_100, TransportEvent::RtoFired { backoff: 0 }),
            rec(
                1_101,
                TransportEvent::Sent {
                    seq: 5,
                    retransmission: true,
                    delivered_stamp: 40,
                },
            ),
            rec(1_110, TransportEvent::Sacked { seq: 5 }),
            rec(
                9_000,
                TransportEvent::Sent {
                    seq: 90,
                    retransmission: false,
                    delivered_stamp: 80,
                },
            ),
        ]);
        let tl = rto_timeline(&stats, SimDuration::from_secs(1), 100);
        assert!(tl.contains("RTO #1"));
        assert!(tl.contains("RETX   seq=5"));
        assert!(tl.contains("SACK   seq=5"));
        assert!(
            !tl.contains("seq=90"),
            "events outside the window are excluded"
        );
    }

    #[test]
    fn timeline_without_rto_says_so() {
        let stats = stats_with(vec![rec(
            1,
            TransportEvent::Sent {
                seq: 0,
                retransmission: false,
                delivered_stamp: 0,
            },
        )]);
        assert!(rto_timeline(&stats, SimDuration::from_secs(1), 10).contains("no RTO"));
    }

    #[test]
    fn spurious_retransmission_detection() {
        let stats = stats_with(vec![
            // Retransmission of 7 followed quickly by its SACK: spurious.
            rec(
                1_000,
                TransportEvent::Sent {
                    seq: 7,
                    retransmission: true,
                    delivered_stamp: 3,
                },
            ),
            rec(1_020, TransportEvent::Sacked { seq: 7 }),
            // Retransmission of 9 never SACKed soon after: not spurious.
            rec(
                1_030,
                TransportEvent::Sent {
                    seq: 9,
                    retransmission: true,
                    delivered_stamp: 3,
                },
            ),
            rec(5_000, TransportEvent::Sacked { seq: 9 }),
        ]);
        assert_eq!(
            spurious_retransmissions(&stats, SimDuration::from_millis(100)),
            1
        );
    }

    #[test]
    fn counts_retransmission_triggered_rounds_from_cc_log() {
        let stats = stats_with(vec![
            rec(
                1,
                TransportEvent::Cc {
                    detail: "round 5 started by a RETRANSMITTED sample".into(),
                },
            ),
            rec(
                2,
                TransportEvent::Cc {
                    detail: "round 6 start".into(),
                },
            ),
        ]);
        assert_eq!(retransmission_triggered_rounds(&stats), 1);
    }

    #[test]
    fn one_line_summary_contains_key_counters() {
        let stats = RunStats {
            flows: vec![ccfuzz_netsim::stats::FlowStats {
                summary: FlowSummary {
                    delivered_packets: 1000,
                    retransmissions: 5,
                    rto_count: 2,
                    ..Default::default()
                },
                ..Default::default()
            }],
            ..Default::default()
        };
        let line = one_line_summary(&stats, 5.0, 1448);
        assert!(line.contains("delivered=1000"));
        assert!(line.contains("rtos=2"));
        assert!(line.contains("Mbps"));
    }
}
