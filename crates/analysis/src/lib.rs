//! # ccfuzz-analysis
//!
//! Measurement post-processing for CC-Fuzz: windowed throughput and rate
//! curves, queuing-delay series, percentile/score helpers, per-figure data
//! extraction, a small ASCII plotter, CSV export and deterministic text
//! tables (used by the corpus replay/report tooling).
//!
//! Everything here consumes the [`RunStats`](ccfuzz_netsim::stats::RunStats)
//! produced by a simulation run; nothing feeds back into the simulator, so
//! the fuzzer core and the figure binaries can share one implementation of
//! "how do we measure a run".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod plot;
pub mod report;
pub mod table;
pub mod timeseries;
pub mod traceview;

pub use figures::{FigureSeries, RateCurves};
pub use timeseries::{mean_of_lowest_fraction, percentile, windowed_throughput_bps};
