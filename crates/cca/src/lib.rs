//! # ccfuzz-cca
//!
//! Congestion control algorithms for the CC-Fuzz simulator:
//!
//! * [`reno`] — TCP Reno / NewReno (slow start, AIMD congestion avoidance).
//! * [`cubic`] — TCP CUBIC, with a switch reproducing the NS3 slow-start
//!   window-update bug the paper found (§4.2) and the corrected (Linux-like)
//!   behaviour.
//! * [`bbr`] — TCP BBR v1 (gain cycling, windowed-max bandwidth filter,
//!   min-RTT probing), including the probe-round clocking behaviour that the
//!   paper's §4.1 stall exploits, plus the "ProbeRTT on RTO" mitigation the
//!   paper proposes.
//! * [`vegas`] — TCP Vegas, a delay-based algorithm used to diversify the
//!   multi-CCA realism scoring of §5.
//!
//! All algorithms implement
//! [`CongestionControl`](ccfuzz_netsim::cc::CongestionControl) and are
//! constructed either directly or through the [`CcaKind`] factory that the
//! fuzzer configuration uses. The [`dispatch`] module provides
//! [`CcaDispatch`], an enum-dispatched wrapper the fuzzer's hot path uses
//! instead of `Box<dyn CongestionControl>` to avoid per-ACK virtual calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbr;
pub mod cubic;
pub mod dctcp;
pub mod dispatch;
pub mod reno;
pub mod vegas;

pub use bbr::{Bbr, BbrConfig};
pub use cubic::{Cubic, CubicConfig, SlowStartBehaviour};
pub use dctcp::{Dctcp, DctcpConfig};
pub use dispatch::CcaDispatch;
pub use reno::{Reno, RenoConfig};
pub use vegas::{Vegas, VegasConfig};

use ccfuzz_netsim::cc::CongestionControl;
use serde::{Deserialize, Serialize};

/// Identifies a congestion control algorithm variant; the factory used by
/// fuzzer configurations and the figure binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CcaKind {
    /// TCP Reno / NewReno.
    Reno,
    /// TCP CUBIC with the correct (Linux-like) slow-start cap.
    Cubic,
    /// TCP CUBIC with the NS3 slow-start window-update bug from §4.2.
    CubicNs3Buggy,
    /// TCP BBR v1 (default behaviour).
    Bbr,
    /// TCP BBR v1 with the paper's mitigation: enter ProbeRTT on RTO.
    BbrProbeRttOnRto,
    /// TCP Vegas.
    Vegas,
    /// DCTCP: fractional ECN responder (RFC 8257); degrades to Reno-like
    /// AIMD on mark-free paths.
    Dctcp,
}

impl CcaKind {
    /// All known variants (used for multi-CCA realism scoring and reports).
    pub const ALL: [CcaKind; 7] = [
        CcaKind::Reno,
        CcaKind::Cubic,
        CcaKind::CubicNs3Buggy,
        CcaKind::Bbr,
        CcaKind::BbrProbeRttOnRto,
        CcaKind::Vegas,
        CcaKind::Dctcp,
    ];

    /// Short name used in reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            CcaKind::Reno => "reno",
            CcaKind::Cubic => "cubic",
            CcaKind::CubicNs3Buggy => "cubic-ns3-buggy",
            CcaKind::Bbr => "bbr",
            CcaKind::BbrProbeRttOnRto => "bbr-probertt-on-rto",
            CcaKind::Vegas => "vegas",
            CcaKind::Dctcp => "dctcp",
        }
    }

    /// Parses a name as produced by [`CcaKind::name`].
    pub fn from_name(name: &str) -> Option<CcaKind> {
        CcaKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Parses a comma-separated list of CCA names (e.g. `"bbr,reno"`), as
    /// used by multi-flow fairness scenarios where every flow instantiates
    /// its own boxed algorithm. Whitespace around names and empty segments
    /// are ignored; an unknown name yields an error naming it.
    pub fn parse_list(list: &str) -> Result<Vec<CcaKind>, String> {
        let mut kinds = Vec::new();
        for raw in list.split(',') {
            let name = raw.trim();
            if name.is_empty() {
                continue;
            }
            match CcaKind::from_name(name) {
                Some(kind) => kinds.push(kind),
                None => {
                    let known: Vec<&str> = CcaKind::ALL.iter().map(|k| k.name()).collect();
                    return Err(format!(
                        "unknown CCA `{name}` (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
        Ok(kinds)
    }

    /// Builds a fresh algorithm instance with an initial window of
    /// `initial_cwnd` packets.
    pub fn build(&self, initial_cwnd: u64) -> Box<dyn CongestionControl> {
        match self {
            CcaKind::Reno => Box::new(Reno::new(RenoConfig {
                initial_cwnd,
                ..RenoConfig::default()
            })),
            CcaKind::Cubic => Box::new(Cubic::new(CubicConfig {
                initial_cwnd,
                slow_start: SlowStartBehaviour::CappedAtSsthresh,
                ..CubicConfig::default()
            })),
            CcaKind::CubicNs3Buggy => Box::new(Cubic::new(CubicConfig {
                initial_cwnd,
                slow_start: SlowStartBehaviour::Ns3Uncapped,
                ..CubicConfig::default()
            })),
            CcaKind::Bbr => Box::new(Bbr::new(BbrConfig {
                initial_cwnd,
                probe_rtt_on_rto: false,
                ..BbrConfig::default()
            })),
            CcaKind::BbrProbeRttOnRto => Box::new(Bbr::new(BbrConfig {
                initial_cwnd,
                probe_rtt_on_rto: true,
                ..BbrConfig::default()
            })),
            CcaKind::Vegas => Box::new(Vegas::new(VegasConfig {
                initial_cwnd,
                ..VegasConfig::default()
            })),
            CcaKind::Dctcp => Box::new(Dctcp::new(DctcpConfig {
                initial_cwnd,
                ..DctcpConfig::default()
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in CcaKind::ALL {
            assert_eq!(CcaKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CcaKind::from_name("nope"), None);
    }

    #[test]
    fn parse_list_handles_whitespace_and_errors() {
        assert_eq!(
            CcaKind::parse_list("bbr,reno").unwrap(),
            vec![CcaKind::Bbr, CcaKind::Reno]
        );
        assert_eq!(
            CcaKind::parse_list(" cubic , vegas ,").unwrap(),
            vec![CcaKind::Cubic, CcaKind::Vegas]
        );
        assert_eq!(CcaKind::parse_list("").unwrap(), vec![]);
        assert!(CcaKind::parse_list("bbr,nope")
            .unwrap_err()
            .contains("nope"));
    }

    #[test]
    fn parse_list_error_names_the_offender_and_the_full_valid_set() {
        // The CLI prints this error verbatim on exit code 2, so it must
        // name the unknown CCA *and* every valid name the user could have
        // meant.
        let err = CcaKind::parse_list("reno,tahoe").unwrap_err();
        assert!(err.contains("unknown CCA `tahoe`"), "{err}");
        for kind in CcaKind::ALL {
            assert!(
                err.contains(kind.name()),
                "error must list `{}`: {err}",
                kind.name()
            );
        }
    }

    #[test]
    fn each_parsed_flow_gets_its_own_boxed_instance() {
        // The multi-flow engine builds one CC per flow; instances must be
        // independent state machines even for the same kind.
        let kinds = CcaKind::parse_list("reno,reno").unwrap();
        let ccs: Vec<_> = kinds.iter().map(|k| k.build(10)).collect();
        assert_eq!(ccs.len(), 2);
        assert_eq!(ccs[0].name(), ccs[1].name());
    }

    #[test]
    fn factory_builds_named_algorithms() {
        for kind in CcaKind::ALL {
            let cc = kind.build(10);
            assert!(!cc.name().is_empty());
            assert!(cc.cwnd() >= 1);
        }
        assert_eq!(CcaKind::Bbr.build(10).name(), "bbr");
        assert_eq!(CcaKind::Reno.build(10).name(), "reno");
    }
}
