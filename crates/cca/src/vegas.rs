//! TCP Vegas — a delay-based congestion control algorithm.
//!
//! Included primarily to diversify the multi-CCA realism scoring of §5 of the
//! paper (a trace is "realistic" if at least a few different algorithms can
//! perform well on it), and as an additional target for fuzzing.

use ccfuzz_netsim::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};
use ccfuzz_netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Vegas configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VegasConfig {
    /// Initial congestion window, packets.
    pub initial_cwnd: u64,
    /// Minimum congestion window, packets.
    pub min_cwnd: u64,
    /// Maximum congestion window, packets.
    pub max_cwnd: u64,
    /// Lower bound on the number of "extra" packets buffered in the network.
    pub alpha: f64,
    /// Upper bound on the number of "extra" packets buffered in the network.
    pub beta: f64,
}

impl Default for VegasConfig {
    fn default() -> Self {
        VegasConfig {
            initial_cwnd: 10,
            min_cwnd: 2,
            max_cwnd: 10_000,
            alpha: 2.0,
            beta: 4.0,
        }
    }
}

/// TCP Vegas.
#[derive(Clone, Debug)]
pub struct Vegas {
    cfg: VegasConfig,
    cwnd: f64,
    ssthresh: u64,
    base_rtt: Option<SimDuration>,
    /// Minimum RTT observed during the current adjustment interval.
    interval_min_rtt: Option<SimDuration>,
    /// Packets acknowledged since the last per-RTT adjustment.
    acked_in_interval: u64,
}

impl Vegas {
    /// Creates a Vegas instance.
    pub fn new(cfg: VegasConfig) -> Self {
        Vegas {
            cwnd: cfg.initial_cwnd.max(cfg.min_cwnd) as f64,
            ssthresh: u64::MAX,
            base_rtt: None,
            interval_min_rtt: None,
            acked_in_interval: 0,
            cfg,
        }
    }

    /// `true` while in slow start.
    pub fn in_slow_start(&self) -> bool {
        (self.cwnd as u64) < self.ssthresh
    }

    /// The current base (propagation) RTT estimate.
    pub fn base_rtt(&self) -> Option<SimDuration> {
        self.base_rtt
    }

    fn clamp(&mut self) {
        self.cwnd = self
            .cwnd
            .clamp(self.cfg.min_cwnd as f64, self.cfg.max_cwnd as f64);
    }

    fn per_rtt_adjustment(&mut self) {
        let (Some(base), Some(current)) = (self.base_rtt, self.interval_min_rtt) else {
            return;
        };
        let base_s = base.as_secs_f64().max(1e-9);
        let current_s = current.as_secs_f64().max(base_s);
        // Expected vs actual throughput difference, expressed in packets
        // buffered in the network: diff = cwnd * (1 - base/current).
        let diff = self.cwnd * (1.0 - base_s / current_s);
        if self.in_slow_start() {
            if diff > self.cfg.beta {
                // Leave slow start when the queue starts building.
                self.ssthresh = (self.cwnd as u64).max(self.cfg.min_cwnd);
                self.cwnd -= 1.0;
            }
        } else if diff < self.cfg.alpha {
            self.cwnd += 1.0;
        } else if diff > self.cfg.beta {
            self.cwnd -= 1.0;
        }
        self.clamp();
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        if let Some(rtt) = rs.rtt {
            self.base_rtt = Some(match self.base_rtt {
                Some(b) => b.min(rtt),
                None => rtt,
            });
            self.interval_min_rtt = Some(match self.interval_min_rtt {
                Some(m) => m.min(rtt),
                None => rtt,
            });
        }
        if ctx.in_recovery || rs.newly_acked == 0 {
            return;
        }
        if self.in_slow_start() {
            // Vegas doubles every *other* RTT; growing half a packet per
            // acked packet approximates that without per-RTT bookkeeping.
            self.cwnd += rs.newly_acked as f64 * 0.5;
            self.clamp();
        }
        self.acked_in_interval += rs.newly_acked;
        if self.acked_in_interval >= self.cwnd as u64 {
            self.acked_in_interval = 0;
            self.per_rtt_adjustment();
            self.interval_min_rtt = None;
        }
    }

    fn on_congestion(&mut self, _ctx: &CcContext, signal: CongestionSignal) {
        match signal {
            CongestionSignal::FastRetransmitLoss { new_episode, .. } => {
                if new_episode {
                    self.ssthresh = ((self.cwnd * 0.75) as u64).max(self.cfg.min_cwnd);
                    self.cwnd = self.ssthresh as f64;
                }
            }
            CongestionSignal::Rto => {
                self.ssthresh = ((self.cwnd * 0.5) as u64).max(self.cfg.min_cwnd);
                self.cwnd = self.cfg.min_cwnd as f64;
            }
        }
        self.clamp();
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn debug_state(&self) -> String {
        format!(
            "cwnd={:.2} base_rtt={:?} ssthresh={}",
            self.cwnd, self.base_rtt, self.ssthresh
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::time::SimTime;

    fn ctx() -> CcContext {
        CcContext {
            now: SimTime::ZERO,
            mss: 1448,
            in_flight: 10,
            delivered: 100,
            lost: 0,
            srtt: Some(SimDuration::from_millis(40)),
            last_rtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            in_recovery: false,
        }
    }

    fn sample(newly_acked: u64, rtt_ms: u64) -> RateSample {
        RateSample {
            delivered: 100,
            prior_delivered: 90,
            prior_delivered_time: SimTime::ZERO,
            send_elapsed: SimDuration::from_millis(10),
            ack_elapsed: SimDuration::from_millis(10),
            interval: SimDuration::from_millis(10),
            delivered_in_interval: 10,
            delivery_rate_bps: 10e6,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            newly_acked,
            cum_ack_advanced: newly_acked,
            is_retransmitted_sample: false,
            is_app_limited: false,
            in_flight_before: 10,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn tracks_base_rtt_as_minimum() {
        let mut v = Vegas::new(VegasConfig::default());
        v.on_ack(&ctx(), &sample(1, 60));
        v.on_ack(&ctx(), &sample(1, 40));
        v.on_ack(&ctx(), &sample(1, 80));
        assert_eq!(v.base_rtt(), Some(SimDuration::from_millis(40)));
    }

    #[test]
    fn grows_when_delay_is_low_and_shrinks_when_high() {
        let mut v = Vegas::new(VegasConfig {
            initial_cwnd: 20,
            ..Default::default()
        });
        // Establish base RTT and leave slow start.
        v.on_congestion(
            &ctx(),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let start = v.cwnd();
        // Low delay (RTT == base): grow by ~1 per RTT.
        for _ in 0..start * 3 {
            v.on_ack(&ctx(), &sample(1, 40));
        }
        assert!(v.cwnd() > start, "low delay should grow the window");

        // Now high delay (queue building): shrink.
        let high = v.cwnd();
        for _ in 0..high * 3 {
            v.on_ack(&ctx(), &sample(1, 120));
        }
        assert!(v.cwnd() < high, "high delay should shrink the window");
    }

    #[test]
    fn loss_reduces_window() {
        let mut v = Vegas::new(VegasConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        v.on_congestion(
            &ctx(),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert_eq!(v.cwnd(), 30);
        v.on_congestion(&ctx(), CongestionSignal::Rto);
        assert_eq!(v.cwnd(), 2);
    }

    #[test]
    fn slow_start_exits_on_queue_buildup() {
        let mut v = Vegas::new(VegasConfig {
            initial_cwnd: 4,
            ..Default::default()
        });
        assert!(v.in_slow_start());
        // Establish a low base RTT, then feed many ACKs at a much higher RTT
        // (queue building): Vegas should cap the window well before the max.
        v.on_ack(&ctx(), &sample(1, 40));
        for _ in 0..200 {
            v.on_ack(&ctx(), &sample(1, 200));
        }
        assert!(!v.in_slow_start(), "queueing delay should end slow start");
        assert!(v.cwnd() < 100);
    }
}
