//! TCP CUBIC (RFC 8312) with a switchable slow-start behaviour.
//!
//! The paper's §4.2 finding is an NS3-specific implementation bug: when a
//! retransmission fills a large hole, the cumulative ACK jumps by hundreds of
//! segments, CUBIC's slow-start increase is called with that huge
//! `segments_acked` value, and — because NS3 does not cap the increase at the
//! slow-start threshold — the congestion window explodes, the sender bursts
//! roughly one RTO's worth of data, and suffers catastrophic losses. The
//! Linux implementation caps the slow-start growth at `ssthresh`.
//!
//! [`SlowStartBehaviour`] selects between the two, so the fuzzer can both
//! rediscover the bug ([`SlowStartBehaviour::Ns3Uncapped`]) and confirm the
//! fixed behaviour ([`SlowStartBehaviour::CappedAtSsthresh`]).

use ccfuzz_netsim::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How the slow-start window increase treats the slow-start threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlowStartBehaviour {
    /// Linux-correct: the window never grows past `ssthresh` inside a single
    /// slow-start increase call.
    CappedAtSsthresh,
    /// NS3's buggy behaviour (§4.2 of the paper): the increase uses the full
    /// cumulative-ACK jump with no cap, so a retransmission that fills a big
    /// hole inflates the window catastrophically.
    Ns3Uncapped,
}

/// CUBIC configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CubicConfig {
    /// Initial congestion window, packets.
    pub initial_cwnd: u64,
    /// Minimum congestion window, packets.
    pub min_cwnd: u64,
    /// Maximum congestion window, packets (safety bound).
    pub max_cwnd: u64,
    /// CUBIC `C` constant (window growth scaling), RFC 8312 default 0.4.
    pub c: f64,
    /// CUBIC multiplicative-decrease factor `beta`, RFC 8312 default 0.7.
    pub beta: f64,
    /// Whether fast convergence is enabled.
    pub fast_convergence: bool,
    /// Slow-start behaviour (the §4.2 bug switch).
    pub slow_start: SlowStartBehaviour,
}

impl Default for CubicConfig {
    fn default() -> Self {
        CubicConfig {
            initial_cwnd: 10,
            min_cwnd: 2,
            max_cwnd: 20_000,
            c: 0.4,
            beta: 0.7,
            fast_convergence: true,
            slow_start: SlowStartBehaviour::CappedAtSsthresh,
        }
    }
}

/// TCP CUBIC.
#[derive(Clone, Debug)]
pub struct Cubic {
    cfg: CubicConfig,
    cwnd: f64,
    ssthresh: u64,
    /// Window size just before the last reduction (`W_max`).
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time offset at which the cubic function crosses `W_max`.
    k: f64,
    /// Estimated Reno-friendly window for the TCP-friendliness check.
    w_est: f64,
    /// ACK accounting for the TCP-friendly region.
    ack_cnt: f64,
    /// End of the current ECN-reaction round (once-per-RTT guard).
    ecn_hold_until: Option<SimTime>,
}

impl Cubic {
    /// Creates a CUBIC instance.
    pub fn new(cfg: CubicConfig) -> Self {
        Cubic {
            cwnd: cfg.initial_cwnd.max(cfg.min_cwnd) as f64,
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            ack_cnt: 0.0,
            ecn_hold_until: None,
            cfg,
        }
    }

    /// `true` while in slow start.
    pub fn in_slow_start(&self) -> bool {
        (self.cwnd as u64) < self.ssthresh
    }

    /// The configured slow-start behaviour.
    pub fn slow_start_behaviour(&self) -> SlowStartBehaviour {
        self.cfg.slow_start
    }

    fn clamp(&mut self) {
        self.cwnd = self.cwnd.clamp(1.0, self.cfg.max_cwnd as f64);
    }

    fn reset_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        self.k = if self.w_max > self.cwnd {
            ((self.w_max - self.cwnd) / self.cfg.c).cbrt()
        } else {
            0.0
        };
        self.w_est = self.cwnd;
        self.ack_cnt = 0.0;
    }

    fn cubic_update(&mut self, ctx: &CcContext, newly_acked: u64) {
        let now = ctx.now;
        if self.epoch_start.is_none() {
            self.reset_epoch(now);
        }
        let epoch_start = self.epoch_start.expect("epoch initialised");
        let t = now.saturating_since(epoch_start).as_secs_f64();
        let rtt = ctx.srtt.map(|d| d.as_secs_f64()).unwrap_or(0.1).max(1e-6);

        // Cubic target window one RTT into the future.
        let w_cubic = self.cfg.c * (t + rtt - self.k).powi(3) + self.w_max;

        // TCP-friendly (Reno-equivalent) window estimate.
        self.ack_cnt += newly_acked as f64;
        let reno_slope = 3.0 * (1.0 - self.cfg.beta) / (1.0 + self.cfg.beta);
        self.w_est += reno_slope * self.ack_cnt / self.cwnd.max(1.0);
        self.ack_cnt = 0.0;

        let target = w_cubic.max(self.w_est);
        if target > self.cwnd {
            // Approach the target over roughly one RTT's worth of ACKs.
            self.cwnd += (target - self.cwnd) * newly_acked as f64 / self.cwnd.max(1.0);
        } else {
            // Tiny growth to keep probing (as Linux does).
            self.cwnd += 0.01 * newly_acked as f64 / self.cwnd.max(1.0);
        }
        self.clamp();
    }

    fn rtt_or_default(&self, ctx: &CcContext) -> SimDuration {
        ctx.srtt
            .or(ctx.min_rtt)
            .unwrap_or(SimDuration::from_millis(100))
    }

    fn on_loss_reduction(&mut self) {
        let cwnd = self.cwnd;
        // Fast convergence: if the new W_max is below the previous one, the
        // flow is competing and should release bandwidth faster.
        self.w_max = if self.cfg.fast_convergence && cwnd < self.w_max {
            cwnd * (1.0 + self.cfg.beta) / 2.0
        } else {
            cwnd
        };
        self.ssthresh = ((cwnd * self.cfg.beta) as u64).max(self.cfg.min_cwnd);
        self.cwnd = (cwnd * self.cfg.beta).max(self.cfg.min_cwnd as f64);
        self.epoch_start = None;
        self.clamp();
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        match self.cfg.slow_start {
            SlowStartBehaviour::CappedAtSsthresh => "cubic",
            SlowStartBehaviour::Ns3Uncapped => "cubic-ns3-buggy",
        }
    }

    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        if rs.newly_acked == 0 && rs.cum_ack_advanced == 0 {
            return;
        }
        if ctx.in_recovery {
            return;
        }
        if self.in_slow_start() {
            match self.cfg.slow_start {
                SlowStartBehaviour::CappedAtSsthresh => {
                    // Linux: grow by the acked count but never beyond ssthresh
                    // in one step; any remainder is handled by congestion
                    // avoidance on later ACKs.
                    let headroom = (self.ssthresh as f64 - self.cwnd).max(0.0);
                    self.cwnd += (rs.newly_acked as f64).min(headroom);
                }
                SlowStartBehaviour::Ns3Uncapped => {
                    // NS3 bug (§4.2): the increase uses the raw cumulative-ACK
                    // jump ("segments acked") with no ssthresh cap. After a
                    // retransmission fills a large hole this is enormous.
                    self.cwnd += rs.cum_ack_advanced.max(rs.newly_acked) as f64;
                }
            }
            self.clamp();
            return;
        }
        self.cubic_update(ctx, rs.newly_acked.max(1));
    }

    fn on_congestion(&mut self, ctx: &CcContext, signal: CongestionSignal) {
        match signal {
            CongestionSignal::FastRetransmitLoss { new_episode, .. } => {
                if new_episode {
                    self.on_loss_reduction();
                }
            }
            CongestionSignal::Rto => {
                self.on_loss_reduction();
                self.cwnd = 1.0;
                self.epoch_start = None;
            }
        }
        // A loss reduction covers any CE marks from the same congestion
        // event (see Reno::on_congestion): hold ECN reactions for one RTT.
        self.ecn_hold_until = Some(ctx.now + self.rtt_or_default(ctx));
    }

    fn on_ecn(&mut self, ctx: &CcContext, _ce_acked: u64) {
        // RFC 3168 + RFC 8312 §4.6: an ECE echo triggers the same beta
        // reduction as a loss, at most once per RTT; while in recovery the
        // loss reduction already happened for this window.
        if ctx.in_recovery {
            return;
        }
        if let Some(until) = self.ecn_hold_until {
            if ctx.now < until {
                return;
            }
        }
        self.on_loss_reduction();
        self.ecn_hold_until = Some(ctx.now + self.rtt_or_default(ctx));
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn debug_state(&self) -> String {
        format!(
            "cwnd={:.2} ssthresh={} w_max={:.2} k={:.3} slow_start={}",
            self.cwnd,
            self.ssthresh,
            self.w_max,
            self.k,
            self.in_slow_start()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::time::SimDuration;

    fn ctx(now_ms: u64, in_recovery: bool) -> CcContext {
        CcContext {
            now: SimTime::from_millis(now_ms),
            mss: 1448,
            in_flight: 10,
            delivered: 100,
            lost: 0,
            srtt: Some(SimDuration::from_millis(40)),
            last_rtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            in_recovery,
        }
    }

    fn sample(newly_acked: u64, cum_advance: u64) -> RateSample {
        RateSample {
            delivered: 100,
            prior_delivered: 90,
            prior_delivered_time: SimTime::ZERO,
            send_elapsed: SimDuration::from_millis(10),
            ack_elapsed: SimDuration::from_millis(10),
            interval: SimDuration::from_millis(10),
            delivered_in_interval: 10,
            delivery_rate_bps: 10e6,
            rtt: Some(SimDuration::from_millis(40)),
            newly_acked,
            cum_ack_advanced: cum_advance,
            is_retransmitted_sample: false,
            is_app_limited: false,
            in_flight_before: 10,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let mut c = Cubic::new(CubicConfig::default());
        assert!(c.in_slow_start());
        c.on_ack(&ctx(0, false), &sample(10, 10));
        assert_eq!(c.cwnd(), 20);
    }

    #[test]
    fn loss_reduces_window_by_beta() {
        let mut c = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            ..Default::default()
        });
        c.on_congestion(
            &ctx(0, false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert_eq!(c.cwnd(), 70);
        assert_eq!(c.ssthresh(), 70);
        assert!(!c.in_slow_start());
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut c = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            ..Default::default()
        });
        c.on_congestion(&ctx(0, false), CongestionSignal::Rto);
        assert_eq!(c.cwnd(), 1);
        assert!(c.in_slow_start());
    }

    #[test]
    fn concave_growth_approaches_w_max() {
        let mut c = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            ..Default::default()
        });
        // Reduce from 100: w_max = 100 (no fast convergence effect on first loss), cwnd = 70.
        c.on_congestion(
            &ctx(0, false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let after_loss = c.cwnd();
        // Feed ACKs over simulated time; the window should grow back toward
        // w_max but not wildly overshoot it quickly.
        let mut now = 40u64;
        for _ in 0..200 {
            c.on_ack(&ctx(now, false), &sample(10, 10));
            now += 40;
        }
        assert!(c.cwnd() > after_loss, "window should recover");
        assert!(
            c.cwnd() < 4 * 100,
            "growth over 8 seconds should stay in a sane range, got {}",
            c.cwnd()
        );
    }

    #[test]
    fn cubic_is_slower_than_slow_start_right_after_loss() {
        let mut c = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            ..Default::default()
        });
        c.on_congestion(
            &ctx(0, false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let w0 = c.cwnd();
        c.on_ack(&ctx(40, false), &sample(10, 10));
        // In the concave region just after a loss, 10 acked packets must grow
        // the window by much less than 10 (unlike slow start).
        assert!(c.cwnd() < w0 + 10);
    }

    #[test]
    fn ns3_bug_explodes_window_on_large_cumulative_jump() {
        // The §4.2 scenario: after an RTO the flow is in slow start with
        // cwnd=1 and ssthresh=70; the retransmission fills a 500-packet hole.
        let mut buggy = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            slow_start: SlowStartBehaviour::Ns3Uncapped,
            ..Default::default()
        });
        buggy.on_congestion(&ctx(0, false), CongestionSignal::Rto);
        assert!(buggy.in_slow_start());
        buggy.on_ack(&ctx(1000, false), &sample(1, 500));
        assert!(
            buggy.cwnd() > 400,
            "buggy CUBIC must blow past ssthresh, got {}",
            buggy.cwnd()
        );

        let mut fixed = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            slow_start: SlowStartBehaviour::CappedAtSsthresh,
            ..Default::default()
        });
        fixed.on_congestion(&ctx(0, false), CongestionSignal::Rto);
        let ssthresh = fixed.ssthresh();
        fixed.on_ack(&ctx(1000, false), &sample(1, 500));
        assert!(
            fixed.cwnd() <= ssthresh,
            "fixed CUBIC stays at or below ssthresh ({}), got {}",
            ssthresh,
            fixed.cwnd()
        );
    }

    #[test]
    fn no_growth_during_recovery() {
        let mut c = Cubic::new(CubicConfig::default());
        let before = c.cwnd();
        c.on_ack(&ctx(0, true), &sample(10, 10));
        assert_eq!(c.cwnd(), before);
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_consecutive_losses() {
        let mut c = Cubic::new(CubicConfig {
            initial_cwnd: 100,
            ..Default::default()
        });
        c.on_congestion(
            &ctx(0, false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let w_max_first = c.w_max;
        // Second loss at a smaller window.
        c.on_congestion(
            &ctx(100, false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert!(c.w_max < w_max_first, "fast convergence reduces W_max");
    }

    #[test]
    fn names_reflect_variant() {
        assert_eq!(Cubic::new(CubicConfig::default()).name(), "cubic");
        assert_eq!(
            Cubic::new(CubicConfig {
                slow_start: SlowStartBehaviour::Ns3Uncapped,
                ..Default::default()
            })
            .name(),
            "cubic-ns3-buggy"
        );
    }
}
