//! Enum dispatch for the congestion control algorithms.
//!
//! The fuzzer calls into the congestion controller on every ACK of every
//! simulated packet — millions of calls per campaign. `Box<dyn
//! CongestionControl>` pays a virtual call (and defeats inlining) at each of
//! those; [`CcaDispatch`] replaces it with a `match` the compiler can
//! flatten and inline, while the [`CcaDispatch::Custom`] variant keeps the
//! door open for out-of-tree algorithms that only exist as trait objects.
//!
//! The simulator is generic over its controller type
//! ([`TcpSender<C>`](ccfuzz_netsim::tcp::sender::TcpSender)), so plugging
//! the enum in is just `Simulation<CcaDispatch>` — no simulator changes,
//! and behaviour is bit-identical to the boxed form (asserted by the
//! golden-digest suite).

use crate::{Bbr, BbrConfig, CcaKind, Cubic, CubicConfig, Reno, RenoConfig, SlowStartBehaviour};
use crate::{Dctcp, DctcpConfig, Vegas, VegasConfig};
use ccfuzz_netsim::cc::reference_cc::FixedWindowCc;
use ccfuzz_netsim::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};

/// A congestion control algorithm, dispatched by enum variant instead of
/// vtable on the per-ACK hot path. `Clone` lets one instance serve as the
/// prototype a workload simulation stamps per-arrival controllers from;
/// every registry-built variant clones, only [`CcaDispatch::Custom`]
/// (an opaque trait object) panics.
#[derive(Debug)]
pub enum CcaDispatch {
    /// TCP Reno / NewReno.
    Reno(Reno),
    /// TCP CUBIC (either slow-start behaviour).
    Cubic(Cubic),
    /// TCP BBR v1 (with or without the ProbeRTT-on-RTO mitigation).
    Bbr(Bbr),
    /// TCP Vegas.
    Vegas(Vegas),
    /// DCTCP (fractional ECN responder).
    Dctcp(Dctcp),
    /// Fixed congestion window (testing / traffic shaping baseline).
    Fixed(FixedWindowCc),
    /// Escape hatch for algorithms outside this crate; pays the virtual
    /// call the other variants avoid.
    Custom(Box<dyn CongestionControl>),
}

impl Clone for CcaDispatch {
    fn clone(&self) -> Self {
        match self {
            CcaDispatch::Reno(c) => CcaDispatch::Reno(c.clone()),
            CcaDispatch::Cubic(c) => CcaDispatch::Cubic(c.clone()),
            CcaDispatch::Bbr(c) => CcaDispatch::Bbr(c.clone()),
            CcaDispatch::Vegas(c) => CcaDispatch::Vegas(c.clone()),
            CcaDispatch::Dctcp(c) => CcaDispatch::Dctcp(c.clone()),
            CcaDispatch::Fixed(c) => CcaDispatch::Fixed(c.clone()),
            CcaDispatch::Custom(_) => {
                panic!("CcaDispatch::Custom holds an opaque trait object and cannot be cloned")
            }
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $cc:ident => $body:expr) => {
        match $self {
            CcaDispatch::Reno($cc) => $body,
            CcaDispatch::Cubic($cc) => $body,
            CcaDispatch::Bbr($cc) => $body,
            CcaDispatch::Vegas($cc) => $body,
            CcaDispatch::Dctcp($cc) => $body,
            CcaDispatch::Fixed($cc) => $body,
            CcaDispatch::Custom($cc) => $body,
        }
    };
}

impl CongestionControl for CcaDispatch {
    fn name(&self) -> &'static str {
        dispatch!(self, cc => cc.name())
    }
    fn init(&mut self, ctx: &CcContext) {
        dispatch!(self, cc => cc.init(ctx))
    }
    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        dispatch!(self, cc => cc.on_ack(ctx, rs))
    }
    fn on_congestion(&mut self, ctx: &CcContext, signal: CongestionSignal) {
        dispatch!(self, cc => cc.on_congestion(ctx, signal))
    }
    fn on_ecn(&mut self, ctx: &CcContext, ce_acked: u64) {
        dispatch!(self, cc => cc.on_ecn(ctx, ce_acked))
    }
    fn on_exit_recovery(&mut self, ctx: &CcContext) {
        dispatch!(self, cc => cc.on_exit_recovery(ctx))
    }
    fn cwnd(&self) -> u64 {
        dispatch!(self, cc => cc.cwnd())
    }
    fn ssthresh(&self) -> u64 {
        dispatch!(self, cc => cc.ssthresh())
    }
    fn pacing_rate_bps(&self) -> Option<f64> {
        dispatch!(self, cc => cc.pacing_rate_bps())
    }
    fn debug_state(&self) -> String {
        dispatch!(self, cc => cc.debug_state())
    }
    fn take_events(&mut self) -> Vec<String> {
        dispatch!(self, cc => cc.take_events())
    }
    fn set_event_recording(&mut self, enabled: bool) {
        dispatch!(self, cc => cc.set_event_recording(enabled))
    }
}

impl CcaKind {
    /// Builds the enum-dispatched form of this algorithm with an initial
    /// window of `initial_cwnd` packets. Behaviour is identical to
    /// [`CcaKind::build`]; only the dispatch mechanism differs.
    pub fn build_dispatch(&self, initial_cwnd: u64) -> CcaDispatch {
        match self {
            CcaKind::Reno => CcaDispatch::Reno(Reno::new(RenoConfig {
                initial_cwnd,
                ..RenoConfig::default()
            })),
            CcaKind::Cubic => CcaDispatch::Cubic(Cubic::new(CubicConfig {
                initial_cwnd,
                slow_start: SlowStartBehaviour::CappedAtSsthresh,
                ..CubicConfig::default()
            })),
            CcaKind::CubicNs3Buggy => CcaDispatch::Cubic(Cubic::new(CubicConfig {
                initial_cwnd,
                slow_start: SlowStartBehaviour::Ns3Uncapped,
                ..CubicConfig::default()
            })),
            CcaKind::Bbr => CcaDispatch::Bbr(Bbr::new(BbrConfig {
                initial_cwnd,
                probe_rtt_on_rto: false,
                ..BbrConfig::default()
            })),
            CcaKind::BbrProbeRttOnRto => CcaDispatch::Bbr(Bbr::new(BbrConfig {
                initial_cwnd,
                probe_rtt_on_rto: true,
                ..BbrConfig::default()
            })),
            CcaKind::Vegas => CcaDispatch::Vegas(Vegas::new(VegasConfig {
                initial_cwnd,
                ..VegasConfig::default()
            })),
            CcaKind::Dctcp => CcaDispatch::Dctcp(Dctcp::new(DctcpConfig {
                initial_cwnd,
                ..DctcpConfig::default()
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::config::SimConfig;
    use ccfuzz_netsim::sim::run_simulation;

    #[test]
    fn dispatch_names_match_boxed_names() {
        for kind in CcaKind::ALL {
            assert_eq!(kind.build_dispatch(10).name(), kind.build(10).name());
        }
    }

    #[test]
    fn dispatch_behaviour_matches_boxed_behaviour() {
        // The enum and the trait object must drive the simulator to
        // byte-identical results for every algorithm.
        for kind in CcaKind::ALL {
            let cfg = SimConfig::short_default();
            let boxed = run_simulation(cfg.clone(), kind.build(cfg.initial_cwnd));
            let enumed = run_simulation(cfg.clone(), kind.build_dispatch(cfg.initial_cwnd));
            assert_eq!(
                boxed.stats.digest(),
                enumed.stats.digest(),
                "dispatch mismatch for {}",
                kind.name()
            );
        }
    }

    #[test]
    fn custom_variant_delegates() {
        let mut cc = CcaDispatch::Custom(CcaKind::Reno.build(10));
        assert_eq!(cc.name(), "reno");
        assert!(cc.cwnd() >= 1);
        assert!(cc.take_events().is_empty());
    }

    #[test]
    fn fixed_variant_is_usable() {
        let cc = CcaDispatch::Fixed(FixedWindowCc::new(7));
        assert_eq!(cc.cwnd(), 7);
        assert_eq!(cc.name(), "fixed-window");
    }
}
