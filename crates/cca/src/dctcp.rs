//! DCTCP-style fractional ECN responder.
//!
//! Where RFC 3168 algorithms treat any ECE echo as a loss-equivalent and
//! halve, DCTCP (RFC 8257) estimates the *fraction* `alpha` of packets that
//! were CE-marked over each observation window (~1 RTT) and reduces the
//! window proportionally: `cwnd -= cwnd * alpha / 2`. Against a shallow
//! marking threshold this holds the queue short without the sawtooth.
//!
//! The implementation follows the RFC's structure at the simulator's packet
//! granularity: slow start and additive increase as in Reno, the standard
//! `alpha` EWMA with gain `g`, a once-per-window reduction, and loss
//! handling identical to Reno (DCTCP degrades to Reno without marks, so
//! mark-free runs behave like a plain AIMD flow).

use ccfuzz_netsim::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// DCTCP configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DctcpConfig {
    /// Initial congestion window, packets.
    pub initial_cwnd: u64,
    /// Minimum congestion window, packets.
    pub min_cwnd: u64,
    /// Maximum congestion window, packets (safety bound).
    pub max_cwnd: u64,
    /// EWMA gain `g` for the mark-fraction estimate (RFC 8257: 1/16).
    pub gain: f64,
    /// Initial `alpha` (RFC 8257 recommends 1: conservative until measured).
    pub initial_alpha: f64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig {
            initial_cwnd: 10,
            min_cwnd: 2,
            max_cwnd: 10_000,
            gain: 1.0 / 16.0,
            initial_alpha: 1.0,
        }
    }
}

/// The DCTCP congestion controller.
#[derive(Clone, Debug)]
pub struct Dctcp {
    cfg: DctcpConfig,
    cwnd: f64,
    ssthresh: u64,
    /// EWMA of the CE-marked fraction.
    alpha: f64,
    /// Packets acknowledged in the current observation window.
    acked_window: u64,
    /// CE marks echoed in the current observation window.
    marked_window: u64,
    /// End of the current observation window.
    window_end: Option<SimTime>,
    /// Whether a reduction was already applied for this window.
    reduced_this_window: bool,
}

impl Dctcp {
    /// Creates a DCTCP instance.
    pub fn new(cfg: DctcpConfig) -> Self {
        Dctcp {
            cwnd: cfg.initial_cwnd.max(cfg.min_cwnd) as f64,
            ssthresh: u64::MAX,
            alpha: cfg.initial_alpha.clamp(0.0, 1.0),
            acked_window: 0,
            marked_window: 0,
            window_end: None,
            reduced_this_window: false,
            cfg,
        }
    }

    /// `true` while in slow start.
    pub fn in_slow_start(&self) -> bool {
        (self.cwnd as u64) < self.ssthresh
    }

    /// Current mark-fraction estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn clamp(&mut self) {
        self.cwnd = self
            .cwnd
            .clamp(self.cfg.min_cwnd as f64, self.cfg.max_cwnd as f64);
    }

    fn rtt(&self, ctx: &CcContext) -> SimDuration {
        ctx.srtt
            .or(ctx.min_rtt)
            .unwrap_or(SimDuration::from_millis(100))
    }

    /// Rolls the observation window forward if it elapsed, folding the
    /// measured mark fraction into `alpha` and applying the proportional
    /// reduction when the window saw any marks.
    fn maybe_roll_window(&mut self, ctx: &CcContext) {
        let now = ctx.now;
        let Some(end) = self.window_end else {
            self.window_end = Some(now + self.rtt(ctx));
            return;
        };
        if now < end {
            return;
        }
        if self.acked_window > 0 {
            // Clamped defensively: marks and acks are accumulated from the
            // same ACKs (the sender delivers on_ecn before on_ack), but a
            // fraction above 1 must never leak into alpha.
            let fraction = (self.marked_window as f64 / self.acked_window as f64).min(1.0);
            self.alpha = (1.0 - self.cfg.gain) * self.alpha + self.cfg.gain * fraction;
        }
        if self.marked_window > 0 && !self.reduced_this_window {
            self.cwnd *= 1.0 - self.alpha / 2.0;
            self.ssthresh = (self.cwnd as u64).max(self.cfg.min_cwnd);
            self.clamp();
        }
        self.acked_window = 0;
        self.marked_window = 0;
        self.reduced_this_window = false;
        self.window_end = Some(now + self.rtt(ctx));
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        if rs.newly_acked == 0 {
            return;
        }
        self.acked_window += rs.newly_acked;
        self.maybe_roll_window(ctx);
        if ctx.in_recovery {
            return;
        }
        if self.in_slow_start() {
            let headroom = self.ssthresh.saturating_sub(self.cwnd as u64) as f64;
            self.cwnd += (rs.newly_acked as f64).min(headroom.max(0.0));
        } else {
            self.cwnd += rs.newly_acked as f64 / self.cwnd.max(1.0);
        }
        self.clamp();
    }

    fn on_ecn(&mut self, _ctx: &CcContext, ce_acked: u64) {
        // Accumulate only; the window rolls in on_ack, which the sender
        // calls *after* this hook for the same ACK — so an ACK's marks and
        // its acked count always land in the same observation window.
        self.marked_window += ce_acked;
    }

    fn on_congestion(&mut self, _ctx: &CcContext, signal: CongestionSignal) {
        match signal {
            CongestionSignal::FastRetransmitLoss { new_episode, .. } => {
                if new_episode {
                    self.ssthresh = ((self.cwnd * 0.5) as u64).max(self.cfg.min_cwnd);
                    self.cwnd = self.ssthresh as f64;
                    self.reduced_this_window = true;
                }
            }
            CongestionSignal::Rto => {
                self.ssthresh = ((self.cwnd * 0.5) as u64).max(self.cfg.min_cwnd);
                self.cwnd = 1.0;
                self.reduced_this_window = true;
            }
        }
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn debug_state(&self) -> String {
        format!(
            "cwnd={:.2} ssthresh={} alpha={:.4}",
            self.cwnd, self.ssthresh, self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(now_ms: u64) -> CcContext {
        CcContext {
            now: SimTime::from_millis(now_ms),
            mss: 1448,
            in_flight: 10,
            delivered: 100,
            lost: 0,
            srtt: Some(SimDuration::from_millis(40)),
            last_rtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            in_recovery: false,
        }
    }

    fn sample(newly_acked: u64) -> RateSample {
        RateSample {
            delivered: 100,
            prior_delivered: 90,
            prior_delivered_time: SimTime::ZERO,
            send_elapsed: SimDuration::from_millis(10),
            ack_elapsed: SimDuration::from_millis(10),
            interval: SimDuration::from_millis(10),
            delivered_in_interval: 10,
            delivery_rate_bps: 10e6,
            rtt: Some(SimDuration::from_millis(40)),
            newly_acked,
            cum_ack_advanced: newly_acked,
            is_retransmitted_sample: false,
            is_app_limited: false,
            in_flight_before: 10,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn mark_free_windows_decay_alpha_and_never_reduce() {
        let mut d = Dctcp::new(DctcpConfig::default());
        let alpha0 = d.alpha();
        // Leave slow start so growth is additive and observable.
        d.on_congestion(
            &ctx(0),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let w = d.cwnd();
        // Several mark-free windows, each spanning > 1 RTT.
        for ms in (0..10).map(|i| i * 50) {
            d.on_ack(&ctx(ms), &sample(5));
        }
        assert!(d.alpha() < alpha0, "alpha decays without marks");
        assert!(d.cwnd() >= w, "no reduction without marks");
    }

    #[test]
    fn fully_marked_windows_converge_to_halving() {
        let mut d = Dctcp::new(DctcpConfig::default());
        d.on_congestion(
            &ctx(0),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        // Every acked packet marked, for many windows: alpha stays near 1
        // and each window costs ~alpha/2 of the window. Marks are fed
        // before the ACK, matching the sender's hook order.
        let before = d.cwnd();
        for ms in (0..20).map(|i| i * 50) {
            d.on_ecn(&ctx(ms), 4);
            d.on_ack(&ctx(ms), &sample(4));
        }
        assert!(d.alpha() > 0.9, "alpha {:.3}", d.alpha());
        assert!(
            d.cwnd() < before,
            "sustained marking must shrink the window"
        );
    }

    #[test]
    fn partial_marking_reduces_less_than_halving() {
        let run = |mark_every: u64| {
            let mut d = Dctcp::new(DctcpConfig {
                initial_alpha: 0.0,
                ..Default::default()
            });
            d.on_congestion(
                &ctx(0),
                CongestionSignal::FastRetransmitLoss {
                    newly_lost: 1,
                    new_episode: true,
                },
            );
            for i in 0..40u64 {
                let ms = i * 50;
                if i % mark_every == 0 {
                    d.on_ecn(&ctx(ms), 1);
                }
                d.on_ack(&ctx(ms), &sample(8));
            }
            d.cwnd()
        };
        // Light marking (1 in 8 windows) must end with a larger window than
        // marking in every window.
        assert!(run(8) > run(1), "{} vs {}", run(8), run(1));
    }

    #[test]
    fn loss_still_halves_like_reno() {
        let mut d = Dctcp::new(DctcpConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        d.on_congestion(
            &ctx(0),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert_eq!(d.cwnd(), 20);
        d.on_congestion(&ctx(0), CongestionSignal::Rto);
        assert_eq!(d.cwnd(), 1);
    }

    #[test]
    fn debug_state_mentions_alpha() {
        let d = Dctcp::new(DctcpConfig::default());
        assert!(d.debug_state().contains("alpha="));
    }
}
