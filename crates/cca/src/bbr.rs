//! TCP BBR v1.
//!
//! A faithful (packet-granular) re-implementation of BBR v1 as described in
//! the BBR paper/IETF draft and the Linux `tcp_bbr.c` module:
//!
//! * **Bandwidth estimation** — delivery-rate samples feed a windowed max
//!   filter over the last 10 *packet-timed rounds*.
//! * **Round counting** — a round ends when an acknowledged packet's
//!   `prior_delivered` (the connection-level `delivered` count stamped on the
//!   packet at its most recent transmission) reaches the `delivered` count
//!   recorded when the round began. This is precisely the mechanism the
//!   paper's §4.1 finding attacks: a *spurious retransmission* refreshes the
//!   stamp, the SACK for the original copy then ends the round prematurely
//!   and contributes a bogus (usually very low) rate sample. Ten such rounds
//!   in quick succession expire every good estimate from the max filter and
//!   BBR's bandwidth estimate collapses; delayed ACKs then keep it there.
//! * **Gain cycling** in ProbeBW (8 phases: 1.25, 0.75, 1 ×6).
//! * **Min-RTT tracking** over a 10 s window, with ProbeRTT (cwnd = 4 for
//!   200 ms) when the estimate goes stale.
//! * **Startup / Drain** with the 2/ln2 gain and the "full pipe" exit.
//!
//! Loss response follows BBR v1's philosophy of (mostly) ignoring loss:
//! fast-retransmit episodes trigger one round of packet conservation, and an
//! RTO leaves the window/pacing at BBR's model-driven values (as the NS3
//! implementation the paper tested effectively does). The paper's proposed
//! mitigation — *enter ProbeRTT when an RTO fires*, so the flow slows down
//! long enough for in-flight ACKs to arrive instead of triggering spurious
//! retransmissions — is available via [`BbrConfig::probe_rtt_on_rto`].

use ccfuzz_netsim::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Startup/Drain pacing gain: 2/ln(2).
pub const HIGH_GAIN: f64 = 2.885;
/// ProbeBW gain cycle.
pub const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window, in packet-timed rounds.
pub const BW_WINDOW_ROUNDS: u64 = 10;
/// Minimum congestion window, packets.
pub const MIN_CWND: u64 = 4;

/// BBR state machine phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BbrState {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Drain the queue built during startup.
    Drain,
    /// Steady-state bandwidth probing.
    ProbeBw,
    /// Periodic (or RTO-triggered, with the paper's fix) min-RTT probe.
    ProbeRtt,
}

/// BBR configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BbrConfig {
    /// Initial congestion window, packets.
    pub initial_cwnd: u64,
    /// Maximum congestion window, packets (safety bound).
    pub max_cwnd: u64,
    /// cwnd gain applied to the BDP in ProbeBW.
    pub cwnd_gain: f64,
    /// Min-RTT filter window.
    pub min_rtt_window: SimDuration,
    /// Duration of a ProbeRTT episode.
    pub probe_rtt_duration: SimDuration,
    /// The paper's §4.1 mitigation: enter ProbeRTT whenever an RTO fires.
    pub probe_rtt_on_rto: bool,
}

impl Default for BbrConfig {
    fn default() -> Self {
        BbrConfig {
            initial_cwnd: 10,
            max_cwnd: 20_000,
            cwnd_gain: 2.0,
            min_rtt_window: SimDuration::from_secs(10),
            probe_rtt_duration: SimDuration::from_millis(200),
            probe_rtt_on_rto: false,
        }
    }
}

/// One bandwidth sample retained by the windowed max filter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct BwSample {
    round: u64,
    bw_bps: f64,
}

/// Windowed max filter over the last [`BW_WINDOW_ROUNDS`] packet-timed
/// rounds, as a monotonic deque: rounds increase and bandwidths strictly
/// decrease from front to back, so the windowed max is the front-most
/// unexpired entry and every operation is O(1) amortized.
///
/// This replaces a flat `Vec` that was scanned (and `retain`ed) on every
/// ACK — with ~20 samples/round × 10 rounds in the window, those O(n)
/// passes dominated BBR's per-ACK cost. The deque is query-equivalent: a
/// sample evicted from the back (older round, bandwidth ≤ the new sample's)
/// can never be the windowed max while the newer sample is in the window,
/// and samples evicted from the front have expired for good (`round_count`
/// is monotone), so `max()` returns exactly what the full scan returned.
#[derive(Clone, Debug, Default)]
struct BwMaxFilter {
    samples: std::collections::VecDeque<BwSample>,
}

impl BwMaxFilter {
    /// The windowed max among samples with `round + BW_WINDOW_ROUNDS >
    /// round_count`, or 0 when none exists (same contract as the former
    /// filtered scan).
    #[inline]
    fn max(&self, round_count: u64) -> f64 {
        // Entries are round-ordered, so the in-window samples form a suffix
        // and the first in-window entry holds the largest bandwidth.
        for s in &self.samples {
            if s.round + BW_WINDOW_ROUNDS > round_count {
                return s.bw_bps;
            }
        }
        0.0
    }

    /// Inserts a sample taken during `round_count` and prunes entries that
    /// have left the filter window for good.
    #[inline]
    fn push(&mut self, round_count: u64, bw_bps: f64) {
        while self.samples.back().is_some_and(|b| b.bw_bps <= bw_bps) {
            self.samples.pop_back();
        }
        self.samples.push_back(BwSample {
            round: round_count,
            bw_bps,
        });
        let cutoff = round_count.saturating_sub(BW_WINDOW_ROUNDS);
        while self.samples.front().is_some_and(|f| f.round < cutoff) {
            self.samples.pop_front();
        }
    }
}

/// TCP BBR v1.
#[derive(Clone, Debug)]
pub struct Bbr {
    cfg: BbrConfig,
    state: BbrState,

    // Round counting.
    next_rtt_delivered: u64,
    round_count: u64,
    round_start: bool,

    // Bandwidth filter (windowed max over BW_WINDOW_ROUNDS rounds).
    bw_samples: BwMaxFilter,

    // Min RTT.
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,

    // Startup.
    full_bw: f64,
    full_bw_count: u32,
    filled_pipe: bool,

    // ProbeBW gain cycling.
    cycle_index: usize,
    cycle_stamp: SimTime,

    // ProbeRTT.
    probe_rtt_done_stamp: Option<SimTime>,

    // Window management.
    cwnd: u64,
    prior_cwnd: u64,
    packet_conservation: bool,
    conservation_ends_round: u64,

    pacing_gain: f64,
    cwnd_gain: f64,

    // Event log for Figure 4c style timelines (skipped entirely when the
    // host signals events will not be consumed).
    record_events: bool,
    events: Vec<String>,
}

/// Records a debug event without evaluating the `format!` unless event
/// recording is enabled (the fuzzer's hot path disables it, and formatting
/// would otherwise allocate a `String` per round/transition per evaluation).
macro_rules! bbr_log {
    ($self:ident, $($fmt:tt)*) => {
        if $self.record_events {
            $self.events.push(format!($($fmt)*));
        }
    };
}

impl Bbr {
    /// Creates a BBR instance.
    pub fn new(cfg: BbrConfig) -> Self {
        Bbr {
            state: BbrState::Startup,
            next_rtt_delivered: 0,
            round_count: 0,
            round_start: false,
            bw_samples: BwMaxFilter::default(),
            min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            filled_pipe: false,
            cycle_index: 2,
            cycle_stamp: SimTime::ZERO,
            probe_rtt_done_stamp: None,
            cwnd: cfg.initial_cwnd.max(MIN_CWND),
            prior_cwnd: cfg.initial_cwnd.max(MIN_CWND),
            packet_conservation: false,
            conservation_ends_round: 0,
            pacing_gain: HIGH_GAIN,
            cwnd_gain: HIGH_GAIN,
            record_events: true,
            events: Vec::new(),
            cfg,
        }
    }

    /// The current state-machine phase.
    pub fn state(&self) -> BbrState {
        self.state
    }

    /// The current bottleneck bandwidth estimate in bits per second (max of
    /// the filter window), or 0 when no sample exists yet.
    pub fn bottleneck_bw_bps(&self) -> f64 {
        self.bw_samples.max(self.round_count)
    }

    /// The current min-RTT estimate.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Packet-timed rounds elapsed so far.
    pub fn round_count(&self) -> u64 {
        self.round_count
    }

    /// Bandwidth-delay product in packets for the given MSS (0 until both a
    /// bandwidth and an RTT estimate exist).
    pub fn bdp_packets(&self, mss: u32) -> u64 {
        let bw = self.bottleneck_bw_bps();
        let Some(rtt) = self.min_rtt else { return 0 };
        if bw <= 0.0 {
            return 0;
        }
        ((bw * rtt.as_secs_f64()) / (mss as f64 * 8.0)).ceil() as u64
    }

    // ------------------------------------------------------------------
    // Model updates
    // ------------------------------------------------------------------

    fn update_round(&mut self, ctx: &CcContext, rs: &RateSample) {
        if rs.prior_delivered >= self.next_rtt_delivered {
            self.next_rtt_delivered = ctx.delivered;
            self.round_count += 1;
            self.round_start = true;
            if rs.is_retransmitted_sample {
                bbr_log!(
                    self,
                    "round {} started by a RETRANSMITTED sample (prior_delivered={} >= threshold): \
                     probable spurious-retransmission interaction",
                    self.round_count,
                    rs.prior_delivered
                );
            } else {
                bbr_log!(self, "round {} start", self.round_count);
            }
        } else {
            self.round_start = false;
        }
    }

    fn update_bw(&mut self, rs: &RateSample) {
        if !rs.is_valid() {
            return;
        }
        let bw = rs.delivery_rate_bps;
        // App-limited samples only raise the estimate, never lower it.
        if rs.is_app_limited && bw < self.bottleneck_bw_bps() {
            return;
        }
        self.bw_samples.push(self.round_count, bw);
    }

    fn update_min_rtt(&mut self, ctx: &CcContext, rs: &RateSample) {
        let expired = ctx.now.saturating_since(self.min_rtt_stamp) > self.cfg.min_rtt_window;
        if let Some(rtt) = rs.rtt {
            if self.min_rtt.map(|m| rtt <= m).unwrap_or(true) || expired {
                self.min_rtt = Some(rtt);
                self.min_rtt_stamp = ctx.now;
            }
        }
        // Enter ProbeRTT when the estimate went stale.
        if expired && self.state != BbrState::ProbeRtt {
            self.enter_probe_rtt(ctx, "min_rtt estimate expired");
        }
    }

    /// Linux `bbr_save_cwnd`: outside loss recovery and ProbeRTT the current
    /// cwnd is the model-driven operating point, so *save* it (overwriting
    /// any older value); inside them cwnd is temporarily cut, so only raise
    /// the saved value. Before this distinction `prior_cwnd` was a monotone
    /// ratchet — after a bandwidth drop, ProbeRTT/recovery exit restored a
    /// stale huge window from minutes ago.
    fn save_cwnd(&mut self, in_recovery: bool) {
        if !in_recovery && self.state != BbrState::ProbeRtt {
            self.prior_cwnd = self.cwnd;
        } else {
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        }
    }

    fn enter_probe_rtt(&mut self, ctx: &CcContext, reason: &str) {
        if self.state == BbrState::ProbeRtt {
            return;
        }
        self.save_cwnd(ctx.in_recovery);
        self.state = BbrState::ProbeRtt;
        self.pacing_gain = 1.0;
        self.cwnd_gain = 1.0;
        self.probe_rtt_done_stamp = None;
        bbr_log!(self, "enter ProbeRTT at {} ({reason})", ctx.now);
    }

    fn handle_probe_rtt(&mut self, ctx: &CcContext) {
        match self.probe_rtt_done_stamp {
            None => {
                // Wait until the pipe has drained to the ProbeRTT cwnd before
                // starting the 200 ms clock.
                if ctx.in_flight <= MIN_CWND {
                    self.probe_rtt_done_stamp = Some(ctx.now + self.cfg.probe_rtt_duration);
                }
            }
            Some(done) => {
                if ctx.now >= done {
                    self.min_rtt_stamp = ctx.now;
                    self.exit_probe_rtt(ctx);
                }
            }
        }
    }

    fn exit_probe_rtt(&mut self, ctx: &CcContext) {
        self.state = if self.filled_pipe {
            self.cycle_index = 2;
            self.cycle_stamp = ctx.now;
            BbrState::ProbeBw
        } else {
            BbrState::Startup
        };
        self.cwnd = self.cwnd.max(self.prior_cwnd);
        bbr_log!(self, "exit ProbeRTT to {:?} at {}", self.state, ctx.now);
    }

    fn check_full_pipe(&mut self, rs: &RateSample) {
        if self.filled_pipe || !self.round_start || rs.is_app_limited {
            return;
        }
        let bw = self.bottleneck_bw_bps();
        if bw >= self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= 3 {
            self.filled_pipe = true;
            bbr_log!(self, "pipe filled at {:.2} Mbps", self.full_bw / 1e6);
        }
    }

    fn update_state_machine(&mut self, ctx: &CcContext, rs: &RateSample) {
        match self.state {
            BbrState::Startup => {
                self.check_full_pipe(rs);
                if self.filled_pipe {
                    self.state = BbrState::Drain;
                    self.pacing_gain = 1.0 / HIGH_GAIN;
                    self.cwnd_gain = HIGH_GAIN;
                    bbr_log!(self, "enter Drain at {}", ctx.now);
                }
            }
            BbrState::Drain => {
                let bdp = self.bdp_packets(ctx.mss).max(1);
                if ctx.in_flight <= bdp {
                    self.state = BbrState::ProbeBw;
                    self.cycle_index = 2;
                    self.cycle_stamp = ctx.now;
                    self.pacing_gain = CYCLE_GAINS[self.cycle_index];
                    self.cwnd_gain = self.cfg.cwnd_gain;
                    bbr_log!(self, "enter ProbeBW at {}", ctx.now);
                }
            }
            BbrState::ProbeBw => {
                self.advance_cycle_phase(ctx);
            }
            BbrState::ProbeRtt => {
                self.handle_probe_rtt(ctx);
            }
        }
        if self.state == BbrState::Startup {
            self.pacing_gain = HIGH_GAIN;
            self.cwnd_gain = HIGH_GAIN;
        } else if self.state == BbrState::ProbeBw {
            self.pacing_gain = CYCLE_GAINS[self.cycle_index];
            self.cwnd_gain = self.cfg.cwnd_gain;
        }
    }

    fn advance_cycle_phase(&mut self, ctx: &CcContext) {
        let min_rtt = self.min_rtt.unwrap_or(SimDuration::from_millis(10));
        let elapsed = ctx.now.saturating_since(self.cycle_stamp);
        let gain = CYCLE_GAINS[self.cycle_index];
        let bdp = self.bdp_packets(ctx.mss).max(1);
        let should_advance = if (gain - 0.75).abs() < f64::EPSILON {
            // Leave the draining phase as soon as the queue we created is gone.
            elapsed > min_rtt || ctx.in_flight <= bdp
        } else if (gain - 1.25).abs() < f64::EPSILON {
            // Probe for a full min_rtt (and until we actually used the gain).
            elapsed > min_rtt
        } else {
            elapsed > min_rtt
        };
        if should_advance {
            self.cycle_index = (self.cycle_index + 1) % CYCLE_GAINS.len();
            self.cycle_stamp = ctx.now;
            self.pacing_gain = CYCLE_GAINS[self.cycle_index];
        }
    }

    fn update_cwnd(&mut self, ctx: &CcContext, rs: &RateSample) {
        // End packet conservation one full round after recovery began.
        if self.packet_conservation
            && self.round_start
            && self.round_count >= self.conservation_ends_round
        {
            self.packet_conservation = false;
            self.cwnd = self.cwnd.max(self.prior_cwnd);
        }
        if !ctx.in_recovery && self.packet_conservation {
            self.packet_conservation = false;
            self.cwnd = self.cwnd.max(self.prior_cwnd);
        }

        let bdp = self.bdp_packets(ctx.mss);
        let target = if bdp == 0 {
            // No model yet: keep the initial window.
            self.cfg.initial_cwnd.max(MIN_CWND)
        } else {
            ((bdp as f64 * self.cwnd_gain).ceil() as u64).max(MIN_CWND)
        };

        if self.packet_conservation {
            self.cwnd = (ctx.in_flight + rs.newly_acked).max(MIN_CWND);
        } else if self.filled_pipe {
            self.cwnd = (self.cwnd + rs.newly_acked).min(target);
        } else if self.cwnd < target || ctx.delivered < self.cfg.initial_cwnd {
            // Startup (Linux bbr_set_cwnd): grow by the acked count only while
            // below the model-derived target, so the exponential search tracks
            // cwnd_gain × (current BDP estimate) instead of overshooting it.
            self.cwnd += rs.newly_acked;
        }
        if self.state == BbrState::ProbeRtt {
            self.cwnd = self.cwnd.min(MIN_CWND);
        }
        self.cwnd = self.cwnd.clamp(MIN_CWND, self.cfg.max_cwnd);
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        if self.cfg.probe_rtt_on_rto {
            "bbr-probertt-on-rto"
        } else {
            "bbr"
        }
    }

    fn init(&mut self, ctx: &CcContext) {
        self.min_rtt_stamp = ctx.now;
        self.cycle_stamp = ctx.now;
    }

    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        self.update_round(ctx, rs);
        self.update_bw(rs);
        self.update_min_rtt(ctx, rs);
        self.update_state_machine(ctx, rs);
        self.update_cwnd(ctx, rs);
    }

    fn on_congestion(&mut self, ctx: &CcContext, signal: CongestionSignal) {
        match signal {
            CongestionSignal::FastRetransmitLoss { new_episode, .. } => {
                if new_episode {
                    // One round of packet conservation, then restore. A new
                    // episode means we were not in recovery a moment ago, so
                    // the pre-loss cwnd is the one worth saving.
                    self.save_cwnd(false);
                    self.packet_conservation = true;
                    self.conservation_ends_round = self.round_count + 1;
                    self.cwnd = (ctx.in_flight + 1).max(MIN_CWND);
                    bbr_log!(
                        self,
                        "fast-retransmit loss at {}: packet conservation",
                        ctx.now
                    );
                }
            }
            CongestionSignal::Rto => {
                bbr_log!(self, "RTO at {}", ctx.now);
                if self.cfg.probe_rtt_on_rto {
                    // The paper's mitigation (§4.1): slow down via ProbeRTT so
                    // the in-flight ACKs arrive before we spuriously
                    // retransmit their packets.
                    self.enter_probe_rtt(ctx, "RTO (mitigation enabled)");
                    self.cwnd = MIN_CWND;
                } else {
                    // BBR v1 deliberately does not reduce its window/pacing in
                    // response to loss: it keeps sending at its model-derived
                    // rate, which is exactly what lets the spurious
                    // retransmissions of §4.1 pollute its round clocking.
                    self.save_cwnd(ctx.in_recovery);
                }
            }
        }
    }

    fn on_exit_recovery(&mut self, _ctx: &CcContext) {
        self.packet_conservation = false;
        self.cwnd = self.cwnd.max(self.prior_cwnd);
    }

    fn cwnd(&self) -> u64 {
        self.cwnd.max(MIN_CWND)
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        let bw = self.bottleneck_bw_bps();
        if bw <= 0.0 {
            // No estimate yet: pace at a high multiple of a nominal 10 Mbps so
            // startup is not artificially limited before the first sample.
            return Some(HIGH_GAIN * 10e6);
        }
        Some((self.pacing_gain * bw).max(1_000.0))
    }

    fn debug_state(&self) -> String {
        format!(
            "state={:?} bw={:.3}Mbps min_rtt={:?} round={} cwnd={} pacing_gain={:.2} filled={}",
            self.state,
            self.bottleneck_bw_bps() / 1e6,
            self.min_rtt,
            self.round_count,
            self.cwnd,
            self.pacing_gain,
            self.filled_pipe
        )
    }

    fn take_events(&mut self) -> Vec<String> {
        std::mem::take(&mut self.events)
    }

    fn set_event_recording(&mut self, enabled: bool) {
        self.record_events = enabled;
        if !enabled {
            self.events.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(now_ms: u64, in_flight: u64, delivered: u64) -> CcContext {
        CcContext {
            now: SimTime::from_millis(now_ms),
            mss: 1448,
            in_flight,
            delivered,
            lost: 0,
            srtt: Some(SimDuration::from_millis(40)),
            last_rtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            in_recovery: false,
        }
    }

    fn sample(
        prior_delivered: u64,
        delivered: u64,
        rate_bps: f64,
        rtt_ms: u64,
        newly_acked: u64,
    ) -> RateSample {
        RateSample {
            delivered,
            prior_delivered,
            prior_delivered_time: SimTime::ZERO,
            send_elapsed: SimDuration::from_millis(10),
            ack_elapsed: SimDuration::from_millis(12),
            interval: SimDuration::from_millis(12),
            delivered_in_interval: delivered - prior_delivered,
            delivery_rate_bps: rate_bps,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            newly_acked,
            cum_ack_advanced: newly_acked,
            is_retransmitted_sample: false,
            is_app_limited: false,
            in_flight_before: 10,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let bbr = Bbr::new(BbrConfig::default());
        assert_eq!(bbr.state(), BbrState::Startup);
        assert!(bbr.pacing_rate_bps().unwrap() > 0.0);
        assert_eq!(bbr.cwnd(), 10);
    }

    #[test]
    fn bandwidth_filter_takes_windowed_max() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        for (i, bw) in [5e6, 8e6, 6e6].iter().enumerate() {
            delivered += 10;
            bbr.on_ack(
                &ctx(40 * (i as u64 + 1), 10, delivered),
                &sample(delivered - 10, delivered, *bw, 40, 10),
            );
        }
        assert!((bbr.bottleneck_bw_bps() - 8e6).abs() < 1.0);
    }

    #[test]
    fn old_bandwidth_samples_expire_after_ten_rounds() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 10u64;
        // One good 12 Mbps sample in round 1.
        bbr.on_ack(&ctx(40, 10, delivered), &sample(0, delivered, 12e6, 40, 10));
        assert!(bbr.bottleneck_bw_bps() >= 12e6 - 1.0);
        // Now 12 more rounds of 1 Mbps samples; each sample's prior_delivered
        // equals the current threshold so every ACK starts a new round.
        for i in 0..12 {
            let prior = delivered;
            delivered += 2;
            bbr.on_ack(
                &ctx(80 + i * 40, 4, delivered),
                &sample(prior, delivered, 1e6, 40, 2),
            );
        }
        assert!(
            bbr.bottleneck_bw_bps() < 2e6,
            "good sample should have expired, bw = {}",
            bbr.bottleneck_bw_bps()
        );
    }

    #[test]
    fn round_counting_follows_prior_delivered() {
        let mut bbr = Bbr::new(BbrConfig::default());
        // prior_delivered = 0 >= threshold 0: round 1 starts, threshold := 10.
        bbr.on_ack(&ctx(40, 10, 10), &sample(0, 10, 10e6, 40, 10));
        assert_eq!(bbr.round_count(), 1);
        // prior_delivered = 5 < 10: same round.
        bbr.on_ack(&ctx(60, 10, 15), &sample(5, 15, 10e6, 40, 5));
        assert_eq!(bbr.round_count(), 1);
        // prior_delivered = 12 >= 10: next round.
        bbr.on_ack(&ctx(80, 10, 20), &sample(12, 20, 10e6, 40, 5));
        assert_eq!(bbr.round_count(), 2);
    }

    #[test]
    fn startup_exits_to_drain_then_probe_bw() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        let mut now = 40u64;
        // Bandwidth stops growing at 12 Mbps: after 3 rounds of no growth,
        // Startup ends.
        for _ in 0..8 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(now, 30, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
            now += 40;
        }
        assert!(
            bbr.state() == BbrState::Drain || bbr.state() == BbrState::ProbeBw,
            "state after flat bandwidth: {:?}",
            bbr.state()
        );
        // Once in-flight drops to the BDP, Drain ends.
        let prior = delivered;
        delivered += 1;
        bbr.on_ack(
            &ctx(now, 1, delivered),
            &sample(prior, delivered, 12e6, 40, 1),
        );
        assert_eq!(bbr.state(), BbrState::ProbeBw);
        // cwnd should be near cwnd_gain * BDP (BDP ≈ 41 packets at 12Mbps/40ms).
        let bdp = bbr.bdp_packets(1448);
        assert!((38..=46).contains(&bdp), "bdp {bdp}");
    }

    #[test]
    fn probe_bw_cycles_gains() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        let mut now = 40u64;
        for _ in 0..10 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(now, 20, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
            now += 40;
        }
        assert_eq!(bbr.state(), BbrState::ProbeBw);
        let mut seen_gains = std::collections::BTreeSet::new();
        for _ in 0..40 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(now, 20, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
            seen_gains.insert((bbr.pacing_gain * 100.0) as u64);
            now += 50;
        }
        assert!(
            seen_gains.contains(&125),
            "probing gain seen: {seen_gains:?}"
        );
        assert!(
            seen_gains.contains(&75),
            "draining gain seen: {seen_gains:?}"
        );
        assert!(
            seen_gains.contains(&100),
            "cruise gain seen: {seen_gains:?}"
        );
    }

    #[test]
    fn stale_min_rtt_triggers_probe_rtt_and_exit_restores() {
        let cfg = BbrConfig {
            min_rtt_window: SimDuration::from_millis(500),
            ..BbrConfig::default()
        };
        let mut bbr = Bbr::new(cfg);
        let mut delivered = 0u64;
        // Establish the model.
        for i in 0..10 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(40 * (i + 1), 20, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
        }
        // Jump time past the min-RTT window.
        let prior = delivered;
        delivered += 5;
        bbr.on_ack(
            &ctx(2_000, 20, delivered),
            &sample(prior, delivered, 12e6, 41, 5),
        );
        assert_eq!(bbr.state(), BbrState::ProbeRtt);
        assert_eq!(bbr.cwnd(), MIN_CWND);
        // Drain in-flight to 4, then 200 ms later ProbeRTT ends.
        let prior = delivered;
        delivered += 2;
        bbr.on_ack(
            &ctx(2_050, 3, delivered),
            &sample(prior, delivered, 12e6, 41, 2),
        );
        let prior = delivered;
        delivered += 2;
        bbr.on_ack(
            &ctx(2_300, 3, delivered),
            &sample(prior, delivered, 12e6, 41, 2),
        );
        assert_ne!(
            bbr.state(),
            BbrState::ProbeRtt,
            "ProbeRTT should have ended"
        );
        assert!(bbr.cwnd() > MIN_CWND, "cwnd restored after ProbeRTT");
    }

    #[test]
    fn prior_cwnd_tracks_the_current_operating_point_not_an_all_time_high() {
        // Regression test for the save-cwnd semantics: after the bandwidth
        // model collapses, a fresh loss episode must save the *current*
        // (small) window, not keep restoring the all-time-high one.
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        let mut now = 40u64;
        // Establish a fat model at 12 Mbps and exit Startup.
        for _ in 0..12 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(now, 20, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
            now += 40;
        }
        // A loss episode while the window is fat.
        bbr.on_congestion(
            &ctx(now, 30, delivered),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let fat = bbr.prior_cwnd;
        assert!(fat > MIN_CWND, "premise: saved window is fat ({fat})");
        bbr.on_exit_recovery(&ctx(now, 30, delivered));

        // The bandwidth collapses to 1 Mbps for > BW_WINDOW_ROUNDS rounds;
        // the model-driven window shrinks with it.
        for _ in 0..12 {
            let prior = delivered;
            delivered += 2;
            bbr.on_ack(
                &ctx(now, 4, delivered),
                &sample(prior, delivered, 1e6, 40, 2),
            );
            now += 40;
        }
        assert!(
            bbr.cwnd < fat,
            "premise: window shrank with the model ({} vs {fat})",
            bbr.cwnd
        );

        // A fresh loss episode now saves the current small window. The old
        // monotone ratchet kept `fat` here and recovery exit restored a
        // window from a bandwidth regime that no longer exists.
        bbr.on_congestion(
            &ctx(now, 4, delivered),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert!(
            bbr.prior_cwnd < fat,
            "prior_cwnd must track the shrunken window, got {} (fat was {fat})",
            bbr.prior_cwnd
        );
    }

    #[test]
    fn rto_default_keeps_model_driven_window() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        for i in 0..10 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(40 * (i + 1), 20, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
        }
        let cwnd_before = bbr.cwnd();
        bbr.on_congestion(&ctx(500, 0, delivered), CongestionSignal::Rto);
        assert_eq!(
            bbr.state(),
            BbrState::ProbeBw,
            "default BBR does not change state on RTO"
        );
        assert_eq!(
            bbr.cwnd(),
            cwnd_before,
            "default BBR ignores the RTO for its window"
        );
    }

    #[test]
    fn rto_with_mitigation_enters_probe_rtt() {
        let mut bbr = Bbr::new(BbrConfig {
            probe_rtt_on_rto: true,
            ..Default::default()
        });
        let mut delivered = 0u64;
        for i in 0..10 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(40 * (i + 1), 20, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
        }
        bbr.on_congestion(&ctx(500, 0, delivered), CongestionSignal::Rto);
        assert_eq!(bbr.state(), BbrState::ProbeRtt);
        assert_eq!(bbr.cwnd(), MIN_CWND);
        assert_eq!(bbr.name(), "bbr-probertt-on-rto");
    }

    #[test]
    fn fast_retransmit_triggers_packet_conservation_then_restore() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        for i in 0..10 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(40 * (i + 1), 40, delivered),
                &sample(prior, delivered, 12e6, 40, 20),
            );
        }
        let before = bbr.cwnd();
        bbr.on_congestion(
            &ctx(500, 10, delivered),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 3,
                new_episode: true,
            },
        );
        assert!(
            bbr.cwnd() <= before,
            "conservation shrinks the window to ~in_flight"
        );
        bbr.on_exit_recovery(&ctx(600, 10, delivered));
        assert_eq!(bbr.cwnd(), before, "window restored after recovery");
    }

    #[test]
    fn spurious_retransmission_samples_advance_rounds_rapidly() {
        // The §4.1 mechanism in isolation: samples whose prior_delivered was
        // refreshed by a retransmission exceed the round threshold every time,
        // so every ACK advances the round counter and the good bandwidth
        // sample ages out of the filter.
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 200u64;
        bbr.on_ack(&ctx(40, 20, delivered), &sample(0, delivered, 12e6, 40, 20));
        let rounds_before = bbr.round_count();
        assert!(bbr.bottleneck_bw_bps() >= 12e6 - 1.0);
        for i in 0..12 {
            let prior = delivered; // == current threshold → premature round end
            delivered += 1;
            let mut rs = sample(prior, delivered, 0.8e6, 45, 1);
            rs.is_retransmitted_sample = true;
            bbr.on_ack(&ctx(1_000 + i * 10, 5, delivered), &rs);
        }
        assert!(
            bbr.round_count() >= rounds_before + 12,
            "every sample ends a round"
        );
        assert!(
            bbr.bottleneck_bw_bps() < 1e6,
            "bandwidth estimate collapsed to {} bps",
            bbr.bottleneck_bw_bps()
        );
        let events = bbr.take_events();
        assert!(
            events.iter().any(|e| e.contains("RETRANSMITTED")),
            "event log should flag retransmitted-sample rounds"
        );
    }

    #[test]
    fn pacing_rate_follows_gain_and_bw() {
        let mut bbr = Bbr::new(BbrConfig::default());
        let mut delivered = 0u64;
        for i in 0..10 {
            let prior = delivered;
            delivered += 20;
            bbr.on_ack(
                &ctx(40 * (i + 1), 20, delivered),
                &sample(prior, delivered, 10e6, 40, 20),
            );
        }
        let rate = bbr.pacing_rate_bps().unwrap();
        let bw = bbr.bottleneck_bw_bps();
        assert!((rate / bw - bbr.pacing_gain).abs() < 0.01);
    }
}
