//! TCP Reno / NewReno.
//!
//! Slow start (one packet of window growth per acknowledged packet until the
//! slow-start threshold), additive increase in congestion avoidance (one
//! packet per window per RTT), multiplicative decrease on loss (halve once
//! per recovery episode), and window collapse to one packet on RTO.

use ccfuzz_netsim::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};
use serde::{Deserialize, Serialize};

/// Reno configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RenoConfig {
    /// Initial congestion window, packets.
    pub initial_cwnd: u64,
    /// Minimum congestion window, packets.
    pub min_cwnd: u64,
    /// Maximum congestion window, packets (safety bound).
    pub max_cwnd: u64,
    /// Multiplicative-decrease factor applied to the window on loss.
    pub beta: f64,
}

impl Default for RenoConfig {
    fn default() -> Self {
        RenoConfig {
            initial_cwnd: 10,
            min_cwnd: 2,
            max_cwnd: 10_000,
            beta: 0.5,
        }
    }
}

/// TCP Reno / NewReno.
#[derive(Clone, Debug)]
pub struct Reno {
    cfg: RenoConfig,
    /// Congestion window in packets, with fractional accumulation for
    /// congestion avoidance.
    cwnd: f64,
    ssthresh: u64,
    /// End of the current ECN-reaction round: further echoes are ignored
    /// until this instant (RFC 3168's once-per-RTT reduction guard).
    ecn_hold_until: Option<ccfuzz_netsim::time::SimTime>,
}

impl Reno {
    /// Creates a Reno instance.
    pub fn new(cfg: RenoConfig) -> Self {
        Reno {
            cwnd: cfg.initial_cwnd.max(cfg.min_cwnd) as f64,
            ssthresh: u64::MAX,
            ecn_hold_until: None,
            cfg,
        }
    }

    /// `true` while in slow start.
    pub fn in_slow_start(&self) -> bool {
        (self.cwnd as u64) < self.ssthresh
    }

    fn clamp(&mut self) {
        self.cwnd = self
            .cwnd
            .clamp(self.cfg.min_cwnd as f64, self.cfg.max_cwnd as f64);
    }

    fn rtt_or_default(&self, ctx: &CcContext) -> ccfuzz_netsim::time::SimDuration {
        ctx.srtt
            .or(ctx.min_rtt)
            .unwrap_or(ccfuzz_netsim::time::SimDuration::from_millis(100))
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        if rs.newly_acked == 0 {
            return;
        }
        // During recovery NewReno does not grow the window.
        if ctx.in_recovery {
            return;
        }
        if self.in_slow_start() {
            // Growth capped so slow start does not overshoot the threshold
            // (the behaviour the NS3 CUBIC bug of §4.2 is missing).
            let headroom = self.ssthresh.saturating_sub(self.cwnd as u64) as f64;
            self.cwnd += (rs.newly_acked as f64).min(headroom.max(0.0));
        } else {
            self.cwnd += rs.newly_acked as f64 / self.cwnd.max(1.0);
        }
        self.clamp();
    }

    fn on_congestion(&mut self, ctx: &CcContext, signal: CongestionSignal) {
        match signal {
            CongestionSignal::FastRetransmitLoss { new_episode, .. } => {
                if new_episode {
                    self.ssthresh = ((self.cwnd * self.cfg.beta) as u64).max(self.cfg.min_cwnd);
                    self.cwnd = self.ssthresh as f64;
                }
            }
            CongestionSignal::Rto => {
                self.ssthresh = ((self.cwnd * self.cfg.beta) as u64).max(self.cfg.min_cwnd);
                self.cwnd = 1.0;
            }
        }
        // A loss reduction covers any CE marks from the same congestion
        // event: without this hold, an AQM that both marks and drops in one
        // RTT (e.g. RED straddling max_thresh) would quarter the window.
        self.ecn_hold_until = Some(ctx.now + self.rtt_or_default(ctx));
    }

    fn on_ecn(&mut self, ctx: &CcContext, _ce_acked: u64) {
        // RFC 3168 §6.1.2: react to ECE exactly as to a single loss — halve
        // once, then ignore further echoes for one RTT (the halved window's
        // worth of marks all describe the same congestion event). While in
        // recovery the loss reduction already happened for this window.
        if ctx.in_recovery {
            return;
        }
        if let Some(until) = self.ecn_hold_until {
            if ctx.now < until {
                return;
            }
        }
        self.ssthresh = ((self.cwnd * self.cfg.beta) as u64).max(self.cfg.min_cwnd);
        self.cwnd = self.ssthresh as f64;
        self.ecn_hold_until = Some(ctx.now + self.rtt_or_default(ctx));
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn debug_state(&self) -> String {
        format!("cwnd={:.2} ssthresh={}", self.cwnd, self.ssthresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::time::{SimDuration, SimTime};

    fn ctx(in_recovery: bool) -> CcContext {
        CcContext {
            now: SimTime::ZERO,
            mss: 1448,
            in_flight: 10,
            delivered: 100,
            lost: 0,
            srtt: Some(SimDuration::from_millis(40)),
            last_rtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            in_recovery,
        }
    }

    fn sample(newly_acked: u64) -> RateSample {
        RateSample {
            delivered: 100,
            prior_delivered: 90,
            prior_delivered_time: SimTime::ZERO,
            send_elapsed: SimDuration::from_millis(10),
            ack_elapsed: SimDuration::from_millis(10),
            interval: SimDuration::from_millis(10),
            delivered_in_interval: 10,
            delivery_rate_bps: 10e6,
            rtt: Some(SimDuration::from_millis(40)),
            newly_acked,
            cum_ack_advanced: newly_acked,
            is_retransmitted_sample: false,
            is_app_limited: false,
            in_flight_before: 10,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn slow_start_grows_per_acked_packet() {
        let mut r = Reno::new(RenoConfig::default());
        assert!(r.in_slow_start());
        assert_eq!(r.cwnd(), 10);
        r.on_ack(&ctx(false), &sample(5));
        assert_eq!(r.cwnd(), 15);
    }

    #[test]
    fn congestion_avoidance_is_one_packet_per_window() {
        let mut r = Reno::new(RenoConfig::default());
        // Leave slow start via a loss.
        r.on_congestion(
            &ctx(false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let w = r.cwnd();
        assert!(!r.in_slow_start());
        // A full window of ACKs grows the window by roughly 1 (harmonic
        // accumulation makes it slightly less than exactly 1).
        for _ in 0..w {
            r.on_ack(&ctx(false), &sample(1));
        }
        assert!(r.cwnd() == w || r.cwnd() == w + 1, "cwnd {}", r.cwnd());
        // Over three windows the growth is clearly linear, not exponential.
        for _ in 0..(3 * w) {
            r.on_ack(&ctx(false), &sample(1));
        }
        assert!((w + 2..=w + 4).contains(&r.cwnd()), "cwnd {}", r.cwnd());
    }

    #[test]
    fn halves_on_new_loss_episode_only() {
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        r.on_congestion(
            &ctx(false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert_eq!(r.cwnd(), 20);
        assert_eq!(r.ssthresh(), 20);
        r.on_congestion(
            &ctx(false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 5,
                new_episode: false,
            },
        );
        assert_eq!(r.cwnd(), 20, "same episode, no further reduction");
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        r.on_congestion(&ctx(false), CongestionSignal::Rto);
        assert_eq!(r.cwnd(), 1);
        assert_eq!(r.ssthresh(), 20);
        assert!(r.in_slow_start());
    }

    #[test]
    fn no_growth_during_recovery() {
        let mut r = Reno::new(RenoConfig::default());
        let before = r.cwnd();
        r.on_ack(&ctx(true), &sample(5));
        assert_eq!(r.cwnd(), before);
    }

    #[test]
    fn slow_start_does_not_overshoot_ssthresh() {
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 2,
            ..Default::default()
        });
        r.on_congestion(&ctx(false), CongestionSignal::Rto); // ssthresh = 1? no: beta*2 = 1 -> min_cwnd 2
                                                             // Set a known threshold: halve from 40.
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        r.on_congestion(&ctx(false), CongestionSignal::Rto); // ssthresh = 20, cwnd = 1
                                                             // A huge cumulative ACK in slow start must not blow past ssthresh.
        r.on_ack(&ctx(false), &sample(1000));
        assert_eq!(r.cwnd(), 20, "growth capped at ssthresh");
    }

    #[test]
    fn respects_min_and_max() {
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 4,
            min_cwnd: 2,
            max_cwnd: 6,
            beta: 0.5,
        });
        for _ in 0..10 {
            r.on_ack(&ctx(false), &sample(10));
        }
        assert_eq!(r.cwnd(), 6);
        r.on_congestion(
            &ctx(false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        r.on_congestion(&ctx(false), CongestionSignal::Rto);
        assert!(r.cwnd() >= 1);
        assert!(r.ssthresh() >= 2);
    }

    fn ctx_at(now_ms: u64, in_recovery: bool) -> CcContext {
        CcContext {
            now: SimTime::from_millis(now_ms),
            ..ctx(in_recovery)
        }
    }

    #[test]
    fn ecn_halves_once_per_rtt() {
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        r.on_ecn(&ctx_at(0, false), 2);
        assert_eq!(r.cwnd(), 20, "first echo halves");
        // Further echoes within the same RTT (srtt = 40 ms) are ignored.
        r.on_ecn(&ctx_at(10, false), 2);
        assert_eq!(r.cwnd(), 20);
        // After an RTT the algorithm may react again.
        r.on_ecn(&ctx_at(50, false), 1);
        assert_eq!(r.cwnd(), 10);
    }

    #[test]
    fn one_reduction_per_congestion_event_with_marks_and_losses() {
        // An AQM that both marks and drops in the same RTT (e.g. RED
        // straddling max_thresh) must cost one halving, not two.
        let mut r = Reno::new(RenoConfig {
            initial_cwnd: 40,
            ..Default::default()
        });
        r.on_congestion(
            &ctx_at(0, false),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert_eq!(r.cwnd(), 20, "loss halves");
        // Echo in the same RTT: covered by the loss reduction.
        r.on_ecn(&ctx_at(10, false), 3);
        assert_eq!(r.cwnd(), 20, "no quartering");
        // Echoes while in recovery are covered regardless of timing.
        r.on_ecn(&ctx_at(100, true), 3);
        assert_eq!(r.cwnd(), 20);
    }

    #[test]
    fn zero_ack_sample_is_ignored() {
        let mut r = Reno::new(RenoConfig::default());
        let before = r.cwnd();
        r.on_ack(&ctx(false), &sample(0));
        assert_eq!(r.cwnd(), before);
    }

    #[test]
    fn debug_state_mentions_window() {
        let r = Reno::new(RenoConfig::default());
        assert!(r.debug_state().contains("cwnd="));
    }
}
