//! Pins campaign trajectories bit-for-bit across all five hunt modes.
//!
//! The fuzzer's master RNG draws exactly once after seeding the initial
//! islands (the annealing-stream seed), and every per-island fork derives
//! from that post-draw state. These fingerprints were captured before the
//! crash-safety refactor promoted the run-loop locals to fuzzer fields and
//! threaded the formerly-dead `anneal_seed` into a dedicated annealing RNG;
//! any drift here means existing corpora, golden digests and fixtures have
//! silently diverged.
//!
//! Annealed link campaigns (`ga.anneal = true`) are deliberately *not*
//! pinned to a pre-refactor value: annealing now draws from its own RNG
//! stream instead of the per-island mutation stream, which changed (only)
//! those trajectories. The test instead pins the new annealed trajectory so
//! future drift is still caught.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_core::genome::Genome;
use ccfuzz_core::scenario::QdiscChoice;
use ccfuzz_netsim::time::SimDuration;

fn tiny_ga(seed: u64) -> GaParams {
    let mut ga = GaParams::quick();
    ga.islands = 2;
    ga.population_per_island = 3;
    ga.generations = 3;
    ga.threads = 2;
    ga.seed = seed;
    ga
}

struct Fingerprint {
    score_bits: u64,
    evaluations: usize,
    mean_bits: u64,
    packets: usize,
}

fn assert_fingerprint(label: &str, got: Fingerprint, want: Fingerprint) {
    assert_eq!(
        got.score_bits, want.score_bits,
        "{label}: best score drifted ({:x} != {:x})",
        got.score_bits, want.score_bits
    );
    assert_eq!(
        got.evaluations, want.evaluations,
        "{label}: evaluation count drifted"
    );
    assert_eq!(
        got.mean_bits, want.mean_bits,
        "{label}: final mean score drifted ({:x} != {:x})",
        got.mean_bits, want.mean_bits
    );
    assert_eq!(got.packets, want.packets, "{label}: best genome drifted");
}

#[test]
fn traffic_trajectory_is_pinned() {
    let c = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(2),
        tiny_ga(42),
    );
    let r = c.run_traffic();
    assert_fingerprint(
        "traffic",
        Fingerprint {
            score_bits: r.best_outcome.score.to_bits(),
            evaluations: r.total_evaluations,
            mean_bits: r.history.last().unwrap().mean_score.to_bits(),
            packets: r.best_genome.packet_count(),
        },
        Fingerprint {
            score_bits: 0x3fefb5a18198e828,
            evaluations: 14,
            mean_bits: 0x3fec9fa114246fe1,
            packets: 680,
        },
    );
}

#[test]
fn link_trajectory_is_pinned() {
    let c = Campaign::paper_standard(
        FuzzMode::Link,
        CcaKind::Cubic,
        SimDuration::from_secs(2),
        tiny_ga(7),
    );
    let r = c.run_link();
    assert_fingerprint(
        "link",
        Fingerprint {
            score_bits: r.best_outcome.score.to_bits(),
            evaluations: r.total_evaluations,
            mean_bits: r.history.last().unwrap().mean_score.to_bits(),
            packets: r.best_genome.packet_count(),
        },
        Fingerprint {
            score_bits: 0x3fe6fadc62fb3046,
            evaluations: 14,
            mean_bits: 0x3fe0934444bb9241,
            packets: 2072,
        },
    );
}

#[test]
fn annealed_link_trajectory_is_deterministic_and_pinned() {
    let run = || {
        let mut ga = tiny_ga(7);
        ga.anneal = true;
        let c = Campaign::paper_standard(
            FuzzMode::Link,
            CcaKind::Cubic,
            SimDuration::from_secs(2),
            ga,
        );
        c.run_link()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.best_outcome.score.to_bits(),
        b.best_outcome.score.to_bits()
    );
    assert_eq!(a.history, b.history);
    assert_eq!(a.total_evaluations, 14);
    assert_eq!(a.best_genome.packet_count(), 2072);
    // The annealed trajectory must differ from the plain-link one (the hook
    // really fires) while staying reproducible from the seed.
    assert_ne!(a.best_outcome.score.to_bits(), 0x3fe6fadc62fb3046u64);
}

#[test]
fn fairness_trajectory_is_pinned() {
    let c = Campaign::paper_fairness(
        vec![CcaKind::Bbr, CcaKind::Reno],
        SimDuration::from_secs(2),
        tiny_ga(11),
    );
    let r = c.run_fairness();
    assert_fingerprint(
        "fairness",
        Fingerprint {
            score_bits: r.best_outcome.score.to_bits(),
            evaluations: r.total_evaluations,
            mean_bits: r.history.last().unwrap().mean_score.to_bits(),
            packets: r.best_genome.packet_count(),
        },
        Fingerprint {
            score_bits: 0x3fea0b6b0eba54f4,
            evaluations: 14,
            mean_bits: 0x3fdba8b65e253d34,
            packets: 603,
        },
    );
}

#[test]
fn aqm_trajectory_is_pinned() {
    let c = Campaign::paper_aqm(
        CcaKind::Reno,
        SimDuration::from_secs(2),
        tiny_ga(13),
        QdiscChoice::Any,
    );
    let r = c.run_aqm();
    assert_fingerprint(
        "aqm",
        Fingerprint {
            score_bits: r.best_outcome.score.to_bits(),
            evaluations: r.total_evaluations,
            mean_bits: r.history.last().unwrap().mean_score.to_bits(),
            packets: r.best_genome.packet_count(),
        },
        Fingerprint {
            score_bits: 0x3fe2592ca01164dc,
            evaluations: 14,
            mean_bits: 0x3fde0ef940fee700,
            packets: 455,
        },
    );
}

#[test]
fn topology_trajectory_is_pinned() {
    // Re-pinned when BBR's `prior_cwnd` bookkeeping was aligned with Linux
    // `bbr_save_cwnd`: the old code ratcheted `prior_cwnd` to an all-time
    // high, so a BBR flow squeezed by a multi-hop bottleneck restored an
    // inflated cwnd after loss recovery. Only BBR trajectories that enter
    // recovery under collapse moved (the golden digests and every other pin
    // here were unaffected); the fuzzer now hunts against the corrected
    // post-recovery behaviour.
    let c = Campaign::paper_topology(CcaKind::Bbr, 3, SimDuration::from_secs(2), tiny_ga(17));
    let r = c.run_topology();
    assert_fingerprint(
        "topology",
        Fingerprint {
            score_bits: r.best_outcome.score.to_bits(),
            evaluations: r.total_evaluations,
            mean_bits: r.history.last().unwrap().mean_score.to_bits(),
            packets: r.best_genome.packet_count(),
        },
        Fingerprint {
            score_bits: 0x3fe6ca7b82c11e04,
            evaluations: 14,
            mean_bits: 0x3fe4ea519d5a92e2,
            packets: 138,
        },
    );
}
