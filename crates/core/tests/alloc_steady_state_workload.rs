//! Flow-churn counterpart of `alloc_steady_state`: a *warm* worker must
//! evaluate workload genomes — thousands of dynamic flows spawning,
//! completing and recycling through the slab per simulation — with zero
//! heap traffic. The arrival engine's whole state (slab slots, endpoint
//! buffers, the CCA prototype pool, FCT histograms and the sample
//! reservoir) recycles through `EvalScratch` between evaluations.
//!
//! Own integration-test binary for the same reason as `alloc_steady_state`:
//! the counting global allocator must not perturb other tests, and a single
//! `#[test]` keeps the counter single-threaded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::Campaign;
use ccfuzz_core::evaluate::{EvalScratch, Evaluator};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_core::workload::WorkloadGenome;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::SimDuration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_workload_evaluate_phase_allocates_nothing() {
    let ga = GaParams::quick();
    let cca_pool = vec![CcaKind::Reno, CcaKind::Cubic];
    let campaign = Campaign::paper_workload(
        CcaKind::Reno,
        cca_pool.clone(),
        3,
        SimDuration::from_secs(2),
        ga,
    );
    let evaluator = campaign.evaluator();

    // One island's worth of genomes, generated up front (generation is the
    // GA's job and allocates by design; the claim under test is the
    // evaluate phase, churn included).
    let mut rng = SimRng::new(11);
    let genomes: Vec<WorkloadGenome> = (0..8)
        .map(|_| WorkloadGenome::generate(CcaKind::Reno, &cca_pool, 3, campaign.duration, &mut rng))
        .collect();

    let mut scratch = EvalScratch::new();
    // Two warm-up passes: the first grows the slab, endpoint pools and FCT
    // reservoir from empty; the second lets the shared free lists settle
    // into steady-state capacity ordering across the whole population.
    let warm: Vec<_> = genomes
        .iter()
        .map(|g| evaluator.evaluate_reusing(g, &mut scratch))
        .collect();
    for genome in &genomes {
        evaluator.evaluate_reusing(genome, &mut scratch);
    }

    // The measured pass: same population, warm arena.
    let before = allocations();
    let mut outcomes = Vec::with_capacity(genomes.len());
    let reserved = allocations();
    for genome in &genomes {
        outcomes.push(evaluator.evaluate_reusing(genome, &mut scratch));
    }
    let after = allocations();
    assert_eq!(
        after - reserved,
        0,
        "warm workload evaluate phase must not touch the allocator \
         ({} allocations across {} evaluations)",
        after - reserved,
        genomes.len()
    );
    assert!(reserved - before <= 1);

    // Reuse never changes results: the warm outcomes equal both the earlier
    // reused pass and a cold evaluation.
    assert_eq!(warm, outcomes);
    for (genome, outcome) in genomes.iter().zip(&outcomes) {
        assert_eq!(evaluator.evaluate(genome), *outcome);
    }
}
