//! Kill-and-resume determinism for every hunt mode, in-process.
//!
//! Each test runs a tiny campaign twice: once uninterrupted (the control),
//! and once interrupted at a pseudo-random generation boundary — the
//! shutdown flag is raised from the checkpoint callback, the final snapshot
//! is serialized to JSON, deserialized, and the campaign is resumed from it.
//! The resumed trajectory must match the control bit-for-bit: same best
//! genome, same outcome bits, same history, same evaluation count. This is
//! the in-process half of the crash-safety contract; the CLI tests and the
//! CI crash-smoke job cover the process-level (SIGKILL) half.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::checkpoint::{CampaignControl, ControlledRun, SnapshotPayload};
use ccfuzz_core::fuzzer::{FuzzResult, GaParams, StopReason};
use ccfuzz_core::scenario::QdiscChoice;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::SimDuration;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

fn tiny_ga(seed: u64) -> GaParams {
    let mut ga = GaParams::quick();
    ga.islands = 2;
    ga.population_per_island = 3;
    ga.generations = 4;
    ga.threads = 2;
    ga.seed = seed;
    ga
}

/// Runs `campaign` under control, interrupting at `kill_after` completed
/// generations, then resumes from a JSON-roundtripped checkpoint and returns
/// the resumed final result.
fn interrupt_and_resume<G, RunFn>(campaign: &Campaign, kill_after: u32, run: RunFn) -> FuzzResult<G>
where
    G: Clone + std::fmt::Debug + PartialEq,
    RunFn: Fn(&Campaign, CampaignControl<'_>) -> Result<ControlledRun<G>, String>,
    ControlledRun<G>: IntoPayload,
{
    let shutdown = AtomicBool::new(false);
    let mut generations_seen = 0u32;
    let mut on_checkpoint = |_payload: SnapshotPayload| {
        generations_seen += 1;
        if generations_seen >= kill_after {
            shutdown.store(true, Ordering::SeqCst);
        }
    };
    let interrupted = run(
        campaign,
        CampaignControl {
            shutdown: Some(&shutdown),
            checkpoint_every: 1,
            on_checkpoint: Some(&mut on_checkpoint),
            panic_budget: None,
            resume: None,
        },
    )
    .expect("interrupted leg starts");
    assert_eq!(
        interrupted.stop,
        StopReason::Interrupted,
        "the shutdown flag must stop the run mid-campaign"
    );

    // Serialize → deserialize the checkpoint exactly as the CLI would.
    let payload = interrupted.into_payload();
    let json = serde_json::to_string(&payload).expect("checkpoint serializes");
    let restored: SnapshotPayload = serde_json::from_str(&json).expect("checkpoint parses");
    assert_eq!(payload, restored);

    let resumed = run(
        campaign,
        CampaignControl {
            resume: Some(restored),
            ..CampaignControl::default()
        },
    )
    .expect("resumed leg starts");
    assert_eq!(resumed.stop, StopReason::Completed);
    resumed.result
}

/// Wraps a mode's final snapshot into the mode-erased payload.
trait IntoPayload {
    fn into_payload(self) -> SnapshotPayload;
}

impl IntoPayload for ControlledRun<ccfuzz_core::genome::TrafficGenome> {
    fn into_payload(self) -> SnapshotPayload {
        SnapshotPayload::Traffic(self.final_snapshot)
    }
}
impl IntoPayload for ControlledRun<ccfuzz_core::genome::LinkGenome> {
    fn into_payload(self) -> SnapshotPayload {
        SnapshotPayload::Link(self.final_snapshot)
    }
}
impl IntoPayload for ControlledRun<ccfuzz_core::scenario::ScenarioGenome> {
    fn into_payload(self) -> SnapshotPayload {
        SnapshotPayload::Scenario(self.final_snapshot)
    }
}
impl IntoPayload for ControlledRun<ccfuzz_core::topology::TopologyGenome> {
    fn into_payload(self) -> SnapshotPayload {
        SnapshotPayload::Topology(self.final_snapshot)
    }
}

fn assert_same_trajectory<G: PartialEq + std::fmt::Debug>(
    control: &FuzzResult<G>,
    resumed: &FuzzResult<G>,
) {
    assert_eq!(control.best_genome, resumed.best_genome);
    assert_eq!(
        control.best_outcome.score.to_bits(),
        resumed.best_outcome.score.to_bits()
    );
    assert_eq!(control.best_outcome, resumed.best_outcome);
    assert_eq!(control.history, resumed.history);
    assert_eq!(control.total_evaluations, resumed.total_evaluations);
}

/// Picks the interruption generation pseudo-randomly (but reproducibly)
/// from the mode seed, exercising a different boundary per mode.
fn random_kill_generation(seed: u64, generations: u32) -> u32 {
    // Boundaries exist after generations 1..generations-1 (the last
    // generation never evolves, so the latest interruptible boundary is
    // generations-1).
    1 + SimRng::new(seed ^ 0xc0ffee).gen_range_usize(0, (generations - 1) as usize) as u32
}

#[test]
fn traffic_kill_and_resume_matches_control() {
    let c = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(2),
        tiny_ga(42),
    );
    let control = c.run_traffic();
    let kill = random_kill_generation(42, c.ga.generations);
    let resumed = interrupt_and_resume(&c, kill, |c, ctl| c.run_traffic_controlled(None, ctl));
    assert_same_trajectory(&control, &resumed);
}

#[test]
fn link_kill_and_resume_matches_control_with_annealing() {
    // Annealing state (the dedicated RNG stream) must survive the
    // checkpoint: this is the mode that would silently diverge if it didn't.
    let mut ga = tiny_ga(7);
    ga.anneal = true;
    let c = Campaign::paper_standard(
        FuzzMode::Link,
        CcaKind::Cubic,
        SimDuration::from_secs(2),
        ga,
    );
    let control = c.run_link();
    let kill = random_kill_generation(7, c.ga.generations);
    let resumed = interrupt_and_resume(&c, kill, |c, ctl| c.run_link_controlled(None, ctl));
    assert_same_trajectory(&control, &resumed);
}

#[test]
fn fairness_kill_and_resume_matches_control() {
    let c = Campaign::paper_fairness(
        vec![CcaKind::Bbr, CcaKind::Reno],
        SimDuration::from_secs(2),
        tiny_ga(11),
    );
    let control = c.run_fairness();
    let kill = random_kill_generation(11, c.ga.generations);
    let resumed = interrupt_and_resume(&c, kill, |c, ctl| c.run_fairness_controlled(None, ctl));
    assert_same_trajectory(&control, &resumed);
}

#[test]
fn aqm_kill_and_resume_matches_control() {
    let c = Campaign::paper_aqm(
        CcaKind::Reno,
        SimDuration::from_secs(2),
        tiny_ga(13),
        QdiscChoice::Any,
    );
    let control = c.run_aqm();
    let kill = random_kill_generation(13, c.ga.generations);
    let resumed = interrupt_and_resume(&c, kill, |c, ctl| c.run_aqm_controlled(None, ctl));
    assert_same_trajectory(&control, &resumed);
}

#[test]
fn topology_kill_and_resume_matches_control() {
    let c = Campaign::paper_topology(CcaKind::Bbr, 3, SimDuration::from_secs(2), tiny_ga(17));
    let control = c.run_topology();
    let kill = random_kill_generation(17, c.ga.generations);
    let resumed = interrupt_and_resume(&c, kill, |c, ctl| c.run_topology_controlled(None, ctl));
    assert_same_trajectory(&control, &resumed);
}

#[test]
fn resuming_a_completed_checkpoint_reproduces_the_result() {
    // Resume-of-complete is the SIGKILL edge case where the process died
    // after the final checkpoint: the resumed run must re-emit the identical
    // result instead of failing.
    let c = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(2),
        tiny_ga(42),
    );
    let done = c
        .run_traffic_controlled(None, CampaignControl::default())
        .unwrap();
    let replayed = c
        .run_traffic_controlled(
            None,
            CampaignControl {
                resume: Some(SnapshotPayload::Traffic(done.final_snapshot)),
                ..CampaignControl::default()
            },
        )
        .unwrap();
    assert_eq!(replayed.stop, StopReason::Completed);
    assert_same_trajectory(&done.result, &replayed.result);
}

#[test]
fn mismatched_checkpoints_are_rejected() {
    let traffic = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(1),
        tiny_ga(1),
    );
    let run = traffic
        .run_traffic_controlled(None, CampaignControl::default())
        .unwrap();
    let payload = SnapshotPayload::Traffic(run.final_snapshot.clone());

    // Wrong genome kind.
    let link = Campaign::paper_standard(
        FuzzMode::Link,
        CcaKind::Reno,
        SimDuration::from_secs(1),
        tiny_ga(1),
    );
    let err = link
        .run_link_controlled(
            None,
            CampaignControl {
                resume: Some(payload.clone()),
                ..CampaignControl::default()
            },
        )
        .unwrap_err();
    assert!(err.contains("traffic population"), "{err}");

    // Wrong GA parameters.
    let mut other = traffic.clone();
    other.ga.seed = 999;
    let err = other
        .run_traffic_controlled(
            None,
            CampaignControl {
                resume: Some(payload),
                ..CampaignControl::default()
            },
        )
        .unwrap_err();
    assert!(err.contains("GA parameters"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint serde roundtrip at an arbitrary boundary: snapshot →
    /// serialize → restore must replay an identical next generation (and
    /// the rest of the campaign) for an arbitrary seed.
    #[test]
    fn traffic_checkpoint_roundtrip_replays_identically(
        seed in 1u64..1_000_000,
        kill_after in 1u32..4,
    ) {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(1),
            tiny_ga(seed),
        );
        let control = c.run_traffic();
        let resumed =
            interrupt_and_resume(&c, kill_after, |c, ctl| c.run_traffic_controlled(None, ctl));
        prop_assert_eq!(&control.best_genome, &resumed.best_genome);
        prop_assert_eq!(
            control.best_outcome.score.to_bits(),
            resumed.best_outcome.score.to_bits()
        );
        prop_assert_eq!(&control.history, &resumed.history);
        prop_assert_eq!(control.total_evaluations, resumed.total_evaluations);
    }
}
