//! Proof of the generation-arena claim: a *warm* worker evaluates genomes
//! with zero heap traffic. A counting global allocator wraps the system
//! allocator; after two warm-up passes grow every recycled buffer to its
//! steady-state capacity, a third pass over the same genome population must
//! perform no allocation (and no reallocation) in the evaluate phase.
//!
//! This lives in its own integration-test binary so the counting allocator
//! cannot perturb any other test, and the single `#[test]` keeps the
//! counter single-threaded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::evaluate::{EvalScratch, Evaluator};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_core::genome::TrafficGenome;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::SimDuration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_evaluate_phase_allocates_nothing() {
    // The mini-campaign shape: traffic fuzzing, Reno, the paper's standard
    // simulation base — exactly what one GA worker evaluates all day.
    let ga = GaParams::quick();
    let campaign = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(3),
        ga,
    );
    let evaluator = campaign.evaluator();

    // One island's worth of genomes, generated up front (genome generation
    // is the GA's job and allocates by design; the claim under test is the
    // evaluate phase).
    let mut rng = SimRng::new(7);
    let genomes: Vec<TrafficGenome> = (0..8)
        .map(|_| TrafficGenome::generate(campaign.traffic_max_packets, campaign.duration, &mut rng))
        .collect();

    let mut scratch = EvalScratch::new();
    // Two warm-up passes: the first grows every arena buffer from empty;
    // the second lets the shared timestamp-buffer free list settle into its
    // steady-state capacity ordering.
    let warm: Vec<_> = genomes
        .iter()
        .map(|g| evaluator.evaluate_reusing(g, &mut scratch))
        .collect();
    for genome in &genomes {
        evaluator.evaluate_reusing(genome, &mut scratch);
    }

    // The measured pass: same population, warm arena.
    let before = allocations();
    let mut outcomes = Vec::with_capacity(genomes.len());
    let reserved = allocations();
    for genome in &genomes {
        outcomes.push(evaluator.evaluate_reusing(genome, &mut scratch));
    }
    let after = allocations();
    assert_eq!(
        after - reserved,
        0,
        "warm evaluate phase must not touch the allocator \
         ({} allocations across {} evaluations)",
        after - reserved,
        genomes.len()
    );
    // Sanity: the pre-reserved outcome vector was the only allocation
    // between the two reads.
    assert!(reserved - before <= 1);

    // Reuse never changes results: the warm outcomes equal both the earlier
    // reused pass and a cold evaluation.
    assert_eq!(warm, outcomes);
    for (genome, outcome) in genomes.iter().zip(&outcomes) {
        assert_eq!(evaluator.evaluate(genome), *outcome);
    }
}
