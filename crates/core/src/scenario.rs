//! Scenario genomes for fairness fuzzing: what the GA evolves when it hunts
//! multi-flow interaction bugs.
//!
//! A [`ScenarioGenome`] describes a complete multi-flow scenario: how many
//! congestion-controlled flows share the bottleneck, which algorithm each
//! runs, each flow's start/stop schedule, and an optional cross-traffic
//! sub-genome (the paper's traffic-fuzzing genome, reused as a building
//! block). Mutation perturbs schedules, swaps algorithms from a configured
//! pool, adds/removes flows, and mutates the traffic sub-genome; crossover
//! splices flow lists and crosses the traffic sub-genomes.

use crate::genome::{Genome, TrafficGenome};
use ccfuzz_cca::CcaKind;
use ccfuzz_netsim::queue::Qdisc;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Minimum flows a fairness scenario keeps (unfairness needs competition).
pub const MIN_FAIRNESS_FLOWS: usize = 2;

/// Which disciplines an AQM hunt may draw from when generating or mutating
/// qdisc genes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QdiscChoice {
    /// RED and CoDel (the default: explore the whole AQM axis).
    Any,
    /// RED only.
    Red,
    /// CoDel only.
    CoDel,
}

impl QdiscChoice {
    /// Parses a CLI name (`any` | `red` | `codel`).
    pub fn from_name(name: &str) -> Option<QdiscChoice> {
        match name {
            "any" => Some(QdiscChoice::Any),
            "red" => Some(QdiscChoice::Red),
            "codel" => Some(QdiscChoice::CoDel),
            _ => None,
        }
    }
}

/// The evolved gateway discipline of an AQM scenario: which qdisc runs at
/// the bottleneck and whether the path negotiates ECN (mark- vs. drop-based
/// feedback — the axis the `aqm` mode explores).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QdiscGene {
    /// The discipline and its parameters.
    pub discipline: Qdisc,
    /// Whether ECN is negotiated end to end.
    pub ecn: bool,
    /// The restriction mutation honours (set by the hunt's `--qdisc` flag;
    /// carried in the gene so evolved children stay inside it).
    pub choice: QdiscChoice,
}

/// Parameter ranges for generated/mutated qdisc genes, in packets of the
/// paper's 100-packet gateway.
const RED_MIN_RANGE: (usize, usize) = (5, 50);
const RED_SPAN_RANGE: (usize, usize) = (10, 60);
const CODEL_TARGET_MS: (u64, u64) = (1, 50);
const CODEL_INTERVAL_MS: (u64, u64) = (20, 500);

impl QdiscGene {
    /// Generates a random gene within `choice`.
    pub fn generate(choice: QdiscChoice, rng: &mut SimRng) -> Self {
        let red = match choice {
            QdiscChoice::Red => true,
            QdiscChoice::CoDel => false,
            QdiscChoice::Any => rng.gen_bool(0.5),
        };
        let discipline = if red {
            let min = rng.gen_range_usize(RED_MIN_RANGE.0, RED_MIN_RANGE.1 + 1);
            let span = rng.gen_range_usize(RED_SPAN_RANGE.0, RED_SPAN_RANGE.1 + 1);
            Qdisc::Red {
                min_thresh: min,
                max_thresh: min + span,
                mark_probability: rng.gen_range_f64(0.02, 1.0),
            }
        } else {
            Qdisc::CoDel {
                target: SimDuration::from_millis(
                    rng.gen_range_u64(CODEL_TARGET_MS.0, CODEL_TARGET_MS.1 + 1),
                ),
                interval: SimDuration::from_millis(
                    rng.gen_range_u64(CODEL_INTERVAL_MS.0, CODEL_INTERVAL_MS.1 + 1),
                ),
            }
        };
        QdiscGene {
            discipline,
            // Mostly ECN-on: marking is the new feedback axis; drop-based
            // AQM behaviour is still explored by the ecn=false tail.
            ecn: rng.gen_bool(0.7),
            choice,
        }
    }

    /// Randomly perturbs the gene: re-rolls the discipline, nudges one
    /// parameter, or toggles ECN. Stays within the gene's [`QdiscChoice`].
    pub fn mutate(&self, rng: &mut SimRng) -> Self {
        let choice = self.choice;
        let mut gene = *self;
        match rng.gen_range_usize(0, 4) {
            // Fresh discipline (keeps the search ergodic across kinds).
            0 => gene.discipline = QdiscGene::generate(choice, rng).discipline,
            // Toggle the feedback mode.
            1 => gene.ecn = !gene.ecn,
            // Nudge one parameter of the current discipline.
            _ => match &mut gene.discipline {
                Qdisc::DropTail => gene = QdiscGene::generate(choice, rng),
                Qdisc::Red {
                    min_thresh,
                    max_thresh,
                    mark_probability,
                } => match rng.gen_range_usize(0, 3) {
                    0 => {
                        *min_thresh = rng.gen_range_usize(RED_MIN_RANGE.0, RED_MIN_RANGE.1 + 1);
                        *max_thresh = (*min_thresh + RED_SPAN_RANGE.0).max(*max_thresh);
                    }
                    1 => {
                        let span = rng.gen_range_usize(RED_SPAN_RANGE.0, RED_SPAN_RANGE.1 + 1);
                        *max_thresh = *min_thresh + span;
                    }
                    _ => *mark_probability = rng.gen_range_f64(0.02, 1.0),
                },
                Qdisc::CoDel { target, interval } => {
                    if rng.gen_bool(0.5) {
                        *target = SimDuration::from_millis(
                            rng.gen_range_u64(CODEL_TARGET_MS.0, CODEL_TARGET_MS.1 + 1),
                        );
                    } else {
                        *interval = SimDuration::from_millis(
                            rng.gen_range_u64(CODEL_INTERVAL_MS.0, CODEL_INTERVAL_MS.1 + 1),
                        );
                    }
                }
            },
        }
        gene
    }
}

/// One evolved flow: its algorithm and schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowGene {
    /// Congestion control algorithm the flow runs.
    pub cca: CcaKind,
    /// When the flow starts sending.
    pub start: SimTime,
    /// When the flow stops sending (`None` = runs to the end).
    pub stop: Option<SimTime>,
}

impl FlowGene {
    /// A flow that runs `cca` for the whole scenario.
    pub fn whole_run(cca: CcaKind) -> Self {
        FlowGene {
            cca,
            start: SimTime::ZERO,
            stop: None,
        }
    }
}

/// A multi-flow scenario genome.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioGenome {
    /// The competing flows (at least `min_flows`, at most `max_flows`).
    /// Flow 0 is the primary flow.
    pub flows: Vec<FlowGene>,
    /// Scenario duration.
    pub duration: SimDuration,
    /// Maximum number of concurrent flows mutation may grow to.
    pub max_flows: usize,
    /// Algorithms mutation may draw from when swapping or adding flows.
    pub cca_pool: Vec<CcaKind>,
    /// Optional unresponsive cross-traffic helper (a traffic sub-genome);
    /// `None` disables cross traffic entirely.
    pub traffic: Option<TrafficGenome>,
    /// Minimum flows mutation keeps: [`MIN_FAIRNESS_FLOWS`] for fairness
    /// scenarios (unfairness needs competition), 1 for AQM scenarios
    /// (a single CCA against an evolved gateway is a complete experiment).
    pub min_flows: usize,
    /// Optional evolved gateway discipline (AQM scenarios); `None` keeps
    /// the campaign's configured qdisc (drop-tail everywhere today).
    pub qdisc: Option<QdiscGene>,
}

// Serde is written by hand (not derived) so the two AQM-era fields are
// omitted at their defaults and tolerated when missing: scenario findings
// persisted before the qdisc layer existed deserialize unchanged and
// re-serialize byte-identically. Field order matches the derive's output.
impl Serialize for ScenarioGenome {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            ("flows".to_string(), self.flows.to_value()),
            ("duration".to_string(), self.duration.to_value()),
            ("max_flows".to_string(), self.max_flows.to_value()),
            ("cca_pool".to_string(), self.cca_pool.to_value()),
            ("traffic".to_string(), self.traffic.to_value()),
        ];
        if self.min_flows != MIN_FAIRNESS_FLOWS {
            fields.push(("min_flows".to_string(), self.min_flows.to_value()));
        }
        if let Some(qdisc) = &self.qdisc {
            fields.push(("qdisc".to_string(), qdisc.to_value()));
        }
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for ScenarioGenome {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        use serde::value::map_get;
        let m = v.as_map("ScenarioGenome")?;
        Ok(ScenarioGenome {
            flows: Deserialize::from_value(map_get(m, "flows")?)?,
            duration: Deserialize::from_value(map_get(m, "duration")?)?,
            max_flows: Deserialize::from_value(map_get(m, "max_flows")?)?,
            cca_pool: Deserialize::from_value(map_get(m, "cca_pool")?)?,
            traffic: Deserialize::from_value(map_get(m, "traffic")?)?,
            min_flows: match map_get(m, "min_flows") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => MIN_FAIRNESS_FLOWS,
            },
            qdisc: match map_get(m, "qdisc") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => None,
            },
        })
    }
}

impl ScenarioGenome {
    /// Generates a fresh random scenario seeded with the given per-flow
    /// algorithms (all flows initially run the whole scenario; mutation
    /// explores staggered schedules). `traffic_max_packets > 0` attaches a
    /// random cross-traffic sub-genome with that packet cap.
    pub fn generate(
        base_flows: &[CcaKind],
        max_flows: usize,
        duration: SimDuration,
        traffic_max_packets: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            base_flows.len() >= MIN_FAIRNESS_FLOWS,
            "a fairness scenario needs at least {MIN_FAIRNESS_FLOWS} flows"
        );
        let flows = base_flows
            .iter()
            .map(|&cca| FlowGene::whole_run(cca))
            .collect();
        let traffic = if traffic_max_packets > 0 {
            Some(TrafficGenome::generate(traffic_max_packets, duration, rng))
        } else {
            None
        };
        let mut genome = ScenarioGenome {
            flows,
            duration,
            max_flows: max_flows.max(base_flows.len()),
            cca_pool: base_flows.to_vec(),
            traffic,
            min_flows: MIN_FAIRNESS_FLOWS,
            qdisc: None,
        };
        // One schedule perturbation so the initial population is diverse.
        genome.perturb_schedule(rng);
        genome
    }

    /// Generates a fresh AQM scenario: a single always-on `cca` flow, a
    /// random cross-traffic helper (when `traffic_max_packets > 0`) and a
    /// random qdisc gene drawn from `choice`. The GA evolves the gateway
    /// (discipline, parameters, ECN) and the traffic against the fixed CCA.
    pub fn generate_aqm(
        cca: CcaKind,
        duration: SimDuration,
        traffic_max_packets: usize,
        choice: QdiscChoice,
        rng: &mut SimRng,
    ) -> Self {
        let traffic = if traffic_max_packets > 0 {
            Some(TrafficGenome::generate(traffic_max_packets, duration, rng))
        } else {
            None
        };
        ScenarioGenome {
            flows: vec![FlowGene::whole_run(cca)],
            duration,
            max_flows: 1,
            cca_pool: vec![cca],
            traffic,
            min_flows: 1,
            qdisc: Some(QdiscGene::generate(choice, rng)),
        }
    }

    /// The number of concurrent flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn random_time(&self, lo_frac: f64, hi_frac: f64, rng: &mut SimRng) -> SimTime {
        let span = self.duration.as_nanos() as f64;
        let lo = (span * lo_frac) as u64;
        let hi = ((span * hi_frac) as u64).max(lo + 1);
        SimTime::from_nanos(rng.gen_range_u64(lo, hi))
    }

    /// Randomly perturbs one competing flow's schedule. Flow 0 is the
    /// always-on incumbent (the algorithm under test, whose stats mirror
    /// the legacy single-flow fields): it keeps `start = 0` and never gains
    /// a stop time, so every scenario has a flow to be unfair *to*.
    fn perturb_schedule(&mut self, rng: &mut SimRng) {
        if self.flows.len() < 2 {
            return;
        }
        let idx = rng.gen_range_usize(1, self.flows.len());
        if rng.gen_bool(0.7) {
            self.flows[idx].start = self.random_time(0.0, 0.5, rng);
        }
        // Half the time toggle/resample the stop time.
        if rng.gen_bool(0.5) {
            self.flows[idx].stop = None;
        } else {
            let start = self.flows[idx].start;
            let earliest = start + self.duration.div(10).max(SimDuration::from_millis(100));
            let stop = self.random_time(0.5, 1.0, rng).max(earliest);
            self.flows[idx].stop = Some(stop.min(SimTime::ZERO + self.duration));
        }
    }

    /// Swaps one *competing* flow's algorithm. Flow 0's CCA is pinned: the
    /// finding id and corpus bucket are derived from it (`Campaign::cca`),
    /// so a `bbr-fairness-…` finding must actually contain a BBR flow.
    fn swap_cca(&mut self, rng: &mut SimRng) {
        if self.cca_pool.is_empty() || self.flows.len() < 2 {
            return;
        }
        let idx = rng.gen_range_usize(1, self.flows.len());
        let cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
        self.flows[idx].cca = cca;
    }

    fn add_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() >= self.max_flows || self.cca_pool.is_empty() {
            return;
        }
        let cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
        let start = self.random_time(0.0, 0.7, rng);
        self.flows.push(FlowGene {
            cca,
            start,
            stop: None,
        });
    }

    fn remove_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() <= self.min_flows.max(1) {
            return;
        }
        // Never remove flow 0 (the incumbent).
        let idx = rng.gen_range_usize(1, self.flows.len());
        self.flows.remove(idx);
    }
}

impl Genome for ScenarioGenome {
    fn mutate(&self, rng: &mut SimRng) -> Self {
        let mut child = self.clone();
        // Genomes with qdisc genes get a sixth mutation arm; plain fairness
        // genomes keep the original five (and the original rng stream).
        let arms = if child.qdisc.is_some() { 6 } else { 5 };
        match rng.gen_range_usize(0, arms) {
            0 => child.perturb_schedule(rng),
            1 => child.swap_cca(rng),
            2 => child.add_flow(rng),
            3 => child.remove_flow(rng),
            4 => {
                if let Some(traffic) = &child.traffic {
                    child.traffic = Some(traffic.mutate(rng));
                } else if child.flows.len() >= 2 {
                    child.perturb_schedule(rng);
                } else if let Some(gene) = &child.qdisc {
                    child.qdisc = Some(gene.mutate(rng));
                }
            }
            _ => {
                let gene = child.qdisc.expect("arm 5 only exists with qdisc genes");
                child.qdisc = Some(gene.mutate(rng));
            }
        }
        child
    }

    fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
        // Splice flow lists: take the first `split` flow genes from one
        // parent and fill the rest from the other, capped at max_flows.
        let (a, b) = if rng.gen_bool(0.5) {
            (self, other)
        } else {
            (other, self)
        };
        let split = rng.gen_range_usize(1, a.flows.len() + 1);
        let mut flows: Vec<FlowGene> = a.flows.iter().copied().take(split).collect();
        flows.extend(b.flows.iter().copied().skip(split));
        let min_flows = self.min_flows.max(1);
        flows.truncate(self.max_flows.max(min_flows));
        while flows.len() < min_flows {
            flows.push(b.flows[flows.len() % b.flows.len()]);
        }
        // Flow 0 stays an always-on incumbent.
        flows[0].start = SimTime::ZERO;
        let traffic = match (&self.traffic, &other.traffic) {
            (Some(x), Some(y)) => x.crossover(y, rng),
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (None, None) => None,
        };
        // Qdisc genes cross by inheriting one parent's gene wholesale (the
        // discipline parameters are too entangled to splice field-wise).
        // The rng is only consulted when a gene exists, so plain fairness
        // crossover keeps its original stream.
        let qdisc = match (&self.qdisc, &other.qdisc) {
            (Some(x), Some(y)) => Some(if rng.gen_bool(0.5) { *x } else { *y }),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        };
        Some(ScenarioGenome {
            flows,
            duration: self.duration,
            max_flows: self.max_flows,
            cca_pool: self.cca_pool.clone(),
            traffic,
            min_flows: self.min_flows,
            qdisc,
        })
    }

    fn packet_count(&self) -> usize {
        self.traffic.as_ref().map(|t| t.packet_count()).unwrap_or(0)
    }

    fn validate(&self) -> Result<(), String> {
        if self.flows.is_empty() {
            return Err("scenario genome has no flows".into());
        }
        if self.flows.len() < self.min_flows {
            return Err(format!(
                "scenario genome has {} flows, minimum is {}",
                self.flows.len(),
                self.min_flows
            ));
        }
        if self.flows.len() > self.max_flows.max(self.min_flows) {
            return Err(format!(
                "scenario genome has {} flows, cap is {}",
                self.flows.len(),
                self.max_flows
            ));
        }
        if let Some(gene) = &self.qdisc {
            gene.discipline.validate()?;
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.start.as_nanos() > self.duration.as_nanos() {
                return Err(format!("flow {i} starts beyond the scenario duration"));
            }
            if let Some(stop) = f.stop {
                if stop <= f.start {
                    return Err(format!("flow {i} stops before it starts"));
                }
            }
        }
        if let Some(traffic) = &self.traffic {
            traffic.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimDuration = SimDuration::from_secs(5);

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    fn base() -> ScenarioGenome {
        let mut rng = rng();
        ScenarioGenome::generate(&[CcaKind::Bbr, CcaKind::Reno], 4, DUR, 500, &mut rng)
    }

    #[test]
    fn generation_produces_valid_scenarios() {
        let g = base();
        g.validate().unwrap();
        assert_eq!(g.flow_count(), 2);
        assert_eq!(g.flows[0].cca, CcaKind::Bbr);
        assert_eq!(g.flows[1].cca, CcaKind::Reno);
        assert_eq!(g.flows[0].start, SimTime::ZERO, "flow 0 is always-on");
        assert!(g.traffic.is_some());
    }

    #[test]
    fn generation_without_traffic_budget_has_no_traffic() {
        let mut rng = rng();
        let g = ScenarioGenome::generate(&[CcaKind::Reno, CcaKind::Reno], 3, DUR, 0, &mut rng);
        assert!(g.traffic.is_none());
        assert_eq!(g.packet_count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn mutation_keeps_invariants_and_explores() {
        let g = base();
        let mut rng = rng();
        let mut saw_flow_count_change = false;
        let mut saw_schedule_change = false;
        let mut current = g.clone();
        for _ in 0..100 {
            current = current.mutate(&mut rng);
            current.validate().unwrap();
            assert!(current.flow_count() >= MIN_FAIRNESS_FLOWS);
            assert!(current.flow_count() <= 4);
            if current.flow_count() != g.flow_count() {
                saw_flow_count_change = true;
            }
            if current.flows[..2.min(current.flows.len())]
                .iter()
                .zip(&g.flows)
                .any(|(a, b)| a.start != b.start || a.stop != b.stop)
            {
                saw_schedule_change = true;
            }
        }
        assert!(saw_flow_count_change, "mutation should add/remove flows");
        assert!(saw_schedule_change, "mutation should perturb schedules");
    }

    #[test]
    fn crossover_combines_parents() {
        let mut rng = rng();
        let a = ScenarioGenome::generate(&[CcaKind::Bbr, CcaKind::Reno], 4, DUR, 300, &mut rng);
        let b = ScenarioGenome::generate(&[CcaKind::Cubic, CcaKind::Vegas], 4, DUR, 300, &mut rng);
        for _ in 0..20 {
            let child = a.crossover(&b, &mut rng).unwrap();
            child.validate().unwrap();
            assert!(child.flow_count() >= MIN_FAIRNESS_FLOWS);
            assert_eq!(child.flows[0].start, SimTime::ZERO);
            for f in &child.flows {
                assert!(
                    a.flows.iter().any(|x| x.cca == f.cca)
                        || b.flows.iter().any(|x| x.cca == f.cca),
                    "child CCAs come from a parent"
                );
            }
        }
    }

    #[test]
    fn validate_rejects_bad_schedules() {
        let mut g = base();
        g.flows[1].stop = Some(g.flows[1].start);
        assert!(g.validate().is_err());
        let mut g = base();
        g.flows[1].start = SimTime::ZERO + DUR + SimDuration::from_secs(1);
        assert!(g.validate().is_err());
        let mut g = base();
        g.flows.clear();
        assert!(g.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let g = base();
        let json = serde_json::to_string(&g).unwrap();
        let back: ScenarioGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn fairness_genome_serde_omits_aqm_fields() {
        // Fairness genomes (min_flows = 2, no qdisc gene) must serialize
        // exactly as before the qdisc layer existed: scenario findings from
        // older corpora re-serialize byte-identically.
        let g = base();
        let json = serde_json::to_string(&g).unwrap();
        assert!(!json.contains("min_flows"));
        assert!(!json.contains("qdisc"));
        // Pre-AQM JSON (no such fields) parses to the defaults.
        let back: ScenarioGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.min_flows, MIN_FAIRNESS_FLOWS);
        assert!(back.qdisc.is_none());
    }

    fn aqm_base() -> ScenarioGenome {
        let mut rng = rng();
        ScenarioGenome::generate_aqm(CcaKind::Reno, DUR, 500, QdiscChoice::Any, &mut rng)
    }

    #[test]
    fn aqm_generation_produces_valid_single_flow_scenarios() {
        let g = aqm_base();
        g.validate().unwrap();
        assert_eq!(g.flow_count(), 1);
        assert_eq!(g.min_flows, 1);
        assert_eq!(g.flows[0].cca, CcaKind::Reno);
        assert_eq!(g.flows[0].start, SimTime::ZERO);
        let gene = g.qdisc.expect("aqm genomes carry a qdisc gene");
        gene.discipline.validate().unwrap();
        assert!(g.traffic.is_some());
    }

    #[test]
    fn aqm_genome_serde_roundtrips_with_qdisc_fields() {
        let g = aqm_base();
        let json = serde_json::to_string(&g).unwrap();
        assert!(json.contains("min_flows"));
        assert!(json.contains("qdisc"));
        let back: ScenarioGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn qdisc_choice_restriction_is_honoured_across_mutation() {
        for (choice, expect) in [(QdiscChoice::Red, "red"), (QdiscChoice::CoDel, "codel")] {
            let mut rng = rng();
            let mut g = ScenarioGenome::generate_aqm(CcaKind::Bbr, DUR, 200, choice, &mut rng);
            for _ in 0..200 {
                g = g.mutate(&mut rng);
                g.validate().unwrap();
                let gene = g.qdisc.expect("mutation never loses the qdisc gene");
                assert_eq!(
                    gene.discipline.name(),
                    expect,
                    "restricted hunt escaped its discipline"
                );
            }
        }
    }

    #[test]
    fn aqm_mutation_explores_disciplines_params_and_ecn() {
        let mut rng = rng();
        let g = aqm_base();
        let mut saw_red = false;
        let mut saw_codel = false;
        let mut saw_ecn_both = (false, false);
        let mut saw_param_change = false;
        let mut current = g.clone();
        for _ in 0..300 {
            let next = current.mutate(&mut rng);
            next.validate().unwrap();
            assert_eq!(next.flow_count(), 1, "max_flows=1 keeps the flow solo");
            let gene = next.qdisc.unwrap();
            match gene.discipline {
                Qdisc::Red { .. } => saw_red = true,
                Qdisc::CoDel { .. } => saw_codel = true,
                Qdisc::DropTail => {}
            }
            if gene.ecn {
                saw_ecn_both.0 = true;
            } else {
                saw_ecn_both.1 = true;
            }
            if let (Some(a), Some(b)) = (current.qdisc, next.qdisc) {
                if a.discipline.name() == b.discipline.name() && a.discipline != b.discipline {
                    saw_param_change = true;
                }
            }
            current = next;
        }
        assert!(saw_red && saw_codel, "Any must explore both disciplines");
        assert!(saw_ecn_both.0 && saw_ecn_both.1, "ECN must toggle");
        assert!(saw_param_change, "parameters must be perturbed in place");
    }

    #[test]
    fn aqm_crossover_inherits_a_parent_gene() {
        let mut rng = rng();
        let a = ScenarioGenome::generate_aqm(CcaKind::Reno, DUR, 200, QdiscChoice::Red, &mut rng);
        let b = ScenarioGenome::generate_aqm(CcaKind::Reno, DUR, 200, QdiscChoice::CoDel, &mut rng);
        let mut saw = (false, false);
        for _ in 0..40 {
            let child = a.crossover(&b, &mut rng).unwrap();
            child.validate().unwrap();
            assert_eq!(child.flow_count(), 1, "min_flows=1: no padding to 2 flows");
            let gene = child.qdisc.expect("child inherits a qdisc gene");
            assert!(
                gene == a.qdisc.unwrap() || gene == b.qdisc.unwrap(),
                "gene comes from a parent"
            );
            match gene.discipline {
                Qdisc::Red { .. } => saw.0 = true,
                Qdisc::CoDel { .. } => saw.1 = true,
                Qdisc::DropTail => {}
            }
        }
        assert!(saw.0 && saw.1, "both parents' genes get inherited");
    }
}
