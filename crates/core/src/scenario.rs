//! Scenario genomes for fairness fuzzing: what the GA evolves when it hunts
//! multi-flow interaction bugs.
//!
//! A [`ScenarioGenome`] describes a complete multi-flow scenario: how many
//! congestion-controlled flows share the bottleneck, which algorithm each
//! runs, each flow's start/stop schedule, and an optional cross-traffic
//! sub-genome (the paper's traffic-fuzzing genome, reused as a building
//! block). Mutation perturbs schedules, swaps algorithms from a configured
//! pool, adds/removes flows, and mutates the traffic sub-genome; crossover
//! splices flow lists and crosses the traffic sub-genomes.

use crate::genome::{Genome, TrafficGenome};
use ccfuzz_cca::CcaKind;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Minimum flows a fairness scenario keeps (unfairness needs competition).
pub const MIN_FAIRNESS_FLOWS: usize = 2;

/// One evolved flow: its algorithm and schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowGene {
    /// Congestion control algorithm the flow runs.
    pub cca: CcaKind,
    /// When the flow starts sending.
    pub start: SimTime,
    /// When the flow stops sending (`None` = runs to the end).
    pub stop: Option<SimTime>,
}

impl FlowGene {
    /// A flow that runs `cca` for the whole scenario.
    pub fn whole_run(cca: CcaKind) -> Self {
        FlowGene {
            cca,
            start: SimTime::ZERO,
            stop: None,
        }
    }
}

/// A multi-flow scenario genome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGenome {
    /// The competing flows (at least [`MIN_FAIRNESS_FLOWS`], at most
    /// `max_flows`). Flow 0 is the primary flow.
    pub flows: Vec<FlowGene>,
    /// Scenario duration.
    pub duration: SimDuration,
    /// Maximum number of concurrent flows mutation may grow to.
    pub max_flows: usize,
    /// Algorithms mutation may draw from when swapping or adding flows.
    pub cca_pool: Vec<CcaKind>,
    /// Optional unresponsive cross-traffic helper (a traffic sub-genome);
    /// `None` disables cross traffic entirely.
    pub traffic: Option<TrafficGenome>,
}

impl ScenarioGenome {
    /// Generates a fresh random scenario seeded with the given per-flow
    /// algorithms (all flows initially run the whole scenario; mutation
    /// explores staggered schedules). `traffic_max_packets > 0` attaches a
    /// random cross-traffic sub-genome with that packet cap.
    pub fn generate(
        base_flows: &[CcaKind],
        max_flows: usize,
        duration: SimDuration,
        traffic_max_packets: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            base_flows.len() >= MIN_FAIRNESS_FLOWS,
            "a fairness scenario needs at least {MIN_FAIRNESS_FLOWS} flows"
        );
        let flows = base_flows
            .iter()
            .map(|&cca| FlowGene::whole_run(cca))
            .collect();
        let traffic = if traffic_max_packets > 0 {
            Some(TrafficGenome::generate(traffic_max_packets, duration, rng))
        } else {
            None
        };
        let mut genome = ScenarioGenome {
            flows,
            duration,
            max_flows: max_flows.max(base_flows.len()),
            cca_pool: base_flows.to_vec(),
            traffic,
        };
        // One schedule perturbation so the initial population is diverse.
        genome.perturb_schedule(rng);
        genome
    }

    /// The number of concurrent flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn random_time(&self, lo_frac: f64, hi_frac: f64, rng: &mut SimRng) -> SimTime {
        let span = self.duration.as_nanos() as f64;
        let lo = (span * lo_frac) as u64;
        let hi = ((span * hi_frac) as u64).max(lo + 1);
        SimTime::from_nanos(rng.gen_range_u64(lo, hi))
    }

    /// Randomly perturbs one competing flow's schedule. Flow 0 is the
    /// always-on incumbent (the algorithm under test, whose stats mirror
    /// the legacy single-flow fields): it keeps `start = 0` and never gains
    /// a stop time, so every scenario has a flow to be unfair *to*.
    fn perturb_schedule(&mut self, rng: &mut SimRng) {
        if self.flows.len() < 2 {
            return;
        }
        let idx = rng.gen_range_usize(1, self.flows.len());
        if rng.gen_bool(0.7) {
            self.flows[idx].start = self.random_time(0.0, 0.5, rng);
        }
        // Half the time toggle/resample the stop time.
        if rng.gen_bool(0.5) {
            self.flows[idx].stop = None;
        } else {
            let start = self.flows[idx].start;
            let earliest = start + self.duration.div(10).max(SimDuration::from_millis(100));
            let stop = self.random_time(0.5, 1.0, rng).max(earliest);
            self.flows[idx].stop = Some(stop.min(SimTime::ZERO + self.duration));
        }
    }

    /// Swaps one *competing* flow's algorithm. Flow 0's CCA is pinned: the
    /// finding id and corpus bucket are derived from it (`Campaign::cca`),
    /// so a `bbr-fairness-…` finding must actually contain a BBR flow.
    fn swap_cca(&mut self, rng: &mut SimRng) {
        if self.cca_pool.is_empty() || self.flows.len() < 2 {
            return;
        }
        let idx = rng.gen_range_usize(1, self.flows.len());
        let cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
        self.flows[idx].cca = cca;
    }

    fn add_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() >= self.max_flows || self.cca_pool.is_empty() {
            return;
        }
        let cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
        let start = self.random_time(0.0, 0.7, rng);
        self.flows.push(FlowGene {
            cca,
            start,
            stop: None,
        });
    }

    fn remove_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() <= MIN_FAIRNESS_FLOWS {
            return;
        }
        // Never remove flow 0 (the incumbent).
        let idx = rng.gen_range_usize(1, self.flows.len());
        self.flows.remove(idx);
    }
}

impl Genome for ScenarioGenome {
    fn mutate(&self, rng: &mut SimRng) -> Self {
        let mut child = self.clone();
        match rng.gen_range_usize(0, 5) {
            0 => child.perturb_schedule(rng),
            1 => child.swap_cca(rng),
            2 => child.add_flow(rng),
            3 => child.remove_flow(rng),
            _ => {
                if let Some(traffic) = &child.traffic {
                    child.traffic = Some(traffic.mutate(rng));
                } else {
                    child.perturb_schedule(rng);
                }
            }
        }
        child
    }

    fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
        // Splice flow lists: take the first `split` flow genes from one
        // parent and fill the rest from the other, capped at max_flows.
        let (a, b) = if rng.gen_bool(0.5) {
            (self, other)
        } else {
            (other, self)
        };
        let split = rng.gen_range_usize(1, a.flows.len() + 1);
        let mut flows: Vec<FlowGene> = a.flows.iter().copied().take(split).collect();
        flows.extend(b.flows.iter().copied().skip(split));
        flows.truncate(self.max_flows.max(MIN_FAIRNESS_FLOWS));
        while flows.len() < MIN_FAIRNESS_FLOWS {
            flows.push(b.flows[flows.len() % b.flows.len()]);
        }
        // Flow 0 stays an always-on incumbent.
        flows[0].start = SimTime::ZERO;
        let traffic = match (&self.traffic, &other.traffic) {
            (Some(x), Some(y)) => x.crossover(y, rng),
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (None, None) => None,
        };
        Some(ScenarioGenome {
            flows,
            duration: self.duration,
            max_flows: self.max_flows,
            cca_pool: self.cca_pool.clone(),
            traffic,
        })
    }

    fn packet_count(&self) -> usize {
        self.traffic.as_ref().map(|t| t.packet_count()).unwrap_or(0)
    }

    fn validate(&self) -> Result<(), String> {
        if self.flows.is_empty() {
            return Err("scenario genome has no flows".into());
        }
        if self.flows.len() > self.max_flows.max(MIN_FAIRNESS_FLOWS) {
            return Err(format!(
                "scenario genome has {} flows, cap is {}",
                self.flows.len(),
                self.max_flows
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.start.as_nanos() > self.duration.as_nanos() {
                return Err(format!("flow {i} starts beyond the scenario duration"));
            }
            if let Some(stop) = f.stop {
                if stop <= f.start {
                    return Err(format!("flow {i} stops before it starts"));
                }
            }
        }
        if let Some(traffic) = &self.traffic {
            traffic.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimDuration = SimDuration::from_secs(5);

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    fn base() -> ScenarioGenome {
        let mut rng = rng();
        ScenarioGenome::generate(&[CcaKind::Bbr, CcaKind::Reno], 4, DUR, 500, &mut rng)
    }

    #[test]
    fn generation_produces_valid_scenarios() {
        let g = base();
        g.validate().unwrap();
        assert_eq!(g.flow_count(), 2);
        assert_eq!(g.flows[0].cca, CcaKind::Bbr);
        assert_eq!(g.flows[1].cca, CcaKind::Reno);
        assert_eq!(g.flows[0].start, SimTime::ZERO, "flow 0 is always-on");
        assert!(g.traffic.is_some());
    }

    #[test]
    fn generation_without_traffic_budget_has_no_traffic() {
        let mut rng = rng();
        let g = ScenarioGenome::generate(&[CcaKind::Reno, CcaKind::Reno], 3, DUR, 0, &mut rng);
        assert!(g.traffic.is_none());
        assert_eq!(g.packet_count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn mutation_keeps_invariants_and_explores() {
        let g = base();
        let mut rng = rng();
        let mut saw_flow_count_change = false;
        let mut saw_schedule_change = false;
        let mut current = g.clone();
        for _ in 0..100 {
            current = current.mutate(&mut rng);
            current.validate().unwrap();
            assert!(current.flow_count() >= MIN_FAIRNESS_FLOWS);
            assert!(current.flow_count() <= 4);
            if current.flow_count() != g.flow_count() {
                saw_flow_count_change = true;
            }
            if current.flows[..2.min(current.flows.len())]
                .iter()
                .zip(&g.flows)
                .any(|(a, b)| a.start != b.start || a.stop != b.stop)
            {
                saw_schedule_change = true;
            }
        }
        assert!(saw_flow_count_change, "mutation should add/remove flows");
        assert!(saw_schedule_change, "mutation should perturb schedules");
    }

    #[test]
    fn crossover_combines_parents() {
        let mut rng = rng();
        let a = ScenarioGenome::generate(&[CcaKind::Bbr, CcaKind::Reno], 4, DUR, 300, &mut rng);
        let b = ScenarioGenome::generate(&[CcaKind::Cubic, CcaKind::Vegas], 4, DUR, 300, &mut rng);
        for _ in 0..20 {
            let child = a.crossover(&b, &mut rng).unwrap();
            child.validate().unwrap();
            assert!(child.flow_count() >= MIN_FAIRNESS_FLOWS);
            assert_eq!(child.flows[0].start, SimTime::ZERO);
            for f in &child.flows {
                assert!(
                    a.flows.iter().any(|x| x.cca == f.cca)
                        || b.flows.iter().any(|x| x.cca == f.cca),
                    "child CCAs come from a parent"
                );
            }
        }
    }

    #[test]
    fn validate_rejects_bad_schedules() {
        let mut g = base();
        g.flows[1].stop = Some(g.flows[1].start);
        assert!(g.validate().is_err());
        let mut g = base();
        g.flows[1].start = SimTime::ZERO + DUR + SimDuration::from_secs(1);
        assert!(g.validate().is_err());
        let mut g = base();
        g.flows.clear();
        assert!(g.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let g = base();
        let json = serde_json::to_string(&g).unwrap();
        let back: ScenarioGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
