//! Island sharding for multi-process campaigns.
//!
//! A distributed campaign splits the GA's islands across worker processes.
//! Each worker constructs the *full* fuzzer from the campaign seed — island
//! initialisation and evolution draw from pure per-island forks of the master
//! RNG, so a worker that only ever advances its own contiguous island range
//! reproduces exactly the per-island trajectories of a single-process run.
//! The coordinator owns every piece of cross-island state (global best,
//! stall counter, generation history, panic log) and rebuilds it from the
//! [`ShardReport`] each worker sends after evaluating a generation.
//!
//! The merge is engineered to be *byte-identical* to the single-process
//! bookkeeping, not merely equivalent:
//!
//! * the global best scan walks reports in island order with the same
//!   strict-`>` comparison, so ties resolve to the same individual;
//! * each worker reports its individuals in locally-sorted order, and the
//!   coordinator stable-merges those runs (earliest island range wins ties)
//!   — a stable sort of a concatenation equals a stable merge of
//!   stably-sorted parts, so the merged sequence *is* the single-process
//!   sorted population and every mean is summed in the identical order;
//! * panic records arrive pre-sorted per worker and are appended in island
//!   order, matching the canonical (island, index) order of the log.
//!
//! The one sharding-visible deviation: annealing draws from one sequential
//! RNG stream shared by all islands, so annealed campaigns are deterministic
//! for a *fixed* worker count but only match the single-process trajectory
//! at one worker. Non-annealed campaigns match at any worker count.

use crate::evaluate::EvalOutcome;
use crate::fuzzer::{
    FuzzResult, FuzzerSnapshot, GaParams, GenerationSummary, Individual, PanicRecord,
    FUZZER_SNAPSHOT_SCHEMA,
};
use crate::genome::Genome;
use ccfuzz_obs::OperatorSnapshot;
use serde::value::{map_get, DeError, Value};
use serde::{Deserialize, Serialize};

/// Splits `n_islands` islands into at most `n_workers` contiguous,
/// near-equal ranges, earlier ranges taking the remainder. Returns fewer
/// ranges than workers when there are fewer islands than workers.
pub fn shard_ranges(n_islands: usize, n_workers: usize) -> Vec<(usize, usize)> {
    assert!(n_islands > 0, "need at least one island");
    assert!(n_workers > 0, "need at least one worker");
    let workers = n_workers.min(n_islands);
    let base = n_islands / workers;
    let extra = n_islands % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Number of individuals each island contributes to a migration round —
/// the same rounding and clamping the in-process ring migration applies.
pub fn migration_k(params: &GaParams) -> usize {
    ((params.population_per_island as f64 * params.migration_fraction).round() as usize)
        .clamp(1, params.population_per_island / 2 + 1)
}

/// Score and packet counters of one individual, in the worker's sorted
/// order. The coordinator merges these runs to reproduce the global
/// population ordering without shipping genomes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopStat {
    /// Evaluated score.
    pub score: f64,
    /// Packets delivered by the flow under test.
    pub delivered: u64,
    /// Packets sent (including retransmissions).
    pub sent: u64,
}

/// What one worker reports after evaluating one generation of its islands.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport<G> {
    /// Generation these islands just evaluated.
    pub generation: u32,
    /// First global island index this worker owns.
    pub island_start: usize,
    /// Simulations this evaluation round added.
    pub eval_delta: usize,
    /// Best evaluated score of each owned island, in island order.
    pub island_best: Vec<f64>,
    /// Every owned individual's stats in locally-sorted (stable, score
    /// descending) order; the coordinator stable-merges these runs.
    pub stats: Vec<TopStat>,
    /// The worker's best-candidate genome (first strict maximum in the
    /// owned flatten order), if anything was evaluated.
    pub best_genome: Option<G>,
    /// Outcome of the best candidate.
    pub best_outcome: Option<EvalOutcome>,
    /// Evaluation panics this round, pre-sorted by (island, index).
    pub panics: Vec<PanicRecord<G>>,
    /// Cumulative operator counters of the worker's local telemetry; the
    /// coordinator diffs consecutive reports into fleet-wide counters.
    pub operators: OperatorSnapshot,
}

impl<G: Serialize> Serialize for ShardReport<G> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("generation".to_string(), self.generation.to_value()),
            ("island_start".to_string(), self.island_start.to_value()),
            ("eval_delta".to_string(), self.eval_delta.to_value()),
            ("island_best".to_string(), self.island_best.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("best_genome".to_string(), self.best_genome.to_value()),
            ("best_outcome".to_string(), self.best_outcome.to_value()),
            ("panics".to_string(), self.panics.to_value()),
            ("operators".to_string(), self.operators.to_value()),
        ])
    }
}

impl<G: Deserialize> Deserialize for ShardReport<G> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map("ShardReport")?;
        Ok(ShardReport {
            generation: Deserialize::from_value(map_get(m, "generation")?)?,
            island_start: Deserialize::from_value(map_get(m, "island_start")?)?,
            eval_delta: Deserialize::from_value(map_get(m, "eval_delta")?)?,
            island_best: Deserialize::from_value(map_get(m, "island_best")?)?,
            stats: Deserialize::from_value(map_get(m, "stats")?)?,
            best_genome: Deserialize::from_value(map_get(m, "best_genome")?)?,
            best_outcome: Deserialize::from_value(map_get(m, "best_outcome")?)?,
            panics: Deserialize::from_value(map_get(m, "panics")?)?,
            operators: Deserialize::from_value(map_get(m, "operators")?)?,
        })
    }
}

/// The top-`k` individuals one island sends around the migration ring,
/// tagged with the global index of the island they left.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrantBatch<G> {
    /// Global index of the source island.
    pub src_island: usize,
    /// Its best individuals, cached outcomes included.
    pub migrants: Vec<Individual<G>>,
}

impl<G: Serialize> Serialize for MigrantBatch<G> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("src_island".to_string(), self.src_island.to_value()),
            ("migrants".to_string(), self.migrants.to_value()),
        ])
    }
}

impl<G: Deserialize> Deserialize for MigrantBatch<G> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map("MigrantBatch")?;
        Ok(MigrantBatch {
            src_island: Deserialize::from_value(map_get(m, "src_island")?)?,
            migrants: Deserialize::from_value(map_get(m, "migrants")?)?,
        })
    }
}

/// What the fleet should do after a generation's reports were absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenerationOutcome {
    /// Evolve the next generation (and run ring migration first when
    /// `migrate` is set).
    Evolve {
        /// Whether this boundary is a migration boundary.
        migrate: bool,
    },
    /// The campaign is over (final generation reached or stall limit hit);
    /// do not evolve.
    Completed,
}

/// Everything a caller needs to observe one absorbed generation.
#[derive(Clone, Debug)]
pub struct AbsorbResult {
    /// The merged per-generation summary (already pushed to history).
    pub summary: GenerationSummary,
    /// Best evaluated score of every island, in global island order.
    pub island_best: Vec<f64>,
    /// Whether the global best improved this generation.
    pub improved: bool,
    /// What the fleet should do next.
    pub next: GenerationOutcome,
}

/// The cross-island state of a distributed campaign. Mirrors the exact
/// bookkeeping of `Fuzzer::run_controlled`, fed by [`ShardReport`]s instead
/// of direct population access; see the module docs for the byte-identity
/// argument. `Clone` supports checkpoint/rollback: the supervisor keeps the
/// coordinator state captured at the last committed checkpoint and restores
/// it when the fleet is respawned.
#[derive(Clone, Debug)]
pub struct ShardCoordinator<G> {
    params: GaParams,
    evaluations: usize,
    next_generation: u32,
    stall: u32,
    best: Option<(G, EvalOutcome)>,
    history: Vec<GenerationSummary>,
    panics: Vec<PanicRecord<G>>,
}

impl<G: Genome> ShardCoordinator<G> {
    /// A fresh coordinator for a campaign with the given parameters.
    pub fn new(params: GaParams) -> Self {
        assert!(
            params.validate().is_ok(),
            "invalid GaParams: {:?}",
            params.validate()
        );
        ShardCoordinator {
            params,
            evaluations: 0,
            next_generation: 0,
            stall: 0,
            best: None,
            history: Vec::with_capacity(params.generations as usize),
            panics: Vec::new(),
        }
    }

    /// The generation the fleet evaluates next.
    pub fn next_generation(&self) -> u32 {
        self.next_generation
    }

    /// Simulations run so far across the fleet.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Evaluation panics absorbed so far.
    pub fn panic_count(&self) -> usize {
        self.panics.len()
    }

    /// The panic records absorbed so far, in canonical order.
    pub fn panics(&self) -> &[PanicRecord<G>] {
        &self.panics
    }

    /// Best score so far, if anything was evaluated.
    pub fn best_score(&self) -> Option<f64> {
        self.best.as_ref().map(|(_, o)| o.score)
    }

    /// Per-generation history accumulated so far.
    pub fn history(&self) -> &[GenerationSummary] {
        &self.history
    }

    /// The campaign parameters.
    pub fn params(&self) -> &GaParams {
        &self.params
    }

    /// Merges one generation's shard reports and applies the single-process
    /// loop's bookkeeping: best scan, summary + history, stall detection and
    /// the end-of-campaign checks. Reports must arrive in island order and
    /// cover every island exactly once.
    pub fn absorb_reports(&mut self, reports: &[ShardReport<G>]) -> Result<AbsorbResult, String> {
        let generation = self.next_generation;
        if reports.is_empty() {
            return Err("no shard reports to absorb".into());
        }
        let mut covered = 0usize;
        for (w, report) in reports.iter().enumerate() {
            if report.generation != generation {
                return Err(format!(
                    "report {w} is for generation {} but the fleet is at {generation}",
                    report.generation
                ));
            }
            if report.island_start != covered {
                return Err(format!(
                    "report {w} starts at island {} but islands up to {covered} are covered",
                    report.island_start
                ));
            }
            covered += report.island_best.len();
        }
        if covered != self.params.islands {
            return Err(format!(
                "reports cover {covered} islands but the campaign has {}",
                self.params.islands
            ));
        }

        // Global best scan: walking reports in island order with the same
        // strict comparison the single-process scan uses keeps tie-breaks
        // identical (first occurrence in flatten order wins).
        let mut improved = false;
        for report in reports {
            if let (Some(genome), Some(outcome)) = (&report.best_genome, &report.best_outcome) {
                if self
                    .best
                    .as_ref()
                    .map(|(_, b)| outcome.score > b.score)
                    .unwrap_or(true)
                {
                    self.best = Some((genome.clone(), *outcome));
                    improved = true;
                }
            }
        }

        self.evaluations += reports.iter().map(|r| r.eval_delta).sum::<usize>();
        for report in reports {
            self.panics.extend(report.panics.iter().cloned());
        }

        let merged = merge_sorted_stats(reports);
        let scores: Vec<f64> = merged.iter().map(|s| s.score).collect();
        let k = self
            .params
            .report_top_k
            .clamp(1, self.params.total_population());
        let mean = |values: &[f64]| {
            if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        let top_k = &merged[..k.min(merged.len())];
        let summary = GenerationSummary {
            generation,
            best_score: scores.first().copied().unwrap_or(0.0),
            mean_score: mean(&scores),
            top_k_mean_delivered: mean(
                &top_k.iter().map(|s| s.delivered as f64).collect::<Vec<_>>(),
            ),
            top_k_mean_sent: mean(&top_k.iter().map(|s| s.sent as f64).collect::<Vec<_>>()),
            evaluations: self.evaluations,
        };
        self.history.push(summary);
        let island_best: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.island_best.iter().copied())
            .collect();

        if improved {
            self.stall = 0;
        } else {
            self.stall += 1;
            if let Some(limit) = self.params.stall_generations {
                if self.stall >= limit {
                    self.next_generation = generation + 1;
                    return Ok(AbsorbResult {
                        summary,
                        island_best,
                        improved,
                        next: GenerationOutcome::Completed,
                    });
                }
            }
        }
        if generation + 1 == self.params.generations {
            self.next_generation = generation + 1;
            return Ok(AbsorbResult {
                summary,
                island_best,
                improved,
                next: GenerationOutcome::Completed,
            });
        }
        // Single-process ring migration silently no-ops below two islands;
        // the fleet skips the exchange round entirely in that case.
        let migrate = self.params.islands >= 2
            && self.params.migration_interval > 0
            && (generation + 1).is_multiple_of(self.params.migration_interval);
        Ok(AbsorbResult {
            summary,
            island_best,
            improved,
            next: GenerationOutcome::Evolve { migrate },
        })
    }

    /// Marks the generation boundary after the fleet evolved (and migrated):
    /// the state a checkpoint captures. Not called when
    /// [`absorb_reports`](Self::absorb_reports) already completed the
    /// campaign (it advances the boundary itself).
    pub fn finish_generation(&mut self) {
        self.next_generation += 1;
    }

    /// The campaign result, once the fleet stopped.
    pub fn result(&self) -> Result<FuzzResult<G>, String> {
        let (best_genome, best_outcome) = self
            .best
            .clone()
            .ok_or("campaign stopped before any individual was evaluated")?;
        Ok(FuzzResult {
            best_genome,
            best_outcome,
            history: self.history.clone(),
            total_evaluations: self.evaluations,
        })
    }

    /// Stitches the workers' final snapshots and the coordinator's
    /// cross-island state into the snapshot the single-process fuzzer would
    /// have produced: every island comes from the worker that owns it, the
    /// RNG streams come from the first worker (the master stream is static
    /// after construction), and best/stall/history/panics come from the
    /// coordinator. `finals` is `(start, end, snapshot)` per worker, in
    /// island order, covering every island exactly once.
    ///
    /// Caveat: with annealing and more than one worker, each worker advances
    /// its own annealing stream, so no single worker holds the global
    /// stream; the assembled `anneal_rng` is worker 0's view.
    pub fn assemble_snapshot(
        &self,
        finals: &[(usize, usize, FuzzerSnapshot<G>)],
    ) -> Result<FuzzerSnapshot<G>, String> {
        let mut covered = 0usize;
        for &(start, end, ref snap) in finals {
            if start != covered || end < start {
                return Err(format!(
                    "final snapshots do not tile the islands: range {start}..{end} after {covered}"
                ));
            }
            if snap.islands.len() != self.params.islands {
                return Err(format!(
                    "worker snapshot has {} islands but the campaign has {}",
                    snap.islands.len(),
                    self.params.islands
                ));
            }
            covered = end;
        }
        if covered != self.params.islands {
            return Err(format!(
                "final snapshots cover {covered} of {} islands",
                self.params.islands
            ));
        }
        let first = &finals.first().ok_or("no final snapshots to assemble")?.2;
        let islands = finals
            .iter()
            .flat_map(|(start, end, snap)| snap.islands[*start..*end].iter().cloned())
            .collect();
        Ok(FuzzerSnapshot {
            schema: FUZZER_SNAPSHOT_SCHEMA,
            params: self.params,
            rng: first.rng.clone(),
            anneal_rng: first.anneal_rng.clone(),
            islands,
            evaluations: self.evaluations,
            next_generation: self.next_generation,
            stall: self.stall,
            best_genome: self.best.as_ref().map(|(g, _)| g.clone()),
            best_outcome: self.best.as_ref().map(|(_, o)| *o),
            history: self.history.clone(),
            panics: self.panics.clone(),
        })
    }
}

/// Stable k-way merge of the workers' locally-sorted stat runs, preferring
/// the earliest run on ties — exactly the order a stable sort of the
/// concatenated populations produces, including NaN handling (incomparable
/// scores count as ties, like the single-process comparator).
fn merge_sorted_stats<G>(reports: &[ShardReport<G>]) -> Vec<TopStat> {
    let total: usize = reports.iter().map(|r| r.stats.len()).sum();
    let mut heads = vec![0usize; reports.len()];
    let mut merged = Vec::with_capacity(total);
    for _ in 0..total {
        let mut pick: Option<usize> = None;
        for (w, report) in reports.iter().enumerate() {
            if heads[w] >= report.stats.len() {
                continue;
            }
            match pick {
                None => pick = Some(w),
                Some(p) => {
                    let current = reports[p].stats[heads[p]].score;
                    let candidate = report.stats[heads[w]].score;
                    if candidate.partial_cmp(&current) == Some(std::cmp::Ordering::Greater) {
                        pick = Some(w);
                    }
                }
            }
        }
        let w = pick.expect("merge picks a run while elements remain");
        merged.push(reports[w].stats[heads[w]]);
        heads[w] += 1;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluator;
    use crate::fuzzer::{Fuzzer, RunControl};
    use crate::StopReason;
    use ccfuzz_netsim::rng::SimRng;

    #[derive(Clone, Debug, PartialEq)]
    struct ToyGenome(Vec<f64>);

    impl Serialize for ToyGenome {
        fn to_value(&self) -> Value {
            self.0.to_value()
        }
    }

    impl Deserialize for ToyGenome {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(ToyGenome(Deserialize::from_value(v)?))
        }
    }

    impl Genome for ToyGenome {
        fn mutate(&self, rng: &mut SimRng) -> Self {
            let mut v = self.0.clone();
            if v.is_empty() {
                return ToyGenome(v);
            }
            let idx = rng.gen_range_usize(0, v.len());
            v[idx] += rng.gen_range_f64(-0.5, 1.0);
            ToyGenome(v)
        }
        fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
            let split = rng.gen_range_usize(0, self.0.len() + 1);
            let mut v = self.0[..split].to_vec();
            v.extend_from_slice(&other.0[split.min(other.0.len())..]);
            Some(ToyGenome(v))
        }
        fn packet_count(&self) -> usize {
            self.0.len()
        }
        fn validate(&self) -> Result<(), String> {
            Ok(())
        }
    }

    struct ToyEvaluator;
    impl Evaluator<ToyGenome> for ToyEvaluator {
        fn evaluate(&self, genome: &ToyGenome) -> EvalOutcome {
            let score: f64 = genome.0.iter().sum();
            EvalOutcome {
                score,
                performance_score: score,
                delivered_packets: (score.abs() * 10.0) as u64 + 1,
                sent_packets: (score.abs() * 11.0) as u64 + 2,
                ..Default::default()
            }
        }
    }

    fn toy_init(rng: &mut SimRng) -> ToyGenome {
        ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
    }

    fn toy_params() -> GaParams {
        GaParams {
            islands: 3,
            population_per_island: 6,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 3,
            migration_fraction: 0.2,
            generations: 12,
            stall_generations: None,
            threads: 2,
            anneal: false,
            report_top_k: 4,
            seed: 7,
        }
    }

    /// Drives a fleet of in-process worker fuzzers through the full
    /// coordinator protocol: evaluate, absorb, evolve, migrate through the
    /// coordinator's canonical routing, finish. This is exactly the daemon's
    /// loop minus the sockets.
    fn run_sharded<E: Evaluator<ToyGenome>>(
        params: GaParams,
        evaluator: &E,
        init: fn(&mut SimRng) -> ToyGenome,
        n_workers: usize,
    ) -> (FuzzResult<ToyGenome>, FuzzerSnapshot<ToyGenome>) {
        let ranges = shard_ranges(params.islands, n_workers);
        let mut workers: Vec<Fuzzer<'_, ToyGenome, E>> = ranges
            .iter()
            .map(|_| Fuzzer::new(params, evaluator, init))
            .collect();
        let mut coordinator: ShardCoordinator<ToyGenome> = ShardCoordinator::new(params);
        loop {
            let reports: Vec<ShardReport<ToyGenome>> = workers
                .iter_mut()
                .zip(&ranges)
                .map(|(worker, &(start, end))| worker.shard_evaluate(start, end))
                .collect();
            let absorbed = coordinator.absorb_reports(&reports).unwrap();
            match absorbed.next {
                GenerationOutcome::Completed => break,
                GenerationOutcome::Evolve { migrate } => {
                    for (worker, &(start, end)) in workers.iter_mut().zip(&ranges) {
                        worker.shard_evolve(start, end);
                    }
                    if migrate {
                        let mut inbound: Vec<Vec<MigrantBatch<ToyGenome>>> =
                            ranges.iter().map(|_| Vec::new()).collect();
                        for (worker, &(start, end)) in workers.iter_mut().zip(&ranges) {
                            for batch in worker.shard_collect_migrants(start, end) {
                                let dst = (batch.src_island + 1) % params.islands;
                                let owner = ranges
                                    .iter()
                                    .position(|&(s, e)| dst >= s && dst < e)
                                    .unwrap();
                                inbound[owner].push(batch);
                            }
                        }
                        for (worker, batches) in workers.iter_mut().zip(inbound) {
                            worker.shard_apply_migrants(batches);
                        }
                    }
                    coordinator.finish_generation();
                }
            }
            for worker in &mut workers {
                worker.set_next_generation(coordinator.next_generation());
            }
        }
        for worker in &mut workers {
            worker.set_next_generation(coordinator.next_generation());
        }
        let finals: Vec<(usize, usize, FuzzerSnapshot<ToyGenome>)> = workers
            .iter()
            .zip(&ranges)
            .map(|(worker, &(start, end))| (start, end, worker.snapshot()))
            .collect();
        let snapshot = coordinator.assemble_snapshot(&finals).unwrap();
        (coordinator.result().unwrap(), snapshot)
    }

    #[test]
    fn shard_ranges_tile_the_islands() {
        for n_islands in 1..=23usize {
            for n_workers in 1..=8usize {
                let ranges = shard_ranges(n_islands, n_workers);
                assert!(ranges.len() <= n_workers);
                assert_eq!(ranges.first().unwrap().0, 0);
                assert_eq!(ranges.last().unwrap().1, n_islands);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "ranges must be contiguous");
                }
                let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
                let max = sizes.iter().max().unwrap();
                let min = sizes.iter().min().unwrap();
                assert!(max - min <= 1, "balanced split: {sizes:?}");
                assert!(*min >= 1, "no empty shard: {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_run_matches_single_process_for_any_worker_count() {
        let params = toy_params();
        let evaluator = ToyEvaluator;
        let mut control = Fuzzer::new(params, &evaluator, toy_init);
        let (expected, stop) = control.run_controlled(&mut RunControl::default());
        assert_eq!(stop, StopReason::Completed);
        let expected_snapshot = control.snapshot();

        for n_workers in 1..=4usize {
            let (result, snapshot) = run_sharded(params, &evaluator, toy_init, n_workers);
            assert_eq!(
                result.best_genome, expected.best_genome,
                "best genome diverged at {n_workers} workers"
            );
            assert_eq!(result.best_outcome, expected.best_outcome);
            assert_eq!(
                result.history, expected.history,
                "history diverged at {n_workers} workers"
            );
            assert_eq!(result.total_evaluations, expected.total_evaluations);
            assert_eq!(
                snapshot, expected_snapshot,
                "assembled snapshot diverged at {n_workers} workers"
            );
        }
    }

    #[test]
    fn sharded_stall_break_matches_single_process() {
        struct ConstantEvaluator;
        impl Evaluator<ToyGenome> for ConstantEvaluator {
            fn evaluate(&self, _genome: &ToyGenome) -> EvalOutcome {
                EvalOutcome {
                    score: 1.0,
                    ..Default::default()
                }
            }
        }
        let mut params = toy_params();
        params.generations = 40;
        params.stall_generations = Some(3);
        let evaluator = ConstantEvaluator;
        let init = |_rng: &mut SimRng| ToyGenome(vec![1.0; 3]);
        let mut control = Fuzzer::new(params, &evaluator, init);
        let (expected, _) = control.run_controlled(&mut RunControl::default());

        let (result, _snapshot) = run_sharded(params, &evaluator, init, 2);
        assert_eq!(result.history, expected.history);
        assert!(
            result.history.len() < 40,
            "stall break should have stopped early"
        );
    }

    #[test]
    fn absorb_rejects_malformed_report_sets() {
        let params = toy_params();
        let mut coordinator: ShardCoordinator<ToyGenome> = ShardCoordinator::new(params);
        assert!(coordinator.absorb_reports(&[]).is_err());
        let report = |generation: u32, island_start: usize, islands: usize| ShardReport {
            generation,
            island_start,
            eval_delta: 0,
            island_best: vec![0.0; islands],
            stats: Vec::new(),
            best_genome: None::<ToyGenome>,
            best_outcome: None,
            panics: Vec::new(),
            operators: OperatorSnapshot::default(),
        };
        // Wrong generation.
        assert!(coordinator.absorb_reports(&[report(5, 0, 3)]).is_err());
        // Gap in coverage.
        assert!(coordinator
            .absorb_reports(&[report(0, 0, 1), report(0, 2, 1)])
            .is_err());
        // Partial coverage.
        assert!(coordinator.absorb_reports(&[report(0, 0, 2)]).is_err());
    }

    #[test]
    fn shard_report_roundtrips_through_json() {
        let report = ShardReport {
            generation: 3,
            island_start: 1,
            eval_delta: 12,
            island_best: vec![1.5, -0.25],
            stats: vec![TopStat {
                score: 1.5,
                delivered: 100,
                sent: 110,
            }],
            best_genome: Some(ToyGenome(vec![0.5, 0.25])),
            best_outcome: Some(EvalOutcome {
                score: 1.5,
                ..Default::default()
            }),
            panics: vec![PanicRecord {
                generation: 3,
                island: 1,
                index: 2,
                message: "boom".to_string(),
                genome: ToyGenome(vec![9.0]),
            }],
            operators: OperatorSnapshot {
                elite: 1,
                crossover: 2,
                mutation: 3,
                anneal: 0,
                migrant: 4,
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: ShardReport<ToyGenome> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);

        let batch = MigrantBatch {
            src_island: 2,
            migrants: vec![Individual {
                genome: ToyGenome(vec![1.0]),
                outcome: Some(EvalOutcome::default()),
            }],
        };
        let json = serde_json::to_string(&batch).unwrap();
        let back: MigrantBatch<ToyGenome> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
    }
}
