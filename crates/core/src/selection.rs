//! Rank-based selection (§3.5 of the paper).
//!
//! Traces are ranked by score (highest first); trace at rank `r` (1-based) is
//! selected with relative probability `1/r`. The same distribution is used
//! both for picking crossover parents and for picking mutation sources.

use ccfuzz_netsim::rng::SimRng;

/// Relative selection weights for `n` ranked individuals: `1/rank`.
pub fn rank_weights(n: usize) -> Vec<f64> {
    (1..=n).map(|rank| 1.0 / rank as f64).collect()
}

/// Picks one index (into the ranked ordering) with probability ∝ `1/rank`.
pub fn pick_ranked(n: usize, rng: &mut SimRng) -> usize {
    if n == 0 {
        return 0;
    }
    let weights = rank_weights(n);
    rng.pick_weighted(&weights).unwrap_or(0)
}

/// Picks a pair of distinct indices (if possible) for crossover.
pub fn pick_pair(n: usize, rng: &mut SimRng) -> (usize, usize) {
    if n <= 1 {
        return (0, 0);
    }
    let a = pick_ranked(n, rng);
    for _ in 0..16 {
        let b = pick_ranked(n, rng);
        if b != a {
            return (a, b);
        }
    }
    (a, (a + 1) % n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_one_over_rank() {
        let w = rank_weights(4);
        assert_eq!(w, vec![1.0, 0.5, 1.0 / 3.0, 0.25]);
        assert!(rank_weights(0).is_empty());
    }

    #[test]
    fn higher_ranks_are_picked_more_often() {
        let mut rng = SimRng::new(1);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[pick_ranked(5, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > counts[4]);
        // Ratio between rank 1 and rank 2 should be roughly 2:1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pair_members_are_distinct_when_possible() {
        let mut rng = SimRng::new(2);
        for _ in 0..1_000 {
            let (a, b) = pick_pair(10, &mut rng);
            assert_ne!(a, b);
            assert!(a < 10 && b < 10);
        }
        assert_eq!(pick_pair(1, &mut rng), (0, 0));
        assert_eq!(pick_pair(0, &mut rng), (0, 0));
    }

    #[test]
    fn single_element_selection() {
        let mut rng = SimRng::new(3);
        assert_eq!(pick_ranked(1, &mut rng), 0);
        assert_eq!(pick_ranked(0, &mut rng), 0);
    }
}
