//! The genetic-algorithm loop (Figure 1 of the paper) with island isolation.
//!
//! The population is split into islands [21]; each island evolves
//! independently (elitism + crossovers + mutations per generation), and every
//! `migration_interval` generations the best traces of each island migrate to
//! the next island in a ring. The paper's evaluation uses 500 traces across
//! 20 islands, kElite = 1, 30 % crossovers and 10 % migration every 10
//! generations.
//!
//! Evaluation of a generation is embarrassingly parallel and is spread over
//! worker threads with `crossbeam::scope`; every simulation is deterministic,
//! so the end-to-end fuzzing run is reproducible from its seed regardless of
//! the thread count.

use crate::evaluate::{EvalOutcome, EvalScratch, Evaluator};
use crate::genome::Genome;
use crate::selection::{pick_pair, pick_ranked};
use crate::shard::{migration_k, MigrantBatch, ShardReport, TopStat};
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_obs::{HuntTelemetry, LocalHistogram, Phase};
use parking_lot::Mutex;
use serde::value::{map_get, DeError, Value};
use serde::{Deserialize, Serialize};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Genetic-algorithm parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Number of islands (isolated sub-populations).
    pub islands: usize,
    /// Traces per island.
    pub population_per_island: usize,
    /// Traces that survive unchanged per island per generation.
    pub k_elite: usize,
    /// Fraction of each new generation produced by crossover (0.3 in the paper).
    pub crossover_fraction: f64,
    /// Generations between migrations (10 in the paper).
    pub migration_interval: u32,
    /// Fraction of each island that migrates (0.1 in the paper).
    pub migration_fraction: f64,
    /// Total generations to run.
    pub generations: u32,
    /// Stop early if the global best score has not improved for this many
    /// generations (`None` disables early stopping).
    pub stall_generations: Option<u32>,
    /// Worker threads used for evaluation.
    pub threads: usize,
    /// Apply link-trace annealing (Gaussian smoothing) to elites before
    /// mutation, as described in §3.2. Ignored by genomes without annealing.
    pub anneal: bool,
    /// Number of top traces averaged in the per-generation report (Figure 4d
    /// uses the top 20).
    pub report_top_k: usize,
    /// Master seed.
    pub seed: u64,
}

impl GaParams {
    /// The paper's §4 settings: population 500 split over 20 islands,
    /// kElite = 1, 30 % crossovers, 10 % migration every 10 generations.
    pub fn paper_default() -> Self {
        GaParams {
            islands: 20,
            population_per_island: 25,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 10,
            migration_fraction: 0.1,
            generations: 50,
            stall_generations: None,
            threads: num_threads_default(),
            anneal: false,
            report_top_k: 20,
            seed: 1,
        }
    }

    /// A scaled-down configuration that keeps the same structure but finishes
    /// in seconds; used by tests, examples and the default figure runs.
    pub fn quick() -> Self {
        GaParams {
            islands: 4,
            population_per_island: 8,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 5,
            migration_fraction: 0.25,
            generations: 10,
            stall_generations: None,
            threads: num_threads_default(),
            anneal: false,
            report_top_k: 5,
            seed: 1,
        }
    }

    /// Total population across all islands.
    pub fn total_population(&self) -> usize {
        self.islands * self.population_per_island
    }

    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.islands == 0 || self.population_per_island == 0 {
            return Err("need at least one island and one trace per island".into());
        }
        if self.k_elite >= self.population_per_island {
            return Err("k_elite must be smaller than the island population".into());
        }
        if !(0.0..=1.0).contains(&self.crossover_fraction) {
            return Err("crossover_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.migration_fraction) {
            return Err("migration_fraction must be in [0,1]".into());
        }
        if self.generations == 0 {
            return Err("need at least one generation".into());
        }
        Ok(())
    }
}

fn num_threads_default() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// One individual: a genome plus (once evaluated) its outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Individual<G> {
    /// The trace genome.
    pub genome: G,
    /// Its evaluation, if it has been scored.
    pub outcome: Option<EvalOutcome>,
}

// Serde is written by hand because the derive macro does not emit the
// generic bounds an `Individual<G>` needs.
impl<G: Serialize> Serialize for Individual<G> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("genome".to_string(), self.genome.to_value()),
            ("outcome".to_string(), self.outcome.to_value()),
        ])
    }
}

impl<G: Deserialize> Deserialize for Individual<G> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map("Individual")?;
        Ok(Individual {
            genome: Deserialize::from_value(map_get(m, "genome")?)?,
            outcome: Deserialize::from_value(map_get(m, "outcome")?)?,
        })
    }
}

/// Per-generation summary used for convergence plots (Figure 4d).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenerationSummary {
    /// Generation index (0-based).
    pub generation: u32,
    /// Best score across all islands.
    pub best_score: f64,
    /// Mean score across the whole population.
    pub mean_score: f64,
    /// Mean *delivered packets* of the `report_top_k` highest-scoring traces
    /// (the paper's Figure 4d plots exactly this: "packets sent" by the CCA
    /// for the 20 traces with the lowest throughput).
    pub top_k_mean_delivered: f64,
    /// Mean transmissions of the `report_top_k` highest-scoring traces.
    pub top_k_mean_sent: f64,
    /// Simulations run so far (cumulative).
    pub evaluations: usize,
}

/// The result of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzResult<G> {
    /// The best trace found and its evaluation.
    pub best_genome: G,
    /// Outcome of the best trace.
    pub best_outcome: EvalOutcome,
    /// Per-generation history.
    pub history: Vec<GenerationSummary>,
    /// Total simulations run.
    pub total_evaluations: usize,
}

/// One evaluation panic caught and isolated by a worker thread. The
/// panicking genome is preserved so the crash can be replayed and debugged;
/// the individual itself scores [`EvalOutcome::default`] and the campaign
/// continues.
#[derive(Clone, Debug, PartialEq)]
pub struct PanicRecord<G> {
    /// Generation during whose evaluation the panic fired.
    pub generation: u32,
    /// Island holding the panicking individual.
    pub island: usize,
    /// Index of the individual within its island.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
    /// The genome whose evaluation panicked.
    pub genome: G,
}

impl<G: Serialize> Serialize for PanicRecord<G> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("generation".to_string(), self.generation.to_value()),
            ("island".to_string(), self.island.to_value()),
            ("index".to_string(), self.index.to_value()),
            ("message".to_string(), self.message.to_value()),
            ("genome".to_string(), self.genome.to_value()),
        ])
    }
}

impl<G: Deserialize> Deserialize for PanicRecord<G> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map("PanicRecord")?;
        Ok(PanicRecord {
            generation: Deserialize::from_value(map_get(m, "generation")?)?,
            island: Deserialize::from_value(map_get(m, "island")?)?,
            index: Deserialize::from_value(map_get(m, "index")?)?,
            message: Deserialize::from_value(map_get(m, "message")?)?,
            genome: Deserialize::from_value(map_get(m, "genome")?)?,
        })
    }
}

/// Why a controlled run returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Ran to its configured end (generation count or stall limit).
    Completed,
    /// The shutdown flag was raised; the in-flight generation was finished
    /// and the fuzzer stopped at a resumable boundary.
    Interrupted,
    /// More evaluation panics were caught than the budget tolerates.
    PanicBudgetExhausted,
}

/// External control plane for [`Fuzzer::run_controlled`]: cooperative
/// shutdown, periodic checkpointing and the panic budget. The default is
/// exactly [`Fuzzer::run`]: no flag, no checkpoints, unlimited budget.
pub struct RunControl<'c, G> {
    /// Checked at each generation boundary; when set, the run stops with
    /// [`StopReason::Interrupted`] after finishing the in-flight generation.
    pub shutdown: Option<&'c AtomicBool>,
    /// Call `on_checkpoint` every this many completed generations
    /// (0 disables periodic checkpoints).
    pub checkpoint_every: u32,
    /// Receives a [`FuzzerSnapshot`] at each periodic checkpoint boundary.
    pub on_checkpoint: Option<&'c mut dyn FnMut(FuzzerSnapshot<G>)>,
    /// Caught evaluation panics tolerated before the run stops with
    /// [`StopReason::PanicBudgetExhausted`] (`None` = unlimited).
    pub panic_budget: Option<u64>,
}

impl<G> Default for RunControl<'_, G> {
    fn default() -> Self {
        RunControl {
            shutdown: None,
            checkpoint_every: 0,
            on_checkpoint: None,
            panic_budget: None,
        }
    }
}

/// Schema version of [`FuzzerSnapshot`], bumped on breaking field changes.
pub const FUZZER_SNAPSHOT_SCHEMA: u32 = 1;

/// The complete resumable state of a [`Fuzzer`] at a generation boundary
/// (after evolution and migration, before the next evaluation). Restoring a
/// snapshot and running to completion replays the exact trajectory the
/// uninterrupted fuzzer would have taken: evaluation is pure, the master RNG
/// is advanced only at construction time, and every island's population and
/// cached outcome is carried verbatim.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzerSnapshot<G> {
    /// Snapshot schema version ([`FUZZER_SNAPSHOT_SCHEMA`]).
    pub schema: u32,
    /// The campaign's GA parameters.
    pub params: GaParams,
    /// Master RNG (static after construction; forked per island/generation).
    pub rng: SimRng,
    /// The dedicated annealing RNG stream.
    pub anneal_rng: SimRng,
    /// Every island's population, elites keeping their cached outcomes.
    pub islands: Vec<Vec<Individual<G>>>,
    /// Simulations run so far.
    pub evaluations: usize,
    /// The generation the restored fuzzer will evaluate next.
    pub next_generation: u32,
    /// Consecutive generations without global-best improvement.
    pub stall: u32,
    /// Best genome so far (None only before the first evaluation).
    pub best_genome: Option<G>,
    /// Outcome of the best genome.
    pub best_outcome: Option<EvalOutcome>,
    /// Per-generation history accumulated so far.
    pub history: Vec<GenerationSummary>,
    /// Evaluation panics caught so far (genomes preserved for replay).
    pub panics: Vec<PanicRecord<G>>,
}

impl<G: Serialize> Serialize for FuzzerSnapshot<G> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("schema".to_string(), self.schema.to_value()),
            ("params".to_string(), self.params.to_value()),
            ("rng".to_string(), self.rng.to_value()),
            ("anneal_rng".to_string(), self.anneal_rng.to_value()),
            ("islands".to_string(), self.islands.to_value()),
            ("evaluations".to_string(), self.evaluations.to_value()),
            (
                "next_generation".to_string(),
                self.next_generation.to_value(),
            ),
            ("stall".to_string(), self.stall.to_value()),
            ("best_genome".to_string(), self.best_genome.to_value()),
            ("best_outcome".to_string(), self.best_outcome.to_value()),
            ("history".to_string(), self.history.to_value()),
            ("panics".to_string(), self.panics.to_value()),
        ])
    }
}

impl<G: Deserialize> Deserialize for FuzzerSnapshot<G> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map("FuzzerSnapshot")?;
        Ok(FuzzerSnapshot {
            schema: Deserialize::from_value(map_get(m, "schema")?)?,
            params: Deserialize::from_value(map_get(m, "params")?)?,
            rng: Deserialize::from_value(map_get(m, "rng")?)?,
            anneal_rng: Deserialize::from_value(map_get(m, "anneal_rng")?)?,
            islands: Deserialize::from_value(map_get(m, "islands")?)?,
            evaluations: Deserialize::from_value(map_get(m, "evaluations")?)?,
            next_generation: Deserialize::from_value(map_get(m, "next_generation")?)?,
            stall: Deserialize::from_value(map_get(m, "stall")?)?,
            best_genome: Deserialize::from_value(map_get(m, "best_genome")?)?,
            best_outcome: Deserialize::from_value(map_get(m, "best_outcome")?)?,
            history: Deserialize::from_value(map_get(m, "history")?)?,
            panics: Deserialize::from_value(map_get(m, "panics")?)?,
        })
    }
}

impl<G: Genome> FuzzerSnapshot<G> {
    /// Structural validation: shape must match the embedded params and every
    /// genome must pass its own invariants. Run before trusting a snapshot
    /// loaded from disk.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != FUZZER_SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported fuzzer snapshot schema {} (expected {FUZZER_SNAPSHOT_SCHEMA})",
                self.schema
            ));
        }
        self.params.validate()?;
        if self.islands.len() != self.params.islands {
            return Err(format!(
                "snapshot has {} islands but params say {}",
                self.islands.len(),
                self.params.islands
            ));
        }
        for (idx, pop) in self.islands.iter().enumerate() {
            if pop.len() != self.params.population_per_island {
                return Err(format!(
                    "island {idx} has {} individuals but params say {}",
                    pop.len(),
                    self.params.population_per_island
                ));
            }
            for ind in pop {
                ind.genome
                    .validate()
                    .map_err(|e| format!("island {idx} holds an invalid genome: {e}"))?;
            }
        }
        if self.next_generation > self.params.generations {
            return Err(format!(
                "snapshot generation {} exceeds configured {} generations",
                self.next_generation, self.params.generations
            ));
        }
        Ok(())
    }
}

/// Test/ops hook: setting `CCFUZZ_INJECT_EVAL_PANIC=N` (N >= 1) makes every
/// Nth fitness evaluation in this process panic before simulating, so the
/// panic-isolation path can be exercised end-to-end from the CLI. The
/// ordinal counter is process-global; with more than one worker thread the
/// mapping from ordinal to individual depends on scheduling, so injected
/// runs are only reproducible at `threads = 1`.
fn maybe_inject_panic() {
    static TARGET: OnceLock<Option<u64>> = OnceLock::new();
    let Some(n) = *TARGET.get_or_init(|| {
        std::env::var("CCFUZZ_INJECT_EVAL_PANIC")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0)
    }) else {
        return;
    };
    static COUNT: AtomicU64 = AtomicU64::new(0);
    let ordinal = COUNT.fetch_add(1, Ordering::Relaxed) + 1;
    if ordinal.is_multiple_of(n) {
        panic!("injected evaluation panic (CCFUZZ_INJECT_EVAL_PANIC={n}, evaluation {ordinal})");
    }
}

/// Renders a caught panic payload as a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Hook applied to genomes between generations (e.g. link-trace annealing).
pub type AnnealFn<G> = dyn Fn(&G, &mut SimRng) -> G + Sync + Send;

/// The genetic-algorithm fuzzer.
pub struct Fuzzer<'a, G: Genome, E: Evaluator<G>> {
    params: GaParams,
    evaluator: &'a E,
    islands: Vec<Vec<Individual<G>>>,
    rng: SimRng,
    anneal_rng: SimRng,
    anneal_fn: Option<Box<AnnealFn<G>>>,
    evaluations: usize,
    next_generation: u32,
    stall: u32,
    best: Option<(G, EvalOutcome)>,
    history: Vec<GenerationSummary>,
    panic_log: Vec<PanicRecord<G>>,
    obs: Option<&'a HuntTelemetry>,
}

impl<'a, G: Genome, E: Evaluator<G>> Fuzzer<'a, G, E> {
    /// Creates a fuzzer with an initial population drawn from `init`.
    pub fn new(params: GaParams, evaluator: &'a E, mut init: impl FnMut(&mut SimRng) -> G) -> Self {
        assert!(
            params.validate().is_ok(),
            "invalid GaParams: {:?}",
            params.validate()
        );
        let mut rng = SimRng::new(params.seed);
        let islands = (0..params.islands)
            .map(|island| {
                let mut island_rng = rng.fork(island as u64 + 1);
                (0..params.population_per_island)
                    .map(|_| Individual {
                        genome: init(&mut island_rng),
                        outcome: None,
                    })
                    .collect()
            })
            .collect();
        // The annealing hook gets its own RNG stream, seeded from the master
        // stream. This draw also fixes the master RNG's post-construction
        // state, which every later per-island fork derives from — it must
        // stay even for genomes that never anneal, or every existing
        // campaign trajectory (and the golden fixtures) would shift.
        let anneal_seed = rng.next_u64();
        Fuzzer {
            params,
            evaluator,
            islands,
            rng,
            anneal_rng: SimRng::new(anneal_seed),
            anneal_fn: None,
            evaluations: 0,
            next_generation: 0,
            stall: 0,
            best: None,
            history: Vec::with_capacity(params.generations as usize),
            panic_log: Vec::new(),
            obs: None,
        }
    }

    /// Rebuilds a fuzzer from a [`FuzzerSnapshot`], resuming mid-campaign.
    /// The annealing hook and observer are not part of the snapshot; re-attach
    /// them with [`Fuzzer::with_annealing`] / [`Fuzzer::with_observer`].
    pub fn restore(evaluator: &'a E, snapshot: FuzzerSnapshot<G>) -> Result<Self, String> {
        snapshot.validate()?;
        Ok(Fuzzer {
            params: snapshot.params,
            evaluator,
            islands: snapshot.islands,
            rng: snapshot.rng,
            anneal_rng: snapshot.anneal_rng,
            anneal_fn: None,
            evaluations: snapshot.evaluations,
            next_generation: snapshot.next_generation,
            stall: snapshot.stall,
            best: match (snapshot.best_genome, snapshot.best_outcome) {
                (Some(g), Some(o)) => Some((g, o)),
                (None, None) => None,
                _ => return Err("snapshot has half of a best-so-far pair".into()),
            },
            history: snapshot.history,
            panic_log: snapshot.panics,
            obs: None,
        })
    }

    /// The complete resumable state at the current generation boundary.
    pub fn snapshot(&self) -> FuzzerSnapshot<G> {
        FuzzerSnapshot {
            schema: FUZZER_SNAPSHOT_SCHEMA,
            params: self.params,
            rng: self.rng.clone(),
            anneal_rng: self.anneal_rng.clone(),
            islands: self.islands.clone(),
            evaluations: self.evaluations,
            next_generation: self.next_generation,
            stall: self.stall,
            best_genome: self.best.as_ref().map(|(g, _)| g.clone()),
            best_outcome: self.best.as_ref().map(|(_, o)| *o),
            history: self.history.clone(),
            panics: self.panic_log.clone(),
        }
    }

    /// Evaluation panics caught so far (accumulated across restore).
    pub fn panics(&self) -> &[PanicRecord<G>] {
        &self.panic_log
    }

    /// Installs an annealing hook (used for link-trace Gaussian smoothing).
    pub fn with_annealing(mut self, f: Box<AnnealFn<G>>) -> Self {
        self.anneal_fn = Some(f);
        self
    }

    /// Installs a telemetry observer. The observer is passive: every metric
    /// it records lives outside the GA state, so an observed run evolves the
    /// exact same population as an unobserved one.
    pub fn with_observer(mut self, obs: &'a HuntTelemetry) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> &GaParams {
        &self.params
    }

    /// Evaluates every not-yet-scored individual, in parallel.
    fn evaluate_pending(&mut self) {
        self.evaluate_pending_range(0, self.islands.len());
    }

    /// Evaluates every not-yet-scored individual of islands `start..end`, in
    /// parallel. Island indices stay global, so results, panic records and
    /// telemetry are identical whether a range is evaluated by its owning
    /// worker or as part of a whole-population pass.
    fn evaluate_pending_range(&mut self, start: usize, end: usize) {
        // Collect (island, index) pairs needing evaluation.
        let pending: Vec<(usize, usize)> = self.islands[start..end]
            .iter()
            .enumerate()
            .flat_map(|(offset, pop)| {
                pop.iter()
                    .enumerate()
                    .filter(|(_, ind)| ind.outcome.is_none())
                    .map(move |(j, _)| (start + offset, j))
            })
            .collect();
        if pending.is_empty() {
            return;
        }
        self.evaluations += pending.len();

        let results: Mutex<Vec<(usize, usize, EvalOutcome)>> =
            Mutex::new(Vec::with_capacity(pending.len()));
        // Panics caught inside workers: (island, index, message).
        let caught: Mutex<Vec<(usize, usize, String)>> = Mutex::new(Vec::new());
        let threads = self.params.threads.max(1).min(pending.len());
        let chunk_size = pending.len().div_ceil(threads);
        let islands = &self.islands;
        let evaluator = self.evaluator;
        let observe = self.obs.is_some();
        // Per-worker latency shards: recorded lock-free into plain local
        // histograms, merged into the shared registry after the scope joins.
        // Shard merging is commutative, so the merged histogram is identical
        // for any thread count (the property tests pin this).
        let shards: Mutex<Vec<LocalHistogram>> = Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for chunk in pending.chunks(chunk_size) {
                let results = &results;
                let caught = &caught;
                let shards = &shards;
                scope.spawn(move |_| {
                    // One scratch per worker: consecutive evaluations reuse
                    // the simulator's calendar and packet-pool allocations.
                    // Evaluation stays pure — the scratch only donates
                    // capacity — so results are identical to `evaluate`.
                    let mut scratch = EvalScratch::new();
                    let mut local = Vec::with_capacity(chunk.len());
                    let mut shard = LocalHistogram::new();
                    for &(i, j) in chunk {
                        let started = observe.then(Instant::now);
                        // A panicking simulation is isolated here: the
                        // individual scores the default outcome, the genome
                        // and message are preserved in the panic log, and
                        // the campaign continues.
                        let evaluated = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            maybe_inject_panic();
                            evaluator.evaluate_reusing(&islands[i][j].genome, &mut scratch)
                        }));
                        let outcome = match evaluated {
                            Ok(outcome) => outcome,
                            Err(payload) => {
                                // The scratch arena may hold half-updated
                                // simulator state; replace it wholesale.
                                scratch = EvalScratch::new();
                                caught.lock().push((i, j, panic_message(payload)));
                                EvalOutcome::default()
                            }
                        };
                        if let Some(started) = started {
                            shard.record(started.elapsed().as_nanos() as u64);
                        }
                        local.push((i, j, outcome));
                    }
                    if shard.count() > 0 {
                        shards.lock().push(shard);
                    }
                    results.lock().extend(local);
                });
            }
        })
        .expect("evaluation worker panicked");
        if let Some(obs) = self.obs {
            obs.metrics.evaluations.add(pending.len() as u64);
            for shard in shards.into_inner().iter() {
                obs.metrics.eval_latency_ns.merge_local(shard);
            }
        }
        let mut caught = caught.into_inner();
        if !caught.is_empty() {
            // Capture order depends on thread scheduling; log in canonical
            // (island, index) order so persisted panic artifacts are stable.
            caught.sort_unstable_by_key(|&(i, j, _)| (i, j));
            if let Some(obs) = self.obs {
                obs.metrics.panics_caught.add(caught.len() as u64);
            }
            let generation = self.next_generation;
            for (i, j, message) in caught {
                let genome = self.islands[i][j].genome.clone();
                self.panic_log.push(PanicRecord {
                    generation,
                    island: i,
                    index: j,
                    message,
                    genome,
                });
            }
        }

        // Workers finish in wall-clock order, so the collected vector's
        // order depends on the thread count and scheduling. The keyed
        // assignment below makes the *final state* order-independent either
        // way; re-imposing the canonical (island, index) order makes that
        // independence explicit rather than incidental, and lets the
        // assertion prove every pending individual was evaluated exactly
        // once.
        let mut results = results.into_inner();
        results.sort_by_key(|&(i, j, _)| (i, j));
        debug_assert_eq!(
            results.iter().map(|&(i, j, _)| (i, j)).collect::<Vec<_>>(),
            pending,
            "every pending individual is evaluated exactly once"
        );
        for (i, j, outcome) in results {
            self.islands[i][j].outcome = Some(outcome);
        }
    }

    fn sort_island(pop: &mut [Individual<G>]) {
        pop.sort_by(|a, b| {
            let sa = a.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            let sb = b.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    fn summarize(&self, generation: u32) -> GenerationSummary {
        let mut all: Vec<&Individual<G>> = self.islands.iter().flatten().collect();
        all.sort_by(|a, b| {
            let sa = a.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            let sb = b.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let scores: Vec<f64> = all
            .iter()
            .filter_map(|i| i.outcome.map(|o| o.score))
            .collect();
        let k = self.params.report_top_k.clamp(1, all.len());
        let top_k: Vec<&EvalOutcome> = all[..k].iter().filter_map(|i| i.outcome.as_ref()).collect();
        let mean = |values: &[f64]| {
            if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        GenerationSummary {
            generation,
            best_score: scores.first().copied().unwrap_or(0.0),
            mean_score: mean(&scores),
            top_k_mean_delivered: mean(
                &top_k
                    .iter()
                    .map(|o| o.delivered_packets as f64)
                    .collect::<Vec<_>>(),
            ),
            top_k_mean_sent: mean(
                &top_k
                    .iter()
                    .map(|o| o.sent_packets as f64)
                    .collect::<Vec<_>>(),
            ),
            evaluations: self.evaluations,
        }
    }

    /// Builds the next generation of one island (elitism + crossover + mutation).
    fn evolve_island(&mut self, island_idx: usize) {
        let params = self.params;
        let mut rng = self.rng.fork(1_000 + island_idx as u64);
        let pop = &mut self.islands[island_idx];
        Self::sort_island(pop);

        let n = pop.len();
        let k_elite = params.k_elite.min(n);
        let k_crossover = ((n - k_elite) as f64 * params.crossover_fraction).round() as usize;

        let mut next: Vec<Individual<G>> = Vec::with_capacity(n);
        // Elites survive unchanged (and keep their cached outcome).
        for elite in pop.iter().take(k_elite) {
            next.push(elite.clone());
        }
        // Crossovers.
        let mut produced = 0usize;
        while produced < k_crossover && next.len() < n {
            let (a, b) = pick_pair(n, &mut rng);
            let child = pop[a].genome.crossover(&pop[b].genome, &mut rng);
            match child {
                Some(genome) => {
                    next.push(Individual {
                        genome,
                        outcome: None,
                    });
                    produced += 1;
                }
                None => break, // genome type has no crossover (link mode)
            }
        }
        // Mutations fill the remainder.
        let mut mutated = 0u64;
        let mut annealed = 0u64;
        while next.len() < n {
            let src = pick_ranked(n, &mut rng);
            let base = if params.anneal {
                if let Some(anneal) = &self.anneal_fn {
                    annealed += 1;
                    // Annealing draws from its own RNG stream (seeded from
                    // the master seed at construction, serialized in
                    // snapshots) so it perturbs genomes without shifting the
                    // mutation stream shared by non-annealing campaigns.
                    anneal(&pop[src].genome, &mut self.anneal_rng)
                } else {
                    pop[src].genome.clone()
                }
            } else {
                pop[src].genome.clone()
            };
            let genome = base.mutate(&mut rng);
            mutated += 1;
            next.push(Individual {
                genome,
                outcome: None,
            });
        }
        self.islands[island_idx] = next;
        if let Some(obs) = self.obs {
            let ops = &obs.metrics.operators;
            ops.elite.add(k_elite as u64);
            ops.crossover.add(produced as u64);
            ops.mutation.add(mutated);
            ops.anneal.add(annealed);
        }
    }

    /// Ring migration: each island sends its best `migration_fraction` to the
    /// next island, replacing that island's worst individuals.
    fn migrate(&mut self) {
        let n_islands = self.islands.len();
        if n_islands < 2 {
            return;
        }
        let k = migration_k(&self.params);
        for pop in &mut self.islands {
            Self::sort_island(pop);
        }
        // Collect migrants first so migration is simultaneous, not cascading.
        let migrants: Vec<Vec<Individual<G>>> = self
            .islands
            .iter()
            .map(|pop| pop.iter().take(k).cloned().collect())
            .collect();
        for (i, migrant_group) in migrants.into_iter().enumerate() {
            let dst = (i + 1) % n_islands;
            let pop = &mut self.islands[dst];
            let len = pop.len();
            for (offset, migrant) in migrant_group.into_iter().enumerate() {
                let idx = len - 1 - offset;
                pop[idx] = migrant;
            }
        }
        if let Some(obs) = self.obs {
            obs.metrics.operators.migrant.add((n_islands * k) as u64);
        }
    }

    /// Best evaluated score of each island, in island order.
    fn island_best_scores(&self) -> Vec<f64> {
        self.islands
            .iter()
            .map(|pop| {
                pop.iter()
                    .filter_map(|ind| ind.outcome.map(|o| o.score))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Runs the campaign and returns the best trace plus per-generation history.
    pub fn run(&mut self) -> FuzzResult<G> {
        self.run_controlled(&mut RunControl::default()).0
    }

    /// Runs the campaign under an external control plane: a cooperative
    /// shutdown flag, periodic snapshot checkpoints and a panic budget.
    /// Shutdown and budget are checked only at generation boundaries (after
    /// evolution + migration), which is exactly the state a
    /// [`FuzzerSnapshot`] captures — so every early stop is resumable and a
    /// resumed run replays the uninterrupted trajectory bit-for-bit.
    pub fn run_controlled(&mut self, ctl: &mut RunControl<'_, G>) -> (FuzzResult<G>, StopReason) {
        let mut stop = StopReason::Completed;
        loop {
            let generation = self.next_generation;
            if generation >= self.params.generations {
                break;
            }
            {
                let _timer = self.obs.map(|o| o.profiler.scope(Phase::Evaluate));
                self.evaluate_pending();
            }

            // Track the global best.
            let _timer = self.obs.map(|o| o.profiler.scope(Phase::Select));
            let mut improved = false;
            for ind in self.islands.iter().flatten() {
                if let Some(outcome) = ind.outcome {
                    if self
                        .best
                        .as_ref()
                        .map(|(_, b)| outcome.score > b.score)
                        .unwrap_or(true)
                    {
                        self.best = Some((ind.genome.clone(), outcome));
                        improved = true;
                    }
                }
            }
            let summary = self.summarize(generation);
            self.history.push(summary);
            if let Some(obs) = self.obs {
                obs.observe_generation(
                    generation,
                    self.best.as_ref().map(|(_, b)| b.score).unwrap_or(0.0),
                    summary.mean_score,
                    self.island_best_scores(),
                );
            }
            drop(_timer);

            if improved {
                self.stall = 0;
            } else {
                self.stall += 1;
                if let Some(limit) = self.params.stall_generations {
                    if self.stall >= limit {
                        self.next_generation = generation + 1;
                        break;
                    }
                }
            }

            // Last generation: don't bother producing offspring.
            if generation + 1 == self.params.generations {
                self.next_generation = generation + 1;
                break;
            }
            {
                let _timer = self.obs.map(|o| o.profiler.scope(Phase::Mutate));
                for island in 0..self.islands.len() {
                    self.evolve_island(island);
                }
                if self.params.migration_interval > 0
                    && (generation + 1).is_multiple_of(self.params.migration_interval)
                {
                    self.migrate();
                }
            }
            // Generation boundary: the resumable state a snapshot captures.
            self.next_generation = generation + 1;
            if ctl.checkpoint_every > 0 && self.next_generation.is_multiple_of(ctl.checkpoint_every)
            {
                if let Some(on_checkpoint) = ctl.on_checkpoint.as_deref_mut() {
                    on_checkpoint(self.snapshot());
                }
            }
            if let Some(flag) = ctl.shutdown {
                if flag.load(Ordering::SeqCst) {
                    stop = StopReason::Interrupted;
                    break;
                }
            }
            if let Some(budget) = ctl.panic_budget {
                if self.panic_log.len() as u64 > budget {
                    stop = StopReason::PanicBudgetExhausted;
                    break;
                }
            }
        }

        let (best_genome, best_outcome) = self
            .best
            .clone()
            .expect("at least one individual was evaluated");
        (
            FuzzResult {
                best_genome,
                best_outcome,
                history: self.history.clone(),
                total_evaluations: self.evaluations,
            },
            stop,
        )
    }

    // --- island-shard API (multi-process campaigns; see `crate::shard`) ---
    //
    // A shard worker constructs the full fuzzer from the campaign seed but
    // only ever advances islands `start..end`. Because island initialisation
    // and evolution draw from pure per-island forks of the (static) master
    // RNG, the owned islands follow exactly the trajectory they would in a
    // single-process run; all cross-island state (best, stall, history,
    // panic log) lives in the coordinator, fed by `ShardReport`s.

    /// The generation this fuzzer evaluates next.
    pub fn next_generation(&self) -> u32 {
        self.next_generation
    }

    /// Sets the generation counter; the coordinator advances shard workers
    /// in lock-step across generation boundaries. Panic records stamp the
    /// current value, so it must be set before the boundary's evaluation.
    pub fn set_next_generation(&mut self, generation: u32) {
        self.next_generation = generation;
    }

    /// Evaluates the pending individuals of islands `start..end` and reports
    /// everything the coordinator needs: local sorted stats, the local best
    /// candidate, per-island bests and this round's panic records.
    pub fn shard_evaluate(&mut self, start: usize, end: usize) -> ShardReport<G> {
        assert!(
            start < end && end <= self.islands.len(),
            "shard range {start}..{end} out of bounds for {} islands",
            self.islands.len()
        );
        let panics_before = self.panic_log.len();
        let evals_before = self.evaluations;
        {
            let _timer = self.obs.map(|o| o.profiler.scope(Phase::Evaluate));
            self.evaluate_pending_range(start, end);
        }
        let _timer = self.obs.map(|o| o.profiler.scope(Phase::Select));
        // Local best candidate: the first strict maximum in the owned
        // flatten order, i.e. the same individual the single-process best
        // scan would pick out of this slice.
        let mut best: Option<(&G, EvalOutcome)> = None;
        for ind in self.islands[start..end].iter().flatten() {
            if let Some(outcome) = ind.outcome {
                if best
                    .as_ref()
                    .map(|(_, b)| outcome.score > b.score)
                    .unwrap_or(true)
                {
                    best = Some((&ind.genome, outcome));
                }
            }
        }
        let mut owned: Vec<&Individual<G>> = self.islands[start..end].iter().flatten().collect();
        owned.sort_by(|a, b| {
            let sa = a.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            let sb = b.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let stats = owned
            .iter()
            .filter_map(|ind| ind.outcome.as_ref())
            .map(|o| TopStat {
                score: o.score,
                delivered: o.delivered_packets,
                sent: o.sent_packets,
            })
            .collect();
        let island_best = self.islands[start..end]
            .iter()
            .map(|pop| {
                pop.iter()
                    .filter_map(|ind| ind.outcome.map(|o| o.score))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        ShardReport {
            generation: self.next_generation,
            island_start: start,
            eval_delta: self.evaluations - evals_before,
            island_best,
            stats,
            best_genome: best.map(|(g, _)| g.clone()),
            best_outcome: best.map(|(_, o)| o),
            panics: self.panic_log[panics_before..].to_vec(),
            operators: self
                .obs
                .map(|o| o.metrics.operator_snapshot())
                .unwrap_or_default(),
        }
    }

    /// Evolves islands `start..end` into their next generation.
    pub fn shard_evolve(&mut self, start: usize, end: usize) {
        let _timer = self.obs.map(|o| o.profiler.scope(Phase::Mutate));
        for island in start..end {
            self.evolve_island(island);
        }
    }

    /// Sorts the owned islands and clones out each one's migration
    /// contingent, exactly as the in-process ring migration would. Every
    /// island is owned by exactly one worker, so after each worker runs
    /// this, the whole population is sorted and a batch's destination slots
    /// are its destination island's worst individuals.
    pub fn shard_collect_migrants(&mut self, start: usize, end: usize) -> Vec<MigrantBatch<G>> {
        let k = migration_k(&self.params);
        (start..end)
            .map(|island| {
                Self::sort_island(&mut self.islands[island]);
                MigrantBatch {
                    src_island: island,
                    migrants: self.islands[island].iter().take(k).cloned().collect(),
                }
            })
            .collect()
    }

    /// Installs inbound migrants into the ring destination of each batch's
    /// source island, replacing that island's worst individuals (the owned
    /// islands were sorted by [`Self::shard_collect_migrants`]).
    pub fn shard_apply_migrants(&mut self, batches: Vec<MigrantBatch<G>>) {
        let n_islands = self.islands.len();
        let mut applied = 0u64;
        for batch in batches {
            let dst = (batch.src_island + 1) % n_islands;
            let pop = &mut self.islands[dst];
            let len = pop.len();
            for (offset, migrant) in batch.migrants.into_iter().enumerate() {
                pop[len - 1 - offset] = migrant;
                applied += 1;
            }
        }
        if let Some(obs) = self.obs {
            obs.metrics.operators.migrant.add(applied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Genome;

    /// A toy genome (a vector of numbers) and evaluator (score = sum) that
    /// exercise the GA machinery without running network simulations.
    #[derive(Clone, Debug, PartialEq)]
    struct ToyGenome(Vec<f64>);

    impl Genome for ToyGenome {
        fn mutate(&self, rng: &mut SimRng) -> Self {
            let mut v = self.0.clone();
            if v.is_empty() {
                return ToyGenome(v);
            }
            let idx = rng.gen_range_usize(0, v.len());
            v[idx] += rng.gen_range_f64(-0.5, 1.0);
            ToyGenome(v)
        }
        fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
            let split = rng.gen_range_usize(0, self.0.len() + 1);
            let mut v = self.0[..split].to_vec();
            v.extend_from_slice(&other.0[split.min(other.0.len())..]);
            Some(ToyGenome(v))
        }
        fn packet_count(&self) -> usize {
            self.0.len()
        }
        fn validate(&self) -> Result<(), String> {
            Ok(())
        }
    }

    struct ToyEvaluator;
    impl Evaluator<ToyGenome> for ToyEvaluator {
        fn evaluate(&self, genome: &ToyGenome) -> EvalOutcome {
            let score: f64 = genome.0.iter().sum();
            EvalOutcome {
                score,
                performance_score: score,
                delivered_packets: 100,
                sent_packets: 110,
                ..Default::default()
            }
        }
    }

    fn quick_params() -> GaParams {
        GaParams {
            islands: 3,
            population_per_island: 6,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 3,
            migration_fraction: 0.2,
            generations: 15,
            stall_generations: None,
            threads: 2,
            anneal: false,
            report_top_k: 4,
            seed: 7,
        }
    }

    #[test]
    fn params_validation() {
        assert!(GaParams::paper_default().validate().is_ok());
        assert!(GaParams::quick().validate().is_ok());
        assert_eq!(GaParams::paper_default().total_population(), 500);
        let mut bad = GaParams::quick();
        bad.k_elite = bad.population_per_island;
        assert!(bad.validate().is_err());
        let mut bad = GaParams::quick();
        bad.crossover_fraction = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = GaParams::quick();
        bad.islands = 0;
        assert!(bad.validate().is_err());
        let mut bad = GaParams::quick();
        bad.generations = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ga_improves_the_toy_objective() {
        let evaluator = ToyEvaluator;
        let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |rng| {
            ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
        });
        let result = fuzzer.run();
        let first = result.history.first().unwrap();
        let last = result.history.last().unwrap();
        assert!(
            last.best_score > first.best_score,
            "GA should improve: {} -> {}",
            first.best_score,
            last.best_score
        );
        assert!(result.best_outcome.score >= last.best_score);
        assert!(result.total_evaluations > quick_params().total_population());
        assert_eq!(result.history.len(), 15);
    }

    #[test]
    fn best_score_is_monotone_in_history() {
        let evaluator = ToyEvaluator;
        let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |rng| {
            ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
        });
        let result = fuzzer.run();
        // Because of elitism, the global best never regresses.
        let best_scores: Vec<f64> = result.history.iter().map(|h| h.best_score).collect();
        assert!(
            best_scores.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "{best_scores:?}"
        );
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let run = |threads: usize| {
            let evaluator = ToyEvaluator;
            let mut params = quick_params();
            params.threads = threads;
            let mut fuzzer = Fuzzer::new(params, &evaluator, |rng| {
                ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
            });
            let r = fuzzer.run();
            (r.best_outcome.score, r.history.last().unwrap().mean_score)
        };
        assert_eq!(run(1), run(1));
        // Thread count must not affect the result (evaluation is pure and
        // result application is re-ordered canonically).
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn evaluation_order_is_identical_for_any_thread_count() {
        // A score plateau makes tie-breaking visible: many individuals share
        // the top score, so *which* genome is reported as best depends on
        // comparison order. With canonical result ordering, threads=1 and
        // threads=4 must agree on the exact best genome, not just the score.
        #[derive(Clone, Debug, PartialEq)]
        struct TieGenome(u64);
        impl Genome for TieGenome {
            fn mutate(&self, rng: &mut SimRng) -> Self {
                TieGenome(rng.next_u64())
            }
            fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
                Some(if rng.gen_bool(0.5) {
                    self.clone()
                } else {
                    other.clone()
                })
            }
            fn packet_count(&self) -> usize {
                0
            }
            fn validate(&self) -> Result<(), String> {
                Ok(())
            }
        }
        struct PlateauEvaluator;
        impl Evaluator<TieGenome> for PlateauEvaluator {
            fn evaluate(&self, genome: &TieGenome) -> EvalOutcome {
                EvalOutcome {
                    // Two buckets only: plenty of exact ties.
                    score: (genome.0 % 2) as f64,
                    delivered_packets: genome.0,
                    ..Default::default()
                }
            }
        }
        let run = |threads: usize| {
            let mut params = quick_params();
            params.threads = threads;
            params.generations = 6;
            let evaluator = PlateauEvaluator;
            let mut fuzzer = Fuzzer::new(params, &evaluator, |rng| TieGenome(rng.next_u64()));
            let r = fuzzer.run();
            (r.best_genome, r.best_outcome, r.history)
        };
        let single = run(1);
        for threads in [2, 4, 7] {
            let multi = run(threads);
            assert_eq!(
                single.0, multi.0,
                "best genome differs at {threads} threads"
            );
            assert_eq!(single.1, multi.1);
            assert_eq!(single.2, multi.2);
        }
    }

    #[test]
    fn observer_is_passive_and_records_the_campaign() {
        let run = |obs: Option<&HuntTelemetry>| {
            let evaluator = ToyEvaluator;
            let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |rng| {
                ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
            });
            if let Some(obs) = obs {
                fuzzer = fuzzer.with_observer(obs);
            }
            let r = fuzzer.run();
            (r.best_genome, r.best_outcome, r.history)
        };
        let plain = run(None);
        let telemetry = HuntTelemetry::new();
        let observed = run(Some(&telemetry));
        // Observation must not change what evolves.
        assert_eq!(plain, observed);

        let total = observed.2.last().unwrap().evaluations as u64;
        assert_eq!(telemetry.metrics.evaluations.get(), total);
        // Every evaluation was timed exactly once across all worker shards.
        assert_eq!(telemetry.metrics.eval_latency_ns.snapshot().count, total);
        assert_eq!(telemetry.metrics.best_score.get(), observed.1.score);
        let ops = &telemetry.metrics.operators;
        assert!(ops.elite.get() > 0, "elites counted");
        assert!(ops.mutation.get() > 0, "mutations counted");
        assert!(ops.migrant.get() > 0, "migrations counted");
        assert_eq!(ops.anneal.get(), 0, "no annealing hook installed");
        // The loop spends its time in the phases the profiler tracks.
        assert!(telemetry.profiler.nanos(Phase::Evaluate) > 0);
        assert!(telemetry.profiler.nanos(Phase::Mutate) > 0);
    }

    #[test]
    fn stall_detection_stops_early() {
        struct ConstantEvaluator;
        impl Evaluator<ToyGenome> for ConstantEvaluator {
            fn evaluate(&self, _genome: &ToyGenome) -> EvalOutcome {
                EvalOutcome {
                    score: 1.0,
                    ..Default::default()
                }
            }
        }
        let mut params = quick_params();
        params.generations = 50;
        params.stall_generations = Some(3);
        let evaluator = ConstantEvaluator;
        let mut fuzzer = Fuzzer::new(params, &evaluator, |_rng| ToyGenome(vec![1.0; 3]));
        let result = fuzzer.run();
        assert!(
            result.history.len() < 50,
            "constant fitness should trigger early stopping, ran {} generations",
            result.history.len()
        );
    }

    #[test]
    fn snapshot_restore_replays_identically_from_every_boundary() {
        let evaluator = ToyEvaluator;
        let init =
            |rng: &mut SimRng| ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect());
        let control = Fuzzer::new(quick_params(), &evaluator, init).run();

        // Capture a snapshot at every generation boundary of a second,
        // identical run.
        let mut snapshots: Vec<FuzzerSnapshot<ToyGenome>> = Vec::new();
        let mut capture = |snap: FuzzerSnapshot<ToyGenome>| snapshots.push(snap);
        let (result, stop) =
            Fuzzer::new(quick_params(), &evaluator, init).run_controlled(&mut RunControl {
                checkpoint_every: 1,
                on_checkpoint: Some(&mut capture),
                ..RunControl::default()
            });
        assert_eq!(stop, StopReason::Completed);
        assert_eq!(result.history, control.history);
        assert_eq!(snapshots.len(), quick_params().generations as usize - 1);

        for snap in snapshots {
            let boundary = snap.next_generation;
            let mut resumed = Fuzzer::restore(&evaluator, snap).unwrap();
            let r = resumed.run();
            assert_eq!(
                r.best_genome, control.best_genome,
                "resume from generation {boundary} diverged"
            );
            assert_eq!(r.best_outcome, control.best_outcome);
            assert_eq!(r.history, control.history);
            assert_eq!(r.total_evaluations, control.total_evaluations);
        }
    }

    #[test]
    fn shutdown_flag_stops_at_a_resumable_boundary() {
        let evaluator = ToyEvaluator;
        let init =
            |rng: &mut SimRng| ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect());
        let control = Fuzzer::new(quick_params(), &evaluator, init).run();

        // Flag raised before the run starts: the fuzzer still finishes the
        // in-flight generation, then stops.
        let shutdown = AtomicBool::new(true);
        let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, init);
        let (partial, stop) = fuzzer.run_controlled(&mut RunControl {
            shutdown: Some(&shutdown),
            ..RunControl::default()
        });
        assert_eq!(stop, StopReason::Interrupted);
        assert_eq!(partial.history.len(), 1, "one full generation ran");

        // Resuming from the interruption replays the control trajectory.
        let mut resumed = Fuzzer::restore(&evaluator, fuzzer.snapshot()).unwrap();
        let r = resumed.run();
        assert_eq!(r.best_genome, control.best_genome);
        assert_eq!(r.history, control.history);
        assert_eq!(r.total_evaluations, control.total_evaluations);
    }

    /// Panics on genomes whose first gene is negative (mutation drifts some
    /// there); scores the rest by sum.
    struct FaultyEvaluator;
    impl Evaluator<ToyGenome> for FaultyEvaluator {
        fn evaluate(&self, genome: &ToyGenome) -> EvalOutcome {
            assert!(
                genome.0.first().copied().unwrap_or(0.0) >= 0.0,
                "simulated evaluator crash on negative gene"
            );
            EvalOutcome {
                score: genome.0.iter().sum(),
                ..Default::default()
            }
        }
    }

    #[test]
    fn evaluation_panics_are_isolated_and_logged() {
        struct AlwaysPanics;
        impl Evaluator<ToyGenome> for AlwaysPanics {
            fn evaluate(&self, _genome: &ToyGenome) -> EvalOutcome {
                panic!("boom");
            }
        }
        let evaluator = AlwaysPanics;
        let mut params = quick_params();
        params.generations = 3;
        let mut fuzzer = Fuzzer::new(params, &evaluator, |_rng| ToyGenome(vec![1.0; 3]));
        let telemetry = HuntTelemetry::new();
        fuzzer = fuzzer.with_observer(&telemetry);
        let (result, stop) = fuzzer.run_controlled(&mut RunControl::default());
        // Every evaluation panicked, every panic was isolated, the campaign
        // still completed with default-scored individuals.
        assert_eq!(stop, StopReason::Completed);
        assert_eq!(result.history.len(), 3);
        assert_eq!(result.best_outcome, EvalOutcome::default());
        assert_eq!(fuzzer.panics().len(), result.total_evaluations);
        assert_eq!(
            telemetry.metrics.panics_caught.get(),
            result.total_evaluations as u64
        );
        let record = &fuzzer.panics()[0];
        assert_eq!(record.message, "boom");
        assert_eq!(record.generation, 0);
        assert_eq!(record.genome, ToyGenome(vec![1.0; 3]));
        // The panic log survives a snapshot roundtrip.
        let snap = fuzzer.snapshot();
        assert_eq!(snap.panics.len(), fuzzer.panics().len());
    }

    #[test]
    fn panic_budget_aborts_after_the_inflight_generation() {
        struct AlwaysPanics;
        impl Evaluator<ToyGenome> for AlwaysPanics {
            fn evaluate(&self, _genome: &ToyGenome) -> EvalOutcome {
                panic!("boom");
            }
        }
        let evaluator = AlwaysPanics;
        let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |_rng| ToyGenome(vec![1.0; 3]));
        let (result, stop) = fuzzer.run_controlled(&mut RunControl {
            panic_budget: Some(2),
            ..RunControl::default()
        });
        assert_eq!(stop, StopReason::PanicBudgetExhausted);
        assert_eq!(result.history.len(), 1, "stopped at the first boundary");
        assert!(fuzzer.panics().len() as u64 > 2);
    }

    #[test]
    fn isolated_panics_preserve_the_surviving_trajectory() {
        // A run where *some* evaluations panic must still be deterministic
        // and resumable: panicked individuals score the default outcome and
        // selection proceeds.
        let evaluator = FaultyEvaluator;
        let mut params = quick_params();
        params.generations = 8;
        let init =
            |rng: &mut SimRng| ToyGenome((0..3).map(|_| rng.gen_range_f64(-0.4, 0.6)).collect());
        let run_once = || {
            let mut fuzzer = Fuzzer::new(params, &evaluator, init);
            let (result, stop) = fuzzer.run_controlled(&mut RunControl::default());
            assert_eq!(stop, StopReason::Completed);
            (result, fuzzer.panics().to_vec())
        };
        let (a, panics_a) = run_once();
        let (b, panics_b) = run_once();
        assert_eq!(a.history, b.history);
        assert_eq!(panics_a, panics_b);
        assert!(
            !panics_a.is_empty(),
            "the faulty evaluator should have panicked at least once"
        );
        assert!(a.best_outcome.score > 0.0, "survivors still score");
    }

    #[test]
    fn migration_spreads_good_genomes() {
        // Seed one island with a clearly superior genome and verify that after
        // migration other islands contain it.
        let evaluator = ToyEvaluator;
        let mut params = quick_params();
        params.generations = 8;
        params.migration_interval = 2;
        let mut counter = 0usize;
        let mut fuzzer = Fuzzer::new(params, &evaluator, move |rng| {
            counter += 1;
            if counter == 1 {
                ToyGenome(vec![100.0; 5]) // super-fit individual in island 0
            } else {
                ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
            }
        });
        let result = fuzzer.run();
        assert!(result.best_outcome.score >= 500.0);
        // The top-k mean should have been pulled up strongly by generation 8,
        // which only happens if the good genome propagated beyond one island
        // (top_k = 4 > population of a single island's elite).
        let last = result.history.last().unwrap();
        assert!(last.mean_score > 5.0, "mean score {}", last.mean_score);
    }
}
