//! The genetic-algorithm loop (Figure 1 of the paper) with island isolation.
//!
//! The population is split into islands [21]; each island evolves
//! independently (elitism + crossovers + mutations per generation), and every
//! `migration_interval` generations the best traces of each island migrate to
//! the next island in a ring. The paper's evaluation uses 500 traces across
//! 20 islands, kElite = 1, 30 % crossovers and 10 % migration every 10
//! generations.
//!
//! Evaluation of a generation is embarrassingly parallel and is spread over
//! worker threads with `crossbeam::scope`; every simulation is deterministic,
//! so the end-to-end fuzzing run is reproducible from its seed regardless of
//! the thread count.

use crate::evaluate::{EvalOutcome, EvalScratch, Evaluator};
use crate::genome::Genome;
use crate::selection::{pick_pair, pick_ranked};
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_obs::{HuntTelemetry, LocalHistogram, Phase};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Genetic-algorithm parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Number of islands (isolated sub-populations).
    pub islands: usize,
    /// Traces per island.
    pub population_per_island: usize,
    /// Traces that survive unchanged per island per generation.
    pub k_elite: usize,
    /// Fraction of each new generation produced by crossover (0.3 in the paper).
    pub crossover_fraction: f64,
    /// Generations between migrations (10 in the paper).
    pub migration_interval: u32,
    /// Fraction of each island that migrates (0.1 in the paper).
    pub migration_fraction: f64,
    /// Total generations to run.
    pub generations: u32,
    /// Stop early if the global best score has not improved for this many
    /// generations (`None` disables early stopping).
    pub stall_generations: Option<u32>,
    /// Worker threads used for evaluation.
    pub threads: usize,
    /// Apply link-trace annealing (Gaussian smoothing) to elites before
    /// mutation, as described in §3.2. Ignored by genomes without annealing.
    pub anneal: bool,
    /// Number of top traces averaged in the per-generation report (Figure 4d
    /// uses the top 20).
    pub report_top_k: usize,
    /// Master seed.
    pub seed: u64,
}

impl GaParams {
    /// The paper's §4 settings: population 500 split over 20 islands,
    /// kElite = 1, 30 % crossovers, 10 % migration every 10 generations.
    pub fn paper_default() -> Self {
        GaParams {
            islands: 20,
            population_per_island: 25,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 10,
            migration_fraction: 0.1,
            generations: 50,
            stall_generations: None,
            threads: num_threads_default(),
            anneal: false,
            report_top_k: 20,
            seed: 1,
        }
    }

    /// A scaled-down configuration that keeps the same structure but finishes
    /// in seconds; used by tests, examples and the default figure runs.
    pub fn quick() -> Self {
        GaParams {
            islands: 4,
            population_per_island: 8,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 5,
            migration_fraction: 0.25,
            generations: 10,
            stall_generations: None,
            threads: num_threads_default(),
            anneal: false,
            report_top_k: 5,
            seed: 1,
        }
    }

    /// Total population across all islands.
    pub fn total_population(&self) -> usize {
        self.islands * self.population_per_island
    }

    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.islands == 0 || self.population_per_island == 0 {
            return Err("need at least one island and one trace per island".into());
        }
        if self.k_elite >= self.population_per_island {
            return Err("k_elite must be smaller than the island population".into());
        }
        if !(0.0..=1.0).contains(&self.crossover_fraction) {
            return Err("crossover_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.migration_fraction) {
            return Err("migration_fraction must be in [0,1]".into());
        }
        if self.generations == 0 {
            return Err("need at least one generation".into());
        }
        Ok(())
    }
}

fn num_threads_default() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// One individual: a genome plus (once evaluated) its outcome.
#[derive(Clone, Debug)]
pub struct Individual<G> {
    /// The trace genome.
    pub genome: G,
    /// Its evaluation, if it has been scored.
    pub outcome: Option<EvalOutcome>,
}

/// Per-generation summary used for convergence plots (Figure 4d).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenerationSummary {
    /// Generation index (0-based).
    pub generation: u32,
    /// Best score across all islands.
    pub best_score: f64,
    /// Mean score across the whole population.
    pub mean_score: f64,
    /// Mean *delivered packets* of the `report_top_k` highest-scoring traces
    /// (the paper's Figure 4d plots exactly this: "packets sent" by the CCA
    /// for the 20 traces with the lowest throughput).
    pub top_k_mean_delivered: f64,
    /// Mean transmissions of the `report_top_k` highest-scoring traces.
    pub top_k_mean_sent: f64,
    /// Simulations run so far (cumulative).
    pub evaluations: usize,
}

/// The result of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzResult<G> {
    /// The best trace found and its evaluation.
    pub best_genome: G,
    /// Outcome of the best trace.
    pub best_outcome: EvalOutcome,
    /// Per-generation history.
    pub history: Vec<GenerationSummary>,
    /// Total simulations run.
    pub total_evaluations: usize,
}

/// Hook applied to genomes between generations (e.g. link-trace annealing).
pub type AnnealFn<G> = dyn Fn(&G, &mut SimRng) -> G + Sync + Send;

/// The genetic-algorithm fuzzer.
pub struct Fuzzer<'a, G: Genome, E: Evaluator<G>> {
    params: GaParams,
    evaluator: &'a E,
    islands: Vec<Vec<Individual<G>>>,
    rng: SimRng,
    anneal_fn: Option<Box<AnnealFn<G>>>,
    evaluations: usize,
    obs: Option<&'a HuntTelemetry>,
}

impl<'a, G: Genome, E: Evaluator<G>> Fuzzer<'a, G, E> {
    /// Creates a fuzzer with an initial population drawn from `init`.
    pub fn new(params: GaParams, evaluator: &'a E, mut init: impl FnMut(&mut SimRng) -> G) -> Self {
        assert!(
            params.validate().is_ok(),
            "invalid GaParams: {:?}",
            params.validate()
        );
        let mut rng = SimRng::new(params.seed);
        let islands = (0..params.islands)
            .map(|island| {
                let mut island_rng = rng.fork(island as u64 + 1);
                (0..params.population_per_island)
                    .map(|_| Individual {
                        genome: init(&mut island_rng),
                        outcome: None,
                    })
                    .collect()
            })
            .collect();
        let anneal_seed = rng.next_u64();
        let _ = anneal_seed;
        Fuzzer {
            params,
            evaluator,
            islands,
            rng,
            anneal_fn: None,
            evaluations: 0,
            obs: None,
        }
    }

    /// Installs an annealing hook (used for link-trace Gaussian smoothing).
    pub fn with_annealing(mut self, f: Box<AnnealFn<G>>) -> Self {
        self.anneal_fn = Some(f);
        self
    }

    /// Installs a telemetry observer. The observer is passive: every metric
    /// it records lives outside the GA state, so an observed run evolves the
    /// exact same population as an unobserved one.
    pub fn with_observer(mut self, obs: &'a HuntTelemetry) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> &GaParams {
        &self.params
    }

    /// Evaluates every not-yet-scored individual, in parallel.
    fn evaluate_pending(&mut self) {
        // Collect (island, index) pairs needing evaluation.
        let pending: Vec<(usize, usize)> = self
            .islands
            .iter()
            .enumerate()
            .flat_map(|(i, pop)| {
                pop.iter()
                    .enumerate()
                    .filter(|(_, ind)| ind.outcome.is_none())
                    .map(move |(j, _)| (i, j))
            })
            .collect();
        if pending.is_empty() {
            return;
        }
        self.evaluations += pending.len();

        let results: Mutex<Vec<(usize, usize, EvalOutcome)>> =
            Mutex::new(Vec::with_capacity(pending.len()));
        let threads = self.params.threads.max(1).min(pending.len());
        let chunk_size = pending.len().div_ceil(threads);
        let islands = &self.islands;
        let evaluator = self.evaluator;
        let observe = self.obs.is_some();
        // Per-worker latency shards: recorded lock-free into plain local
        // histograms, merged into the shared registry after the scope joins.
        // Shard merging is commutative, so the merged histogram is identical
        // for any thread count (the property tests pin this).
        let shards: Mutex<Vec<LocalHistogram>> = Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for chunk in pending.chunks(chunk_size) {
                let results = &results;
                let shards = &shards;
                scope.spawn(move |_| {
                    // One scratch per worker: consecutive evaluations reuse
                    // the simulator's calendar and packet-pool allocations.
                    // Evaluation stays pure — the scratch only donates
                    // capacity — so results are identical to `evaluate`.
                    let mut scratch = EvalScratch::new();
                    let mut local = Vec::with_capacity(chunk.len());
                    let mut shard = LocalHistogram::new();
                    for &(i, j) in chunk {
                        let outcome = if observe {
                            let started = Instant::now();
                            let outcome =
                                evaluator.evaluate_reusing(&islands[i][j].genome, &mut scratch);
                            shard.record(started.elapsed().as_nanos() as u64);
                            outcome
                        } else {
                            evaluator.evaluate_reusing(&islands[i][j].genome, &mut scratch)
                        };
                        local.push((i, j, outcome));
                    }
                    if shard.count() > 0 {
                        shards.lock().push(shard);
                    }
                    results.lock().extend(local);
                });
            }
        })
        .expect("evaluation worker panicked");
        if let Some(obs) = self.obs {
            obs.metrics.evaluations.add(pending.len() as u64);
            for shard in shards.into_inner().iter() {
                obs.metrics.eval_latency_ns.merge_local(shard);
            }
        }

        // Workers finish in wall-clock order, so the collected vector's
        // order depends on the thread count and scheduling. The keyed
        // assignment below makes the *final state* order-independent either
        // way; re-imposing the canonical (island, index) order makes that
        // independence explicit rather than incidental, and lets the
        // assertion prove every pending individual was evaluated exactly
        // once.
        let mut results = results.into_inner();
        results.sort_by_key(|&(i, j, _)| (i, j));
        debug_assert_eq!(
            results.iter().map(|&(i, j, _)| (i, j)).collect::<Vec<_>>(),
            pending,
            "every pending individual is evaluated exactly once"
        );
        for (i, j, outcome) in results {
            self.islands[i][j].outcome = Some(outcome);
        }
    }

    fn sort_island(pop: &mut [Individual<G>]) {
        pop.sort_by(|a, b| {
            let sa = a.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            let sb = b.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    fn summarize(&self, generation: u32) -> GenerationSummary {
        let mut all: Vec<&Individual<G>> = self.islands.iter().flatten().collect();
        all.sort_by(|a, b| {
            let sa = a.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            let sb = b.outcome.map(|o| o.score).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let scores: Vec<f64> = all
            .iter()
            .filter_map(|i| i.outcome.map(|o| o.score))
            .collect();
        let k = self.params.report_top_k.clamp(1, all.len());
        let top_k: Vec<&EvalOutcome> = all[..k].iter().filter_map(|i| i.outcome.as_ref()).collect();
        let mean = |values: &[f64]| {
            if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        GenerationSummary {
            generation,
            best_score: scores.first().copied().unwrap_or(0.0),
            mean_score: mean(&scores),
            top_k_mean_delivered: mean(
                &top_k
                    .iter()
                    .map(|o| o.delivered_packets as f64)
                    .collect::<Vec<_>>(),
            ),
            top_k_mean_sent: mean(
                &top_k
                    .iter()
                    .map(|o| o.sent_packets as f64)
                    .collect::<Vec<_>>(),
            ),
            evaluations: self.evaluations,
        }
    }

    /// Builds the next generation of one island (elitism + crossover + mutation).
    fn evolve_island(&mut self, island_idx: usize) {
        let params = self.params;
        let mut rng = self.rng.fork(1_000 + island_idx as u64);
        let pop = &mut self.islands[island_idx];
        Self::sort_island(pop);

        let n = pop.len();
        let k_elite = params.k_elite.min(n);
        let k_crossover = ((n - k_elite) as f64 * params.crossover_fraction).round() as usize;

        let mut next: Vec<Individual<G>> = Vec::with_capacity(n);
        // Elites survive unchanged (and keep their cached outcome).
        for elite in pop.iter().take(k_elite) {
            next.push(elite.clone());
        }
        // Crossovers.
        let mut produced = 0usize;
        while produced < k_crossover && next.len() < n {
            let (a, b) = pick_pair(n, &mut rng);
            let child = pop[a].genome.crossover(&pop[b].genome, &mut rng);
            match child {
                Some(genome) => {
                    next.push(Individual {
                        genome,
                        outcome: None,
                    });
                    produced += 1;
                }
                None => break, // genome type has no crossover (link mode)
            }
        }
        // Mutations fill the remainder.
        let mut mutated = 0u64;
        let mut annealed = 0u64;
        while next.len() < n {
            let src = pick_ranked(n, &mut rng);
            let base = if params.anneal {
                if let Some(anneal) = &self.anneal_fn {
                    annealed += 1;
                    anneal(&pop[src].genome, &mut rng)
                } else {
                    pop[src].genome.clone()
                }
            } else {
                pop[src].genome.clone()
            };
            let genome = base.mutate(&mut rng);
            mutated += 1;
            next.push(Individual {
                genome,
                outcome: None,
            });
        }
        self.islands[island_idx] = next;
        if let Some(obs) = self.obs {
            let ops = &obs.metrics.operators;
            ops.elite.add(k_elite as u64);
            ops.crossover.add(produced as u64);
            ops.mutation.add(mutated);
            ops.anneal.add(annealed);
        }
    }

    /// Ring migration: each island sends its best `migration_fraction` to the
    /// next island, replacing that island's worst individuals.
    fn migrate(&mut self) {
        let n_islands = self.islands.len();
        if n_islands < 2 {
            return;
        }
        let k =
            ((self.params.population_per_island as f64 * self.params.migration_fraction).round()
                as usize)
                .clamp(1, self.params.population_per_island / 2 + 1);
        for pop in &mut self.islands {
            Self::sort_island(pop);
        }
        // Collect migrants first so migration is simultaneous, not cascading.
        let migrants: Vec<Vec<Individual<G>>> = self
            .islands
            .iter()
            .map(|pop| pop.iter().take(k).cloned().collect())
            .collect();
        for (i, migrant_group) in migrants.into_iter().enumerate() {
            let dst = (i + 1) % n_islands;
            let pop = &mut self.islands[dst];
            let len = pop.len();
            for (offset, migrant) in migrant_group.into_iter().enumerate() {
                let idx = len - 1 - offset;
                pop[idx] = migrant;
            }
        }
        if let Some(obs) = self.obs {
            obs.metrics.operators.migrant.add((n_islands * k) as u64);
        }
    }

    /// Best evaluated score of each island, in island order.
    fn island_best_scores(&self) -> Vec<f64> {
        self.islands
            .iter()
            .map(|pop| {
                pop.iter()
                    .filter_map(|ind| ind.outcome.map(|o| o.score))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Runs the campaign and returns the best trace plus per-generation history.
    pub fn run(&mut self) -> FuzzResult<G> {
        let mut history = Vec::with_capacity(self.params.generations as usize);
        let mut best: Option<(G, EvalOutcome)> = None;
        let mut stall = 0u32;

        for generation in 0..self.params.generations {
            {
                let _timer = self.obs.map(|o| o.profiler.scope(Phase::Evaluate));
                self.evaluate_pending();
            }

            // Track the global best.
            let _timer = self.obs.map(|o| o.profiler.scope(Phase::Select));
            let mut improved = false;
            for ind in self.islands.iter().flatten() {
                if let Some(outcome) = ind.outcome {
                    if best
                        .as_ref()
                        .map(|(_, b)| outcome.score > b.score)
                        .unwrap_or(true)
                    {
                        best = Some((ind.genome.clone(), outcome));
                        improved = true;
                    }
                }
            }
            let summary = self.summarize(generation);
            history.push(summary);
            if let Some(obs) = self.obs {
                obs.observe_generation(
                    generation,
                    best.as_ref().map(|(_, b)| b.score).unwrap_or(0.0),
                    summary.mean_score,
                    self.island_best_scores(),
                );
            }
            drop(_timer);

            if improved {
                stall = 0;
            } else {
                stall += 1;
                if let Some(limit) = self.params.stall_generations {
                    if stall >= limit {
                        break;
                    }
                }
            }

            // Last generation: don't bother producing offspring.
            if generation + 1 == self.params.generations {
                break;
            }
            let _timer = self.obs.map(|o| o.profiler.scope(Phase::Mutate));
            for island in 0..self.islands.len() {
                self.evolve_island(island);
            }
            if self.params.migration_interval > 0
                && (generation + 1) % self.params.migration_interval == 0
            {
                self.migrate();
            }
        }

        let (best_genome, best_outcome) = best.expect("at least one individual was evaluated");
        FuzzResult {
            best_genome,
            best_outcome,
            history,
            total_evaluations: self.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Genome;

    /// A toy genome (a vector of numbers) and evaluator (score = sum) that
    /// exercise the GA machinery without running network simulations.
    #[derive(Clone, Debug, PartialEq)]
    struct ToyGenome(Vec<f64>);

    impl Genome for ToyGenome {
        fn mutate(&self, rng: &mut SimRng) -> Self {
            let mut v = self.0.clone();
            if v.is_empty() {
                return ToyGenome(v);
            }
            let idx = rng.gen_range_usize(0, v.len());
            v[idx] += rng.gen_range_f64(-0.5, 1.0);
            ToyGenome(v)
        }
        fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
            let split = rng.gen_range_usize(0, self.0.len() + 1);
            let mut v = self.0[..split].to_vec();
            v.extend_from_slice(&other.0[split.min(other.0.len())..]);
            Some(ToyGenome(v))
        }
        fn packet_count(&self) -> usize {
            self.0.len()
        }
        fn validate(&self) -> Result<(), String> {
            Ok(())
        }
    }

    struct ToyEvaluator;
    impl Evaluator<ToyGenome> for ToyEvaluator {
        fn evaluate(&self, genome: &ToyGenome) -> EvalOutcome {
            let score: f64 = genome.0.iter().sum();
            EvalOutcome {
                score,
                performance_score: score,
                delivered_packets: 100,
                sent_packets: 110,
                ..Default::default()
            }
        }
    }

    fn quick_params() -> GaParams {
        GaParams {
            islands: 3,
            population_per_island: 6,
            k_elite: 1,
            crossover_fraction: 0.3,
            migration_interval: 3,
            migration_fraction: 0.2,
            generations: 15,
            stall_generations: None,
            threads: 2,
            anneal: false,
            report_top_k: 4,
            seed: 7,
        }
    }

    #[test]
    fn params_validation() {
        assert!(GaParams::paper_default().validate().is_ok());
        assert!(GaParams::quick().validate().is_ok());
        assert_eq!(GaParams::paper_default().total_population(), 500);
        let mut bad = GaParams::quick();
        bad.k_elite = bad.population_per_island;
        assert!(bad.validate().is_err());
        let mut bad = GaParams::quick();
        bad.crossover_fraction = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = GaParams::quick();
        bad.islands = 0;
        assert!(bad.validate().is_err());
        let mut bad = GaParams::quick();
        bad.generations = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ga_improves_the_toy_objective() {
        let evaluator = ToyEvaluator;
        let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |rng| {
            ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
        });
        let result = fuzzer.run();
        let first = result.history.first().unwrap();
        let last = result.history.last().unwrap();
        assert!(
            last.best_score > first.best_score,
            "GA should improve: {} -> {}",
            first.best_score,
            last.best_score
        );
        assert!(result.best_outcome.score >= last.best_score);
        assert!(result.total_evaluations > quick_params().total_population());
        assert_eq!(result.history.len(), 15);
    }

    #[test]
    fn best_score_is_monotone_in_history() {
        let evaluator = ToyEvaluator;
        let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |rng| {
            ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
        });
        let result = fuzzer.run();
        // Because of elitism, the global best never regresses.
        let best_scores: Vec<f64> = result.history.iter().map(|h| h.best_score).collect();
        assert!(
            best_scores.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "{best_scores:?}"
        );
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let run = |threads: usize| {
            let evaluator = ToyEvaluator;
            let mut params = quick_params();
            params.threads = threads;
            let mut fuzzer = Fuzzer::new(params, &evaluator, |rng| {
                ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
            });
            let r = fuzzer.run();
            (r.best_outcome.score, r.history.last().unwrap().mean_score)
        };
        assert_eq!(run(1), run(1));
        // Thread count must not affect the result (evaluation is pure and
        // result application is re-ordered canonically).
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn evaluation_order_is_identical_for_any_thread_count() {
        // A score plateau makes tie-breaking visible: many individuals share
        // the top score, so *which* genome is reported as best depends on
        // comparison order. With canonical result ordering, threads=1 and
        // threads=4 must agree on the exact best genome, not just the score.
        #[derive(Clone, Debug, PartialEq)]
        struct TieGenome(u64);
        impl Genome for TieGenome {
            fn mutate(&self, rng: &mut SimRng) -> Self {
                TieGenome(rng.next_u64())
            }
            fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
                Some(if rng.gen_bool(0.5) {
                    self.clone()
                } else {
                    other.clone()
                })
            }
            fn packet_count(&self) -> usize {
                0
            }
            fn validate(&self) -> Result<(), String> {
                Ok(())
            }
        }
        struct PlateauEvaluator;
        impl Evaluator<TieGenome> for PlateauEvaluator {
            fn evaluate(&self, genome: &TieGenome) -> EvalOutcome {
                EvalOutcome {
                    // Two buckets only: plenty of exact ties.
                    score: (genome.0 % 2) as f64,
                    delivered_packets: genome.0,
                    ..Default::default()
                }
            }
        }
        let run = |threads: usize| {
            let mut params = quick_params();
            params.threads = threads;
            params.generations = 6;
            let evaluator = PlateauEvaluator;
            let mut fuzzer = Fuzzer::new(params, &evaluator, |rng| TieGenome(rng.next_u64()));
            let r = fuzzer.run();
            (r.best_genome, r.best_outcome, r.history)
        };
        let single = run(1);
        for threads in [2, 4, 7] {
            let multi = run(threads);
            assert_eq!(
                single.0, multi.0,
                "best genome differs at {threads} threads"
            );
            assert_eq!(single.1, multi.1);
            assert_eq!(single.2, multi.2);
        }
    }

    #[test]
    fn observer_is_passive_and_records_the_campaign() {
        let run = |obs: Option<&HuntTelemetry>| {
            let evaluator = ToyEvaluator;
            let mut fuzzer = Fuzzer::new(quick_params(), &evaluator, |rng| {
                ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
            });
            if let Some(obs) = obs {
                fuzzer = fuzzer.with_observer(obs);
            }
            let r = fuzzer.run();
            (r.best_genome, r.best_outcome, r.history)
        };
        let plain = run(None);
        let telemetry = HuntTelemetry::new();
        let observed = run(Some(&telemetry));
        // Observation must not change what evolves.
        assert_eq!(plain, observed);

        let total = observed.2.last().unwrap().evaluations as u64;
        assert_eq!(telemetry.metrics.evaluations.get(), total);
        // Every evaluation was timed exactly once across all worker shards.
        assert_eq!(telemetry.metrics.eval_latency_ns.snapshot().count, total);
        assert_eq!(telemetry.metrics.best_score.get(), observed.1.score);
        let ops = &telemetry.metrics.operators;
        assert!(ops.elite.get() > 0, "elites counted");
        assert!(ops.mutation.get() > 0, "mutations counted");
        assert!(ops.migrant.get() > 0, "migrations counted");
        assert_eq!(ops.anneal.get(), 0, "no annealing hook installed");
        // The loop spends its time in the phases the profiler tracks.
        assert!(telemetry.profiler.nanos(Phase::Evaluate) > 0);
        assert!(telemetry.profiler.nanos(Phase::Mutate) > 0);
    }

    #[test]
    fn stall_detection_stops_early() {
        struct ConstantEvaluator;
        impl Evaluator<ToyGenome> for ConstantEvaluator {
            fn evaluate(&self, _genome: &ToyGenome) -> EvalOutcome {
                EvalOutcome {
                    score: 1.0,
                    ..Default::default()
                }
            }
        }
        let mut params = quick_params();
        params.generations = 50;
        params.stall_generations = Some(3);
        let evaluator = ConstantEvaluator;
        let mut fuzzer = Fuzzer::new(params, &evaluator, |_rng| ToyGenome(vec![1.0; 3]));
        let result = fuzzer.run();
        assert!(
            result.history.len() < 50,
            "constant fitness should trigger early stopping, ran {} generations",
            result.history.len()
        );
    }

    #[test]
    fn migration_spreads_good_genomes() {
        // Seed one island with a clearly superior genome and verify that after
        // migration other islands contain it.
        let evaluator = ToyEvaluator;
        let mut params = quick_params();
        params.generations = 8;
        params.migration_interval = 2;
        let mut counter = 0usize;
        let mut fuzzer = Fuzzer::new(params, &evaluator, move |rng| {
            counter += 1;
            if counter == 1 {
                ToyGenome(vec![100.0; 5]) // super-fit individual in island 0
            } else {
                ToyGenome((0..5).map(|_| rng.gen_range_f64(0.0, 1.0)).collect())
            }
        });
        let result = fuzzer.run();
        assert!(result.best_outcome.score >= 500.0);
        // The top-k mean should have been pulled up strongly by generation 8,
        // which only happens if the good genome propagated beyond one island
        // (top_k = 4 > population of a single island's elite).
        let last = result.history.last().unwrap();
        assert!(last.mean_score > 5.0, "mean score {}", last.mean_score);
    }
}
