//! Ready-made fuzzing campaigns matching the paper's evaluation setup.
//!
//! A *campaign* bundles the network scenario (§3.1/§4: 12 Mbps bottleneck,
//! 20 ms propagation delay, SACK + delayed ACKs, 1 s min-RTO), a CCA under
//! test, a scoring configuration and the GA parameters, and runs either
//! traffic fuzzing or link fuzzing end to end. The figure binaries, the
//! examples and the integration tests all go through this module so the
//! experiment definitions live in exactly one place.

use crate::checkpoint::{CampaignControl, ControlledRun, SnapshotPayload};
use crate::evaluate::{Evaluator, SimEvaluator};
use crate::fuzzer::{FuzzResult, Fuzzer, FuzzerSnapshot, GaParams, RunControl};
use crate::genome::{Genome, LinkGenome, TrafficGenome};
use crate::scenario::{QdiscChoice, ScenarioGenome};
use crate::scoring::ScoringConfig;
use crate::topology::TopologyGenome;
use crate::trace_gen::packets_for_rate;
use crate::workload::WorkloadGenome;
use ccfuzz_cca::CcaKind;
use ccfuzz_netsim::config::SimConfig;
use ccfuzz_netsim::queue::QueueCapacity;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_obs::{HuntTelemetry, Phase};
use serde::{Deserialize, Serialize};

/// The paper's bottleneck rate (12 Mbps).
pub const PAPER_LINK_RATE_BPS: u64 = 12_000_000;
/// The paper's one-way propagation delay (20 ms).
pub const PAPER_PROP_DELAY_MS: u64 = 20;
/// The paper's aggregation threshold for DIST_PACKETS (50 ms).
pub const PAPER_K_AGG_MS: u64 = 50;

/// Which fuzzing mode a campaign uses: the paper's two single-flow modes
/// (§3.1) plus the multi-flow fairness mode built on top of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FuzzMode {
    /// Evolve bottleneck service curves (fixed cross traffic = none).
    Link,
    /// Evolve cross-traffic patterns (fixed-rate bottleneck).
    Traffic,
    /// Evolve multi-flow scenarios (flow mix, schedules, optional cross
    /// traffic) hunting for unfairness/starvation between concurrent CCAs.
    Fairness,
    /// Evolve gateway queue disciplines (RED/CoDel parameters, ECN on/off)
    /// plus cross traffic, hunting for AQM configurations that break a CCA.
    Aqm,
    /// Evolve multi-hop topologies (per-hop rate/delay/buffer/qdisc,
    /// per-flow parking-lot paths) plus cross traffic, hunting for hop
    /// chains that break flows.
    Topology,
    /// Evolve dynamic-arrival workloads (arrival process, heavy-tailed flow
    /// sizes, background elephant mix) hunting for flow-churn patterns that
    /// inflate the tail latency of short flows.
    Workload,
}

impl FuzzMode {
    /// Short name used in reports, corpus buckets and finding ids.
    pub fn name(&self) -> &'static str {
        match self {
            FuzzMode::Link => "link",
            FuzzMode::Traffic => "traffic",
            FuzzMode::Fairness => "fairness",
            FuzzMode::Aqm => "aqm",
            FuzzMode::Topology => "topology",
            FuzzMode::Workload => "workload",
        }
    }

    /// Every mode, in CLI/documentation order.
    pub const ALL: [FuzzMode; 6] = [
        FuzzMode::Traffic,
        FuzzMode::Link,
        FuzzMode::Fairness,
        FuzzMode::Aqm,
        FuzzMode::Topology,
        FuzzMode::Workload,
    ];

    /// Parses a CLI name as produced by [`FuzzMode::name`].
    pub fn from_name(name: &str) -> Option<FuzzMode> {
        FuzzMode::ALL.iter().copied().find(|m| m.name() == name)
    }
}

/// A complete campaign description.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// Algorithm under test (the primary flow's algorithm in fairness mode).
    pub cca: CcaKind,
    /// Scenario duration per simulation.
    pub duration: SimDuration,
    /// Scoring configuration.
    pub scoring: ScoringConfig,
    /// Genetic-algorithm parameters.
    pub ga: GaParams,
    /// Base simulation settings.
    pub sim: SimConfig,
    /// Bottleneck rate (fixed rate in traffic mode, average rate in link mode).
    pub link_rate_bps: u64,
    /// Cross-traffic packet budget for traffic genomes.
    pub traffic_max_packets: usize,
    /// Initial per-flow algorithms for fairness mode (empty otherwise).
    /// Flow 0 always equals `cca`.
    pub flow_ccas: Vec<CcaKind>,
    /// Maximum concurrent flows fairness mutation may grow to.
    pub max_flows: usize,
    /// Disciplines AQM-mode genomes may draw from (ignored elsewhere).
    pub qdisc_choice: QdiscChoice,
    /// Initial hop count of topology-mode genomes (ignored elsewhere).
    pub topology_hops: usize,
}

impl Campaign {
    /// Builds the paper's standard scenario for a given mode, CCA, duration
    /// and GA parameters, with the low-throughput objective.
    pub fn paper_standard(
        mode: FuzzMode,
        cca: CcaKind,
        duration: SimDuration,
        ga: GaParams,
    ) -> Self {
        let sim = paper_sim_base(duration);
        Campaign {
            mode,
            cca,
            duration,
            scoring: ScoringConfig::low_throughput_default(PAPER_LINK_RATE_BPS as f64),
            ga,
            traffic_max_packets: packets_for_rate(PAPER_LINK_RATE_BPS, sim.mss, duration),
            sim,
            link_rate_bps: PAPER_LINK_RATE_BPS,
            flow_ccas: vec![cca],
            max_flows: 1,
            qdisc_choice: QdiscChoice::Any,
            topology_hops: 1,
        }
    }

    /// The fairness campaign preset: the paper's standard scenario (12 Mbps
    /// bottleneck, 20 ms propagation delay) shared by the given flows, with
    /// the unfairness objective. The GA evolves the flow schedule, the flow
    /// mix (drawing replacements from `flow_ccas`) and an optional
    /// cross-traffic helper capped at half the link's packet budget.
    pub fn paper_fairness(flow_ccas: Vec<CcaKind>, duration: SimDuration, ga: GaParams) -> Self {
        assert!(
            flow_ccas.len() >= crate::scenario::MIN_FAIRNESS_FLOWS,
            "fairness campaigns need at least two flows"
        );
        let sim = paper_sim_base(duration);
        let max_flows = flow_ccas.len().max(4);
        Campaign {
            mode: FuzzMode::Fairness,
            cca: flow_ccas[0],
            duration,
            scoring: ScoringConfig::fairness_default(PAPER_LINK_RATE_BPS as f64),
            ga,
            traffic_max_packets: packets_for_rate(PAPER_LINK_RATE_BPS, sim.mss, duration) / 2,
            sim,
            link_rate_bps: PAPER_LINK_RATE_BPS,
            flow_ccas,
            max_flows,
            qdisc_choice: QdiscChoice::Any,
            topology_hops: 1,
        }
    }

    /// The AQM campaign preset: the paper's standard single-flow scenario,
    /// but the GA additionally evolves the gateway queue discipline
    /// (RED/CoDel parameters and ECN negotiation) alongside the cross
    /// traffic, hunting for AQM configurations that break `cca`. `choice`
    /// restricts the disciplines explored (the CLI's `--qdisc` flag).
    pub fn paper_aqm(
        cca: CcaKind,
        duration: SimDuration,
        ga: GaParams,
        choice: QdiscChoice,
    ) -> Self {
        let sim = paper_sim_base(duration);
        Campaign {
            mode: FuzzMode::Aqm,
            cca,
            duration,
            scoring: ScoringConfig::aqm_default(PAPER_LINK_RATE_BPS as f64),
            ga,
            traffic_max_packets: packets_for_rate(PAPER_LINK_RATE_BPS, sim.mss, duration) / 2,
            sim,
            link_rate_bps: PAPER_LINK_RATE_BPS,
            flow_ccas: vec![cca],
            max_flows: 1,
            qdisc_choice: choice,
            topology_hops: 1,
        }
    }

    /// The topology campaign preset: the GA evolves a chain of `hops`
    /// bottleneck hops (rates bracketing the paper's 12 Mbps, per-hop
    /// delays/buffers/qdiscs), parking-lot competitor flows drawn from
    /// `cca` + Reno, and a cross-traffic helper at the head of the chain,
    /// hunting for hop chains that break `cca`.
    pub fn paper_topology(cca: CcaKind, hops: usize, duration: SimDuration, ga: GaParams) -> Self {
        let sim = paper_sim_base(duration);
        Campaign {
            mode: FuzzMode::Topology,
            cca,
            duration,
            scoring: ScoringConfig::topology_default(PAPER_LINK_RATE_BPS as f64),
            ga,
            traffic_max_packets: packets_for_rate(PAPER_LINK_RATE_BPS, sim.mss, duration) / 2,
            sim,
            link_rate_bps: PAPER_LINK_RATE_BPS,
            flow_ccas: vec![cca, CcaKind::Reno],
            max_flows: 3,
            qdisc_choice: QdiscChoice::Any,
            topology_hops: hops.max(1),
        }
    }

    /// The workload campaign preset: the paper's standard bottleneck, but
    /// the GA evolves a dynamic-arrival workload — Poisson or ON/OFF flow
    /// arrivals with bounded-Pareto sizes, a concurrency cap, and a
    /// background elephant mix drawn from `cca_pool` — hunting for churn
    /// patterns that inflate the p99 flow-completion time of short flows
    /// through `cca`'s elephants. `max_elephants` bounds the background mix
    /// (stored in the campaign's `max_flows` field).
    pub fn paper_workload(
        cca: CcaKind,
        cca_pool: Vec<CcaKind>,
        max_elephants: usize,
        duration: SimDuration,
        ga: GaParams,
    ) -> Self {
        assert!(!cca_pool.is_empty(), "workload campaigns need a CCA pool");
        let sim = paper_sim_base(duration);
        Campaign {
            mode: FuzzMode::Workload,
            cca,
            duration,
            scoring: ScoringConfig::workload_default(PAPER_LINK_RATE_BPS as f64),
            ga,
            traffic_max_packets: 0,
            sim,
            link_rate_bps: PAPER_LINK_RATE_BPS,
            flow_ccas: cca_pool,
            max_flows: max_elephants.max(crate::workload::MIN_ELEPHANTS),
            qdisc_choice: QdiscChoice::Any,
            topology_hops: 1,
        }
    }

    /// Same scenario but hunting for high queuing delay (§4.3 / Figure 4e).
    pub fn paper_high_delay(
        mode: FuzzMode,
        cca: CcaKind,
        duration: SimDuration,
        ga: GaParams,
    ) -> Self {
        let mut c = Self::paper_standard(mode, cca, duration, ga);
        c.scoring = ScoringConfig::high_delay_default(PAPER_LINK_RATE_BPS as f64);
        c
    }

    /// The evaluator this campaign uses.
    pub fn evaluator(&self) -> SimEvaluator {
        SimEvaluator::new(self.sim.clone(), self.cca, self.scoring, self.link_rate_bps)
    }

    /// Runs a traffic-fuzzing campaign. Panics if the mode is not [`FuzzMode::Traffic`].
    pub fn run_traffic(&self) -> FuzzResult<TrafficGenome> {
        self.run_traffic_with(None)
    }

    /// [`Campaign::run_traffic`] with an optional telemetry observer. The
    /// observer is passive — population evolution and results are identical
    /// with or without it.
    pub fn run_traffic_with(&self, obs: Option<&HuntTelemetry>) -> FuzzResult<TrafficGenome> {
        self.run_traffic_controlled(obs, CampaignControl::default())
            .expect("uncontrolled campaign runs cannot fail to start")
            .result
    }

    /// [`Campaign::run_traffic_with`] under a [`CampaignControl`] plane:
    /// shutdown flag, periodic checkpoints, panic budget and resume.
    pub fn run_traffic_controlled(
        &self,
        obs: Option<&HuntTelemetry>,
        mut ctl: CampaignControl<'_>,
    ) -> Result<ControlledRun<TrafficGenome>, String> {
        let evaluator = self.evaluator();
        let resume = match ctl.resume.take() {
            Some(payload) => Some(payload.into_traffic()?),
            None => None,
        };
        let fuzzer = self.build_traffic_fuzzer(&evaluator, resume, obs)?;
        Ok(drive(fuzzer, &mut ctl, SnapshotPayload::Traffic))
    }

    /// Builds this campaign's traffic-mode fuzzer — fresh from the campaign
    /// seed, or restored from `resume`. Single-process runs and every shard
    /// worker of a distributed run go through this one constructor, so their
    /// fuzzers are byte-identical by construction. Panics if the mode is not
    /// [`FuzzMode::Traffic`].
    pub fn build_traffic_fuzzer<'e>(
        &self,
        evaluator: &'e SimEvaluator,
        resume: Option<FuzzerSnapshot<TrafficGenome>>,
        obs: Option<&'e HuntTelemetry>,
    ) -> Result<Fuzzer<'e, TrafficGenome, SimEvaluator>, String> {
        assert_eq!(
            self.mode,
            FuzzMode::Traffic,
            "campaign is not in traffic mode"
        );
        let duration = self.duration;
        let max_packets = self.traffic_max_packets;
        let mut fuzzer = match resume {
            Some(snapshot) => self.restore_fuzzer(evaluator, snapshot)?,
            None => {
                let _timer = obs.map(|o| o.profiler.scope(Phase::Generate));
                Fuzzer::new(self.ga, evaluator, |rng: &mut SimRng| {
                    TrafficGenome::generate(max_packets, duration, rng)
                })
            }
        };
        if let Some(obs) = obs {
            fuzzer = fuzzer.with_observer(obs);
        }
        Ok(fuzzer)
    }

    /// Runs a link-fuzzing campaign (with annealing if `ga.anneal` is set).
    /// Panics if the mode is not [`FuzzMode::Link`].
    pub fn run_link(&self) -> FuzzResult<LinkGenome> {
        self.run_link_with(None)
    }

    /// [`Campaign::run_link`] with an optional telemetry observer.
    pub fn run_link_with(&self, obs: Option<&HuntTelemetry>) -> FuzzResult<LinkGenome> {
        self.run_link_controlled(obs, CampaignControl::default())
            .expect("uncontrolled campaign runs cannot fail to start")
            .result
    }

    /// [`Campaign::run_link_with`] under a [`CampaignControl`] plane.
    pub fn run_link_controlled(
        &self,
        obs: Option<&HuntTelemetry>,
        mut ctl: CampaignControl<'_>,
    ) -> Result<ControlledRun<LinkGenome>, String> {
        let evaluator = self.evaluator();
        let resume = match ctl.resume.take() {
            Some(payload) => Some(payload.into_link()?),
            None => None,
        };
        let fuzzer = self.build_link_fuzzer(&evaluator, resume, obs)?;
        Ok(drive(fuzzer, &mut ctl, SnapshotPayload::Link))
    }

    /// Builds this campaign's link-mode fuzzer (annealing hook attached when
    /// `ga.anneal` is set) — fresh or restored from `resume`; see
    /// [`Campaign::build_traffic_fuzzer`] for why construction is shared.
    /// Panics if the mode is not [`FuzzMode::Link`].
    pub fn build_link_fuzzer<'e>(
        &self,
        evaluator: &'e SimEvaluator,
        resume: Option<FuzzerSnapshot<LinkGenome>>,
        obs: Option<&'e HuntTelemetry>,
    ) -> Result<Fuzzer<'e, LinkGenome, SimEvaluator>, String> {
        assert_eq!(self.mode, FuzzMode::Link, "campaign is not in link mode");
        let duration = self.duration;
        let total_packets = packets_for_rate(self.link_rate_bps, self.sim.mss, duration);
        let k_agg = SimDuration::from_millis(PAPER_K_AGG_MS);
        let mut fuzzer = match resume {
            Some(snapshot) => self.restore_fuzzer(evaluator, snapshot)?,
            None => {
                let _timer = obs.map(|o| o.profiler.scope(Phase::Generate));
                Fuzzer::new(self.ga, evaluator, move |rng: &mut SimRng| {
                    LinkGenome::generate(total_packets, duration, k_agg, rng)
                })
            }
        };
        if self.ga.anneal {
            fuzzer = fuzzer.with_annealing(Box::new(|genome: &LinkGenome, rng: &mut SimRng| {
                genome.anneal(3, SimDuration::from_micros(200), rng)
            }));
        }
        if let Some(obs) = obs {
            fuzzer = fuzzer.with_observer(obs);
        }
        Ok(fuzzer)
    }

    /// Runs a fairness-fuzzing campaign over multi-flow scenario genomes.
    /// Panics if the mode is not [`FuzzMode::Fairness`].
    pub fn run_fairness(&self) -> FuzzResult<ScenarioGenome> {
        self.run_fairness_with(None)
    }

    /// [`Campaign::run_fairness`] with an optional telemetry observer.
    pub fn run_fairness_with(&self, obs: Option<&HuntTelemetry>) -> FuzzResult<ScenarioGenome> {
        self.run_fairness_controlled(obs, CampaignControl::default())
            .expect("uncontrolled campaign runs cannot fail to start")
            .result
    }

    /// [`Campaign::run_fairness_with`] under a [`CampaignControl`] plane.
    pub fn run_fairness_controlled(
        &self,
        obs: Option<&HuntTelemetry>,
        mut ctl: CampaignControl<'_>,
    ) -> Result<ControlledRun<ScenarioGenome>, String> {
        let evaluator = self.evaluator();
        let resume = match ctl.resume.take() {
            Some(payload) => Some(payload.into_scenario()?),
            None => None,
        };
        let fuzzer = self.build_fairness_fuzzer(&evaluator, resume, obs)?;
        Ok(drive(fuzzer, &mut ctl, SnapshotPayload::Scenario))
    }

    /// Builds this campaign's fairness-mode fuzzer — fresh or restored from
    /// `resume`; see [`Campaign::build_traffic_fuzzer`] for why construction
    /// is shared. Panics if the mode is not [`FuzzMode::Fairness`].
    pub fn build_fairness_fuzzer<'e>(
        &self,
        evaluator: &'e SimEvaluator,
        resume: Option<FuzzerSnapshot<ScenarioGenome>>,
        obs: Option<&'e HuntTelemetry>,
    ) -> Result<Fuzzer<'e, ScenarioGenome, SimEvaluator>, String> {
        assert_eq!(
            self.mode,
            FuzzMode::Fairness,
            "campaign is not in fairness mode"
        );
        let duration = self.duration;
        let flow_ccas = self.flow_ccas.clone();
        let max_flows = self.max_flows;
        let traffic_max_packets = self.traffic_max_packets;
        let mut fuzzer = match resume {
            Some(snapshot) => self.restore_fuzzer(evaluator, snapshot)?,
            None => {
                let _timer = obs.map(|o| o.profiler.scope(Phase::Generate));
                Fuzzer::new(self.ga, evaluator, move |rng: &mut SimRng| {
                    ScenarioGenome::generate(
                        &flow_ccas,
                        max_flows,
                        duration,
                        traffic_max_packets,
                        rng,
                    )
                })
            }
        };
        if let Some(obs) = obs {
            fuzzer = fuzzer.with_observer(obs);
        }
        Ok(fuzzer)
    }

    /// Runs an AQM-fuzzing campaign over single-flow scenario genomes with
    /// qdisc genes. Panics if the mode is not [`FuzzMode::Aqm`].
    pub fn run_aqm(&self) -> FuzzResult<ScenarioGenome> {
        self.run_aqm_with(None)
    }

    /// [`Campaign::run_aqm`] with an optional telemetry observer.
    pub fn run_aqm_with(&self, obs: Option<&HuntTelemetry>) -> FuzzResult<ScenarioGenome> {
        self.run_aqm_controlled(obs, CampaignControl::default())
            .expect("uncontrolled campaign runs cannot fail to start")
            .result
    }

    /// [`Campaign::run_aqm_with`] under a [`CampaignControl`] plane.
    pub fn run_aqm_controlled(
        &self,
        obs: Option<&HuntTelemetry>,
        mut ctl: CampaignControl<'_>,
    ) -> Result<ControlledRun<ScenarioGenome>, String> {
        let evaluator = self.evaluator();
        let resume = match ctl.resume.take() {
            Some(payload) => Some(payload.into_scenario()?),
            None => None,
        };
        let fuzzer = self.build_aqm_fuzzer(&evaluator, resume, obs)?;
        Ok(drive(fuzzer, &mut ctl, SnapshotPayload::Scenario))
    }

    /// Builds this campaign's AQM-mode fuzzer — fresh or restored from
    /// `resume`; see [`Campaign::build_traffic_fuzzer`] for why construction
    /// is shared. Panics if the mode is not [`FuzzMode::Aqm`].
    pub fn build_aqm_fuzzer<'e>(
        &self,
        evaluator: &'e SimEvaluator,
        resume: Option<FuzzerSnapshot<ScenarioGenome>>,
        obs: Option<&'e HuntTelemetry>,
    ) -> Result<Fuzzer<'e, ScenarioGenome, SimEvaluator>, String> {
        assert_eq!(self.mode, FuzzMode::Aqm, "campaign is not in aqm mode");
        let duration = self.duration;
        let cca = self.cca;
        let traffic_max_packets = self.traffic_max_packets;
        let choice = self.qdisc_choice;
        let mut fuzzer = match resume {
            Some(snapshot) => self.restore_fuzzer(evaluator, snapshot)?,
            None => {
                let _timer = obs.map(|o| o.profiler.scope(Phase::Generate));
                Fuzzer::new(self.ga, evaluator, move |rng: &mut SimRng| {
                    ScenarioGenome::generate_aqm(cca, duration, traffic_max_packets, choice, rng)
                })
            }
        };
        if let Some(obs) = obs {
            fuzzer = fuzzer.with_observer(obs);
        }
        Ok(fuzzer)
    }

    /// Runs a topology-fuzzing campaign over multi-hop parking-lot genomes.
    /// Panics if the mode is not [`FuzzMode::Topology`].
    pub fn run_topology(&self) -> FuzzResult<TopologyGenome> {
        self.run_topology_with(None)
    }

    /// [`Campaign::run_topology`] with an optional telemetry observer.
    pub fn run_topology_with(&self, obs: Option<&HuntTelemetry>) -> FuzzResult<TopologyGenome> {
        self.run_topology_controlled(obs, CampaignControl::default())
            .expect("uncontrolled campaign runs cannot fail to start")
            .result
    }

    /// [`Campaign::run_topology_with`] under a [`CampaignControl`] plane.
    pub fn run_topology_controlled(
        &self,
        obs: Option<&HuntTelemetry>,
        mut ctl: CampaignControl<'_>,
    ) -> Result<ControlledRun<TopologyGenome>, String> {
        let evaluator = self.evaluator();
        let resume = match ctl.resume.take() {
            Some(payload) => Some(payload.into_topology()?),
            None => None,
        };
        let fuzzer = self.build_topology_fuzzer(&evaluator, resume, obs)?;
        Ok(drive(fuzzer, &mut ctl, SnapshotPayload::Topology))
    }

    /// Builds this campaign's topology-mode fuzzer — fresh or restored from
    /// `resume`; see [`Campaign::build_traffic_fuzzer`] for why construction
    /// is shared. Panics if the mode is not [`FuzzMode::Topology`].
    pub fn build_topology_fuzzer<'e>(
        &self,
        evaluator: &'e SimEvaluator,
        resume: Option<FuzzerSnapshot<TopologyGenome>>,
        obs: Option<&'e HuntTelemetry>,
    ) -> Result<Fuzzer<'e, TopologyGenome, SimEvaluator>, String> {
        assert_eq!(
            self.mode,
            FuzzMode::Topology,
            "campaign is not in topology mode"
        );
        let duration = self.duration;
        let cca = self.cca;
        let hops = self.topology_hops;
        let traffic_max_packets = self.traffic_max_packets;
        let cca_pool = self.flow_ccas.clone();
        let mut fuzzer = match resume {
            Some(snapshot) => self.restore_fuzzer(evaluator, snapshot)?,
            None => {
                let _timer = obs.map(|o| o.profiler.scope(Phase::Generate));
                Fuzzer::new(self.ga, evaluator, move |rng: &mut SimRng| {
                    TopologyGenome::generate(
                        cca,
                        hops,
                        duration,
                        traffic_max_packets,
                        &cca_pool,
                        rng,
                    )
                })
            }
        };
        if let Some(obs) = obs {
            fuzzer = fuzzer.with_observer(obs);
        }
        Ok(fuzzer)
    }

    /// Runs a workload-fuzzing campaign over dynamic-arrival genomes.
    /// Panics if the mode is not [`FuzzMode::Workload`].
    pub fn run_workload(&self) -> FuzzResult<WorkloadGenome> {
        self.run_workload_with(None)
    }

    /// [`Campaign::run_workload`] with an optional telemetry observer.
    pub fn run_workload_with(&self, obs: Option<&HuntTelemetry>) -> FuzzResult<WorkloadGenome> {
        self.run_workload_controlled(obs, CampaignControl::default())
            .expect("uncontrolled campaign runs cannot fail to start")
            .result
    }

    /// [`Campaign::run_workload_with`] under a [`CampaignControl`] plane.
    pub fn run_workload_controlled(
        &self,
        obs: Option<&HuntTelemetry>,
        mut ctl: CampaignControl<'_>,
    ) -> Result<ControlledRun<WorkloadGenome>, String> {
        let evaluator = self.evaluator();
        let resume = match ctl.resume.take() {
            Some(payload) => Some(payload.into_workload()?),
            None => None,
        };
        let fuzzer = self.build_workload_fuzzer(&evaluator, resume, obs)?;
        Ok(drive(fuzzer, &mut ctl, SnapshotPayload::Workload))
    }

    /// Builds this campaign's workload-mode fuzzer — fresh or restored from
    /// `resume`; see [`Campaign::build_traffic_fuzzer`] for why construction
    /// is shared. Panics if the mode is not [`FuzzMode::Workload`].
    pub fn build_workload_fuzzer<'e>(
        &self,
        evaluator: &'e SimEvaluator,
        resume: Option<FuzzerSnapshot<WorkloadGenome>>,
        obs: Option<&'e HuntTelemetry>,
    ) -> Result<Fuzzer<'e, WorkloadGenome, SimEvaluator>, String> {
        assert_eq!(
            self.mode,
            FuzzMode::Workload,
            "campaign is not in workload mode"
        );
        let duration = self.duration;
        let cca = self.cca;
        let cca_pool = self.flow_ccas.clone();
        let max_elephants = self.max_flows;
        let mut fuzzer = match resume {
            Some(snapshot) => self.restore_fuzzer(evaluator, snapshot)?,
            None => {
                let _timer = obs.map(|o| o.profiler.scope(Phase::Generate));
                Fuzzer::new(self.ga, evaluator, move |rng: &mut SimRng| {
                    WorkloadGenome::generate(cca, &cca_pool, max_elephants, duration, rng)
                })
            }
        };
        if let Some(obs) = obs {
            fuzzer = fuzzer.with_observer(obs);
        }
        Ok(fuzzer)
    }

    /// Restores a fuzzer from a checkpoint snapshot, refusing checkpoints
    /// whose GA parameters do not match this campaign's.
    fn restore_fuzzer<'e, G: Genome, E: Evaluator<G>>(
        &self,
        evaluator: &'e E,
        snapshot: FuzzerSnapshot<G>,
    ) -> Result<Fuzzer<'e, G, E>, String> {
        if snapshot.params != self.ga {
            return Err(
                "checkpoint GA parameters do not match the campaign's configuration".into(),
            );
        }
        Fuzzer::restore(evaluator, snapshot)
    }
}

/// Runs a prepared fuzzer under the campaign control plane, wrapping each
/// checkpoint snapshot into the mode-erased payload.
fn drive<G: Genome, E: Evaluator<G>>(
    mut fuzzer: Fuzzer<'_, G, E>,
    ctl: &mut CampaignControl<'_>,
    wrap: fn(FuzzerSnapshot<G>) -> SnapshotPayload,
) -> ControlledRun<G> {
    let (result, stop) = match ctl.on_checkpoint.as_deref_mut() {
        Some(sink) => {
            let mut forward = |snapshot: FuzzerSnapshot<G>| sink(wrap(snapshot));
            fuzzer.run_controlled(&mut RunControl {
                shutdown: ctl.shutdown,
                checkpoint_every: ctl.checkpoint_every,
                on_checkpoint: Some(&mut forward),
                panic_budget: ctl.panic_budget,
            })
        }
        None => fuzzer.run_controlled(&mut RunControl {
            shutdown: ctl.shutdown,
            checkpoint_every: ctl.checkpoint_every,
            on_checkpoint: None,
            panic_budget: ctl.panic_budget,
        }),
    };
    ControlledRun {
        result,
        stop,
        final_snapshot: fuzzer.snapshot(),
    }
}

/// The paper's base simulation settings (§4) for a scenario of `duration`:
/// 12 Mbps bottleneck, 20 ms propagation delay, SACK and delayed ACKs
/// enabled, 1 s minimum RTO, and a bottleneck queue of roughly 2.5 BDP.
pub fn paper_sim_base(duration: SimDuration) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.duration = duration;
    cfg.cross_traffic = ccfuzz_netsim::trace::TrafficTrace::empty(duration);
    cfg.propagation_delay = SimDuration::from_millis(PAPER_PROP_DELAY_MS);
    cfg.queue_capacity = QueueCapacity::Packets(100);
    cfg.min_rto = SimDuration::from_secs(1);
    cfg.sack_enabled = true;
    cfg.delayed_ack = true;
    cfg.flow_start = SimTime::ZERO;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Genome;

    #[test]
    fn paper_base_matches_paper_settings() {
        let cfg = paper_sim_base(SimDuration::from_secs(5));
        assert_eq!(cfg.propagation_delay, SimDuration::from_millis(20));
        assert_eq!(cfg.min_rto, SimDuration::from_secs(1));
        assert!(cfg.sack_enabled && cfg.delayed_ack);
        cfg.validate().unwrap();
    }

    #[test]
    fn standard_campaign_has_consistent_budgets() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(5),
            GaParams::quick(),
        );
        // The traffic budget equals the number of packets the 12 Mbps link
        // can carry over the scenario (enough to fully occupy it).
        assert_eq!(
            c.traffic_max_packets,
            packets_for_rate(PAPER_LINK_RATE_BPS, c.sim.mss, SimDuration::from_secs(5))
        );
        assert!(c.traffic_max_packets > 4_000);
        assert_eq!(c.link_rate_bps, PAPER_LINK_RATE_BPS);
    }

    #[test]
    fn high_delay_campaign_switches_objective() {
        let c = Campaign::paper_high_delay(
            FuzzMode::Traffic,
            CcaKind::Bbr,
            SimDuration::from_secs(5),
            GaParams::quick(),
        );
        match c.scoring.objective {
            crate::scoring::Objective::HighDelay { percentile } => assert_eq!(percentile, 10.0),
            other => panic!("unexpected objective {other:?}"),
        }
    }

    #[test]
    fn tiny_traffic_campaign_runs_end_to_end() {
        // A minimal end-to-end GA run over real simulations (kept tiny so the
        // unit-test suite stays fast; the integration tests run bigger ones).
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            ga,
        );
        let result = c.run_traffic();
        assert_eq!(result.history.len(), 2);
        assert!(result.total_evaluations >= 6);
        assert!(result.best_outcome.score > 0.0);
        result.best_genome.validate().unwrap();
    }

    #[test]
    fn tiny_link_campaign_runs_end_to_end() {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        ga.anneal = true;
        let c =
            Campaign::paper_standard(FuzzMode::Link, CcaKind::Reno, SimDuration::from_secs(2), ga);
        let result = c.run_link();
        assert_eq!(result.history.len(), 2);
        let expected_packets =
            packets_for_rate(PAPER_LINK_RATE_BPS, c.sim.mss, SimDuration::from_secs(2));
        assert_eq!(result.best_genome.packet_count(), expected_packets);
    }

    #[test]
    fn fairness_campaign_preset_is_consistent() {
        let c = Campaign::paper_fairness(
            vec![CcaKind::Bbr, CcaKind::Reno],
            SimDuration::from_secs(5),
            GaParams::quick(),
        );
        assert_eq!(c.mode, FuzzMode::Fairness);
        assert_eq!(c.cca, CcaKind::Bbr);
        assert_eq!(c.flow_ccas, vec![CcaKind::Bbr, CcaKind::Reno]);
        assert!(c.max_flows >= 2);
        match c.scoring.objective {
            crate::scoring::Objective::Unfairness { .. } => {}
            other => panic!("unexpected objective {other:?}"),
        }
        assert_eq!(FuzzMode::Fairness.name(), "fairness");
    }

    #[test]
    fn tiny_fairness_campaign_runs_end_to_end() {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        let c = Campaign::paper_fairness(
            vec![CcaKind::Bbr, CcaKind::Reno],
            SimDuration::from_secs(2),
            ga,
        );
        let result = c.run_fairness();
        assert_eq!(result.history.len(), 2);
        assert!(result.total_evaluations >= 6);
        result.best_genome.validate().unwrap();
        assert!(result.best_genome.flow_count() >= 2);
        assert!(result.best_outcome.score.is_finite());
    }

    #[test]
    fn aqm_campaign_preset_is_consistent() {
        let c = Campaign::paper_aqm(
            CcaKind::Cubic,
            SimDuration::from_secs(5),
            GaParams::quick(),
            QdiscChoice::Red,
        );
        assert_eq!(c.mode, FuzzMode::Aqm);
        assert_eq!(c.cca, CcaKind::Cubic);
        assert_eq!(c.max_flows, 1);
        assert_eq!(c.qdisc_choice, QdiscChoice::Red);
        match c.scoring.objective {
            crate::scoring::Objective::AqmBreakage {
                mark_weight,
                delay_weight,
                ..
            } => {
                assert_eq!(mark_weight, 0.5);
                assert_eq!(delay_weight, 0.5);
            }
            other => panic!("unexpected objective {other:?}"),
        }
        assert_eq!(FuzzMode::Aqm.name(), "aqm");
    }

    #[test]
    fn tiny_aqm_campaign_runs_end_to_end() {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        let c = Campaign::paper_aqm(
            CcaKind::Reno,
            SimDuration::from_secs(2),
            ga,
            QdiscChoice::Any,
        );
        let result = c.run_aqm();
        assert_eq!(result.history.len(), 2);
        assert!(result.total_evaluations >= 6);
        result.best_genome.validate().unwrap();
        assert_eq!(result.best_genome.flow_count(), 1);
        assert!(
            result.best_genome.qdisc.is_some(),
            "aqm genomes always carry a qdisc gene"
        );
        assert!(result.best_outcome.score.is_finite());
        assert!(result.best_outcome.score > 0.0);
    }

    #[test]
    fn topology_campaign_preset_is_consistent() {
        let c = Campaign::paper_topology(
            CcaKind::Bbr,
            3,
            SimDuration::from_secs(5),
            GaParams::quick(),
        );
        assert_eq!(c.mode, FuzzMode::Topology);
        assert_eq!(c.cca, CcaKind::Bbr);
        assert_eq!(c.topology_hops, 3);
        assert!(c.flow_ccas.contains(&CcaKind::Bbr));
        match c.scoring.objective {
            crate::scoring::Objective::MultiBottleneck {
                cascade_weight,
                collapse_weight,
                ..
            } => {
                assert_eq!(cascade_weight, 0.5);
                assert_eq!(collapse_weight, 0.5);
            }
            other => panic!("unexpected objective {other:?}"),
        }
        assert_eq!(FuzzMode::Topology.name(), "topology");
        assert_eq!(FuzzMode::from_name("topology"), Some(FuzzMode::Topology));
        assert_eq!(FuzzMode::from_name("nope"), None);
        assert_eq!(FuzzMode::ALL.len(), 6);
    }

    #[test]
    fn tiny_topology_campaign_runs_end_to_end() {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        let c = Campaign::paper_topology(CcaKind::Reno, 3, SimDuration::from_secs(2), ga);
        let result = c.run_topology();
        assert_eq!(result.history.len(), 2);
        assert!(result.total_evaluations >= 6);
        result.best_genome.validate().unwrap();
        assert!(result.best_genome.hop_count() >= 1);
        assert!(result.best_outcome.score.is_finite());
        assert!(result.best_outcome.score > 0.0);
    }

    #[test]
    fn workload_campaign_preset_is_consistent() {
        let c = Campaign::paper_workload(
            CcaKind::Cubic,
            vec![CcaKind::Cubic, CcaKind::Reno],
            3,
            SimDuration::from_secs(5),
            GaParams::quick(),
        );
        assert_eq!(c.mode, FuzzMode::Workload);
        assert_eq!(c.cca, CcaKind::Cubic);
        assert_eq!(c.flow_ccas, vec![CcaKind::Cubic, CcaKind::Reno]);
        assert_eq!(c.max_flows, 3);
        match c.scoring.objective {
            crate::scoring::Objective::TailLatency { percentile, .. } => {
                assert_eq!(percentile, 99.0);
            }
            other => panic!("unexpected objective {other:?}"),
        }
        assert_eq!(FuzzMode::Workload.name(), "workload");
        assert_eq!(FuzzMode::from_name("workload"), Some(FuzzMode::Workload));
    }

    #[test]
    fn tiny_workload_campaign_runs_end_to_end() {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        let c = Campaign::paper_workload(
            CcaKind::Reno,
            vec![CcaKind::Reno, CcaKind::Cubic],
            2,
            SimDuration::from_secs(2),
            ga,
        );
        let result = c.run_workload();
        assert_eq!(result.history.len(), 2);
        assert!(result.total_evaluations >= 6);
        result.best_genome.validate().unwrap();
        assert!(result.best_genome.elephant_count() >= 1);
        assert!(result.best_outcome.score.is_finite());
    }

    #[test]
    #[should_panic(expected = "not in workload mode")]
    fn workload_mode_mismatch_panics() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            GaParams::quick(),
        );
        let _ = c.run_workload();
    }

    #[test]
    #[should_panic(expected = "not in topology mode")]
    fn topology_mode_mismatch_panics() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            GaParams::quick(),
        );
        let _ = c.run_topology();
    }

    #[test]
    #[should_panic(expected = "not in aqm mode")]
    fn aqm_mode_mismatch_panics() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            GaParams::quick(),
        );
        let _ = c.run_aqm();
    }

    #[test]
    #[should_panic(expected = "not in fairness mode")]
    fn fairness_mode_mismatch_panics() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            GaParams::quick(),
        );
        let _ = c.run_fairness();
    }

    #[test]
    #[should_panic(expected = "not in traffic mode")]
    fn mode_mismatch_panics() {
        let c = Campaign::paper_standard(
            FuzzMode::Link,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            GaParams::quick(),
        );
        let _ = c.run_traffic();
    }
}
