//! Mode-erased campaign checkpoint state and the campaign control plane.
//!
//! A [`crate::fuzzer::FuzzerSnapshot`] is generic over its genome type; a
//! checkpoint file on disk is not. [`SnapshotPayload`] wraps the four
//! concrete genome populations behind one serializable enum (mirroring the
//! corpus's `GenomePayload` for findings), and [`CampaignControl`] carries
//! the shutdown flag, checkpoint cadence, panic budget and optional resume
//! state into [`crate::campaign::Campaign`]'s `run_*_controlled` entry
//! points.

use crate::campaign::FuzzMode;
use crate::fuzzer::{FuzzResult, FuzzerSnapshot, GaParams, StopReason};
use crate::genome::{LinkGenome, TrafficGenome};
use crate::scenario::ScenarioGenome;
use crate::topology::TopologyGenome;
use crate::workload::WorkloadGenome;
use serde::{Deserialize, Serialize};
use std::sync::atomic::AtomicBool;

/// The resumable fuzzer state of one campaign, with the genome type erased
/// for persistence. `Scenario` serves both the fairness and AQM modes (they
/// share [`ScenarioGenome`]); the embedding checkpoint's campaign config
/// decides which.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SnapshotPayload {
    /// A traffic-mode population.
    Traffic(FuzzerSnapshot<TrafficGenome>),
    /// A link-mode population.
    Link(FuzzerSnapshot<LinkGenome>),
    /// A fairness- or AQM-mode population.
    Scenario(FuzzerSnapshot<ScenarioGenome>),
    /// A topology-mode population.
    Topology(FuzzerSnapshot<TopologyGenome>),
    /// A workload-mode population.
    Workload(FuzzerSnapshot<WorkloadGenome>),
}

impl SnapshotPayload {
    /// Short payload-kind name for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SnapshotPayload::Traffic(_) => "traffic",
            SnapshotPayload::Link(_) => "link",
            SnapshotPayload::Scenario(_) => "scenario",
            SnapshotPayload::Topology(_) => "topology",
            SnapshotPayload::Workload(_) => "workload",
        }
    }

    /// Whether this payload can resume a campaign of the given mode.
    pub fn matches_mode(&self, mode: FuzzMode) -> bool {
        matches!(
            (self, mode),
            (SnapshotPayload::Traffic(_), FuzzMode::Traffic)
                | (SnapshotPayload::Link(_), FuzzMode::Link)
                | (
                    SnapshotPayload::Scenario(_),
                    FuzzMode::Fairness | FuzzMode::Aqm
                )
                | (SnapshotPayload::Topology(_), FuzzMode::Topology)
                | (SnapshotPayload::Workload(_), FuzzMode::Workload)
        )
    }

    /// The generation the resumed fuzzer will evaluate next.
    pub fn next_generation(&self) -> u32 {
        match self {
            SnapshotPayload::Traffic(s) => s.next_generation,
            SnapshotPayload::Link(s) => s.next_generation,
            SnapshotPayload::Scenario(s) => s.next_generation,
            SnapshotPayload::Topology(s) => s.next_generation,
            SnapshotPayload::Workload(s) => s.next_generation,
        }
    }

    /// Simulations run before the snapshot was taken.
    pub fn evaluations(&self) -> usize {
        match self {
            SnapshotPayload::Traffic(s) => s.evaluations,
            SnapshotPayload::Link(s) => s.evaluations,
            SnapshotPayload::Scenario(s) => s.evaluations,
            SnapshotPayload::Topology(s) => s.evaluations,
            SnapshotPayload::Workload(s) => s.evaluations,
        }
    }

    /// Evaluation panics caught before the snapshot was taken.
    pub fn panics_caught(&self) -> u64 {
        match self {
            SnapshotPayload::Traffic(s) => s.panics.len() as u64,
            SnapshotPayload::Link(s) => s.panics.len() as u64,
            SnapshotPayload::Scenario(s) => s.panics.len() as u64,
            SnapshotPayload::Topology(s) => s.panics.len() as u64,
            SnapshotPayload::Workload(s) => s.panics.len() as u64,
        }
    }

    /// The embedded GA parameters.
    pub fn params(&self) -> &GaParams {
        match self {
            SnapshotPayload::Traffic(s) => &s.params,
            SnapshotPayload::Link(s) => &s.params,
            SnapshotPayload::Scenario(s) => &s.params,
            SnapshotPayload::Topology(s) => &s.params,
            SnapshotPayload::Workload(s) => &s.params,
        }
    }

    /// Structural validation of the embedded snapshot (schema, shape,
    /// genome invariants). Run before trusting a payload loaded from disk.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SnapshotPayload::Traffic(s) => s.validate(),
            SnapshotPayload::Link(s) => s.validate(),
            SnapshotPayload::Scenario(s) => s.validate(),
            SnapshotPayload::Topology(s) => s.validate(),
            SnapshotPayload::Workload(s) => s.validate(),
        }
    }

    /// Unwraps a traffic-mode snapshot.
    pub fn into_traffic(self) -> Result<FuzzerSnapshot<TrafficGenome>, String> {
        match self {
            SnapshotPayload::Traffic(s) => Ok(s),
            other => Err(mismatch(other.kind_name(), "traffic")),
        }
    }

    /// Unwraps a link-mode snapshot.
    pub fn into_link(self) -> Result<FuzzerSnapshot<LinkGenome>, String> {
        match self {
            SnapshotPayload::Link(s) => Ok(s),
            other => Err(mismatch(other.kind_name(), "link")),
        }
    }

    /// Unwraps a fairness/AQM-mode snapshot.
    pub fn into_scenario(self) -> Result<FuzzerSnapshot<ScenarioGenome>, String> {
        match self {
            SnapshotPayload::Scenario(s) => Ok(s),
            other => Err(mismatch(other.kind_name(), "scenario")),
        }
    }

    /// Unwraps a topology-mode snapshot.
    pub fn into_topology(self) -> Result<FuzzerSnapshot<TopologyGenome>, String> {
        match self {
            SnapshotPayload::Topology(s) => Ok(s),
            other => Err(mismatch(other.kind_name(), "topology")),
        }
    }

    /// Unwraps a workload-mode snapshot.
    pub fn into_workload(self) -> Result<FuzzerSnapshot<WorkloadGenome>, String> {
        match self {
            SnapshotPayload::Workload(s) => Ok(s),
            other => Err(mismatch(other.kind_name(), "workload")),
        }
    }
}

fn mismatch(got: &str, wanted: &str) -> String {
    format!("checkpoint holds a {got} population, cannot resume a {wanted} campaign")
}

/// External control plane for a campaign run: cooperative shutdown, periodic
/// checkpoints, panic budget, and (optionally) the snapshot to resume from.
/// The default is a plain uncontrolled run.
#[derive(Default)]
pub struct CampaignControl<'c> {
    /// Checked at generation boundaries; raising it stops the run with
    /// [`StopReason::Interrupted`] after the in-flight generation finishes.
    pub shutdown: Option<&'c AtomicBool>,
    /// Emit a checkpoint every this many completed generations (0 = never).
    pub checkpoint_every: u32,
    /// Receives each periodic checkpoint payload.
    pub on_checkpoint: Option<&'c mut dyn FnMut(SnapshotPayload)>,
    /// Caught evaluation panics tolerated before aborting (`None` =
    /// unlimited).
    pub panic_budget: Option<u64>,
    /// Resume from this snapshot instead of generating a fresh population.
    pub resume: Option<SnapshotPayload>,
}

/// Everything a controlled campaign run produced: the classic result, why
/// the run stopped, and the final resumable snapshot (which also carries the
/// accumulated panic log).
#[derive(Clone, Debug)]
pub struct ControlledRun<G> {
    /// Best trace, history and evaluation count — same as [`FuzzResult`]
    /// from an uncontrolled run.
    pub result: FuzzResult<G>,
    /// Why the run returned.
    pub stop: StopReason,
    /// The fuzzer's state at the stop boundary; persisting it makes any
    /// early stop resumable, and its `panics` field is the full panic log.
    pub final_snapshot: FuzzerSnapshot<G>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use ccfuzz_cca::CcaKind;
    use ccfuzz_netsim::time::SimDuration;

    fn tiny_ga() -> GaParams {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 3;
        ga.threads = 2;
        ga.seed = 5;
        ga
    }

    #[test]
    fn payload_mode_matching_covers_all_modes() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(1),
            tiny_ga(),
        );
        let run = c
            .run_traffic_controlled(None, CampaignControl::default())
            .unwrap();
        let payload = SnapshotPayload::Traffic(run.final_snapshot);
        assert!(payload.matches_mode(FuzzMode::Traffic));
        assert!(!payload.matches_mode(FuzzMode::Link));
        assert!(!payload.matches_mode(FuzzMode::Fairness));
        assert_eq!(payload.kind_name(), "traffic");
        assert_eq!(payload.next_generation(), 3);
        assert!(payload.evaluations() >= 6);
        assert_eq!(payload.panics_caught(), 0);
        payload.validate().unwrap();
        assert!(payload.into_link().is_err());
    }

    #[test]
    fn payload_roundtrips_through_json() {
        let c = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(1),
            tiny_ga(),
        );
        let run = c
            .run_traffic_controlled(None, CampaignControl::default())
            .unwrap();
        let payload = SnapshotPayload::Traffic(run.final_snapshot);
        let json = serde_json::to_string(&payload).unwrap();
        let back: SnapshotPayload = serde_json::from_str(&json).unwrap();
        assert_eq!(payload, back);
    }
}
