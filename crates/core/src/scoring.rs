//! Fitness scoring (§3.4 of the paper).
//!
//! A trace's score has two components:
//!
//! * **Performance score** — how badly the CCA performed under the trace
//!   (higher = worse for the CCA = fitter trace). The paper's low-utilization
//!   objective is the mean of the lowest 20 % of windowed throughput; a
//!   high-delay objective uses a low percentile of the queuing delay; a
//!   high-loss objective uses the loss ratio.
//! * **Trace score** — how well the trace itself satisfies properties that
//!   are hard to enforce during generation. For traffic fuzzing this rewards
//!   *minimal* traces: few injected packets and few of them dropped.

use ccfuzz_analysis::timeseries::{mean_of_lowest_fraction_mut, percentile, windowed_rates_into};
use ccfuzz_netsim::packet::FlowId;
use ccfuzz_netsim::sim::SimResult;
use ccfuzz_netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What kind of poor behaviour the fuzzer is hunting for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise the CCA's throughput. The score is based on the mean of the
    /// lowest `lowest_fraction` of `window`-sized throughput windows
    /// (the paper uses 20 %), normalised by `reference_rate_bps`.
    LowThroughput {
        /// Throughput window size.
        window: SimDuration,
        /// Fraction of lowest windows averaged (0.2 in the paper).
        lowest_fraction: f64,
    },
    /// Maximise the CCA's queuing delay. The score is the `percentile`-th
    /// percentile of the CCA flow's queuing delay (the paper's §4.3 example
    /// uses the 10th percentile), in seconds.
    HighDelay {
        /// Percentile of the per-packet queuing delay used as the score.
        percentile: f64,
    },
    /// Maximise the CCA's loss ratio (marked-lost / transmissions).
    HighLoss,
    /// Multi-flow objective: maximise *unfairness* between concurrent
    /// congestion-controlled flows sharing the bottleneck. The score is
    /// `(1 - Jain's index over per-flow goodput) + starvation_weight * s`,
    /// where `s` is the longest zero-delivery interval of any flow as a
    /// fraction of that flow's active time (the starvation-duration
    /// penalty), normalised by `1 + starvation_weight` so the score lives
    /// in `[0, 1]` without a gradient-flattening clamp.
    Unfairness {
        /// Weight of the starvation-duration penalty.
        starvation_weight: f64,
    },
    /// AQM objective: find gateway configurations that *break* a CCA. The
    /// base term is the low-throughput score (same windowed form as
    /// [`Objective::LowThroughput`]); on top of it, `mark_weight` rewards a
    /// high CE-mark rate (the CCA is being told to slow down constantly)
    /// and `delay_weight` rewards standing queues (the AQM failed at its
    /// one job). The sum is normalised by `1 + mark_weight + delay_weight`,
    /// so the score lives in `[0, 1]` without clamping away the gradient.
    AqmBreakage {
        /// Throughput window size (as in `LowThroughput`).
        window: SimDuration,
        /// Fraction of lowest windows averaged.
        lowest_fraction: f64,
        /// Weight of the CE-mark-rate term (marks / packets offered).
        mark_weight: f64,
        /// Weight of the standing-queue term (mean queue depth expressed as
        /// seconds of drain time at the reference rate, capped at 1 s).
        delay_weight: f64,
    },
    /// Multi-hop objective: find parking-lot topologies that break flows.
    /// The base term is the primary flow's windowed low-throughput score;
    /// `cascade_weight` rewards *cascaded* standing queues (the mean
    /// per-hop drain time, so a chain of simultaneously-bloated queues
    /// scores higher than one deep queue), and `collapse_weight` rewards
    /// per-path throughput collapse (the worst flow's goodput relative to
    /// the reference rate — a starved sub-path flow maximises it). The sum
    /// is normalised by `1 + cascade_weight + collapse_weight`.
    MultiBottleneck {
        /// Throughput window size (as in `LowThroughput`).
        window: SimDuration,
        /// Fraction of lowest windows averaged.
        lowest_fraction: f64,
        /// Weight of the cascaded-standing-queue term.
        cascade_weight: f64,
        /// Weight of the per-path throughput-collapse term.
        collapse_weight: f64,
    },
    /// Workload objective: maximise the tail flow-completion-time inflation
    /// of short flows (mice) under dynamic arrivals. The base term is
    /// `1 - baseline / p`, where `p` is the `percentile`-th percentile of
    /// the mice FCT distribution — 0 when mice finish at the ideal
    /// `baseline`, approaching 1 as the tail inflates without bound. On top,
    /// `stranded_weight` rewards flows that arrived but never completed at
    /// all (mice parked behind elephants until the run ends are the
    /// worst-case tail). The sum is normalised by `1 + stranded_weight`.
    /// Scores 0 when the run recorded no workload at all.
    TailLatency {
        /// Percentile of the mice FCT distribution used as the tail (99.0
        /// hunts the paper-style p99 inflation).
        percentile: f64,
        /// The ideal mouse completion time the tail is measured against
        /// (roughly transmission time of a threshold-sized mouse plus one
        /// RTT on the unloaded path).
        baseline: SimDuration,
        /// Weight of the never-completed-flows term.
        stranded_weight: f64,
    },
}

/// Weights and normalisation for combining the two score components.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoringConfig {
    /// The behaviour being hunted.
    pub objective: Objective,
    /// Weight of the performance component.
    pub performance_weight: f64,
    /// Weight of the trace component (0 disables it; link fuzzing uses 0).
    pub trace_weight: f64,
    /// Rate used to normalise throughput scores (the bottleneck/average link
    /// rate, 12 Mbps in the paper).
    pub reference_rate_bps: f64,
}

impl ScoringConfig {
    /// The paper's low-utilization scoring: lowest-20 %-window throughput on
    /// 500 ms windows, normalised to the 12 Mbps bottleneck.
    pub fn low_throughput_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::LowThroughput {
                window: SimDuration::from_millis(500),
                lowest_fraction: 0.2,
            },
            performance_weight: 1.0,
            trace_weight: 0.25,
            reference_rate_bps,
        }
    }

    /// The §4.3 high-delay scoring: 10th-percentile queuing delay. The trace
    /// (minimality) weight is kept small because the delay score itself lives
    /// on a much smaller numeric scale than the throughput score.
    pub fn high_delay_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::HighDelay { percentile: 10.0 },
            performance_weight: 1.0,
            trace_weight: 0.02,
            reference_rate_bps,
        }
    }

    /// Fairness-fuzzing scoring: hunt for scenarios where concurrent flows
    /// share the bottleneck badly. Starvation is weighted at 0.5 so a
    /// scenario that fully starves one flow scores higher than one that
    /// merely skews the split. The trace weight rewards minimal
    /// cross-traffic helpers (0 packets when the unfairness needs none).
    pub fn fairness_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::Unfairness {
                starvation_weight: 0.5,
            },
            performance_weight: 1.0,
            trace_weight: 0.1,
            reference_rate_bps,
        }
    }

    /// AQM-fuzzing scoring: the paper's windowed low-throughput term plus
    /// mark-rate and standing-queue terms at half weight each, and a small
    /// trace weight so minimal cross-traffic helpers win ties.
    pub fn aqm_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::AqmBreakage {
                window: SimDuration::from_millis(500),
                lowest_fraction: 0.2,
                mark_weight: 0.5,
                delay_weight: 0.5,
            },
            performance_weight: 1.0,
            trace_weight: 0.1,
            reference_rate_bps,
        }
    }

    /// Workload-fuzzing scoring: p99 mice FCT inflation against a 100 ms
    /// ideal (one threshold-sized mouse at the 12 Mbps bottleneck plus the
    /// 40 ms base RTT), with stranded never-completing flows at half
    /// weight. No trace component: workload minimality is the minimiser's
    /// job, not the fitness function's.
    pub fn workload_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::TailLatency {
                percentile: 99.0,
                baseline: SimDuration::from_millis(100),
                stranded_weight: 0.5,
            },
            performance_weight: 1.0,
            trace_weight: 0.0,
            reference_rate_bps,
        }
    }

    /// Topology-fuzzing scoring: the windowed low-throughput term plus
    /// cascaded-standing-queue and per-path-collapse terms at half weight
    /// each, and a small trace weight so minimal cross-traffic helpers win
    /// ties.
    pub fn topology_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::MultiBottleneck {
                window: SimDuration::from_millis(500),
                lowest_fraction: 0.2,
                cascade_weight: 0.5,
                collapse_weight: 0.5,
            },
            performance_weight: 1.0,
            trace_weight: 0.1,
            reference_rate_bps,
        }
    }
}

// ---------------------------------------------------------------------------
// Fairness metrics
// ---------------------------------------------------------------------------

/// Jain's fairness index over a set of non-negative allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 means perfectly fair; `1/n` means one flow takes
/// everything. Empty or all-zero inputs score 1.0 (nothing to be unfair
/// about).
pub fn jains_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Longest interval with zero deliveries inside `[start, active_end]`, in
/// seconds, given the flow's sorted delivery times. The leading gap (start →
/// first delivery) and trailing gap (last delivery → active end) count too:
/// a flow that never delivers is starved for its whole active interval.
pub fn longest_starvation_secs(
    delivery_times: &[ccfuzz_netsim::time::SimTime],
    start: ccfuzz_netsim::time::SimTime,
    active_end: ccfuzz_netsim::time::SimTime,
) -> f64 {
    if active_end <= start {
        return 0.0;
    }
    let mut longest = SimDuration::ZERO;
    let mut prev = start;
    for t in delivery_times {
        let t = (*t).clamp(start, active_end);
        let gap = t.saturating_since(prev);
        if gap > longest {
            longest = gap;
        }
        prev = t;
    }
    let tail = active_end.saturating_since(prev);
    if tail > longest {
        longest = tail;
    }
    longest.as_secs_f64()
}

/// The per-flow fairness measurements derived from one multi-flow run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FairnessBreakdown {
    /// Sink-side goodput of each flow over its active interval, bits/s.
    pub per_flow_goodput_bps: Vec<f64>,
    /// Distinct packets each flow delivered to its receiver.
    pub per_flow_delivered: Vec<u64>,
    /// Jain's index over `per_flow_goodput_bps`.
    pub jain_index: f64,
    /// Longest zero-delivery interval of any flow, seconds.
    pub max_starvation_secs: f64,
    /// Largest per-flow ratio of starvation time to active time. Note this
    /// is a maximum over per-flow *fractions*, so it can come from a
    /// different flow than `max_starvation_secs` (a briefly-active flow
    /// starved for its whole short life maximises the fraction while a
    /// long-lived flow maximises the seconds).
    pub max_starvation_fraction: f64,
}

/// Computes the fairness breakdown of a (multi-flow) simulation result.
/// With fewer than two flows the breakdown is trivially fair.
pub fn fairness_breakdown(result: &SimResult, mss: u32) -> FairnessBreakdown {
    let duration = SimDuration::from_secs_f64(result.duration_secs);
    let per_flow_goodput_bps: Vec<f64> = result
        .stats
        .flows
        .iter()
        .map(|f| f.goodput_bps(mss, duration))
        .collect();
    let per_flow_delivered: Vec<u64> = result
        .stats
        .flows
        .iter()
        .map(|f| f.delivery_times.len() as u64)
        .collect();
    let mut max_starvation_secs = 0.0f64;
    let mut max_starvation_fraction = 0.0f64;
    for f in &result.stats.flows {
        let active_end = f
            .stop
            .unwrap_or(ccfuzz_netsim::time::SimTime::ZERO + duration)
            .min(ccfuzz_netsim::time::SimTime::ZERO + duration);
        let starved = longest_starvation_secs(&f.delivery_times, f.start, active_end);
        let active = f.active_secs(duration);
        let fraction = if active > 0.0 { starved / active } else { 0.0 };
        if starved > max_starvation_secs {
            max_starvation_secs = starved;
        }
        if fraction > max_starvation_fraction {
            max_starvation_fraction = fraction;
        }
    }
    FairnessBreakdown {
        jain_index: jains_index(&per_flow_goodput_bps),
        per_flow_goodput_bps,
        per_flow_delivered,
        max_starvation_secs,
        max_starvation_fraction,
    }
}

/// Inputs for the trace-score component (traffic fuzzing only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceScoreInputs {
    /// Cross-traffic packets the genome injects.
    pub traffic_packets: usize,
    /// The genome's packet cap (for normalisation).
    pub traffic_max_packets: usize,
    /// Cross-traffic packets dropped at the bottleneck queue during the run.
    pub traffic_dropped: u64,
}

/// Reusable buffers for the scoring pass: the per-window delivery counts
/// and rate values of the throughput objectives. One per worker, threaded
/// through [`performance_score_reusing`]; a warm scorer allocates nothing.
/// Scratch reuse never changes scores — the buffers only donate capacity.
#[derive(Default)]
pub struct ScoreScratch {
    counts: Vec<u64>,
    rates: Vec<f64>,
}

/// Computes the performance component in `[0, 1]`-ish range (higher = worse
/// CCA performance = fitter adversarial trace).
pub fn performance_score(
    objective: &Objective,
    result: &SimResult,
    mss: u32,
    reference_rate_bps: f64,
) -> f64 {
    performance_score_reusing(
        objective,
        result,
        mss,
        reference_rate_bps,
        &mut ScoreScratch::default(),
    )
}

/// [`performance_score`] with reusable scoring buffers (identical result).
pub fn performance_score_reusing(
    objective: &Objective,
    result: &SimResult,
    mss: u32,
    reference_rate_bps: f64,
    scratch: &mut ScoreScratch,
) -> f64 {
    match objective {
        Objective::LowThroughput {
            window,
            lowest_fraction,
        } => {
            let duration = SimDuration::from_secs_f64(result.duration_secs);
            windowed_rates_into(
                result.stats.delivery_times(),
                mss,
                *window,
                duration,
                &mut scratch.counts,
                &mut scratch.rates,
            );
            let low = mean_of_lowest_fraction_mut(&mut scratch.rates, *lowest_fraction);
            let reference = reference_rate_bps.max(1.0);
            (1.0 - low / reference).clamp(0.0, 1.0)
        }
        Objective::HighDelay { percentile: p } => {
            let delays: Vec<f64> = result
                .stats
                .queuing_delays(FlowId::Cca(0))
                .iter()
                .map(|(_, d)| d.as_secs_f64())
                .collect();
            // Normalise by one second so typical scores stay in [0, 1] while
            // still being monotone in delay.
            percentile(&delays, *p).min(1.0)
        }
        Objective::HighLoss => {
            let tx = result.stats.flow().transmissions.max(1);
            (result.stats.flow().marked_lost as f64 / tx as f64).clamp(0.0, 1.0)
        }
        Objective::Unfairness { starvation_weight } => {
            let b = fairness_breakdown(result, mss);
            // Normalise by the maximum attainable value instead of clamping:
            // a hard cap at 1.0 would flatten the fitness gradient once
            // scenarios combine a bad Jain split with heavy starvation, and
            // the GA could no longer tell strictly-worse scenarios apart.
            let raw = (1.0 - b.jain_index) + starvation_weight * b.max_starvation_fraction;
            (raw / (1.0 + starvation_weight.max(0.0))).clamp(0.0, 1.0)
        }
        Objective::AqmBreakage {
            window,
            lowest_fraction,
            mark_weight,
            delay_weight,
        } => {
            let duration = SimDuration::from_secs_f64(result.duration_secs);
            windowed_rates_into(
                result.stats.delivery_times(),
                mss,
                *window,
                duration,
                &mut scratch.counts,
                &mut scratch.rates,
            );
            let low = mean_of_lowest_fraction_mut(&mut scratch.rates, *lowest_fraction);
            let reference = reference_rate_bps.max(1.0);
            let throughput_term = (1.0 - low / reference).clamp(0.0, 1.0);

            // Mark rate: CE marks per packet offered to the gateway by the
            // CCA population.
            let c = &result.stats.queue_counters;
            let offered = (c.enqueued_cca + c.dropped_cca).max(1);
            let mark_term = (c.marked_cca as f64 / offered as f64).clamp(0.0, 1.0);

            // Standing queue: mean sampled occupancy expressed as seconds
            // of drain time at the reference rate (computable without the
            // per-packet event log the fuzzer's hot loop disables).
            let delay_term = if result.stats.queue_samples.is_empty() {
                0.0
            } else {
                let mean_bytes = result
                    .stats
                    .queue_samples
                    .iter()
                    .map(|(_, _, bytes)| *bytes as f64)
                    .sum::<f64>()
                    / result.stats.queue_samples.len() as f64;
                (mean_bytes * 8.0 / reference).min(1.0)
            };

            let raw = throughput_term + mark_weight * mark_term + delay_weight * delay_term;
            (raw / (1.0 + mark_weight.max(0.0) + delay_weight.max(0.0))).clamp(0.0, 1.0)
        }
        Objective::MultiBottleneck {
            window,
            lowest_fraction,
            cascade_weight,
            collapse_weight,
        } => {
            let duration = SimDuration::from_secs_f64(result.duration_secs);
            windowed_rates_into(
                result.stats.delivery_times(),
                mss,
                *window,
                duration,
                &mut scratch.counts,
                &mut scratch.rates,
            );
            let low = mean_of_lowest_fraction_mut(&mut scratch.rates, *lowest_fraction);
            let reference = reference_rate_bps.max(1.0);
            let throughput_term = (1.0 - low / reference).clamp(0.0, 1.0);

            // Cascaded standing queues: the mean of the *per-hop* standing
            // queue terms (each the hop's mean sampled occupancy expressed
            // as seconds of drain time at the reference rate, capped at
            // 1 s). Averaging across hops means a chain of simultaneously
            // bloated queues beats one deep queue — the cascade is exactly
            // what single-bottleneck fuzzing cannot produce. Single-hop
            // runs keep everything in `queue_samples`, which then is the
            // one "hop".
            let standing = |samples: &[(ccfuzz_netsim::time::SimTime, usize, u64)]| {
                if samples.is_empty() {
                    return 0.0;
                }
                let mean_bytes =
                    samples.iter().map(|(_, _, b)| *b as f64).sum::<f64>() / samples.len() as f64;
                (mean_bytes * 8.0 / reference).min(1.0)
            };
            let cascade_term = if result.stats.hop_samples.is_empty() {
                standing(&result.stats.queue_samples)
            } else {
                result
                    .stats
                    .hop_samples
                    .iter()
                    .map(|samples| standing(samples))
                    .sum::<f64>()
                    / result.stats.hop_samples.len() as f64
            };

            // Per-path throughput collapse: the worst flow's goodput over
            // its own active interval, normalised by the reference rate.
            // A starved parking-lot flow drives this toward 1.
            let collapse_term = result
                .stats
                .flows
                .iter()
                .map(|f| 1.0 - (f.goodput_bps(mss, duration) / reference).clamp(0.0, 1.0))
                .fold(0.0f64, f64::max);

            let raw =
                throughput_term + cascade_weight * cascade_term + collapse_weight * collapse_term;
            (raw / (1.0 + cascade_weight.max(0.0) + collapse_weight.max(0.0))).clamp(0.0, 1.0)
        }
        Objective::TailLatency {
            percentile: p,
            baseline,
            stranded_weight,
        } => {
            let Some(w) = result.stats.workload() else {
                // Not a workload run (or arrivals never configured):
                // nothing to inflate.
                return 0.0;
            };
            let inflation_term = if w.fct_mice.count() == 0 {
                // No mouse ever finished. With arrivals configured that is
                // itself a tail catastrophe — the stranded term captures it.
                0.0
            } else {
                let tail = w.fct_mice.percentile_nanos(*p) as f64 / 1e9;
                let base = baseline.as_secs_f64().max(1e-9);
                // 0 at the ideal baseline, 0.9 at 10x inflation, → 1 as the
                // tail grows without bound; smooth and unclamped in between.
                1.0 - base / tail.max(base)
            };
            let stranded_term = if w.spawned == 0 {
                0.0
            } else {
                w.active_at_end as f64 / w.spawned as f64
            };
            let raw = inflation_term + stranded_weight * stranded_term;
            (raw / (1.0 + stranded_weight.max(0.0))).clamp(0.0, 1.0)
        }
    }
}

/// Computes the trace component in `[0, 1]` (higher = more minimal trace).
pub fn trace_score(inputs: &TraceScoreInputs) -> f64 {
    if inputs.traffic_max_packets == 0 {
        return 0.0;
    }
    let max = inputs.traffic_max_packets as f64;
    let packets_penalty = inputs.traffic_packets as f64 / max;
    let drops_penalty = inputs.traffic_dropped as f64 / max;
    (1.0 - 0.7 * packets_penalty - 0.3 * drops_penalty).clamp(0.0, 1.0)
}

/// Combines both components.
pub fn total_score(cfg: &ScoringConfig, performance: f64, trace: f64) -> f64 {
    cfg.performance_weight * performance + cfg.trace_weight * trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::stats::{FlowStats, FlowSummary, RunStats};
    use ccfuzz_netsim::time::SimTime;

    fn result_with_deliveries(times: Vec<SimTime>, duration_secs: f64) -> SimResult {
        SimResult {
            stats: RunStats {
                flows: vec![FlowStats {
                    delivery_times: times,
                    ..Default::default()
                }],
                ..Default::default()
            },
            duration_secs,
        }
    }

    #[test]
    fn low_throughput_score_rewards_starvation() {
        let objective = Objective::LowThroughput {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
        };
        // Full-rate delivery: ~1000 packets/s of 1448B ≈ 11.6 Mbps.
        let busy: Vec<SimTime> = (0..5_000).map(SimTime::from_millis).collect();
        let busy_score =
            performance_score(&objective, &result_with_deliveries(busy, 5.0), 1448, 12e6);
        // Starved flow: nothing delivered after 1s.
        let starved: Vec<SimTime> = (0..1_000).map(SimTime::from_millis).collect();
        let starved_score = performance_score(
            &objective,
            &result_with_deliveries(starved, 5.0),
            1448,
            12e6,
        );
        assert!(starved_score > busy_score);
        assert!(
            starved_score > 0.9,
            "fully starved windows should score near 1: {starved_score}"
        );
        assert!(
            busy_score < 0.2,
            "a link-filling flow should score near 0: {busy_score}"
        );
    }

    #[test]
    fn high_loss_score_is_loss_ratio() {
        let objective = Objective::HighLoss;
        let result = SimResult {
            stats: RunStats {
                flows: vec![FlowStats {
                    summary: FlowSummary {
                        transmissions: 100,
                        marked_lost: 25,
                        ..Default::default()
                    },
                    ..Default::default()
                }],
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        assert_eq!(performance_score(&objective, &result, 1448, 12e6), 0.25);
    }

    #[test]
    fn high_delay_score_uses_percentile_of_queuing_delay() {
        use ccfuzz_netsim::stats::{BottleneckEvent, BottleneckRecord};
        let objective = Objective::HighDelay { percentile: 10.0 };
        let mk = |delay_ms: u64| BottleneckRecord {
            at: SimTime::from_millis(delay_ms),
            flow: FlowId::Cca(0),
            hop: 0,
            size: 1448,
            event: BottleneckEvent::Dequeued {
                queuing_delay: SimDuration::from_millis(delay_ms),
            },
        };
        let low_delay = SimResult {
            stats: RunStats {
                bottleneck: (1..=100).map(mk).collect(),
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        let high_delay = SimResult {
            stats: RunStats {
                bottleneck: (150..=250).map(mk).collect(),
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        let low = performance_score(&objective, &low_delay, 1448, 12e6);
        let high = performance_score(&objective, &high_delay, 1448, 12e6);
        assert!(high > low);
        assert!(
            high >= 0.15,
            "p10 of 150-250ms delays is at least 150ms: {high}"
        );
    }

    #[test]
    fn trace_score_prefers_minimal_traces() {
        let small = TraceScoreInputs {
            traffic_packets: 50,
            traffic_max_packets: 1_000,
            traffic_dropped: 0,
        };
        let large = TraceScoreInputs {
            traffic_packets: 900,
            traffic_max_packets: 1_000,
            traffic_dropped: 0,
        };
        let wasteful = TraceScoreInputs {
            traffic_packets: 900,
            traffic_max_packets: 1_000,
            traffic_dropped: 500,
        };
        assert!(trace_score(&small) > trace_score(&large));
        assert!(trace_score(&large) > trace_score(&wasteful));
        assert_eq!(trace_score(&TraceScoreInputs::default()), 0.0);
    }

    #[test]
    fn total_score_weights_components() {
        let cfg = ScoringConfig {
            objective: Objective::HighLoss,
            performance_weight: 1.0,
            trace_weight: 0.5,
            reference_rate_bps: 12e6,
        };
        assert_eq!(total_score(&cfg, 0.8, 0.4), 0.8 + 0.2);
    }

    #[test]
    fn jains_index_known_values() {
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
        assert!((jains_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One flow hogs everything: 1/n.
        assert!((jains_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!((jains_index(&[10.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // 2:1 split of two flows: 9/10.
        assert!((jains_index(&[2.0, 1.0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn starvation_counts_leading_interior_and_trailing_gaps() {
        use ccfuzz_netsim::time::SimTime;
        let t = |ms: u64| SimTime::from_millis(ms);
        // No deliveries at all: starved for the whole active interval.
        assert_eq!(longest_starvation_secs(&[], t(1_000), t(4_000)), 3.0);
        // Leading gap dominates.
        let times = vec![t(3_500), t(3_600), t(4_000)];
        assert!((longest_starvation_secs(&times, t(1_000), t(4_000)) - 2.5).abs() < 1e-9);
        // Interior gap dominates.
        let times = vec![t(1_100), t(2_900), t(3_000), t(3_900)];
        assert!((longest_starvation_secs(&times, t(1_000), t(4_000)) - 1.8).abs() < 1e-9);
        // Trailing gap dominates.
        let times = vec![t(1_100), t(1_200)];
        assert!((longest_starvation_secs(&times, t(1_000), t(4_000)) - 2.8).abs() < 1e-9);
        // Degenerate interval.
        assert_eq!(longest_starvation_secs(&[], t(4_000), t(1_000)), 0.0);
    }

    #[test]
    fn unfairness_objective_scores_skewed_runs_higher() {
        let objective = Objective::Unfairness {
            starvation_weight: 0.5,
        };
        let flow_stats = |times: Vec<SimTime>| FlowStats {
            delivery_times: times,
            ..Default::default()
        };
        // Fair: both flows deliver at the same rate for 5 s.
        let fair = SimResult {
            stats: RunStats {
                flows: vec![
                    flow_stats((0..500).map(|i| SimTime::from_millis(i * 10)).collect()),
                    flow_stats((0..500).map(|i| SimTime::from_millis(5 + i * 10)).collect()),
                ],
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        // Unfair: the second flow delivers almost nothing and stalls for
        // most of the run.
        let unfair = SimResult {
            stats: RunStats {
                flows: vec![
                    flow_stats((0..900).map(|i| SimTime::from_millis(i * 5)).collect()),
                    flow_stats(vec![SimTime::from_millis(10)]),
                ],
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        let fair_score = performance_score(&objective, &fair, 1448, 12e6);
        let unfair_score = performance_score(&objective, &unfair, 1448, 12e6);
        assert!(fair_score < 0.1, "fair run must score near 0: {fair_score}");
        assert!(
            unfair_score > 0.6,
            "starved run must score high: {unfair_score}"
        );
        // The score never saturates below the true maximum: a fully starved,
        // maximally skewed two-flow run approaches but does not clamp at 1.
        assert!(unfair_score < 1.0);
        let b = fairness_breakdown(&unfair, 1448);
        assert_eq!(b.per_flow_delivered, vec![900, 1]);
        assert!(b.jain_index < 0.55);
        assert!(b.max_starvation_secs > 4.5);
    }

    #[test]
    fn single_flow_unfairness_is_starvation_only() {
        let objective = Objective::Unfairness {
            starvation_weight: 0.5,
        };
        // One flow, delivering steadily: nothing unfair, nothing starved.
        let result = SimResult {
            stats: RunStats {
                flows: vec![FlowStats {
                    delivery_times: (0..500).map(|i| SimTime::from_millis(i * 10)).collect(),
                    ..Default::default()
                }],
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        let score = performance_score(&objective, &result, 1448, 12e6);
        assert!(score < 0.01, "{score}");
    }

    #[test]
    fn aqm_breakage_rewards_marks_and_standing_queues() {
        use ccfuzz_netsim::queue::QueueCounters;
        let objective = Objective::AqmBreakage {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
            mark_weight: 0.5,
            delay_weight: 0.5,
        };
        let times: Vec<SimTime> = (0..2_500).map(|i| SimTime::from_millis(i * 2)).collect();
        let base = result_with_deliveries(times.clone(), 5.0);
        let base_score = performance_score(&objective, &base, 1448, 12e6);

        // Same throughput, but half the offered packets were CE-marked.
        let mut marked = result_with_deliveries(times.clone(), 5.0);
        marked.stats.queue_counters = QueueCounters {
            enqueued_cca: 2_000,
            marked_cca: 1_000,
            ..Default::default()
        };
        let marked_score = performance_score(&objective, &marked, 1448, 12e6);
        assert!(
            marked_score > base_score + 0.1,
            "marks must raise the score: {marked_score} vs {base_score}"
        );

        // Same throughput, but the queue held a deep standing backlog.
        let mut delayed = result_with_deliveries(times, 5.0);
        delayed.stats.queue_samples = (0..100)
            .map(|i| (SimTime::from_millis(i * 50), 100usize, 1_500_000u64))
            .collect();
        let delayed_score = performance_score(&objective, &delayed, 1448, 12e6);
        assert!(
            delayed_score > base_score + 0.1,
            "standing queues must raise the score: {delayed_score} vs {base_score}"
        );
        // Scores stay in [0, 1]: normalised, not clamped away.
        for s in [base_score, marked_score, delayed_score] {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn multi_bottleneck_rewards_cascades_and_path_collapse() {
        let objective = Objective::MultiBottleneck {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
            cascade_weight: 0.5,
            collapse_weight: 0.5,
        };
        let times: Vec<SimTime> = (0..2_500).map(|i| SimTime::from_millis(i * 2)).collect();
        let samples = |bytes: u64| -> Vec<(SimTime, usize, u64)> {
            (0..100)
                .map(|i| (SimTime::from_millis(i * 50), 10usize, bytes))
                .collect()
        };
        let base = result_with_deliveries(times.clone(), 5.0);
        let base_score = performance_score(&objective, &base, 1448, 12e6);

        // One deep queue on a 3-hop chain...
        let mut one_deep = result_with_deliveries(times.clone(), 5.0);
        one_deep.stats.hop_samples = vec![samples(1_500_000), samples(0), samples(0)];
        let one_deep_score = performance_score(&objective, &one_deep, 1448, 12e6);
        // ...scores below the same bytes spread as a full cascade.
        let mut cascade = result_with_deliveries(times.clone(), 5.0);
        cascade.stats.hop_samples =
            vec![samples(1_500_000), samples(1_500_000), samples(1_500_000)];
        let cascade_score = performance_score(&objective, &cascade, 1448, 12e6);
        assert!(one_deep_score > base_score);
        assert!(
            cascade_score > one_deep_score + 0.1,
            "cascaded standing queues must beat one deep queue: \
             {cascade_score} vs {one_deep_score}"
        );

        // A starved secondary (sub-path) flow raises the collapse term.
        let mut starved = result_with_deliveries(times, 5.0);
        starved.stats.flows.push(FlowStats {
            delivery_times: vec![SimTime::from_millis(10)],
            ..Default::default()
        });
        let starved_score = performance_score(&objective, &starved, 1448, 12e6);
        assert!(
            starved_score > base_score + 0.1,
            "a collapsed path must raise the score: {starved_score} vs {base_score}"
        );
        for s in [base_score, one_deep_score, cascade_score, starved_score] {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn tail_latency_scores_inflated_mice_tails_higher() {
        use ccfuzz_netsim::stats::WorkloadStats;
        let objective = Objective::TailLatency {
            percentile: 99.0,
            baseline: SimDuration::from_millis(100),
            stranded_weight: 0.5,
        };
        let mk = |fct_ms: u64, stranded: u64| {
            let mut w = WorkloadStats {
                spawned: 100 + stranded,
                completed: 100,
                active_at_end: stranded,
                ..Default::default()
            };
            for _ in 0..100 {
                w.fct_mice.record(fct_ms * 1_000_000);
            }
            SimResult {
                stats: RunStats {
                    workload: Some(Box::new(w)),
                    ..Default::default()
                },
                duration_secs: 5.0,
            }
        };
        let ideal = performance_score(&objective, &mk(100, 0), 1448, 12e6);
        let inflated = performance_score(&objective, &mk(1_000, 0), 1448, 12e6);
        let stranded = performance_score(&objective, &mk(1_000, 50), 1448, 12e6);
        assert!(ideal < 0.05, "baseline-speed mice must score ~0: {ideal}");
        assert!(
            inflated > ideal + 0.4,
            "10x tail inflation must score high: {inflated}"
        );
        assert!(
            stranded > inflated,
            "never-completing flows must raise the score further"
        );
        // A run without workload stats scores zero, not garbage.
        let none = performance_score(&objective, &result_with_deliveries(vec![], 5.0), 1448, 12e6);
        assert_eq!(none, 0.0);
        for s in [ideal, inflated, stranded] {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn default_configs_match_paper_settings() {
        let low = ScoringConfig::low_throughput_default(12e6);
        match low.objective {
            Objective::LowThroughput {
                lowest_fraction, ..
            } => assert_eq!(lowest_fraction, 0.2),
            _ => panic!("wrong objective"),
        }
        let delay = ScoringConfig::high_delay_default(12e6);
        match delay.objective {
            Objective::HighDelay { percentile } => assert_eq!(percentile, 10.0),
            _ => panic!("wrong objective"),
        }
        let fairness = ScoringConfig::fairness_default(12e6);
        match fairness.objective {
            Objective::Unfairness { starvation_weight } => assert_eq!(starvation_weight, 0.5),
            _ => panic!("wrong objective"),
        }
    }
}
