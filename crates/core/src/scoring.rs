//! Fitness scoring (§3.4 of the paper).
//!
//! A trace's score has two components:
//!
//! * **Performance score** — how badly the CCA performed under the trace
//!   (higher = worse for the CCA = fitter trace). The paper's low-utilization
//!   objective is the mean of the lowest 20 % of windowed throughput; a
//!   high-delay objective uses a low percentile of the queuing delay; a
//!   high-loss objective uses the loss ratio.
//! * **Trace score** — how well the trace itself satisfies properties that
//!   are hard to enforce during generation. For traffic fuzzing this rewards
//!   *minimal* traces: few injected packets and few of them dropped.

use ccfuzz_analysis::timeseries::{mean_of_lowest_fraction, percentile, windowed_throughput_bps};
use ccfuzz_netsim::packet::FlowId;
use ccfuzz_netsim::sim::SimResult;
use ccfuzz_netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What kind of poor behaviour the fuzzer is hunting for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise the CCA's throughput. The score is based on the mean of the
    /// lowest `lowest_fraction` of `window`-sized throughput windows
    /// (the paper uses 20 %), normalised by `reference_rate_bps`.
    LowThroughput {
        /// Throughput window size.
        window: SimDuration,
        /// Fraction of lowest windows averaged (0.2 in the paper).
        lowest_fraction: f64,
    },
    /// Maximise the CCA's queuing delay. The score is the `percentile`-th
    /// percentile of the CCA flow's queuing delay (the paper's §4.3 example
    /// uses the 10th percentile), in seconds.
    HighDelay {
        /// Percentile of the per-packet queuing delay used as the score.
        percentile: f64,
    },
    /// Maximise the CCA's loss ratio (marked-lost / transmissions).
    HighLoss,
}

/// Weights and normalisation for combining the two score components.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoringConfig {
    /// The behaviour being hunted.
    pub objective: Objective,
    /// Weight of the performance component.
    pub performance_weight: f64,
    /// Weight of the trace component (0 disables it; link fuzzing uses 0).
    pub trace_weight: f64,
    /// Rate used to normalise throughput scores (the bottleneck/average link
    /// rate, 12 Mbps in the paper).
    pub reference_rate_bps: f64,
}

impl ScoringConfig {
    /// The paper's low-utilization scoring: lowest-20 %-window throughput on
    /// 500 ms windows, normalised to the 12 Mbps bottleneck.
    pub fn low_throughput_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::LowThroughput {
                window: SimDuration::from_millis(500),
                lowest_fraction: 0.2,
            },
            performance_weight: 1.0,
            trace_weight: 0.25,
            reference_rate_bps,
        }
    }

    /// The §4.3 high-delay scoring: 10th-percentile queuing delay. The trace
    /// (minimality) weight is kept small because the delay score itself lives
    /// on a much smaller numeric scale than the throughput score.
    pub fn high_delay_default(reference_rate_bps: f64) -> Self {
        ScoringConfig {
            objective: Objective::HighDelay { percentile: 10.0 },
            performance_weight: 1.0,
            trace_weight: 0.02,
            reference_rate_bps,
        }
    }
}

/// Inputs for the trace-score component (traffic fuzzing only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceScoreInputs {
    /// Cross-traffic packets the genome injects.
    pub traffic_packets: usize,
    /// The genome's packet cap (for normalisation).
    pub traffic_max_packets: usize,
    /// Cross-traffic packets dropped at the bottleneck queue during the run.
    pub traffic_dropped: u64,
}

/// Computes the performance component in `[0, 1]`-ish range (higher = worse
/// CCA performance = fitter adversarial trace).
pub fn performance_score(
    objective: &Objective,
    result: &SimResult,
    mss: u32,
    reference_rate_bps: f64,
) -> f64 {
    match objective {
        Objective::LowThroughput {
            window,
            lowest_fraction,
        } => {
            let duration = SimDuration::from_secs_f64(result.duration_secs);
            let windows =
                windowed_throughput_bps(&result.stats.delivery_times, mss, *window, duration);
            let rates: Vec<f64> = windows.iter().map(|(_, r)| *r).collect();
            let low = mean_of_lowest_fraction(&rates, *lowest_fraction);
            let reference = reference_rate_bps.max(1.0);
            (1.0 - low / reference).clamp(0.0, 1.0)
        }
        Objective::HighDelay { percentile: p } => {
            let delays: Vec<f64> = result
                .stats
                .queuing_delays(FlowId::Cca)
                .iter()
                .map(|(_, d)| d.as_secs_f64())
                .collect();
            // Normalise by one second so typical scores stay in [0, 1] while
            // still being monotone in delay.
            percentile(&delays, *p).min(1.0)
        }
        Objective::HighLoss => {
            let tx = result.stats.flow.transmissions.max(1);
            (result.stats.flow.marked_lost as f64 / tx as f64).clamp(0.0, 1.0)
        }
    }
}

/// Computes the trace component in `[0, 1]` (higher = more minimal trace).
pub fn trace_score(inputs: &TraceScoreInputs) -> f64 {
    if inputs.traffic_max_packets == 0 {
        return 0.0;
    }
    let max = inputs.traffic_max_packets as f64;
    let packets_penalty = inputs.traffic_packets as f64 / max;
    let drops_penalty = inputs.traffic_dropped as f64 / max;
    (1.0 - 0.7 * packets_penalty - 0.3 * drops_penalty).clamp(0.0, 1.0)
}

/// Combines both components.
pub fn total_score(cfg: &ScoringConfig, performance: f64, trace: f64) -> f64 {
    cfg.performance_weight * performance + cfg.trace_weight * trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::stats::{FlowSummary, RunStats};
    use ccfuzz_netsim::time::SimTime;

    fn result_with_deliveries(times: Vec<SimTime>, duration_secs: f64) -> SimResult {
        SimResult {
            stats: RunStats {
                delivery_times: times,
                ..Default::default()
            },
            duration_secs,
        }
    }

    #[test]
    fn low_throughput_score_rewards_starvation() {
        let objective = Objective::LowThroughput {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
        };
        // Full-rate delivery: ~1000 packets/s of 1448B ≈ 11.6 Mbps.
        let busy: Vec<SimTime> = (0..5_000).map(SimTime::from_millis).collect();
        let busy_score =
            performance_score(&objective, &result_with_deliveries(busy, 5.0), 1448, 12e6);
        // Starved flow: nothing delivered after 1s.
        let starved: Vec<SimTime> = (0..1_000).map(SimTime::from_millis).collect();
        let starved_score = performance_score(
            &objective,
            &result_with_deliveries(starved, 5.0),
            1448,
            12e6,
        );
        assert!(starved_score > busy_score);
        assert!(
            starved_score > 0.9,
            "fully starved windows should score near 1: {starved_score}"
        );
        assert!(
            busy_score < 0.2,
            "a link-filling flow should score near 0: {busy_score}"
        );
    }

    #[test]
    fn high_loss_score_is_loss_ratio() {
        let objective = Objective::HighLoss;
        let result = SimResult {
            stats: RunStats {
                flow: FlowSummary {
                    transmissions: 100,
                    marked_lost: 25,
                    ..Default::default()
                },
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        assert_eq!(performance_score(&objective, &result, 1448, 12e6), 0.25);
    }

    #[test]
    fn high_delay_score_uses_percentile_of_queuing_delay() {
        use ccfuzz_netsim::stats::{BottleneckEvent, BottleneckRecord};
        let objective = Objective::HighDelay { percentile: 10.0 };
        let mk = |delay_ms: u64| BottleneckRecord {
            at: SimTime::from_millis(delay_ms),
            flow: FlowId::Cca,
            size: 1448,
            event: BottleneckEvent::Dequeued {
                queuing_delay: SimDuration::from_millis(delay_ms),
            },
        };
        let low_delay = SimResult {
            stats: RunStats {
                bottleneck: (1..=100).map(mk).collect(),
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        let high_delay = SimResult {
            stats: RunStats {
                bottleneck: (150..=250).map(mk).collect(),
                ..Default::default()
            },
            duration_secs: 5.0,
        };
        let low = performance_score(&objective, &low_delay, 1448, 12e6);
        let high = performance_score(&objective, &high_delay, 1448, 12e6);
        assert!(high > low);
        assert!(
            high >= 0.15,
            "p10 of 150-250ms delays is at least 150ms: {high}"
        );
    }

    #[test]
    fn trace_score_prefers_minimal_traces() {
        let small = TraceScoreInputs {
            traffic_packets: 50,
            traffic_max_packets: 1_000,
            traffic_dropped: 0,
        };
        let large = TraceScoreInputs {
            traffic_packets: 900,
            traffic_max_packets: 1_000,
            traffic_dropped: 0,
        };
        let wasteful = TraceScoreInputs {
            traffic_packets: 900,
            traffic_max_packets: 1_000,
            traffic_dropped: 500,
        };
        assert!(trace_score(&small) > trace_score(&large));
        assert!(trace_score(&large) > trace_score(&wasteful));
        assert_eq!(trace_score(&TraceScoreInputs::default()), 0.0);
    }

    #[test]
    fn total_score_weights_components() {
        let cfg = ScoringConfig {
            objective: Objective::HighLoss,
            performance_weight: 1.0,
            trace_weight: 0.5,
            reference_rate_bps: 12e6,
        };
        assert_eq!(total_score(&cfg, 0.8, 0.4), 0.8 + 0.2);
    }

    #[test]
    fn default_configs_match_paper_settings() {
        let low = ScoringConfig::low_throughput_default(12e6);
        match low.objective {
            Objective::LowThroughput {
                lowest_fraction, ..
            } => assert_eq!(lowest_fraction, 0.2),
            _ => panic!("wrong objective"),
        }
        let delay = ScoringConfig::high_delay_default(12e6);
        match delay.objective {
            Objective::HighDelay { percentile } => assert_eq!(percentile, 10.0),
            _ => panic!("wrong objective"),
        }
    }
}
