//! # ccfuzz-core
//!
//! The CC-Fuzz genetic-algorithm fuzzer (the paper's primary contribution):
//! it evolves network traces — bottleneck service curves ("link fuzzing") or
//! cross-traffic injection patterns ("traffic fuzzing") — that make a
//! congestion control algorithm perform poorly, using the simulator in
//! `ccfuzz-netsim` as its fitness oracle.
//!
//! The module layout follows §3 of the paper:
//!
//! * [`trace_gen`] — initial trace generation (`DIST_PACKETS`, Figure 2).
//! * [`genome`] — the two genome types and their mutation / crossover /
//!   annealing operators (§3.2, §3.3).
//! * [`scoring`] — performance and trace scores (§3.4).
//! * [`selection`] — rank-based selection (§3.5).
//! * [`evaluate`] — the simulator-backed fitness function (§3.6).
//! * [`fuzzer`] — the generation loop with island isolation (Figure 1, §4).
//! * [`realism`] — multi-CCA realism scoring (§5, Figure 5).
//! * [`scenario`] — multi-flow scenario genomes for fairness fuzzing
//!   (flow count, per-flow CCA, start/stop schedule, optional traffic
//!   sub-genome).
//! * [`topology`] — multi-hop topology genomes for parking-lot fuzzing
//!   (per-hop rate/delay/buffer/qdisc genes, per-flow paths, add/remove-hop
//!   and bottleneck-shift mutations).
//! * [`workload`] — dynamic-arrival workload genomes for tail-latency
//!   fuzzing (arrival process, heavy-tailed flow sizes, concurrency cap,
//!   background elephant mix).
//! * [`campaign`] — ready-made campaigns matching the paper's evaluation,
//!   plus the fairness/aqm/topology campaign presets built on the
//!   multi-flow, multi-hop engine.
//!
//! ## Quick example
//!
//! ```no_run
//! use ccfuzz_core::campaign::{Campaign, FuzzMode};
//! use ccfuzz_core::fuzzer::GaParams;
//! use ccfuzz_cca::CcaKind;
//! use ccfuzz_netsim::time::SimDuration;
//!
//! let campaign = Campaign::paper_standard(
//!     FuzzMode::Traffic,
//!     CcaKind::Bbr,
//!     SimDuration::from_secs(5),
//!     GaParams::quick(),
//! );
//! let result = campaign.run_traffic();
//! println!("worst-case goodput found: {:.2} Mbps", result.best_outcome.goodput_bps / 1e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod evaluate;
pub mod fuzzer;
pub mod genome;
pub mod realism;
pub mod scenario;
pub mod scoring;
pub mod selection;
pub mod shard;
pub mod topology;
pub mod trace_gen;
pub mod workload;

pub use campaign::{Campaign, FuzzMode};
pub use checkpoint::{CampaignControl, ControlledRun, SnapshotPayload};
pub use evaluate::{EvalOutcome, Evaluator, SimEvaluator};
pub use fuzzer::{
    FuzzResult, Fuzzer, FuzzerSnapshot, GaParams, GenerationSummary, PanicRecord, RunControl,
    StopReason,
};
pub use genome::{Genome, LinkGenome, TrafficGenome};
pub use scenario::{FlowGene, ScenarioGenome};
pub use scoring::{FairnessBreakdown, Objective, ScoringConfig};
pub use shard::{
    migration_k, shard_ranges, AbsorbResult, GenerationOutcome, MigrantBatch, ShardCoordinator,
    ShardReport, TopStat,
};
pub use topology::{HopGene, PathedFlowGene, TopologyGenome};
pub use workload::WorkloadGenome;
