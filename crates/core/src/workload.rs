//! Workload genomes for flow-churn fuzzing: what the GA evolves when it
//! hunts tail-latency bugs under Internet-scale dynamics.
//!
//! A [`WorkloadGenome`] describes a dynamic-arrival scenario: an arrival
//! process (Poisson or bursty ON/OFF), a bounded-Pareto flow-size
//! distribution, a concurrency cap, and a background mix of long-lived
//! elephants competing with the arriving mice. The simulator's flow-churn
//! engine ([`ccfuzz_netsim::workload`]) turns the arrival genes into
//! spawned-and-recycled dynamic flows; the elephants ride the ordinary
//! static flow path. Mutation perturbs rates, burstiness, sizes, the
//! concurrency cap and the elephant mix; crossover mixes arrival genes
//! field-wise and splices elephant lists.

use crate::genome::Genome;
use crate::scenario::FlowGene;
use ccfuzz_cca::CcaKind;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::workload::{ArrivalConfig, ArrivalProcess, SizeDistribution};
use serde::{Deserialize, Serialize};

/// Minimum background elephants a workload keeps. One long-lived flow is
/// structural: it is the incumbent whose per-flow stats back the legacy
/// accessors, and the queue pressure mice contend with.
pub const MIN_ELEPHANTS: usize = 1;

/// Arrival-rate range explored by generation/mutation, flows per second
/// (sampled log-uniformly: 5/s background churn up to 400/s incast-grade).
const RATE_RANGE: (f64, f64) = (5.0, 400.0);
/// Bounded-Pareto shape range (lower = heavier tail).
const SHAPE_RANGE: (f64, f64) = (1.05, 2.2);
/// Smallest-mouse size range, packets.
const MIN_PACKETS_RANGE: (u64, u64) = (1, 8);
/// Largest-flow size range, packets.
const MAX_PACKETS_RANGE: (u64, u64) = (64, 4_000);
/// Concurrency-cap range (slots the flow slab may hold live at once).
const CONCURRENT_RANGE: (u64, u64) = (8, 256);
/// ON/OFF burst and gap duration range, seconds.
const ON_OFF_SECS: (f64, f64) = (0.05, 2.0);
/// Fixed attempt cap: a cost bound on one evaluation, not an evolved gene
/// (the GA would only ever push it up).
const MAX_ARRIVALS: u64 = 50_000;

/// A dynamic-workload genome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadGenome {
    /// The evolved arrival process, size distribution and concurrency cap.
    pub arrivals: ArrivalConfig,
    /// Long-lived background flows (at least [`MIN_ELEPHANTS`]). Elephant 0
    /// is the always-on incumbent running the CCA under test.
    pub elephants: Vec<FlowGene>,
    /// Maximum elephants mutation may grow to.
    pub max_elephants: usize,
    /// Algorithms arrivals and elephant swaps draw from.
    pub cca_pool: Vec<CcaKind>,
    /// Scenario duration.
    pub duration: SimDuration,
}

fn log_uniform(lo: f64, hi: f64, rng: &mut SimRng) -> f64 {
    (rng.gen_range_f64(lo.ln(), hi.ln())).exp()
}

fn random_process(rng: &mut SimRng) -> ArrivalProcess {
    let rate_per_sec = log_uniform(RATE_RANGE.0, RATE_RANGE.1, rng);
    if rng.gen_bool(0.5) {
        ArrivalProcess::Poisson { rate_per_sec }
    } else {
        ArrivalProcess::OnOff {
            rate_per_sec,
            mean_on_secs: rng.gen_range_f64(ON_OFF_SECS.0, ON_OFF_SECS.1),
            mean_off_secs: rng.gen_range_f64(ON_OFF_SECS.0, ON_OFF_SECS.1),
        }
    }
}

fn random_size(rng: &mut SimRng) -> SizeDistribution {
    SizeDistribution {
        shape: rng.gen_range_f64(SHAPE_RANGE.0, SHAPE_RANGE.1),
        min_packets: rng.gen_range_u64(MIN_PACKETS_RANGE.0, MIN_PACKETS_RANGE.1 + 1),
        max_packets: rng.gen_range_u64(MAX_PACKETS_RANGE.0, MAX_PACKETS_RANGE.1 + 1),
    }
}

impl WorkloadGenome {
    /// Generates a fresh random workload: elephant 0 always-on running
    /// `cca`, a random arrival process over `cca_pool`, and the paper's
    /// 32-packet mice threshold (fixed, not evolved — the objective's mice
    /// definition must not be gameable by the genome).
    pub fn generate(
        cca: CcaKind,
        cca_pool: &[CcaKind],
        max_elephants: usize,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let defaults = ArrivalConfig::paper_default();
        let arrivals = ArrivalConfig {
            process: random_process(rng),
            size: random_size(rng),
            mice_threshold_packets: defaults.mice_threshold_packets,
            max_concurrent: rng.gen_range_u64(CONCURRENT_RANGE.0, CONCURRENT_RANGE.1 + 1) as u32,
            max_arrivals: MAX_ARRIVALS,
        };
        let pool = if cca_pool.is_empty() {
            vec![cca]
        } else {
            cca_pool.to_vec()
        };
        WorkloadGenome {
            arrivals,
            elephants: vec![FlowGene::whole_run(cca)],
            max_elephants: max_elephants.max(MIN_ELEPHANTS),
            cca_pool: pool,
            duration,
        }
    }

    /// The number of background elephants.
    pub fn elephant_count(&self) -> usize {
        self.elephants.len()
    }

    fn random_time(&self, lo_frac: f64, hi_frac: f64, rng: &mut SimRng) -> SimTime {
        let span = self.duration.as_nanos() as f64;
        let lo = (span * lo_frac) as u64;
        let hi = ((span * hi_frac) as u64).max(lo + 1);
        SimTime::from_nanos(rng.gen_range_u64(lo, hi))
    }

    fn perturb_rate(&mut self, rng: &mut SimRng) {
        let rate = log_uniform(RATE_RANGE.0, RATE_RANGE.1, rng);
        match &mut self.arrivals.process {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec = rate,
            ArrivalProcess::OnOff { rate_per_sec, .. } => *rate_per_sec = rate,
        }
    }

    fn perturb_process(&mut self, rng: &mut SimRng) {
        // Half the time flip the process kind (keeping the rate), otherwise
        // perturb the burst structure in place.
        match self.arrivals.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if rng.gen_bool(0.5) {
                    self.arrivals.process = ArrivalProcess::OnOff {
                        rate_per_sec,
                        mean_on_secs: rng.gen_range_f64(ON_OFF_SECS.0, ON_OFF_SECS.1),
                        mean_off_secs: rng.gen_range_f64(ON_OFF_SECS.0, ON_OFF_SECS.1),
                    };
                } else {
                    self.perturb_rate(rng);
                }
            }
            ArrivalProcess::OnOff {
                rate_per_sec,
                mut mean_on_secs,
                mut mean_off_secs,
            } => {
                if rng.gen_bool(0.3) {
                    self.arrivals.process = ArrivalProcess::Poisson { rate_per_sec };
                } else {
                    if rng.gen_bool(0.5) {
                        mean_on_secs = rng.gen_range_f64(ON_OFF_SECS.0, ON_OFF_SECS.1);
                    } else {
                        mean_off_secs = rng.gen_range_f64(ON_OFF_SECS.0, ON_OFF_SECS.1);
                    }
                    self.arrivals.process = ArrivalProcess::OnOff {
                        rate_per_sec,
                        mean_on_secs,
                        mean_off_secs,
                    };
                }
            }
        }
    }

    fn perturb_size(&mut self, rng: &mut SimRng) {
        match rng.gen_range_usize(0, 3) {
            0 => self.arrivals.size.shape = rng.gen_range_f64(SHAPE_RANGE.0, SHAPE_RANGE.1),
            1 => {
                self.arrivals.size.min_packets =
                    rng.gen_range_u64(MIN_PACKETS_RANGE.0, MIN_PACKETS_RANGE.1 + 1);
            }
            _ => {
                self.arrivals.size.max_packets = rng
                    .gen_range_u64(MAX_PACKETS_RANGE.0, MAX_PACKETS_RANGE.1 + 1)
                    .max(self.arrivals.size.min_packets);
            }
        }
    }

    fn perturb_concurrency(&mut self, rng: &mut SimRng) {
        self.arrivals.max_concurrent =
            rng.gen_range_u64(CONCURRENT_RANGE.0, CONCURRENT_RANGE.1 + 1) as u32;
    }

    /// Randomly perturbs one non-incumbent elephant's schedule. Elephant 0
    /// stays always-on: every workload keeps a long-lived flow for mice to
    /// queue behind (and for the legacy single-flow stats to describe).
    fn perturb_elephant_schedule(&mut self, rng: &mut SimRng) {
        if self.elephants.len() < 2 {
            return;
        }
        let idx = rng.gen_range_usize(1, self.elephants.len());
        if rng.gen_bool(0.7) {
            self.elephants[idx].start = self.random_time(0.0, 0.5, rng);
        }
        if rng.gen_bool(0.5) {
            self.elephants[idx].stop = None;
        } else {
            let start = self.elephants[idx].start;
            let earliest = start + self.duration.div(10).max(SimDuration::from_millis(100));
            let stop = self.random_time(0.5, 1.0, rng).max(earliest);
            self.elephants[idx].stop = Some(stop.min(SimTime::ZERO + self.duration));
        }
    }

    fn add_elephant(&mut self, rng: &mut SimRng) {
        if self.elephants.len() >= self.max_elephants || self.cca_pool.is_empty() {
            return;
        }
        let cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
        let start = self.random_time(0.0, 0.7, rng);
        self.elephants.push(FlowGene {
            cca,
            start,
            stop: None,
        });
    }

    fn remove_elephant(&mut self, rng: &mut SimRng) {
        if self.elephants.len() <= MIN_ELEPHANTS {
            return;
        }
        // Never remove elephant 0 (the incumbent).
        let idx = rng.gen_range_usize(1, self.elephants.len());
        self.elephants.remove(idx);
    }

    fn swap_elephant_cca(&mut self, rng: &mut SimRng) {
        if self.cca_pool.is_empty() || self.elephants.len() < 2 {
            return;
        }
        let idx = rng.gen_range_usize(1, self.elephants.len());
        self.elephants[idx].cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
    }
}

impl Genome for WorkloadGenome {
    fn mutate(&self, rng: &mut SimRng) -> Self {
        let mut child = self.clone();
        match rng.gen_range_usize(0, 7) {
            0 => child.perturb_rate(rng),
            1 => child.perturb_process(rng),
            2 => child.perturb_size(rng),
            3 => child.perturb_concurrency(rng),
            4 => child.perturb_elephant_schedule(rng),
            5 => {
                if rng.gen_bool(0.5) {
                    child.add_elephant(rng);
                } else {
                    child.remove_elephant(rng);
                }
            }
            _ => child.swap_elephant_cca(rng),
        }
        child
    }

    fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
        // Arrival genes mix field-wise: the process from one parent, the
        // size distribution from the other, the concurrency cap by coin
        // flip — incast rate from one lineage can meet a heavy tail from
        // another.
        let process = if rng.gen_bool(0.5) {
            self.arrivals.process
        } else {
            other.arrivals.process
        };
        let size = if rng.gen_bool(0.5) {
            self.arrivals.size
        } else {
            other.arrivals.size
        };
        let max_concurrent = if rng.gen_bool(0.5) {
            self.arrivals.max_concurrent
        } else {
            other.arrivals.max_concurrent
        };
        // Elephants splice like scenario flow lists.
        let (a, b) = if rng.gen_bool(0.5) {
            (self, other)
        } else {
            (other, self)
        };
        let split = rng.gen_range_usize(1, a.elephants.len() + 1);
        let mut elephants: Vec<FlowGene> = a.elephants.iter().copied().take(split).collect();
        elephants.extend(b.elephants.iter().copied().skip(split));
        elephants.truncate(self.max_elephants.max(MIN_ELEPHANTS));
        // Elephant 0 stays an always-on incumbent.
        elephants[0].start = SimTime::ZERO;
        elephants[0].stop = None;
        Some(WorkloadGenome {
            arrivals: ArrivalConfig {
                process,
                size,
                mice_threshold_packets: self.arrivals.mice_threshold_packets,
                max_concurrent,
                max_arrivals: self.arrivals.max_arrivals,
            },
            elephants,
            max_elephants: self.max_elephants,
            cca_pool: self.cca_pool.clone(),
            duration: self.duration,
        })
    }

    fn packet_count(&self) -> usize {
        // Workloads inject no unresponsive cross traffic; minimality is the
        // minimiser's concern, not a fitness term.
        0
    }

    fn validate(&self) -> Result<(), String> {
        self.arrivals.validate()?;
        if self.elephants.is_empty() {
            return Err("workload genome has no background elephants".into());
        }
        if self.elephants.len() > self.max_elephants.max(MIN_ELEPHANTS) {
            return Err(format!(
                "workload genome has {} elephants, cap is {}",
                self.elephants.len(),
                self.max_elephants
            ));
        }
        if self.cca_pool.is_empty() {
            return Err("workload genome has an empty CCA pool".into());
        }
        for (i, f) in self.elephants.iter().enumerate() {
            if f.start.as_nanos() > self.duration.as_nanos() {
                return Err(format!("elephant {i} starts beyond the scenario duration"));
            }
            if let Some(stop) = f.stop {
                if stop <= f.start {
                    return Err(format!("elephant {i} stops before it starts"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimDuration = SimDuration::from_secs(5);

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    fn base() -> WorkloadGenome {
        let mut rng = rng();
        WorkloadGenome::generate(
            CcaKind::Bbr,
            &[CcaKind::Bbr, CcaKind::Reno],
            4,
            DUR,
            &mut rng,
        )
    }

    #[test]
    fn generation_produces_valid_workloads() {
        let g = base();
        g.validate().unwrap();
        assert_eq!(g.elephant_count(), 1);
        assert_eq!(g.elephants[0].cca, CcaKind::Bbr);
        assert_eq!(g.elephants[0].start, SimTime::ZERO);
        assert!(g.elephants[0].stop.is_none());
        assert_eq!(g.arrivals.mice_threshold_packets, 32);
        let rate = g.arrivals.process.rate_per_sec();
        assert!((RATE_RANGE.0..=RATE_RANGE.1).contains(&rate));
    }

    #[test]
    fn mutation_keeps_invariants_and_explores() {
        let g = base();
        let mut rng = rng();
        let mut saw_rate_change = false;
        let mut saw_size_change = false;
        let mut saw_elephant_change = false;
        let mut saw_process_flip = false;
        let mut current = g.clone();
        for _ in 0..300 {
            let next = current.mutate(&mut rng);
            next.validate().unwrap();
            assert_eq!(next.elephants[0].start, SimTime::ZERO, "incumbent pinned");
            assert!(next.elephant_count() >= MIN_ELEPHANTS);
            assert!(next.elephant_count() <= 4);
            if next.arrivals.process.rate_per_sec() != current.arrivals.process.rate_per_sec() {
                saw_rate_change = true;
            }
            if next.arrivals.size != current.arrivals.size {
                saw_size_change = true;
            }
            if next.elephant_count() != current.elephant_count() {
                saw_elephant_change = true;
            }
            let flipped = matches!(
                (&current.arrivals.process, &next.arrivals.process),
                (ArrivalProcess::Poisson { .. }, ArrivalProcess::OnOff { .. })
                    | (ArrivalProcess::OnOff { .. }, ArrivalProcess::Poisson { .. })
            );
            if flipped {
                saw_process_flip = true;
            }
            current = next;
        }
        assert!(saw_rate_change, "mutation should perturb the arrival rate");
        assert!(saw_size_change, "mutation should perturb the sizes");
        assert!(saw_elephant_change, "mutation should add/remove elephants");
        assert!(saw_process_flip, "mutation should flip the process kind");
    }

    #[test]
    fn crossover_mixes_arrival_genes_fieldwise() {
        let mut rng = rng();
        let mut a = base();
        let mut b = base();
        a.arrivals.process = ArrivalProcess::Poisson { rate_per_sec: 10.0 };
        a.arrivals.size.shape = 1.1;
        b.arrivals.process = ArrivalProcess::OnOff {
            rate_per_sec: 300.0,
            mean_on_secs: 0.2,
            mean_off_secs: 0.8,
        };
        b.arrivals.size.shape = 2.0;
        let mut saw_mixed = false;
        for _ in 0..40 {
            let child = a.crossover(&b, &mut rng).unwrap();
            child.validate().unwrap();
            assert_eq!(child.elephants[0].start, SimTime::ZERO);
            let process_from_a = child.arrivals.process == a.arrivals.process;
            let size_from_a = child.arrivals.size == a.arrivals.size;
            if process_from_a != size_from_a {
                saw_mixed = true;
            }
        }
        assert!(saw_mixed, "crossover must be able to mix parents' genes");
    }

    #[test]
    fn validate_rejects_bad_genomes() {
        let mut g = base();
        g.elephants.clear();
        assert!(g.validate().is_err());
        let mut g = base();
        g.cca_pool.clear();
        assert!(g.validate().is_err());
        let mut g = base();
        g.arrivals.size.max_packets = 0;
        assert!(g.validate().is_err());
        let mut g = base();
        g.elephants[0].stop = Some(SimTime::ZERO);
        assert!(g.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mut g = base();
        let mut r = rng();
        for _ in 0..10 {
            g = g.mutate(&mut r);
        }
        let json = serde_json::to_string(&g).unwrap();
        let back: WorkloadGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
