//! Genomes: the trace representations the genetic algorithm evolves.
//!
//! * [`LinkGenome`] — a bottleneck service curve (fixed total packet count,
//!   bounded long-term rate variation). Mutation re-distributes the packets
//!   on one side of a random split point; crossover is not defined (§3.2).
//! * [`TrafficGenome`] — a cross-traffic injection pattern (variable packet
//!   count up to a cap, no local rate constraints). Mutation re-generates one
//!   side of a split point with a randomly changed packet count; crossover
//!   splices the left half of one parent with the right half of the other
//!   (§3.3).

use crate::trace_gen::{dist_packets, DistPacketsParams};
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::trace::{LinkTrace, TrafficTrace};
use serde::{Deserialize, Serialize};

/// Operations the genetic algorithm needs from a trace genome.
pub trait Genome: Clone + Send + Sync {
    /// Produces a mutated copy.
    fn mutate(&self, rng: &mut SimRng) -> Self;

    /// Produces a crossover child from two parents, or `None` if the genome
    /// type does not support crossover (link traces, §3.2).
    fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self>;

    /// Number of packets in the genome (used by trace scoring).
    fn packet_count(&self) -> usize;

    /// Verifies internal invariants; used in tests and debug assertions.
    fn validate(&self) -> Result<(), String>;
}

// ---------------------------------------------------------------------------
// Link genome
// ---------------------------------------------------------------------------

/// A bottleneck service-curve genome for link fuzzing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkGenome {
    /// Sorted packet transmission opportunities.
    pub timestamps: Vec<SimTime>,
    /// Scenario duration.
    pub duration: SimDuration,
    /// Aggregation threshold used when (re)generating segments.
    pub k_agg: SimDuration,
}

impl LinkGenome {
    /// Generates a fresh random link genome carrying `total_packets` over
    /// `duration` (i.e. a fixed average bandwidth).
    pub fn generate(
        total_packets: usize,
        duration: SimDuration,
        k_agg: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let params = DistPacketsParams {
            k_agg,
            enforce_rate_bounds: true,
            ..Default::default()
        };
        let timestamps = dist_packets(
            total_packets,
            SimTime::ZERO,
            SimTime::ZERO + duration,
            &params,
            rng,
        );
        LinkGenome {
            timestamps,
            duration,
            k_agg,
        }
    }

    /// Converts the genome to the simulator's [`LinkTrace`].
    pub fn to_trace(&self) -> LinkTrace {
        LinkTrace::new(self.timestamps.clone(), self.duration)
    }

    /// The average service rate in bits per second for `packet_size`-byte packets.
    pub fn average_rate_bps(&self, packet_size: u32) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.timestamps.len() as f64 * packet_size as f64 * 8.0 / secs
    }

    /// A copy with every timestamp rounded to the nearest multiple of
    /// `grid` (clamped to the trace duration). Packet count is preserved —
    /// the link-genome invariant — while the number of *distinct* service
    /// instants drops, which is the value-level shrinking step used by trace
    /// minimization: a coarser service curve is easier to interpret and to
    /// reproduce on real hardware.
    pub fn quantized(&self, grid: SimDuration) -> Self {
        if grid == SimDuration::ZERO {
            return self.clone();
        }
        let g = grid.as_nanos();
        let mut timestamps: Vec<SimTime> = self
            .timestamps
            .iter()
            .map(|t| {
                let rounded = (t.as_nanos() + g / 2) / g * g;
                SimTime::from_nanos(rounded.min(self.duration.as_nanos()))
            })
            .collect();
        timestamps.sort_unstable();
        LinkGenome {
            timestamps,
            duration: self.duration,
            k_agg: self.k_agg,
        }
    }

    /// A copy with service outages (gaps between opportunities) longer than
    /// `max_gap` compressed down to `max_gap`, preserving packet count.
    pub fn shortened_outages(&self, max_gap: SimDuration) -> Self {
        LinkGenome {
            timestamps: compress_gaps(&self.timestamps, max_gap),
            duration: self.duration,
            k_agg: self.k_agg,
        }
    }

    /// Applies Gaussian smoothing to the packet timestamps (trace annealing,
    /// §3.2): each timestamp moves toward the average of its neighbourhood,
    /// plus a small amount of Gaussian noise, while staying inside the trace
    /// duration and keeping the total count fixed.
    pub fn anneal(&self, window: usize, noise_std: SimDuration, rng: &mut SimRng) -> Self {
        if self.timestamps.len() < 3 {
            return self.clone();
        }
        let w = window.max(1);
        let n = self.timestamps.len();
        let mut smoothed = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(w);
            let hi = (i + w + 1).min(n);
            let mean_ns = self.timestamps[lo..hi]
                .iter()
                .map(|t| t.as_nanos() as f64)
                .sum::<f64>()
                / (hi - lo) as f64;
            let jitter = rng.gen_normal(0.0, noise_std.as_nanos() as f64);
            let t = (mean_ns + jitter).clamp(0.0, self.duration.as_nanos() as f64);
            smoothed.push(SimTime::from_nanos(t as u64));
        }
        smoothed.sort_unstable();
        LinkGenome {
            timestamps: smoothed,
            duration: self.duration,
            k_agg: self.k_agg,
        }
    }
}

impl Genome for LinkGenome {
    fn mutate(&self, rng: &mut SimRng) -> Self {
        if self.timestamps.is_empty() {
            return self.clone();
        }
        // Choose a random split point in time and regenerate either the left
        // or the right side with DIST_PACKETS, preserving the packet count on
        // that side (and therefore the genome's total count and long-term
        // rate properties).
        let split = SimTime::from_nanos(rng.gen_range_u64(1, self.duration.as_nanos().max(2)));
        let left_is_mutated = rng.gen_bool(0.5);
        let params = DistPacketsParams {
            k_agg: self.k_agg,
            enforce_rate_bounds: true,
            ..Default::default()
        };

        let split_idx = self.timestamps.partition_point(|&t| t < split);
        let mut timestamps = Vec::with_capacity(self.timestamps.len());
        if left_is_mutated {
            let regenerated = dist_packets(split_idx, SimTime::ZERO, split, &params, rng);
            timestamps.extend(regenerated);
            timestamps.extend_from_slice(&self.timestamps[split_idx..]);
        } else {
            timestamps.extend_from_slice(&self.timestamps[..split_idx]);
            let regenerated = dist_packets(
                self.timestamps.len() - split_idx,
                split,
                SimTime::ZERO + self.duration,
                &params,
                rng,
            );
            timestamps.extend(regenerated);
        }
        timestamps.sort_unstable();
        LinkGenome {
            timestamps,
            duration: self.duration,
            k_agg: self.k_agg,
        }
    }

    fn crossover(&self, _other: &Self, _rng: &mut SimRng) -> Option<Self> {
        // §3.2: no crossover for link traces — there is no obvious way to
        // combine two service curves while preserving the per-trace
        // constraints (total packets, bounded rate variation).
        None
    }

    fn packet_count(&self) -> usize {
        self.timestamps.len()
    }

    fn validate(&self) -> Result<(), String> {
        for w in self.timestamps.windows(2) {
            if w[0] > w[1] {
                return Err("link genome timestamps out of order".into());
            }
        }
        if let Some(last) = self.timestamps.last() {
            if last.as_nanos() > self.duration.as_nanos() {
                return Err("link genome timestamp beyond duration".into());
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Traffic genome
// ---------------------------------------------------------------------------

/// A cross-traffic injection genome for traffic fuzzing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficGenome {
    /// Sorted injection timestamps.
    pub timestamps: Vec<SimTime>,
    /// Scenario duration.
    pub duration: SimDuration,
    /// Maximum number of cross-traffic packets allowed.
    pub max_packets: usize,
}

impl TrafficGenome {
    /// Generates a fresh random traffic genome with a uniformly random packet
    /// count up to `max_packets`, distributed without local rate constraints.
    pub fn generate(max_packets: usize, duration: SimDuration, rng: &mut SimRng) -> Self {
        let count = rng.gen_range_usize(0, max_packets + 1);
        let params = DistPacketsParams {
            enforce_rate_bounds: false,
            ..Default::default()
        };
        let timestamps = dist_packets(count, SimTime::ZERO, SimTime::ZERO + duration, &params, rng);
        TrafficGenome {
            timestamps,
            duration,
            max_packets,
        }
    }

    /// Converts the genome to the simulator's [`TrafficTrace`].
    pub fn to_trace(&self) -> TrafficTrace {
        TrafficTrace::new(self.timestamps.clone(), self.duration)
    }

    /// A copy with the timestamps in `range` (by index) removed — the
    /// delta-debugging primitive used by trace minimization.
    pub fn without_index_range(&self, range: std::ops::Range<usize>) -> Self {
        let mut timestamps = Vec::with_capacity(self.timestamps.len().saturating_sub(range.len()));
        timestamps.extend_from_slice(&self.timestamps[..range.start.min(self.timestamps.len())]);
        timestamps.extend_from_slice(&self.timestamps[range.end.min(self.timestamps.len())..]);
        TrafficGenome {
            timestamps,
            duration: self.duration,
            max_packets: self.max_packets,
        }
    }

    /// A copy with every burst (run of packets whose consecutive gaps are
    /// below `min_gap`) re-spaced evenly across the burst's time span. This
    /// is the value-level "flatten bursts" shrinking step: it removes
    /// incidental micro-structure while preserving packet count and the
    /// burst's position and extent.
    pub fn flattened_bursts(&self, min_gap: SimDuration) -> Self {
        TrafficGenome {
            timestamps: flatten_bursts(&self.timestamps, min_gap),
            duration: self.duration,
            max_packets: self.max_packets,
        }
    }

    /// A copy with every silent gap longer than `max_gap` compressed down to
    /// `max_gap` (later packets shift earlier). Shortens outages that are
    /// longer than needed to trigger the behaviour under test.
    pub fn shortened_outages(&self, max_gap: SimDuration) -> Self {
        TrafficGenome {
            timestamps: compress_gaps(&self.timestamps, max_gap),
            duration: self.duration,
            max_packets: self.max_packets,
        }
    }
}

/// Evenly respaces runs of timestamps whose consecutive gaps are all below
/// `min_gap` (helper for [`TrafficGenome::flattened_bursts`]).
pub(crate) fn flatten_bursts(timestamps: &[SimTime], min_gap: SimDuration) -> Vec<SimTime> {
    if timestamps.len() < 3 {
        return timestamps.to_vec();
    }
    let mut out = Vec::with_capacity(timestamps.len());
    let mut start = 0usize;
    while start < timestamps.len() {
        let mut end = start + 1;
        while end < timestamps.len() && timestamps[end] - timestamps[end - 1] < min_gap {
            end += 1;
        }
        let run = &timestamps[start..end];
        if run.len() >= 3 {
            let t0 = run[0].as_nanos();
            let t1 = run[run.len() - 1].as_nanos();
            let n = run.len() as u64;
            for i in 0..n {
                out.push(SimTime::from_nanos(t0 + (t1 - t0) * i / (n - 1)));
            }
        } else {
            out.extend_from_slice(run);
        }
        start = end;
    }
    out.sort_unstable();
    out
}

/// Compresses inter-packet gaps longer than `max_gap` down to `max_gap`,
/// shifting all later timestamps earlier (helper for `shortened_outages`).
pub(crate) fn compress_gaps(timestamps: &[SimTime], max_gap: SimDuration) -> Vec<SimTime> {
    if timestamps.is_empty() || max_gap == SimDuration::ZERO {
        return timestamps.to_vec();
    }
    let mut out = Vec::with_capacity(timestamps.len());
    let mut shift = SimDuration::ZERO;
    out.push(timestamps[0]);
    for w in timestamps.windows(2) {
        let gap = w[1] - w[0];
        if gap > max_gap {
            shift += gap - max_gap;
        }
        out.push(w[1] - shift);
    }
    out
}

impl Genome for TrafficGenome {
    fn mutate(&self, rng: &mut SimRng) -> Self {
        // Pick a split point in time, keep one side, and regenerate the other
        // side with a randomly changed packet count (§3.3: the count in the
        // regenerated portion changes so that minimal traffic vectors can
        // emerge).
        let split = SimTime::from_nanos(rng.gen_range_u64(1, self.duration.as_nanos().max(2)));
        let left_is_mutated = rng.gen_bool(0.5);
        let split_idx = self.timestamps.partition_point(|&t| t < split);
        let params = DistPacketsParams {
            enforce_rate_bounds: false,
            ..Default::default()
        };

        let kept: Vec<SimTime>;
        let (regen_start, regen_end, other_count);
        if left_is_mutated {
            kept = self.timestamps[split_idx..].to_vec();
            regen_start = SimTime::ZERO;
            regen_end = split;
            other_count = kept.len();
        } else {
            kept = self.timestamps[..split_idx].to_vec();
            regen_start = split;
            regen_end = SimTime::ZERO + self.duration;
            other_count = kept.len();
        }
        let budget = self.max_packets.saturating_sub(other_count);
        let new_count = rng.gen_range_usize(0, budget + 1);
        let regenerated = dist_packets(new_count, regen_start, regen_end, &params, rng);

        let mut timestamps = kept;
        timestamps.extend(regenerated);
        timestamps.sort_unstable();
        TrafficGenome {
            timestamps,
            duration: self.duration,
            max_packets: self.max_packets,
        }
    }

    fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
        // §3.3: choose a split point by packet count, take the left half of
        // one parent and the right half of the other (by timestamp), and
        // combine. The child's packet count changes naturally.
        let max_len = self.timestamps.len().max(other.timestamps.len());
        if max_len == 0 {
            return Some(self.clone());
        }
        let split_count = rng.gen_range_usize(0, max_len + 1);
        let (left_parent, right_parent) = if rng.gen_bool(0.5) {
            (self, other)
        } else {
            (other, self)
        };
        // The time at which the left parent has emitted `split_count` packets.
        let split_time = left_parent
            .timestamps
            .get(split_count.saturating_sub(1))
            .copied()
            .unwrap_or(SimTime::ZERO + left_parent.duration);

        let mut timestamps: Vec<SimTime> = left_parent
            .timestamps
            .iter()
            .copied()
            .take(split_count)
            .collect();
        timestamps.extend(
            right_parent
                .timestamps
                .iter()
                .copied()
                .filter(|&t| t > split_time),
        );
        timestamps.sort_unstable();
        timestamps.truncate(self.max_packets.max(other.max_packets));
        Some(TrafficGenome {
            timestamps,
            duration: self.duration,
            max_packets: self.max_packets,
        })
    }

    fn packet_count(&self) -> usize {
        self.timestamps.len()
    }

    fn validate(&self) -> Result<(), String> {
        if self.timestamps.len() > self.max_packets {
            return Err(format!(
                "traffic genome has {} packets, cap is {}",
                self.timestamps.len(),
                self.max_packets
            ));
        }
        for w in self.timestamps.windows(2) {
            if w[0] > w[1] {
                return Err("traffic genome timestamps out of order".into());
            }
        }
        if let Some(last) = self.timestamps.last() {
            if last.as_nanos() > self.duration.as_nanos() {
                return Err("traffic genome timestamp beyond duration".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(99)
    }

    const DUR: SimDuration = SimDuration::from_secs(5);

    #[test]
    fn link_genome_generation_preserves_count_and_validates() {
        let mut rng = rng();
        let g = LinkGenome::generate(5_000, DUR, SimDuration::from_millis(50), &mut rng);
        assert_eq!(g.packet_count(), 5_000);
        g.validate().unwrap();
        // 5000 packets of 1500B over 5s = 12 Mbps.
        assert!((g.average_rate_bps(1500) - 12e6).abs() / 12e6 < 0.01);
        let trace = g.to_trace();
        assert_eq!(trace.len(), 5_000);
    }

    #[test]
    fn link_mutation_preserves_total_packets() {
        let mut rng = rng();
        let g = LinkGenome::generate(2_000, DUR, SimDuration::from_millis(50), &mut rng);
        for _ in 0..10 {
            let m = g.mutate(&mut rng);
            assert_eq!(m.packet_count(), g.packet_count());
            m.validate().unwrap();
            assert_eq!(m.duration, g.duration);
        }
    }

    #[test]
    fn link_mutation_changes_the_trace() {
        let mut rng = rng();
        let g = LinkGenome::generate(2_000, DUR, SimDuration::from_millis(50), &mut rng);
        let m = g.mutate(&mut rng);
        assert_ne!(m.timestamps, g.timestamps);
    }

    #[test]
    fn link_crossover_is_unsupported() {
        let mut rng = rng();
        let a = LinkGenome::generate(100, DUR, SimDuration::from_millis(50), &mut rng);
        let b = LinkGenome::generate(100, DUR, SimDuration::from_millis(50), &mut rng);
        assert!(a.crossover(&b, &mut rng).is_none());
    }

    #[test]
    fn annealing_smooths_and_preserves_count() {
        let mut rng = rng();
        let g = LinkGenome::generate(3_000, DUR, SimDuration::from_millis(50), &mut rng);
        let a = g.anneal(5, SimDuration::from_micros(100), &mut rng);
        assert_eq!(a.packet_count(), g.packet_count());
        a.validate().unwrap();
        // Smoothing reduces the variance of inter-packet gaps.
        let gap_var = |ts: &[SimTime]| {
            let gaps: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64
        };
        assert!(gap_var(&a.timestamps) <= gap_var(&g.timestamps));
    }

    #[test]
    fn traffic_genome_generation_respects_cap() {
        let mut rng = rng();
        for _ in 0..20 {
            let g = TrafficGenome::generate(800, DUR, &mut rng);
            assert!(g.packet_count() <= 800);
            g.validate().unwrap();
        }
    }

    #[test]
    fn traffic_mutation_respects_cap_and_changes_count() {
        let mut rng = rng();
        let g = TrafficGenome::generate(800, DUR, &mut rng);
        let mut counts = std::collections::BTreeSet::new();
        for _ in 0..20 {
            let m = g.mutate(&mut rng);
            m.validate().unwrap();
            assert!(m.packet_count() <= 800);
            counts.insert(m.packet_count());
        }
        assert!(counts.len() > 1, "mutation should vary the packet count");
    }

    #[test]
    fn traffic_crossover_combines_parents_and_respects_cap() {
        let mut rng = rng();
        let a = TrafficGenome::generate(500, DUR, &mut rng);
        let b = TrafficGenome::generate(500, DUR, &mut rng);
        for _ in 0..20 {
            let child = a.crossover(&b, &mut rng).unwrap();
            child.validate().unwrap();
            assert!(child.packet_count() <= 500);
            // Every child timestamp comes from one of the parents.
            for t in &child.timestamps {
                assert!(
                    a.timestamps.contains(t) || b.timestamps.contains(t),
                    "child timestamp {t} not found in either parent"
                );
            }
        }
    }

    #[test]
    fn traffic_crossover_of_empty_parents_is_empty() {
        let mut rng = rng();
        let a = TrafficGenome {
            timestamps: vec![],
            duration: DUR,
            max_packets: 100,
        };
        let b = a.clone();
        let child = a.crossover(&b, &mut rng).unwrap();
        assert_eq!(child.packet_count(), 0);
    }

    #[test]
    fn traffic_without_index_range_removes_exactly_that_segment() {
        let mut rng = rng();
        let g = TrafficGenome::generate(200, DUR, &mut rng);
        let n = g.packet_count();
        if n < 4 {
            return;
        }
        let cut = g.without_index_range(1..3);
        assert_eq!(cut.packet_count(), n - 2);
        cut.validate().unwrap();
        assert_eq!(cut.timestamps[0], g.timestamps[0]);
        assert_eq!(cut.timestamps[1], g.timestamps[3]);
        // Out-of-range ends are clamped.
        assert_eq!(g.without_index_range(0..usize::MAX).packet_count(), 0);
    }

    #[test]
    fn flatten_bursts_preserves_count_and_span() {
        let ts: Vec<SimTime> = vec![0, 10, 11, 12, 13, 5_000_000]
            .into_iter()
            .map(SimTime::from_micros)
            .collect();
        let g = TrafficGenome {
            timestamps: ts.clone(),
            duration: DUR,
            max_packets: 100,
        };
        let flat = g.flattened_bursts(SimDuration::from_millis(1));
        assert_eq!(flat.packet_count(), g.packet_count());
        flat.validate().unwrap();
        // The burst's first and last packets stay in place.
        assert_eq!(flat.timestamps[0], ts[0]);
        assert_eq!(flat.timestamps[4], ts[4]);
        assert_eq!(flat.timestamps[5], ts[5]);
        // Interior packets are evenly spaced across the burst span.
        let gaps: Vec<u64> = flat.timestamps[..5]
            .windows(2)
            .map(|w| (w[1] - w[0]).as_nanos())
            .collect();
        assert!(
            gaps.windows(2).all(|w| w[0].abs_diff(w[1]) <= 1),
            "{gaps:?}"
        );
    }

    #[test]
    fn shortened_outages_compresses_long_gaps_only() {
        let ts: Vec<SimTime> = vec![0, 100, 3_000, 3_100]
            .into_iter()
            .map(SimTime::from_millis)
            .collect();
        let g = TrafficGenome {
            timestamps: ts,
            duration: DUR,
            max_packets: 100,
        };
        let s = g.shortened_outages(SimDuration::from_millis(500));
        assert_eq!(s.packet_count(), 4);
        s.validate().unwrap();
        assert_eq!(
            s.timestamps[1] - s.timestamps[0],
            SimDuration::from_millis(100)
        );
        assert_eq!(
            s.timestamps[2] - s.timestamps[1],
            SimDuration::from_millis(500)
        );
        assert_eq!(
            s.timestamps[3] - s.timestamps[2],
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn link_quantized_preserves_count_and_bounds() {
        let mut rng = rng();
        let g = LinkGenome::generate(2_000, DUR, SimDuration::from_millis(50), &mut rng);
        let q = g.quantized(SimDuration::from_millis(10));
        assert_eq!(q.packet_count(), g.packet_count());
        q.validate().unwrap();
        assert!(q
            .timestamps
            .iter()
            .all(|t| t.as_nanos() % 10_000_000 == 0 || t.as_nanos() == g.duration.as_nanos()));
        // Distinct instants shrink dramatically.
        let distinct = |ts: &[SimTime]| {
            let mut v = ts.to_vec();
            v.dedup();
            v.len()
        };
        assert!(distinct(&q.timestamps) < distinct(&g.timestamps));
    }

    #[test]
    fn link_shortened_outages_preserves_count() {
        let ts: Vec<SimTime> = vec![0, 10, 4_000, 4_010]
            .into_iter()
            .map(SimTime::from_millis)
            .collect();
        let g = LinkGenome {
            timestamps: ts,
            duration: DUR,
            k_agg: SimDuration::from_millis(50),
        };
        let s = g.shortened_outages(SimDuration::from_millis(200));
        assert_eq!(s.packet_count(), 4);
        s.validate().unwrap();
        assert_eq!(
            s.timestamps[2] - s.timestamps[1],
            SimDuration::from_millis(200)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = rng();
        let g = TrafficGenome::generate(100, DUR, &mut rng);
        let json = serde_json::to_string(&g).unwrap();
        let back: TrafficGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
        let l = LinkGenome::generate(100, DUR, SimDuration::from_millis(50), &mut rng);
        let json = serde_json::to_string(&l).unwrap();
        let back: LinkGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
