//! Initial trace generation: the `DIST_PACKETS` algorithm (Figure 2 of the
//! paper).
//!
//! `DIST_PACKETS` recursively splits a time interval and a packet budget into
//! two halves at a uniformly random point, constraining (for link traces) the
//! average rate of each half to within a 0.5×–2× band of the parent's rate.
//! Below the aggregation threshold `kAgg` the band check is dropped, so
//! short-term bursts and jitter (packet aggregation) still appear while the
//! long-term rate stays bounded.

use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};

/// Parameters of the packet-distribution algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistPacketsParams {
    /// Aggregation threshold `kAgg`: below this interval length the local
    /// rate constraints are not enforced (the paper uses 50 ms).
    pub k_agg: SimDuration,
    /// Whether the 0.5×–2× local-rate constraints are enforced at all.
    /// Link fuzzing enforces them; traffic fuzzing does not (§3.3), and the
    /// unconstrained variant is also what Figure 5 feeds to the realism
    /// scorer.
    pub enforce_rate_bounds: bool,
    /// Upper bound on the rejection-sampling attempts per split before the
    /// constraints are relaxed for that split (keeps generation total-time
    /// bounded on adversarial inputs; the paper's pseudocode loops forever).
    pub max_attempts: u32,
}

impl Default for DistPacketsParams {
    fn default() -> Self {
        DistPacketsParams {
            k_agg: SimDuration::from_millis(50),
            enforce_rate_bounds: true,
            max_attempts: 64,
        }
    }
}

/// Distributes `num` packet timestamps over `[start, end)` using
/// `DIST_PACKETS`. The returned timestamps are sorted.
pub fn dist_packets(
    num: usize,
    start: SimTime,
    end: SimTime,
    params: &DistPacketsParams,
    rng: &mut SimRng,
) -> Vec<SimTime> {
    let mut out = Vec::with_capacity(num);
    dist_packets_rec(
        num,
        start.as_nanos(),
        end.as_nanos(),
        params,
        rng,
        &mut out,
        0,
    );
    out.sort_unstable();
    out.into_iter().map(SimTime::from_nanos).collect()
}

/// Minimum interval width we keep recursing into; below this packets are
/// placed evenly (prevents unbounded recursion on degenerate splits).
const MIN_SPAN_NS: u64 = 1_000; // 1 µs

fn dist_packets_rec(
    num: usize,
    start_ns: u64,
    end_ns: u64,
    params: &DistPacketsParams,
    rng: &mut SimRng,
    out: &mut Vec<u64>,
    depth: u32,
) {
    if num == 0 || end_ns <= start_ns {
        return;
    }
    if num == 1 {
        out.push(start_ns + (end_ns - start_ns) / 2);
        return;
    }
    let span = end_ns - start_ns;
    if span <= MIN_SPAN_NS || depth > 64 {
        // Degenerate interval: spread evenly.
        for i in 0..num {
            out.push(start_ns + span * (2 * i as u64 + 1) / (2 * num as u64));
        }
        return;
    }

    let rate = num as f64 / span as f64;
    let mut attempts = 0u32;
    let (tsplit, numleft) = loop {
        let tsplit = rng.gen_range_u64(start_ns + 1, end_ns);
        let numleft = rng.gen_range_usize(0, num + 1);
        attempts += 1;
        // Below the aggregation threshold the constraints are not enforced.
        if span < params.k_agg.as_nanos() || !params.enforce_rate_bounds {
            break (tsplit, numleft);
        }
        if attempts > params.max_attempts {
            // Relax the constraint rather than looping forever; split evenly.
            break (start_ns + span / 2, num / 2);
        }
        let left_span = (tsplit - start_ns) as f64;
        let right_span = (end_ns - tsplit) as f64;
        let lrate = numleft as f64 / left_span.max(1.0);
        let rrate = (num - numleft) as f64 / right_span.max(1.0);
        if lrate > 2.0 * rate || rrate > 2.0 * rate {
            continue;
        }
        if lrate < 0.5 * rate || rrate < 0.5 * rate {
            continue;
        }
        break (tsplit, numleft);
    };
    dist_packets_rec(numleft, start_ns, tsplit, params, rng, out, depth + 1);
    dist_packets_rec(num - numleft, tsplit, end_ns, params, rng, out, depth + 1);
}

/// Convenience: the number of packets a link of `rate_bps` can carry over
/// `duration` with `packet_size`-byte packets (used to pick the packet budget
/// for link traces of a given average bandwidth, e.g. 12 Mbps in the paper).
pub fn packets_for_rate(rate_bps: u64, packet_size: u32, duration: SimDuration) -> usize {
    ((rate_bps as f64 / 8.0) * duration.as_secs_f64() / packet_size as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn produces_exactly_the_requested_count() {
        let mut rng = rng();
        for num in [0usize, 1, 7, 100, 5_000] {
            let ts = dist_packets(
                num,
                SimTime::ZERO,
                SimTime::from_millis(5_000),
                &DistPacketsParams::default(),
                &mut rng,
            );
            assert_eq!(ts.len(), num, "count mismatch for {num}");
        }
    }

    #[test]
    fn timestamps_sorted_and_within_bounds() {
        let mut rng = rng();
        let start = SimTime::from_millis(100);
        let end = SimTime::from_millis(4_000);
        let ts = dist_packets(2_000, start, end, &DistPacketsParams::default(), &mut rng);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert!(ts.iter().all(|&t| t >= start && t <= end));
    }

    #[test]
    fn single_packet_lands_mid_interval() {
        let mut rng = rng();
        let ts = dist_packets(
            1,
            SimTime::from_millis(100),
            SimTime::from_millis(200),
            &DistPacketsParams::default(),
            &mut rng,
        );
        assert_eq!(ts, vec![SimTime::from_millis(150)]);
    }

    #[test]
    fn long_term_rate_stays_within_band_when_enforced() {
        // With the constraints enforced, the packet count in each half of the
        // trace must stay within the 0.5x-2x band of the average (by
        // construction of the first split).
        let mut rng = rng();
        let total = 5_000usize;
        let duration = SimTime::from_millis(5_000);
        for _ in 0..10 {
            let ts = dist_packets(
                total,
                SimTime::ZERO,
                duration,
                &DistPacketsParams::default(),
                &mut rng,
            );
            let half = SimTime::from_millis(2_500);
            let first_half = ts.iter().filter(|&&t| t < half).count() as f64;
            let expected = total as f64 / 2.0;
            assert!(
                first_half >= 0.45 * expected && first_half <= 2.1 * expected,
                "first half has {first_half} packets, expected around {expected}"
            );
        }
    }

    #[test]
    fn unconstrained_mode_is_burstier_than_constrained() {
        // Measure burstiness as the maximum packet count in any 100ms bucket,
        // averaged over several generated traces.
        let bucket_max = |ts: &[SimTime]| {
            let mut buckets = [0u32; 50];
            for t in ts {
                let idx = (t.as_millis() / 100).min(49) as usize;
                buckets[idx] += 1;
            }
            *buckets.iter().max().unwrap() as f64
        };
        let mut rng_a = SimRng::new(7);
        let mut rng_b = SimRng::new(7);
        let constrained = DistPacketsParams::default();
        let unconstrained = DistPacketsParams {
            enforce_rate_bounds: false,
            ..Default::default()
        };
        let mut c_sum = 0.0;
        let mut u_sum = 0.0;
        for _ in 0..20 {
            let c = dist_packets(
                1_000,
                SimTime::ZERO,
                SimTime::from_millis(5_000),
                &constrained,
                &mut rng_a,
            );
            let u = dist_packets(
                1_000,
                SimTime::ZERO,
                SimTime::from_millis(5_000),
                &unconstrained,
                &mut rng_b,
            );
            c_sum += bucket_max(&c);
            u_sum += bucket_max(&u);
        }
        assert!(
            u_sum > c_sum,
            "unconstrained traces should be burstier: constrained {c_sum}, unconstrained {u_sum}"
        );
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let params = DistPacketsParams::default();
        let gen = |seed: u64| {
            let mut rng = SimRng::new(seed);
            dist_packets(
                500,
                SimTime::ZERO,
                SimTime::from_millis(1_000),
                &params,
                &mut rng,
            )
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }

    #[test]
    fn degenerate_interval_does_not_hang_or_lose_packets() {
        let mut rng = rng();
        let ts = dist_packets(
            50,
            SimTime::from_nanos(0),
            SimTime::from_nanos(500),
            &DistPacketsParams::default(),
            &mut rng,
        );
        assert_eq!(ts.len(), 50);
        assert!(ts.iter().all(|t| t.as_nanos() <= 500));
    }

    #[test]
    fn packets_for_rate_matches_bandwidth() {
        // 12 Mbps, 1500-byte packets, 5 s -> 5000 packets.
        assert_eq!(
            packets_for_rate(12_000_000, 1500, SimDuration::from_secs(5)),
            5_000
        );
        assert_eq!(packets_for_rate(0, 1500, SimDuration::from_secs(5)), 0);
    }
}
