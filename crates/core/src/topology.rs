//! Topology genomes: what the GA evolves when it hunts multi-bottleneck
//! (parking-lot) pathologies.
//!
//! A [`TopologyGenome`] describes a complete multi-hop experiment: a chain
//! of hops (each with its own rate, propagation delay, buffer and optional
//! AQM discipline), a set of flows with per-flow paths over that chain
//! (flow 0 is the always-on incumbent crossing every hop; extra flows can
//! enter and exit at interior hops — the parking lot), and an optional
//! cross-traffic sub-genome injected at the head of the chain. Mutation
//! perturbs hop parameters, adds/removes hops, shifts the bottleneck along
//! the chain, re-routes and re-schedules the competing flows, and mutates
//! the traffic sub-genome; crossover splices hop chains and crosses the
//! traffic sub-genomes.

use crate::genome::{Genome, TrafficGenome};
use crate::scenario::FlowGene;
use ccfuzz_cca::CcaKind;
use ccfuzz_netsim::link::LinkModel;
use ccfuzz_netsim::queue::{Qdisc, QueueCapacity};
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::topology::{HopConfig, HopRange, Topology};
use serde::{Deserialize, Serialize};

/// Evolved hop-rate range, bracketing the paper's 12 Mbps bottleneck.
const RATE_RANGE_BPS: (u64, u64) = (3_000_000, 16_000_000);
/// Evolved per-hop one-way propagation-delay range, milliseconds.
const DELAY_RANGE_MS: (u64, u64) = (2, 25);
/// Evolved per-hop gateway buffer range, packets.
const BUFFER_RANGE_PKTS: (usize, usize) = (20, 150);

/// One evolved hop: its bottleneck rate, delay, buffer and discipline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopGene {
    /// Bottleneck rate of the hop's link, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay of the hop.
    pub delay: SimDuration,
    /// Gateway buffer, packets.
    pub buffer_packets: usize,
    /// Optional AQM discipline (`None` = the paper's drop-tail).
    pub qdisc: Option<Qdisc>,
}

impl HopGene {
    /// Generates a random hop gene.
    pub fn generate(rng: &mut SimRng) -> Self {
        let buffer = rng.gen_range_usize(BUFFER_RANGE_PKTS.0, BUFFER_RANGE_PKTS.1 + 1);
        HopGene {
            rate_bps: rng.gen_range_u64(RATE_RANGE_BPS.0, RATE_RANGE_BPS.1 + 1),
            delay: SimDuration::from_millis(
                rng.gen_range_u64(DELAY_RANGE_MS.0, DELAY_RANGE_MS.1 + 1),
            ),
            buffer_packets: buffer,
            // Mostly drop-tail: the chain itself is the new axis; AQM hops
            // ride along in a minority of genomes.
            qdisc: if rng.gen_bool(0.25) {
                Some(random_qdisc(buffer, rng))
            } else {
                None
            },
        }
    }

    /// The simulator hop this gene describes.
    pub fn to_config(&self) -> HopConfig {
        HopConfig {
            link: LinkModel::FixedRate {
                rate_bps: self.rate_bps,
            },
            propagation_delay: self.delay,
            queue_capacity: QueueCapacity::Packets(self.buffer_packets),
            qdisc: self.qdisc.unwrap_or(Qdisc::DropTail),
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_bps == 0 {
            return Err("hop gene rate must be positive".into());
        }
        if self.buffer_packets == 0 {
            return Err("hop gene buffer must admit at least one packet".into());
        }
        if let Some(qdisc) = &self.qdisc {
            qdisc.validate()?;
        }
        Ok(())
    }
}

/// A random RED or CoDel discipline scaled to a `buffer`-packet gateway.
fn random_qdisc(buffer: usize, rng: &mut SimRng) -> Qdisc {
    if rng.gen_bool(0.5) {
        let min = rng.gen_range_usize(2, (buffer / 2).max(3));
        let span = rng.gen_range_usize(5, buffer.max(6));
        Qdisc::Red {
            min_thresh: min,
            max_thresh: min + span,
            mark_probability: rng.gen_range_f64(0.05, 1.0),
        }
    } else {
        Qdisc::CoDel {
            target: SimDuration::from_millis(rng.gen_range_u64(1, 50)),
            interval: SimDuration::from_millis(rng.gen_range_u64(20, 400)),
        }
    }
}

/// One evolved flow plus its path over the chain.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathedFlowGene {
    /// The flow's algorithm and start/stop schedule.
    pub flow: FlowGene,
    /// The contiguous hop range the flow's packets traverse.
    pub path: HopRange,
}

/// A multi-hop topology genome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyGenome {
    /// The evolved hop chain (at least one, at most `max_hops`).
    pub hops: Vec<HopGene>,
    /// The flows crossing the chain. Flow 0 is the always-on incumbent on
    /// the full path (the algorithm under test); later flows may take
    /// sub-paths (parking-lot competitors).
    pub flows: Vec<PathedFlowGene>,
    /// Scenario duration.
    pub duration: SimDuration,
    /// Maximum number of hops mutation may grow to.
    pub max_hops: usize,
    /// Maximum number of concurrent flows mutation may grow to.
    pub max_flows: usize,
    /// Algorithms mutation may draw from when swapping or adding flows.
    pub cca_pool: Vec<CcaKind>,
    /// Optional unresponsive cross traffic injected at the head of the
    /// chain (hop 0); `None` disables cross traffic entirely.
    pub traffic: Option<TrafficGenome>,
}

impl TopologyGenome {
    /// Generates a fresh random topology scenario: `hops` hops, an
    /// always-on primary `cca` flow over the full chain, one short
    /// competitor on a random sub-path, and (when `traffic_max_packets >
    /// 0`) a random cross-traffic helper at the head of the chain.
    pub fn generate(
        cca: CcaKind,
        hops: usize,
        duration: SimDuration,
        traffic_max_packets: usize,
        cca_pool: &[CcaKind],
        rng: &mut SimRng,
    ) -> Self {
        let hops = hops.max(1);
        let hop_genes: Vec<HopGene> = (0..hops).map(|_| HopGene::generate(rng)).collect();
        let flows = vec![PathedFlowGene {
            flow: FlowGene::whole_run(cca),
            path: HopRange::full(hops),
        }];
        let pool: Vec<CcaKind> = if cca_pool.is_empty() {
            vec![cca]
        } else {
            cca_pool.to_vec()
        };
        let traffic = if traffic_max_packets > 0 {
            Some(TrafficGenome::generate(traffic_max_packets, duration, rng))
        } else {
            None
        };
        let mut genome = TopologyGenome {
            hops: hop_genes,
            flows,
            duration,
            max_hops: hops.max(2) + 2,
            max_flows: 3,
            cca_pool: pool,
            traffic,
        };
        // One parking-lot competitor so the initial population already
        // exercises sub-path routing.
        genome.add_flow(rng);
        genome
    }

    /// The number of hops in the chain.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The number of concurrent flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Index of the slowest (bottleneck) hop.
    pub fn bottleneck_hop(&self) -> usize {
        self.hops
            .iter()
            .enumerate()
            .min_by_key(|(_, h)| h.rate_bps)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The simulator topology this genome describes.
    pub fn to_topology(&self) -> Topology {
        Topology {
            hops: self.hops.iter().map(|h| h.to_config()).collect(),
            paths: self.flows.iter().map(|f| f.path).collect(),
        }
    }

    /// Renders the deterministic per-hop table of the chain (rates, delays,
    /// buffers, qdiscs, with the bottleneck hop flagged) followed by one
    /// line per flow naming its path. Shared by the corpus report, the
    /// `ccfuzz hunt` output and the `fig_parking_lot` binary, so every
    /// renderer of a topology genome shows the same columns.
    pub fn detail_table(&self) -> String {
        let rates: Vec<u64> = self.hops.iter().map(|h| h.rate_bps).collect();
        let delays: Vec<u64> = self.hops.iter().map(|h| h.delay.as_millis()).collect();
        let buffers: Vec<usize> = self.hops.iter().map(|h| h.buffer_packets).collect();
        let qdiscs: Vec<String> = self
            .hops
            .iter()
            .map(|h| {
                h.qdisc
                    .map(|q| q.label())
                    .unwrap_or_else(|| "droptail".to_string())
            })
            .collect();
        let mut out = ccfuzz_analysis::table::hop_table(&rates, &delays, &buffers, &qdiscs);
        for (i, f) in self.flows.iter().enumerate() {
            out.push_str(&format!(
                "flow {i}: {} hops {}..={}\n",
                f.flow.cca.name(),
                f.path.entry,
                f.path.exit
            ));
        }
        out
    }

    fn random_subpath(&self, rng: &mut SimRng) -> HopRange {
        let hops = self.hops.len();
        let entry = rng.gen_range_usize(0, hops);
        let exit = rng.gen_range_usize(entry, hops);
        HopRange::new(entry as u32, exit as u32)
    }

    fn random_time(&self, lo_frac: f64, hi_frac: f64, rng: &mut SimRng) -> SimTime {
        let span = self.duration.as_nanos() as f64;
        let lo = (span * lo_frac) as u64;
        let hi = ((span * hi_frac) as u64).max(lo + 1);
        SimTime::from_nanos(rng.gen_range_u64(lo, hi))
    }

    fn add_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() >= self.max_flows || self.cca_pool.is_empty() {
            return;
        }
        let cca = self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())];
        self.flows.push(PathedFlowGene {
            flow: FlowGene {
                cca,
                start: self.random_time(0.0, 0.5, rng),
                stop: None,
            },
            path: self.random_subpath(rng),
        });
    }

    fn remove_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() <= 1 {
            return;
        }
        // Never remove flow 0 (the incumbent under test).
        let idx = rng.gen_range_usize(1, self.flows.len());
        self.flows.remove(idx);
    }

    /// Inserts a fresh hop at a random position, shifting flow paths that
    /// span the insertion point so they keep crossing the same hops.
    fn add_hop(&mut self, rng: &mut SimRng) {
        if self.hops.len() >= self.max_hops {
            return;
        }
        let at = rng.gen_range_usize(0, self.hops.len() + 1);
        self.hops.insert(at, HopGene::generate(rng));
        let last = (self.hops.len() - 1) as u32;
        for (i, f) in self.flows.iter_mut().enumerate() {
            if i == 0 {
                f.path = HopRange::full(self.hops.len());
                continue;
            }
            if (f.path.entry as usize) >= at {
                f.path.entry += 1;
            }
            if (f.path.exit as usize) >= at {
                f.path.exit += 1;
            }
            f.path = f.path.clamped(last as usize + 1);
        }
    }

    /// A copy with hop `at` removed and every flow path remapped onto the
    /// shorter chain, or `None` when only one hop remains (a topology needs
    /// at least one hop). Used both by mutation and — deterministically,
    /// hop by hop — by the corpus minimizer's hop-drop pass.
    pub fn without_hop(&self, at: usize) -> Option<TopologyGenome> {
        if self.hops.len() <= 1 || at >= self.hops.len() {
            return None;
        }
        let mut child = self.clone();
        child.hops.remove(at);
        let hops = child.hops.len();
        for (i, f) in child.flows.iter_mut().enumerate() {
            if i == 0 {
                f.path = HopRange::full(hops);
                continue;
            }
            if (f.path.entry as usize) > at {
                f.path.entry -= 1;
            }
            if (f.path.exit as usize) > at && f.path.exit > 0 {
                f.path.exit -= 1;
            }
            f.path = f.path.clamped(hops);
        }
        Some(child)
    }

    /// Removes a random hop (keeping at least one), remapping flow paths.
    fn remove_hop(&mut self, rng: &mut SimRng) {
        if self.hops.len() <= 1 {
            return;
        }
        let at = rng.gen_range_usize(0, self.hops.len());
        if let Some(child) = self.without_hop(at) {
            *self = child;
        }
    }

    /// Moves the bottleneck along the chain by swapping the slowest hop's
    /// rate with a random other hop's rate.
    fn shift_bottleneck(&mut self, rng: &mut SimRng) {
        if self.hops.len() < 2 {
            return;
        }
        let slowest = self.bottleneck_hop();
        let other = rng.gen_range_usize(0, self.hops.len());
        let (a, b) = (self.hops[slowest].rate_bps, self.hops[other].rate_bps);
        self.hops[slowest].rate_bps = b;
        self.hops[other].rate_bps = a;
    }

    fn perturb_hop(&mut self, rng: &mut SimRng) {
        let idx = rng.gen_range_usize(0, self.hops.len());
        let hop = &mut self.hops[idx];
        match rng.gen_range_usize(0, 4) {
            0 => hop.rate_bps = rng.gen_range_u64(RATE_RANGE_BPS.0, RATE_RANGE_BPS.1 + 1),
            1 => {
                hop.delay = SimDuration::from_millis(
                    rng.gen_range_u64(DELAY_RANGE_MS.0, DELAY_RANGE_MS.1 + 1),
                )
            }
            2 => {
                hop.buffer_packets =
                    rng.gen_range_usize(BUFFER_RANGE_PKTS.0, BUFFER_RANGE_PKTS.1 + 1)
            }
            _ => {
                hop.qdisc = if hop.qdisc.is_some() {
                    None
                } else {
                    Some(random_qdisc(hop.buffer_packets, rng))
                }
            }
        }
    }

    fn perturb_flow(&mut self, rng: &mut SimRng) {
        if self.flows.len() < 2 {
            self.add_flow(rng);
            return;
        }
        let idx = rng.gen_range_usize(1, self.flows.len());
        match rng.gen_range_usize(0, 3) {
            // Re-route over a fresh sub-path.
            0 => self.flows[idx].path = self.random_subpath(rng),
            // Re-schedule.
            1 => {
                self.flows[idx].flow.start = self.random_time(0.0, 0.5, rng);
                self.flows[idx].flow.stop = if rng.gen_bool(0.5) {
                    None
                } else {
                    let start = self.flows[idx].flow.start;
                    let earliest = start + self.duration.div(10).max(SimDuration::from_millis(100));
                    Some(
                        self.random_time(0.5, 1.0, rng)
                            .max(earliest)
                            .min(SimTime::ZERO + self.duration),
                    )
                };
            }
            // Swap the algorithm.
            _ => {
                self.flows[idx].flow.cca =
                    self.cca_pool[rng.gen_range_usize(0, self.cca_pool.len())]
            }
        }
    }
}

impl Genome for TopologyGenome {
    fn mutate(&self, rng: &mut SimRng) -> Self {
        let mut child = self.clone();
        match rng.gen_range_usize(0, 8) {
            0 | 1 => child.perturb_hop(rng),
            2 => child.add_hop(rng),
            3 => child.remove_hop(rng),
            4 => child.shift_bottleneck(rng),
            5 => child.perturb_flow(rng),
            6 => {
                if rng.gen_bool(0.5) {
                    child.add_flow(rng);
                } else {
                    child.remove_flow(rng);
                }
            }
            _ => {
                if let Some(traffic) = &child.traffic {
                    child.traffic = Some(traffic.mutate(rng));
                } else {
                    child.perturb_hop(rng);
                }
            }
        }
        child
    }

    fn crossover(&self, other: &Self, rng: &mut SimRng) -> Option<Self> {
        // Splice hop chains: a prefix of one parent, a suffix of the other,
        // clamped to [1, max_hops]. Flows come from `self`, their paths
        // re-clamped to the child chain.
        let (a, b) = if rng.gen_bool(0.5) {
            (self, other)
        } else {
            (other, self)
        };
        let split_a = rng.gen_range_usize(0, a.hops.len() + 1);
        let split_b = rng.gen_range_usize(0, b.hops.len() + 1);
        let mut hops: Vec<HopGene> = a.hops.iter().copied().take(split_a).collect();
        hops.extend(b.hops.iter().copied().skip(split_b));
        if hops.is_empty() {
            hops.push(a.hops[0]);
        }
        hops.truncate(self.max_hops.max(1));
        let hop_count = hops.len();
        let mut flows = self.flows.clone();
        for (i, f) in flows.iter_mut().enumerate() {
            f.path = if i == 0 {
                HopRange::full(hop_count)
            } else {
                f.path.clamped(hop_count)
            };
        }
        let traffic = match (&self.traffic, &other.traffic) {
            (Some(x), Some(y)) => x.crossover(y, rng),
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (None, None) => None,
        };
        Some(TopologyGenome {
            hops,
            flows,
            duration: self.duration,
            max_hops: self.max_hops,
            max_flows: self.max_flows,
            cca_pool: self.cca_pool.clone(),
            traffic,
        })
    }

    fn packet_count(&self) -> usize {
        self.traffic.as_ref().map(|t| t.packet_count()).unwrap_or(0)
    }

    fn validate(&self) -> Result<(), String> {
        if self.hops.is_empty() {
            return Err("topology genome has no hops".into());
        }
        if self.hops.len() > self.max_hops.max(1) {
            return Err(format!(
                "topology genome has {} hops, cap is {}",
                self.hops.len(),
                self.max_hops
            ));
        }
        for (i, hop) in self.hops.iter().enumerate() {
            hop.validate().map_err(|e| format!("hop {i}: {e}"))?;
        }
        if self.flows.is_empty() {
            return Err("topology genome has no flows".into());
        }
        if self.flows.len() > self.max_flows.max(1) {
            return Err(format!(
                "topology genome has {} flows, cap is {}",
                self.flows.len(),
                self.max_flows
            ));
        }
        let primary = &self.flows[0];
        if primary.flow.start != SimTime::ZERO || primary.flow.stop.is_some() {
            return Err("flow 0 must be the always-on incumbent".into());
        }
        if primary.path != HopRange::full(self.hops.len()) {
            return Err("flow 0 must traverse the full chain".into());
        }
        for (i, f) in self.flows.iter().enumerate() {
            f.path
                .validate(self.hops.len())
                .map_err(|e| format!("flow {i}: {e}"))?;
            if f.flow.start.as_nanos() > self.duration.as_nanos() {
                return Err(format!("flow {i} starts beyond the scenario duration"));
            }
            if let Some(stop) = f.flow.stop {
                if stop <= f.flow.start {
                    return Err(format!("flow {i} stops before it starts"));
                }
            }
        }
        if let Some(traffic) = &self.traffic {
            traffic.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimDuration = SimDuration::from_secs(5);

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    fn base() -> TopologyGenome {
        let mut rng = rng();
        TopologyGenome::generate(
            CcaKind::Reno,
            3,
            DUR,
            500,
            &[CcaKind::Reno, CcaKind::Cubic],
            &mut rng,
        )
    }

    #[test]
    fn generation_produces_valid_parking_lots() {
        let g = base();
        g.validate().unwrap();
        assert_eq!(g.hop_count(), 3);
        assert!(g.flow_count() >= 1);
        assert_eq!(g.flows[0].flow.cca, CcaKind::Reno);
        assert_eq!(g.flows[0].path, HopRange::full(3));
        assert!(g.traffic.is_some());
        assert!(g.bottleneck_hop() < 3);
        let topo = g.to_topology();
        topo.validate().unwrap();
        assert_eq!(topo.hop_count(), 3);
    }

    #[test]
    fn mutation_keeps_invariants_and_explores_hops() {
        let g = base();
        let mut rng = rng();
        let mut current = g.clone();
        let mut saw_hop_count_change = false;
        let mut saw_rate_change = false;
        let mut saw_path_change = false;
        for _ in 0..300 {
            let next = current.mutate(&mut rng);
            next.validate().unwrap();
            assert!((1..=next.max_hops).contains(&next.hop_count()));
            if next.hop_count() != current.hop_count() {
                saw_hop_count_change = true;
            }
            if next.hop_count() == current.hop_count()
                && next
                    .hops
                    .iter()
                    .zip(&current.hops)
                    .any(|(a, b)| a.rate_bps != b.rate_bps)
            {
                saw_rate_change = true;
            }
            if next.flow_count() == current.flow_count()
                && next
                    .flows
                    .iter()
                    .zip(&current.flows)
                    .skip(1)
                    .any(|(a, b)| a.path != b.path)
            {
                saw_path_change = true;
            }
            current = next;
        }
        assert!(saw_hop_count_change, "mutation should add/remove hops");
        assert!(saw_rate_change, "mutation should perturb hop rates");
        assert!(saw_path_change, "mutation should re-route flows");
    }

    #[test]
    fn bottleneck_shift_moves_the_slowest_hop() {
        let mut g = base();
        g.hops[0].rate_bps = 4_000_000;
        g.hops[1].rate_bps = 12_000_000;
        g.hops[2].rate_bps = 10_000_000;
        assert_eq!(g.bottleneck_hop(), 0);
        let mut rng = rng();
        let mut moved = false;
        for _ in 0..50 {
            let mut child = g.clone();
            child.shift_bottleneck(&mut rng);
            child.validate().unwrap();
            // The multiset of rates is preserved; only positions move.
            let mut a: Vec<u64> = g.hops.iter().map(|h| h.rate_bps).collect();
            let mut b: Vec<u64> = child.hops.iter().map(|h| h.rate_bps).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            if child.bottleneck_hop() != 0 {
                moved = true;
            }
        }
        assert!(moved, "the bottleneck must move along the chain");
    }

    #[test]
    fn crossover_splices_chains_and_keeps_flow_zero_full_path() {
        let mut rng = rng();
        let a = base();
        let b = TopologyGenome::generate(
            CcaKind::Reno,
            5,
            DUR,
            300,
            &[CcaKind::Reno, CcaKind::Bbr],
            &mut rng,
        );
        for _ in 0..40 {
            let child = a.crossover(&b, &mut rng).unwrap();
            child.validate().unwrap();
            assert_eq!(child.flows[0].path, HopRange::full(child.hop_count()));
            for hop in &child.hops {
                assert!(
                    a.hops.contains(hop) || b.hops.contains(hop),
                    "child hops come from a parent"
                );
            }
        }
    }

    #[test]
    fn validate_rejects_broken_genomes() {
        let mut g = base();
        g.hops.clear();
        assert!(g.validate().is_err());

        let mut g = base();
        g.hops[1].rate_bps = 0;
        assert!(g.validate().unwrap_err().contains("hop 1"));

        let mut g = base();
        g.flows[0].path = HopRange::new(0, 0);
        assert!(g.validate().unwrap_err().contains("full chain"));

        let mut g = base();
        g.flows[0].flow.stop = Some(SimTime::from_secs_f64(1.0));
        assert!(g.validate().unwrap_err().contains("always-on"));

        let mut g = base();
        if g.flows.len() < 2 {
            g.flows.push(g.flows[0]);
            g.flows[1].flow.start = SimTime::from_millis(10);
            g.flows[1].flow.stop = None;
        }
        g.flows[1].path = HopRange::new(1, 9);
        assert!(g.validate().is_err());
    }

    #[test]
    fn add_remove_hop_remaps_paths_consistently() {
        let mut rng = rng();
        let mut g = base();
        // Pin a short flow to hop 1 only.
        while g.flows.len() < 2 {
            g.add_flow(&mut rng);
        }
        g.flows[1].path = HopRange::new(1, 1);
        for _ in 0..100 {
            let mut child = g.clone();
            if rng.gen_bool(0.5) {
                child.add_hop(&mut rng);
            } else {
                child.remove_hop(&mut rng);
            }
            child.validate().unwrap();
        }
    }

    #[test]
    fn serde_roundtrip() {
        let g = base();
        let json = serde_json::to_string(&g).unwrap();
        let back: TopologyGenome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
