//! Realism scoring (§5 / Figure 5 of the paper).
//!
//! Instead of heuristics at generation time, a trace's *realism* can be
//! judged by running several different CCAs over it: a trace under which at
//! least a few algorithms achieve good throughput is plausibly something a
//! real network could do, whereas a trace that starves every algorithm (e.g.
//! "no bandwidth for the first four seconds") is trivially adversarial and
//! uninteresting. Figure 5 shows the accepted and rejected service curves
//! under this criterion.

use crate::genome::LinkGenome;
use ccfuzz_cca::CcaKind;
use ccfuzz_netsim::config::SimConfig;
use ccfuzz_netsim::link::LinkModel;
use ccfuzz_netsim::sim::run_simulation;
use ccfuzz_netsim::trace::TrafficTrace;
use serde::{Deserialize, Serialize};

/// Realism assessment of one trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RealismOutcome {
    /// Normalised goodput (goodput / trace average rate) per CCA, in the
    /// order of [`RealismScorer::ccas`].
    pub normalized_goodput: Vec<(String, f64)>,
    /// The realism score: the mean of the top `top_k` per-CCA normalised
    /// goodputs ("at least a few algorithms perform well").
    pub score: f64,
    /// Whether the trace clears the acceptance threshold.
    pub accepted: bool,
}

/// Scores traces by aggregate CCA performance.
#[derive(Clone, Debug)]
pub struct RealismScorer {
    /// The algorithms run over each trace.
    pub ccas: Vec<CcaKind>,
    /// Base simulation settings (duration, delay, queue...).
    pub base: SimConfig,
    /// How many of the best-performing CCAs are averaged into the score.
    pub top_k: usize,
    /// Minimum score for a trace to be considered realistic.
    pub threshold: f64,
}

impl RealismScorer {
    /// A scorer over Reno, CUBIC, BBR and Vegas. A trace is "realistic" when
    /// the two best algorithms average at least 30 % of the trace's average
    /// bandwidth — unconstrained traces (Figure 5) are bursty enough that even
    /// plausible ones rarely let a CCA reach half of the average rate over a
    /// short 5-second run.
    pub fn standard(base: SimConfig) -> Self {
        RealismScorer {
            ccas: vec![CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas],
            base,
            top_k: 2,
            threshold: 0.3,
        }
    }

    /// Scores a link genome by running every configured CCA over it.
    pub fn score_link(&self, genome: &LinkGenome) -> RealismOutcome {
        let reference = genome.average_rate_bps(self.base.mss).max(1.0);
        let mut normalized: Vec<(String, f64)> = Vec::with_capacity(self.ccas.len());
        for cca in &self.ccas {
            let mut cfg = self.base.clone();
            cfg.record_events = false;
            cfg.duration = genome.duration;
            cfg.link = LinkModel::TraceDriven {
                trace: genome.to_trace(),
            };
            cfg.cross_traffic = TrafficTrace::empty(genome.duration);
            let result = run_simulation(cfg.clone(), cca.build(cfg.initial_cwnd));
            let goodput = result.average_goodput_bps(self.base.mss);
            normalized.push((cca.name().to_string(), (goodput / reference).min(1.5)));
        }
        let mut sorted: Vec<f64> = normalized.iter().map(|(_, v)| *v).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.top_k.clamp(1, sorted.len().max(1));
        let score = if sorted.is_empty() {
            0.0
        } else {
            sorted[..k].iter().sum::<f64>() / k as f64
        };
        RealismOutcome {
            normalized_goodput: normalized,
            score,
            accepted: score >= self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::rng::SimRng;
    use ccfuzz_netsim::time::{SimDuration, SimTime};

    fn base() -> SimConfig {
        let mut cfg = SimConfig::short_default();
        cfg.duration = SimDuration::from_secs(3);
        cfg
    }

    fn scorer() -> RealismScorer {
        let mut s = RealismScorer::standard(base());
        // Keep the test fast: two CCAs are enough to exercise the logic.
        s.ccas = vec![CcaKind::Reno, CcaKind::Cubic];
        s
    }

    #[test]
    fn smooth_trace_is_accepted() {
        let mut rng = SimRng::new(5);
        // A well-behaved 12 Mbps trace generated with the constrained DIST_PACKETS.
        let genome = LinkGenome::generate(
            3 * 1036, // ≈ 12 Mbps of 1448-byte packets for 3 s
            SimDuration::from_secs(3),
            SimDuration::from_millis(50),
            &mut rng,
        );
        let outcome = scorer().score_link(&genome);
        assert!(outcome.score > 0.5, "smooth trace score {}", outcome.score);
        assert!(outcome.accepted);
        assert_eq!(outcome.normalized_goodput.len(), 2);
    }

    #[test]
    fn starving_trace_is_rejected() {
        // All capacity in the first 100 ms, nothing afterwards: every CCA
        // starves, so the trace is unrealistic by this criterion.
        let timestamps: Vec<SimTime> = (0..3_000)
            .map(|i| SimTime::from_nanos(1 + i * 30_000))
            .collect();
        let genome = LinkGenome {
            timestamps,
            duration: SimDuration::from_secs(3),
            k_agg: SimDuration::from_millis(50),
        };
        let outcome = scorer().score_link(&genome);
        assert!(
            outcome.score < 0.5,
            "starving trace score {}",
            outcome.score
        );
        assert!(!outcome.accepted);
    }
}
