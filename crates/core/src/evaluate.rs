//! Genome evaluation: run the simulator on a trace and score the outcome.
//!
//! This is the "fitness function" of the genetic algorithm (§3.4). Every
//! evaluation is a fresh, deterministic simulation — the property §3.6 of the
//! paper identifies as the reason to prefer simulation over emulation.

use crate::genome::{LinkGenome, TrafficGenome};
use crate::scenario::ScenarioGenome;
use crate::scoring::{
    performance_score_reusing, total_score, trace_score, ScoreScratch, ScoringConfig,
    TraceScoreInputs,
};
use crate::topology::TopologyGenome;
use crate::workload::WorkloadGenome;
use ccfuzz_cca::{CcaDispatch, CcaKind};
use ccfuzz_netsim::config::SimConfig;
use ccfuzz_netsim::link::LinkModel;
use ccfuzz_netsim::sim::{
    run_multi_flow_simulation_pooled, run_workload_simulation_pooled, FlowSpec, SimResult,
    SimScratch, Simulation,
};
use ccfuzz_netsim::simtrace::{SimTrace, DEFAULT_TRACE_CAPACITY};
use ccfuzz_netsim::trace::{LinkTrace, TrafficTrace};
use serde::{Deserialize, Serialize};

/// Everything the genetic algorithm needs to know about one evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Combined fitness (higher = fitter adversarial trace).
    pub score: f64,
    /// Performance component of the score.
    pub performance_score: f64,
    /// Trace (minimality) component of the score.
    pub trace_score: f64,
    /// Packets the CCA flow delivered.
    pub delivered_packets: u64,
    /// Packets the CCA flow transmitted (including retransmissions).
    pub sent_packets: u64,
    /// Retransmissions.
    pub retransmissions: u64,
    /// RTO expirations.
    pub rto_count: u64,
    /// CCA packets dropped at the bottleneck queue.
    pub queue_drops: u64,
    /// Cross-traffic packets dropped at the bottleneck queue.
    pub cross_dropped: u64,
    /// Average goodput of the CCA flow, bits per second.
    pub goodput_bps: f64,
}

impl EvalOutcome {
    /// Scores a finished simulation. Public so that replay/corpus tooling can
    /// derive an outcome from a [`SimResult`] it already has (avoiding a
    /// second simulation of the same genome).
    pub fn from_result(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        trace_inputs: Option<TraceScoreInputs>,
    ) -> Self {
        Self::from_result_reusing(
            scoring,
            result,
            mss,
            trace_inputs,
            &mut ScoreScratch::default(),
        )
    }

    /// [`EvalOutcome::from_result`] with reusable scoring buffers (identical
    /// result; a warm evaluator allocates nothing while scoring).
    pub fn from_result_reusing(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        trace_inputs: Option<TraceScoreInputs>,
        score: &mut ScoreScratch,
    ) -> Self {
        let perf = performance_score_reusing(
            &scoring.objective,
            result,
            mss,
            scoring.reference_rate_bps,
            score,
        );
        let trace = trace_inputs.map(|t| trace_score(&t)).unwrap_or(0.0);
        EvalOutcome {
            score: total_score(scoring, perf, trace),
            performance_score: perf,
            trace_score: trace,
            delivered_packets: result.stats.flow().delivered_packets,
            sent_packets: result.stats.flow().transmissions,
            retransmissions: result.stats.flow().retransmissions,
            rto_count: result.stats.flow().rto_count,
            queue_drops: result.stats.flow().queue_drops,
            cross_dropped: result.stats.cross_dropped,
            goodput_bps: result.average_goodput_bps(mss),
        }
    }
}

/// Reusable per-worker evaluation state — the *generation arena*. The
/// fuzzer creates one per worker thread and threads it through every
/// evaluation that worker performs; after warm-up an entire genome
/// generation is evaluated through this one recycled allocation set:
/// the simulator arena (calendar, pool, endpoints, stat vectors, shared
/// timestamp buffers), the flow-spec buffer drained by each run, and the
/// scoring buffers. Scratch reuse never changes results — it only donates
/// capacity.
#[derive(Default)]
pub struct EvalScratch {
    /// Simulator arena (see [`SimScratch`]), instantiated for the
    /// enum-dispatched CCA type the evaluator builds.
    pub sim: SimScratch<CcaDispatch>,
    /// Recycled flow-spec buffer; refilled per genome and drained by the
    /// pooled simulation constructor.
    specs: Vec<FlowSpec<CcaDispatch>>,
    /// Recycled CCA-prototype buffer for workload genomes; refilled per
    /// genome and drained into the arena's clone pool.
    protos: Vec<CcaDispatch>,
    /// Recycled scoring buffers (windowed throughput counts/rates).
    score: ScoreScratch,
}

impl EvalScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An object that can evaluate genomes of type `G`.
pub trait Evaluator<G>: Sync + Send {
    /// Runs the scenario described by `genome` and scores it.
    fn evaluate(&self, genome: &G) -> EvalOutcome;

    /// Like [`Evaluator::evaluate`], but may reuse `scratch` buffers across
    /// calls. Must return exactly what `evaluate` returns; the default
    /// implementation ignores the scratch.
    fn evaluate_reusing(&self, genome: &G, scratch: &mut EvalScratch) -> EvalOutcome {
        let _ = scratch;
        self.evaluate(genome)
    }
}

/// The standard simulator-backed evaluator used by both fuzzing modes.
#[derive(Clone, Debug)]
pub struct SimEvaluator {
    /// Base simulation settings (duration, delays, queue, transport options).
    /// The link model and cross-traffic trace inside it are overwritten per
    /// genome.
    pub base: SimConfig,
    /// Which congestion control algorithm is under test.
    pub cca: CcaKind,
    /// How outcomes are scored.
    pub scoring: ScoringConfig,
    /// Fixed bottleneck rate used in traffic-fuzzing mode (12 Mbps in the paper).
    pub link_rate_bps: u64,
}

impl SimEvaluator {
    /// Creates an evaluator; `base.record_events` is forced off for speed
    /// (the GA only needs the aggregate statistics).
    pub fn new(
        mut base: SimConfig,
        cca: CcaKind,
        scoring: ScoringConfig,
        link_rate_bps: u64,
    ) -> Self {
        base.record_events = false;
        SimEvaluator {
            base,
            cca,
            scoring,
            link_rate_bps,
        }
    }

    fn traffic_cfg(&self, genome: &TrafficGenome, record_events: bool) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = record_events;
        cfg.link = LinkModel::FixedRate {
            rate_bps: self.link_rate_bps,
        };
        cfg.cross_traffic = genome.to_trace();
        cfg.duration = genome.duration;
        cfg
    }

    /// [`SimEvaluator::traffic_cfg`] building the cross-traffic trace in a
    /// recycled timestamp buffer from the arena (identical trace content).
    fn traffic_cfg_reusing(
        &self,
        genome: &TrafficGenome,
        sim: &mut SimScratch<CcaDispatch>,
    ) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = false;
        cfg.link = LinkModel::FixedRate {
            rate_bps: self.link_rate_bps,
        };
        let mut buf = sim.take_time_buf();
        buf.extend_from_slice(&genome.timestamps);
        cfg.cross_traffic = TrafficTrace::new(buf, genome.duration);
        cfg.duration = genome.duration;
        cfg
    }

    fn link_cfg(&self, genome: &LinkGenome, record_events: bool) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = record_events;
        cfg.link = LinkModel::TraceDriven {
            trace: genome.to_trace(),
        };
        cfg.cross_traffic = ccfuzz_netsim::trace::TrafficTrace::empty(genome.duration);
        cfg.duration = genome.duration;
        cfg
    }

    /// [`SimEvaluator::link_cfg`] building the service curve in a recycled
    /// timestamp buffer from the arena (identical trace content).
    fn link_cfg_reusing(
        &self,
        genome: &LinkGenome,
        sim: &mut SimScratch<CcaDispatch>,
    ) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = false;
        let mut buf = sim.take_time_buf();
        buf.extend_from_slice(&genome.timestamps);
        cfg.link = LinkModel::TraceDriven {
            trace: LinkTrace::new(buf, genome.duration),
        };
        cfg.cross_traffic = TrafficTrace::empty(genome.duration);
        cfg.duration = genome.duration;
        cfg
    }

    /// The scoring configuration used for a topology genome: the reference
    /// rate is capped at the evolved chain's bottleneck rate, so the
    /// throughput and collapse terms measure *underutilization of the
    /// capacity the chain actually offers*. Without the cap, the GA's
    /// steepest gradient would simply be "evolve slower hops" — a 3 Mbps
    /// chain scores >= 0.75 against the fixed 12 Mbps reference even when
    /// every flow behaves perfectly (the same reward hack the link genome
    /// prevents by fixing its total packet count). Public because corpus
    /// replay must score a stored topology finding exactly as the hunt did.
    pub fn topology_scoring(&self, genome: &TopologyGenome) -> ScoringConfig {
        let mut scoring = self.scoring;
        if let Some(bottleneck) = genome.hops.iter().map(|h| h.rate_bps).min() {
            scoring.reference_rate_bps = scoring.reference_rate_bps.min(bottleneck as f64);
        }
        scoring
    }

    fn topology_cfg(&self, genome: &TopologyGenome, record_events: bool) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = record_events;
        // The legacy single-bottleneck fields stay at the campaign defaults;
        // the genome's hop chain supersedes them.
        cfg.topology = Some(genome.to_topology());
        cfg.cross_traffic = genome
            .traffic
            .as_ref()
            .map(|t| t.to_trace())
            .unwrap_or_else(|| ccfuzz_netsim::trace::TrafficTrace::empty(genome.duration));
        cfg.duration = genome.duration;
        cfg
    }

    /// [`SimEvaluator::topology_cfg`] building the cross-traffic trace in a
    /// recycled timestamp buffer from the arena. The topology itself is
    /// still built fresh (its hop vector is small and genome-shaped).
    fn topology_cfg_reusing(
        &self,
        genome: &TopologyGenome,
        sim: &mut SimScratch<CcaDispatch>,
    ) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = false;
        cfg.topology = Some(genome.to_topology());
        cfg.cross_traffic = match &genome.traffic {
            Some(t) => {
                let mut buf = sim.take_time_buf();
                buf.extend_from_slice(&t.timestamps);
                TrafficTrace::new(buf, t.duration)
            }
            None => TrafficTrace::empty(genome.duration),
        };
        cfg.duration = genome.duration;
        cfg
    }

    fn topology_specs(
        &self,
        genome: &TopologyGenome,
        cfg: &SimConfig,
    ) -> Vec<FlowSpec<CcaDispatch>> {
        genome
            .flows
            .iter()
            .map(|f| FlowSpec {
                cc: f.flow.cca.build_dispatch(cfg.initial_cwnd),
                start: f.flow.start,
                stop: f.flow.stop,
            })
            .collect()
    }

    /// [`SimEvaluator::topology_specs`] into the arena's recycled spec buffer.
    fn fill_topology_specs(
        &self,
        genome: &TopologyGenome,
        cfg: &SimConfig,
        specs: &mut Vec<FlowSpec<CcaDispatch>>,
    ) {
        specs.clear();
        specs.extend(genome.flows.iter().map(|f| FlowSpec {
            cc: f.flow.cca.build_dispatch(cfg.initial_cwnd),
            start: f.flow.start,
            stop: f.flow.stop,
        }));
    }

    fn scenario_cfg(&self, genome: &ScenarioGenome, record_events: bool) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = record_events;
        cfg.link = LinkModel::FixedRate {
            rate_bps: self.link_rate_bps,
        };
        cfg.cross_traffic = genome
            .traffic
            .as_ref()
            .map(|t| t.to_trace())
            .unwrap_or_else(|| ccfuzz_netsim::trace::TrafficTrace::empty(genome.duration));
        cfg.duration = genome.duration;
        // AQM scenarios carry the gateway in the genome; fairness scenarios
        // leave it as the campaign configured (drop-tail today).
        if let Some(gene) = &genome.qdisc {
            cfg.qdisc = gene.discipline;
            cfg.ecn_enabled = gene.ecn;
        }
        cfg
    }

    /// [`SimEvaluator::scenario_cfg`] building the cross-traffic trace in a
    /// recycled timestamp buffer from the arena (identical trace content).
    fn scenario_cfg_reusing(
        &self,
        genome: &ScenarioGenome,
        sim: &mut SimScratch<CcaDispatch>,
    ) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = false;
        cfg.link = LinkModel::FixedRate {
            rate_bps: self.link_rate_bps,
        };
        cfg.cross_traffic = match &genome.traffic {
            Some(t) => {
                let mut buf = sim.take_time_buf();
                buf.extend_from_slice(&t.timestamps);
                TrafficTrace::new(buf, t.duration)
            }
            None => TrafficTrace::empty(genome.duration),
        };
        cfg.duration = genome.duration;
        if let Some(gene) = &genome.qdisc {
            cfg.qdisc = gene.discipline;
            cfg.ecn_enabled = gene.ecn;
        }
        cfg
    }

    /// The single-flow spec for a prepared configuration, with the CCA under
    /// test in enum-dispatched form (no virtual calls on the per-ACK path).
    fn single_flow_spec(&self, cfg: &SimConfig) -> Vec<FlowSpec<CcaDispatch>> {
        vec![FlowSpec {
            cc: self.cca.build_dispatch(cfg.initial_cwnd),
            start: cfg.flow_start,
            stop: None,
        }]
    }

    /// [`SimEvaluator::single_flow_spec`] into the arena's recycled spec
    /// buffer.
    fn fill_single_flow_spec(&self, cfg: &SimConfig, specs: &mut Vec<FlowSpec<CcaDispatch>>) {
        specs.clear();
        specs.push(FlowSpec {
            cc: self.cca.build_dispatch(cfg.initial_cwnd),
            start: cfg.flow_start,
            stop: None,
        });
    }

    fn scenario_specs(
        &self,
        genome: &ScenarioGenome,
        cfg: &SimConfig,
    ) -> Vec<FlowSpec<CcaDispatch>> {
        genome
            .flows
            .iter()
            .map(|f| FlowSpec {
                cc: f.cca.build_dispatch(cfg.initial_cwnd),
                start: f.start,
                stop: f.stop,
            })
            .collect()
    }

    /// [`SimEvaluator::scenario_specs`] into the arena's recycled spec buffer.
    fn fill_scenario_specs(
        &self,
        genome: &ScenarioGenome,
        cfg: &SimConfig,
        specs: &mut Vec<FlowSpec<CcaDispatch>>,
    ) {
        specs.clear();
        specs.extend(genome.flows.iter().map(|f| FlowSpec {
            cc: f.cca.build_dispatch(cfg.initial_cwnd),
            start: f.start,
            stop: f.stop,
        }));
    }

    /// Runs a full simulation for a traffic genome, returning the raw result
    /// (used by figure binaries that need the detailed statistics, with event
    /// recording re-enabled).
    pub fn simulate_traffic(&self, genome: &TrafficGenome, record_events: bool) -> SimResult {
        let cfg = self.traffic_cfg(genome, record_events);
        let specs = self.single_flow_spec(&cfg);
        Simulation::new_multi(cfg, specs).run()
    }

    /// [`SimEvaluator::simulate_traffic`] with reusable simulator storage.
    pub fn simulate_traffic_reusing(
        &self,
        genome: &TrafficGenome,
        scratch: &mut EvalScratch,
    ) -> SimResult {
        let cfg = self.traffic_cfg_reusing(genome, &mut scratch.sim);
        self.fill_single_flow_spec(&cfg, &mut scratch.specs);
        run_multi_flow_simulation_pooled(cfg, &mut scratch.specs, &mut scratch.sim)
    }

    /// Runs a full simulation for a link genome.
    pub fn simulate_link(&self, genome: &LinkGenome, record_events: bool) -> SimResult {
        let cfg = self.link_cfg(genome, record_events);
        let specs = self.single_flow_spec(&cfg);
        Simulation::new_multi(cfg, specs).run()
    }

    /// [`SimEvaluator::simulate_link`] with reusable simulator storage.
    pub fn simulate_link_reusing(
        &self,
        genome: &LinkGenome,
        scratch: &mut EvalScratch,
    ) -> SimResult {
        let cfg = self.link_cfg_reusing(genome, &mut scratch.sim);
        self.fill_single_flow_spec(&cfg, &mut scratch.specs);
        run_multi_flow_simulation_pooled(cfg, &mut scratch.specs, &mut scratch.sim)
    }

    /// Runs a full multi-flow simulation for a scenario genome: every flow
    /// gene becomes its own sender with its own enum-dispatched CC instance
    /// (so mixed-CCA scenarios like BBR vs. Reno work), sharing the
    /// fixed-rate bottleneck with the optional cross-traffic sub-genome.
    pub fn simulate_scenario(&self, genome: &ScenarioGenome, record_events: bool) -> SimResult {
        let cfg = self.scenario_cfg(genome, record_events);
        let specs = self.scenario_specs(genome, &cfg);
        Simulation::new_multi(cfg, specs).run()
    }

    /// [`SimEvaluator::simulate_scenario`] with reusable simulator storage.
    pub fn simulate_scenario_reusing(
        &self,
        genome: &ScenarioGenome,
        scratch: &mut EvalScratch,
    ) -> SimResult {
        let cfg = self.scenario_cfg_reusing(genome, &mut scratch.sim);
        self.fill_scenario_specs(genome, &cfg, &mut scratch.specs);
        run_multi_flow_simulation_pooled(cfg, &mut scratch.specs, &mut scratch.sim)
    }

    /// Runs a full multi-hop simulation for a topology genome: the genome's
    /// hop chain becomes the simulator topology, every flow gene becomes
    /// its own sender routed over its path, and the optional cross-traffic
    /// sub-genome injects at the head of the chain.
    pub fn simulate_topology(&self, genome: &TopologyGenome, record_events: bool) -> SimResult {
        let cfg = self.topology_cfg(genome, record_events);
        let specs = self.topology_specs(genome, &cfg);
        Simulation::new_multi(cfg, specs).run()
    }

    /// [`SimEvaluator::simulate_topology`] with reusable simulator storage.
    pub fn simulate_topology_reusing(
        &self,
        genome: &TopologyGenome,
        scratch: &mut EvalScratch,
    ) -> SimResult {
        let cfg = self.topology_cfg_reusing(genome, &mut scratch.sim);
        self.fill_topology_specs(genome, &cfg, &mut scratch.specs);
        run_multi_flow_simulation_pooled(cfg, &mut scratch.specs, &mut scratch.sim)
    }

    fn workload_cfg(&self, genome: &WorkloadGenome, record_events: bool) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.record_events = record_events;
        cfg.link = LinkModel::FixedRate {
            rate_bps: self.link_rate_bps,
        };
        cfg.cross_traffic = ccfuzz_netsim::trace::TrafficTrace::empty(genome.duration);
        cfg.duration = genome.duration;
        cfg.arrivals = Some(genome.arrivals);
        cfg
    }

    /// The static background flows (elephants) of a workload genome, each
    /// with its own enum-dispatched CC instance.
    fn workload_specs(
        &self,
        genome: &WorkloadGenome,
        cfg: &SimConfig,
    ) -> Vec<FlowSpec<CcaDispatch>> {
        genome
            .elephants
            .iter()
            .map(|f| FlowSpec {
                cc: f.cca.build_dispatch(cfg.initial_cwnd),
                start: f.start,
                stop: f.stop,
            })
            .collect()
    }

    /// [`SimEvaluator::workload_specs`] into the arena's recycled spec buffer.
    fn fill_workload_specs(
        &self,
        genome: &WorkloadGenome,
        cfg: &SimConfig,
        specs: &mut Vec<FlowSpec<CcaDispatch>>,
    ) {
        specs.clear();
        specs.extend(genome.elephants.iter().map(|f| FlowSpec {
            cc: f.cca.build_dispatch(cfg.initial_cwnd),
            start: f.start,
            stop: f.stop,
        }));
    }

    /// The CCA prototypes dynamic arrivals clone from, one per pool entry.
    fn fill_workload_protos(
        &self,
        genome: &WorkloadGenome,
        cfg: &SimConfig,
        protos: &mut Vec<CcaDispatch>,
    ) {
        protos.clear();
        protos.extend(
            genome
                .cca_pool
                .iter()
                .map(|cca| cca.build_dispatch(cfg.initial_cwnd)),
        );
    }

    /// Runs a full dynamic-arrival simulation for a workload genome: the
    /// elephants become static flows, the arrival genes drive the flow-churn
    /// engine spawning (and recycling) one dynamic sender per arrival.
    pub fn simulate_workload(&self, genome: &WorkloadGenome, record_events: bool) -> SimResult {
        let cfg = self.workload_cfg(genome, record_events);
        let specs = self.workload_specs(genome, &cfg);
        let mut protos = Vec::new();
        self.fill_workload_protos(genome, &cfg, &mut protos);
        let mut sim = Simulation::new_multi(cfg, specs);
        sim.install_arrivals(&mut protos);
        sim.run()
    }

    /// [`SimEvaluator::simulate_workload`] with reusable simulator storage.
    pub fn simulate_workload_reusing(
        &self,
        genome: &WorkloadGenome,
        scratch: &mut EvalScratch,
    ) -> SimResult {
        let cfg = self.workload_cfg(genome, false);
        self.fill_workload_specs(genome, &cfg, &mut scratch.specs);
        self.fill_workload_protos(genome, &cfg, &mut scratch.protos);
        run_workload_simulation_pooled(
            cfg,
            &mut scratch.specs,
            &mut scratch.protos,
            &mut scratch.sim,
        )
    }

    /// [`SimEvaluator::simulate_workload`] with the structured trace
    /// recorder installed (event recording on).
    pub fn simulate_workload_traced(&self, genome: &WorkloadGenome) -> (SimResult, SimTrace) {
        let cfg = self.workload_cfg(genome, true);
        let specs = self.workload_specs(genome, &cfg);
        let mut protos = Vec::new();
        self.fill_workload_protos(genome, &cfg, &mut protos);
        let mut sim = Simulation::new_multi(cfg, specs);
        sim.install_arrivals(&mut protos);
        sim.install_tracer(DEFAULT_TRACE_CAPACITY);
        let result = sim.run();
        let trace = sim.take_trace().expect("tracer installed before run");
        (result, trace)
    }

    fn run_traced(cfg: SimConfig, specs: Vec<FlowSpec<CcaDispatch>>) -> (SimResult, SimTrace) {
        let mut sim = Simulation::new_multi(cfg, specs);
        sim.install_tracer(DEFAULT_TRACE_CAPACITY);
        let result = sim.run();
        let trace = sim.take_trace().expect("tracer installed before run");
        (result, trace)
    }

    /// [`SimEvaluator::simulate_traffic`] with the structured trace
    /// recorder installed (event recording on). The tracer never perturbs
    /// the run: the returned result digests identically to an untraced one.
    pub fn simulate_traffic_traced(&self, genome: &TrafficGenome) -> (SimResult, SimTrace) {
        let cfg = self.traffic_cfg(genome, true);
        let specs = self.single_flow_spec(&cfg);
        Self::run_traced(cfg, specs)
    }

    /// [`SimEvaluator::simulate_link`] with the structured trace recorder.
    pub fn simulate_link_traced(&self, genome: &LinkGenome) -> (SimResult, SimTrace) {
        let cfg = self.link_cfg(genome, true);
        let specs = self.single_flow_spec(&cfg);
        Self::run_traced(cfg, specs)
    }

    /// [`SimEvaluator::simulate_scenario`] with the structured trace recorder.
    pub fn simulate_scenario_traced(&self, genome: &ScenarioGenome) -> (SimResult, SimTrace) {
        let cfg = self.scenario_cfg(genome, true);
        let specs = self.scenario_specs(genome, &cfg);
        Self::run_traced(cfg, specs)
    }

    /// [`SimEvaluator::simulate_topology`] with the structured trace recorder.
    pub fn simulate_topology_traced(&self, genome: &TopologyGenome) -> (SimResult, SimTrace) {
        let cfg = self.topology_cfg(genome, true);
        let specs = self.topology_specs(genome, &cfg);
        Self::run_traced(cfg, specs)
    }
}

impl SimEvaluator {
    fn score_traffic(&self, genome: &TrafficGenome, result: &SimResult) -> EvalOutcome {
        let inputs = TraceScoreInputs {
            traffic_packets: genome.packet_count(),
            traffic_max_packets: genome.max_packets,
            traffic_dropped: result.stats.cross_dropped,
        };
        EvalOutcome::from_result(&self.scoring, result, self.base.mss, Some(inputs))
    }

    fn score_traffic_reusing(
        &self,
        genome: &TrafficGenome,
        result: &SimResult,
        score: &mut ScoreScratch,
    ) -> EvalOutcome {
        let inputs = TraceScoreInputs {
            traffic_packets: genome.packet_count(),
            traffic_max_packets: genome.max_packets,
            traffic_dropped: result.stats.cross_dropped,
        };
        EvalOutcome::from_result_reusing(&self.scoring, result, self.base.mss, Some(inputs), score)
    }
}

impl Evaluator<TrafficGenome> for SimEvaluator {
    fn evaluate(&self, genome: &TrafficGenome) -> EvalOutcome {
        let result = self.simulate_traffic(genome, false);
        self.score_traffic(genome, &result)
    }

    fn evaluate_reusing(&self, genome: &TrafficGenome, scratch: &mut EvalScratch) -> EvalOutcome {
        let result = self.simulate_traffic_reusing(genome, scratch);
        let outcome = self.score_traffic_reusing(genome, &result, &mut scratch.score);
        scratch.sim.recycle_stats(result.stats);
        outcome
    }
}

impl Evaluator<LinkGenome> for SimEvaluator {
    fn evaluate(&self, genome: &LinkGenome) -> EvalOutcome {
        let result = self.simulate_link(genome, false);
        EvalOutcome::from_result(&self.scoring, &result, self.base.mss, None)
    }

    fn evaluate_reusing(&self, genome: &LinkGenome, scratch: &mut EvalScratch) -> EvalOutcome {
        let result = self.simulate_link_reusing(genome, scratch);
        let outcome = EvalOutcome::from_result_reusing(
            &self.scoring,
            &result,
            self.base.mss,
            None,
            &mut scratch.score,
        );
        scratch.sim.recycle_stats(result.stats);
        outcome
    }
}

impl EvalOutcome {
    /// Scores a finished multi-flow scenario simulation. The legacy
    /// per-flow fields of [`EvalOutcome`] describe flow 0 in single-flow
    /// modes; for scenarios they carry aggregates across all competing
    /// flows so the outcome (and the behaviour signature built from it)
    /// reflects the whole scenario. Public so replay/corpus tooling can
    /// derive the outcome from a [`SimResult`] it already has.
    pub fn from_scenario_result(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        genome: &ScenarioGenome,
    ) -> Self {
        Self::from_scenario_result_reusing(
            scoring,
            result,
            mss,
            genome,
            &mut ScoreScratch::default(),
        )
    }

    /// [`EvalOutcome::from_scenario_result`] with reusable scoring buffers.
    pub fn from_scenario_result_reusing(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        genome: &ScenarioGenome,
        score: &mut ScoreScratch,
    ) -> Self {
        let inputs = genome.traffic.as_ref().map(|t| TraceScoreInputs {
            traffic_packets: t.packet_count(),
            traffic_max_packets: t.max_packets,
            traffic_dropped: result.stats.cross_dropped,
        });
        Self::from_multi_flow_result(scoring, result, mss, inputs, score)
    }

    /// Scores a finished multi-hop topology simulation, aggregating the
    /// per-flow fields across every flow of the parking lot exactly like
    /// [`EvalOutcome::from_scenario_result`] does for fairness scenarios.
    pub fn from_topology_result(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        genome: &TopologyGenome,
    ) -> Self {
        Self::from_topology_result_reusing(
            scoring,
            result,
            mss,
            genome,
            &mut ScoreScratch::default(),
        )
    }

    /// [`EvalOutcome::from_topology_result`] with reusable scoring buffers.
    pub fn from_topology_result_reusing(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        genome: &TopologyGenome,
        score: &mut ScoreScratch,
    ) -> Self {
        let inputs = genome.traffic.as_ref().map(|t| TraceScoreInputs {
            traffic_packets: t.packet_count(),
            traffic_max_packets: t.max_packets,
            traffic_dropped: result.stats.cross_dropped,
        });
        Self::from_multi_flow_result(scoring, result, mss, inputs, score)
    }

    /// Shared multi-flow aggregation: the legacy per-flow fields of
    /// [`EvalOutcome`] describe flow 0 in single-flow modes; for multi-flow
    /// runs they carry aggregates across all competing flows so the outcome
    /// (and the behaviour signature built from it) reflects the whole
    /// scenario.
    fn from_multi_flow_result(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        inputs: Option<TraceScoreInputs>,
        score: &mut ScoreScratch,
    ) -> Self {
        let mut outcome = EvalOutcome::from_result_reusing(scoring, result, mss, inputs, score);
        let flows = &result.stats.flows;
        outcome.delivered_packets = flows.iter().map(|f| f.summary.delivered_packets).sum();
        outcome.sent_packets = flows.iter().map(|f| f.summary.transmissions).sum();
        outcome.retransmissions = flows.iter().map(|f| f.summary.retransmissions).sum();
        outcome.rto_count = flows.iter().map(|f| f.summary.rto_count).sum();
        outcome.queue_drops = flows.iter().map(|f| f.summary.queue_drops).sum();
        // Aggregate goodput over the *scenario* duration, not the sum of
        // per-active-interval rates: a briefly-active flow can run at link
        // rate during its own interval, and summing those rates would
        // report >100% link utilization (and saturate the behaviour
        // signature's goodput bucket) for time-staggered scenarios.
        outcome.goodput_bps = if result.duration_secs > 0.0 {
            flows
                .iter()
                .map(|f| f.delivery_times.len() as f64)
                .sum::<f64>()
                * mss as f64
                * 8.0
                / result.duration_secs
        } else {
            0.0
        };
        outcome
    }
}

impl EvalOutcome {
    /// Scores a finished dynamic-arrival workload simulation. The per-flow
    /// aggregates cover the static elephants; the churned flows are
    /// summarised by `result.stats.workload` which the tail-latency
    /// objective reads directly.
    pub fn from_workload_result(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        genome: &WorkloadGenome,
    ) -> Self {
        Self::from_workload_result_reusing(
            scoring,
            result,
            mss,
            genome,
            &mut ScoreScratch::default(),
        )
    }

    /// [`EvalOutcome::from_workload_result`] with reusable scoring buffers.
    pub fn from_workload_result_reusing(
        scoring: &ScoringConfig,
        result: &SimResult,
        mss: u32,
        _genome: &WorkloadGenome,
        score: &mut ScoreScratch,
    ) -> Self {
        // Workload genomes carry no traffic sub-genome: the adversarial
        // pressure comes from the arrival process itself, so there is no
        // trace-minimality term to feed the scorer.
        Self::from_multi_flow_result(scoring, result, mss, None, score)
    }
}

impl Evaluator<WorkloadGenome> for SimEvaluator {
    fn evaluate(&self, genome: &WorkloadGenome) -> EvalOutcome {
        let result = self.simulate_workload(genome, false);
        EvalOutcome::from_workload_result(&self.scoring, &result, self.base.mss, genome)
    }

    fn evaluate_reusing(&self, genome: &WorkloadGenome, scratch: &mut EvalScratch) -> EvalOutcome {
        let result = self.simulate_workload_reusing(genome, scratch);
        let outcome = EvalOutcome::from_workload_result_reusing(
            &self.scoring,
            &result,
            self.base.mss,
            genome,
            &mut scratch.score,
        );
        scratch.sim.recycle_stats(result.stats);
        outcome
    }
}

impl Evaluator<ScenarioGenome> for SimEvaluator {
    fn evaluate(&self, genome: &ScenarioGenome) -> EvalOutcome {
        let result = self.simulate_scenario(genome, false);
        EvalOutcome::from_scenario_result(&self.scoring, &result, self.base.mss, genome)
    }

    fn evaluate_reusing(&self, genome: &ScenarioGenome, scratch: &mut EvalScratch) -> EvalOutcome {
        let result = self.simulate_scenario_reusing(genome, scratch);
        let outcome = EvalOutcome::from_scenario_result_reusing(
            &self.scoring,
            &result,
            self.base.mss,
            genome,
            &mut scratch.score,
        );
        scratch.sim.recycle_stats(result.stats);
        outcome
    }
}

impl Evaluator<TopologyGenome> for SimEvaluator {
    fn evaluate(&self, genome: &TopologyGenome) -> EvalOutcome {
        let result = self.simulate_topology(genome, false);
        EvalOutcome::from_topology_result(
            &self.topology_scoring(genome),
            &result,
            self.base.mss,
            genome,
        )
    }

    fn evaluate_reusing(&self, genome: &TopologyGenome, scratch: &mut EvalScratch) -> EvalOutcome {
        let result = self.simulate_topology_reusing(genome, scratch);
        let outcome = EvalOutcome::from_topology_result_reusing(
            &self.topology_scoring(genome),
            &result,
            self.base.mss,
            genome,
            &mut scratch.score,
        );
        scratch.sim.recycle_stats(result.stats);
        outcome
    }
}

use crate::genome::Genome;

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_netsim::rng::SimRng;
    use ccfuzz_netsim::time::SimDuration;

    fn evaluator() -> SimEvaluator {
        let mut base = SimConfig::short_default();
        base.duration = SimDuration::from_secs(3);
        SimEvaluator::new(
            base,
            CcaKind::Reno,
            ScoringConfig::low_throughput_default(12e6),
            12_000_000,
        )
    }

    #[test]
    fn empty_traffic_genome_scores_low() {
        let eval = evaluator();
        let genome = TrafficGenome {
            timestamps: vec![],
            duration: SimDuration::from_secs(3),
            max_packets: 1_000,
        };
        let outcome = eval.evaluate(&genome);
        // Reno alone on a clean 12 Mbps link: high goodput, low fitness.
        assert!(outcome.goodput_bps > 6e6, "goodput {}", outcome.goodput_bps);
        assert!(outcome.performance_score < 0.5);
        assert!(
            outcome.trace_score > 0.9,
            "empty trace is maximally minimal"
        );
        assert!(outcome.delivered_packets > 1_000);
    }

    #[test]
    fn heavy_traffic_genome_scores_higher_than_empty() {
        let eval = evaluator();
        let mut rng = SimRng::new(3);
        let duration = SimDuration::from_secs(3);
        let empty = TrafficGenome {
            timestamps: vec![],
            duration,
            max_packets: 4_000,
        };
        let heavy = TrafficGenome::generate(4_000, duration, &mut rng);
        let empty_out = eval.evaluate(&empty);
        let heavy_out = eval.evaluate(&heavy);
        assert!(
            heavy_out.performance_score > empty_out.performance_score,
            "cross traffic must hurt Reno: {} vs {}",
            heavy_out.performance_score,
            empty_out.performance_score
        );
    }

    #[test]
    fn link_genome_evaluation_runs_trace_driven() {
        let eval = evaluator();
        let mut rng = SimRng::new(4);
        let genome = LinkGenome::generate(
            3_000,
            SimDuration::from_secs(3),
            SimDuration::from_millis(50),
            &mut rng,
        );
        let outcome = Evaluator::<LinkGenome>::evaluate(&eval, &genome);
        assert!(outcome.delivered_packets > 0);
        assert!(outcome.delivered_packets <= 3_000);
        assert_eq!(outcome.trace_score, 0.0, "link mode has no trace score");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let eval = evaluator();
        let mut rng = SimRng::new(9);
        let genome = TrafficGenome::generate(2_000, SimDuration::from_secs(3), &mut rng);
        let a = eval.evaluate(&genome);
        let b = eval.evaluate(&genome);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_matches_fresh_evaluation() {
        // The fuzzer's workers reuse one EvalScratch across many genomes;
        // every reused evaluation must equal the fresh one bit for bit.
        let eval = evaluator();
        let mut rng = SimRng::new(21);
        let mut scratch = EvalScratch::new();
        for _ in 0..4 {
            let genome = TrafficGenome::generate(1_500, SimDuration::from_secs(2), &mut rng);
            let fresh = eval.evaluate(&genome);
            let reused = eval.evaluate_reusing(&genome, &mut scratch);
            assert_eq!(fresh, reused);
            let link = LinkGenome::generate(
                1_500,
                SimDuration::from_secs(2),
                SimDuration::from_millis(50),
                &mut rng,
            );
            let fresh = Evaluator::<LinkGenome>::evaluate(&eval, &link);
            let reused = eval.evaluate_reusing(&link, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn workload_evaluation_scores_and_surfaces_churn() {
        let mut eval = evaluator();
        eval.scoring = ScoringConfig::workload_default(12e6);
        let mut rng = SimRng::new(42);
        let genome = WorkloadGenome::generate(
            CcaKind::Reno,
            &[CcaKind::Reno, CcaKind::Cubic],
            3,
            SimDuration::from_secs(2),
            &mut rng,
        );
        let result = eval.simulate_workload(&genome, false);
        let w = result.stats.workload().expect("workload stats present");
        assert!(w.spawned > 0, "arrival process must spawn flows");
        let outcome = Evaluator::<WorkloadGenome>::evaluate(&eval, &genome);
        assert!(
            (0.0..=1.0).contains(&outcome.performance_score),
            "tail-latency score in unit range, got {}",
            outcome.performance_score
        );
        assert!(outcome.delivered_packets > 0, "elephants deliver traffic");
        assert_eq!(outcome.trace_score, 0.0, "workload mode has no trace score");
    }

    #[test]
    fn workload_scratch_reuse_matches_fresh_evaluation() {
        // Warm workload evaluations recycle the slab, the endpoint pools,
        // and the CCA prototype buffer; results must still be bit-identical
        // to a cold evaluation of the same genome.
        let mut eval = evaluator();
        eval.scoring = ScoringConfig::workload_default(12e6);
        let mut rng = SimRng::new(77);
        let mut scratch = EvalScratch::new();
        for _ in 0..4 {
            let genome = WorkloadGenome::generate(
                CcaKind::Reno,
                &[CcaKind::Cubic, CcaKind::Bbr],
                2,
                SimDuration::from_secs(2),
                &mut rng,
            );
            let fresh = Evaluator::<WorkloadGenome>::evaluate(&eval, &genome);
            let reused = eval.evaluate_reusing(&genome, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn workload_traced_evaluation_produces_a_trace() {
        let mut eval = evaluator();
        eval.scoring = ScoringConfig::workload_default(12e6);
        let mut rng = SimRng::new(5);
        let genome = WorkloadGenome::generate(
            CcaKind::Reno,
            &[CcaKind::Reno],
            2,
            SimDuration::from_secs(1),
            &mut rng,
        );
        let (result, trace) = eval.simulate_workload_traced(&genome);
        assert!(result.stats.workload().is_some());
        assert!(
            !trace.events.is_empty(),
            "tracer must capture simulation activity"
        );
    }

    #[test]
    fn scenario_qdisc_gene_reaches_the_gateway() {
        use crate::scenario::{QdiscChoice, ScenarioGenome};
        use crate::scoring::Objective;
        use ccfuzz_netsim::queue::Qdisc;
        let mut eval = evaluator();
        eval.scoring.objective = Objective::AqmBreakage {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
            mark_weight: 0.5,
            delay_weight: 0.5,
        };
        let mut rng = SimRng::new(17);
        let mut genome = ScenarioGenome::generate_aqm(
            CcaKind::Reno,
            SimDuration::from_secs(3),
            0,
            QdiscChoice::Red,
            &mut rng,
        );
        // Pin an aggressive marking RED + ECN so the gateway demonstrably
        // acts on the gene.
        genome.qdisc = Some(crate::scenario::QdiscGene {
            discipline: Qdisc::Red {
                min_thresh: 2,
                max_thresh: 40,
                mark_probability: 0.9,
            },
            ecn: true,
            choice: QdiscChoice::Red,
        });
        let result = eval.simulate_scenario(&genome, false);
        assert!(
            result.stats.queue_counters.marked_cca > 0,
            "the genome's RED gateway must mark"
        );
        // Determinism: the AQM path (including RED's seeded lottery) is a
        // pure function of the genome + config.
        let a = Evaluator::<ScenarioGenome>::evaluate(&eval, &genome);
        let b = Evaluator::<ScenarioGenome>::evaluate(&eval, &genome);
        assert_eq!(a, b);
        let mut scratch = EvalScratch::new();
        let c = eval.evaluate_reusing(&genome, &mut scratch);
        assert_eq!(a, c, "scratch reuse is bit-identical on the AQM path");

        // A drop-tail version of the same scenario behaves differently.
        let mut droptail = genome.clone();
        droptail.qdisc = None;
        let d = Evaluator::<ScenarioGenome>::evaluate(&eval, &droptail);
        assert_ne!(a, d, "the qdisc gene must change the outcome");
    }

    #[test]
    fn topology_evaluation_runs_the_hop_chain_deterministically() {
        use crate::scoring::Objective;
        use crate::topology::TopologyGenome;
        let mut eval = evaluator();
        eval.scoring.objective = Objective::MultiBottleneck {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
            cascade_weight: 0.5,
            collapse_weight: 0.5,
        };
        let mut rng = SimRng::new(23);
        let genome = TopologyGenome::generate(
            CcaKind::Reno,
            3,
            SimDuration::from_secs(3),
            200,
            &[CcaKind::Reno],
            &mut rng,
        );
        let result = eval.simulate_topology(&genome, false);
        assert_eq!(result.stats.hop_counters.len(), genome.hop_count());
        assert_eq!(result.stats.flows.len(), genome.flow_count());
        assert!(result.stats.flow().delivered_packets > 0);
        let a = Evaluator::<TopologyGenome>::evaluate(&eval, &genome);
        let b = Evaluator::<TopologyGenome>::evaluate(&eval, &genome);
        assert_eq!(a, b, "topology evaluation must be deterministic");
        let mut scratch = EvalScratch::new();
        let c = eval.evaluate_reusing(&genome, &mut scratch);
        assert_eq!(a, c, "scratch reuse is bit-identical on the topology path");
        assert!(a.score.is_finite() && a.score > 0.0);
    }

    #[test]
    fn topology_scoring_caps_the_reference_at_the_chain_bottleneck() {
        use crate::scoring::Objective;
        use crate::topology::TopologyGenome;
        let mut eval = evaluator();
        eval.scoring.objective = Objective::MultiBottleneck {
            window: SimDuration::from_millis(500),
            lowest_fraction: 0.2,
            cascade_weight: 0.5,
            collapse_weight: 0.5,
        };
        let mut rng = SimRng::new(5);
        let mut genome = TopologyGenome::generate(
            CcaKind::Reno,
            2,
            SimDuration::from_secs(3),
            0,
            &[CcaKind::Reno],
            &mut rng,
        );
        // A uniformly slow 4 Mbps drop-tail chain...
        for hop in &mut genome.hops {
            hop.rate_bps = 4_000_000;
            hop.qdisc = None;
        }
        // ...must not be rewarded for its low capacity alone: the reference
        // the score normalises by is capped at the chain's bottleneck.
        assert_eq!(eval.topology_scoring(&genome).reference_rate_bps, 4e6);
        let capped = Evaluator::<TopologyGenome>::evaluate(&eval, &genome);
        let result = eval.simulate_topology(&genome, false);
        let uncapped =
            EvalOutcome::from_topology_result(&eval.scoring, &result, eval.base.mss, &genome);
        assert!(
            capped.score < uncapped.score,
            "slow-but-healthy chains must not out-score via the fixed \
             12 Mbps reference: capped {} vs uncapped {}",
            capped.score,
            uncapped.score
        );
        // A chain faster than the reference keeps the campaign reference.
        for hop in &mut genome.hops {
            hop.rate_bps = 20_000_000;
        }
        assert_eq!(eval.topology_scoring(&genome).reference_rate_bps, 12e6);
    }

    #[test]
    fn scenario_evaluation_runs_multi_flow_and_aggregates() {
        use crate::scenario::ScenarioGenome;
        use crate::scoring::Objective;
        let mut eval = evaluator();
        eval.scoring.objective = Objective::Unfairness {
            starvation_weight: 0.5,
        };
        let mut rng = SimRng::new(11);
        let genome = ScenarioGenome::generate(
            &[CcaKind::Bbr, CcaKind::Reno],
            4,
            SimDuration::from_secs(3),
            0,
            &mut rng,
        );
        let result = eval.simulate_scenario(&genome, false);
        assert_eq!(result.stats.flows.len(), genome.flow_count());
        let outcome = Evaluator::<ScenarioGenome>::evaluate(&eval, &genome);
        // Aggregates cover all flows: at least as much as flow 0 alone.
        assert!(outcome.delivered_packets >= result.stats.flow().delivered_packets);
        assert!(outcome.score.is_finite());
        // Determinism across evaluations.
        let again = Evaluator::<ScenarioGenome>::evaluate(&eval, &genome);
        assert_eq!(outcome, again);
    }
}
