//! Internal diagnostic: run a plain AIMD flow over the paper-default link and
//! print the transport summary. Used while developing the simulator.

use ccfuzz_netsim::cc::reference_cc::MiniAimdCc;
use ccfuzz_netsim::config::SimConfig;
use ccfuzz_netsim::sim::run_simulation;
use ccfuzz_netsim::stats::TransportEvent;

fn main() {
    let mut cfg = SimConfig::short_default();
    cfg.record_events = true;
    let mss = cfg.mss;
    let result = run_simulation(cfg, Box::new(MiniAimdCc::new(10)));
    let f = result.stats.flow();
    println!(
        "delivered={} tx={} retx={} lost={} rtos={} recoveries={} drops={}",
        f.delivered_packets,
        f.transmissions,
        f.retransmissions,
        f.marked_lost,
        f.rto_count,
        f.recovery_episodes,
        f.queue_drops
    );
    println!(
        "goodput = {:.2} Mbps",
        result.average_goodput_bps(mss) / 1e6
    );
    println!("events = {}", result.stats.events_processed);
    println!(
        "srtt = {} us, min_rtt = {} us",
        f.final_srtt_us, f.min_rtt_us
    );
    // Print the first 80 transport events to see early dynamics.
    for rec in result.stats.transport.iter().take(80) {
        match &rec.event {
            TransportEvent::Sent {
                seq,
                retransmission,
                ..
            } => {
                println!(
                    "{:>10.4}s SENT  seq={} retx={}",
                    rec.at.as_secs_f64(),
                    seq,
                    retransmission
                )
            }
            TransportEvent::CumAckAdvanced { cum_ack } => {
                println!("{:>10.4}s ACK   cum={}", rec.at.as_secs_f64(), cum_ack)
            }
            TransportEvent::Sacked { seq } => {
                println!("{:>10.4}s SACK  seq={}", rec.at.as_secs_f64(), seq)
            }
            TransportEvent::MarkedLost { seq } => {
                println!("{:>10.4}s LOST  seq={}", rec.at.as_secs_f64(), seq)
            }
            TransportEvent::RtoFired { backoff } => {
                println!("{:>10.4}s RTO   backoff={}", rec.at.as_secs_f64(), backoff)
            }
            TransportEvent::EnterRecovery => {
                println!("{:>10.4}s ENTER-RECOVERY", rec.at.as_secs_f64())
            }
            TransportEvent::ExitRecovery => {
                println!("{:>10.4}s EXIT-RECOVERY", rec.at.as_secs_f64())
            }
            TransportEvent::Cc { detail } => {
                println!("{:>10.4}s CC    {}", rec.at.as_secs_f64(), detail)
            }
        }
    }
}
