//! Bottleneck link service models.
//!
//! Two service disciplines, matching the paper's two fuzzing modes (§3.1):
//!
//! * [`LinkService::FixedRate`] — a constant-rate serializer. Used for
//!   *traffic fuzzing*, where the adversarial input is the cross traffic.
//! * [`LinkService::TraceDriven`] — a MahiMahi-style service curve: the link
//!   transmits exactly one packet at each opportunity listed in a
//!   [`LinkTrace`](crate::trace::LinkTrace); opportunities that find an empty
//!   queue are wasted. Used for *link fuzzing*.
//!
//! Both models feed a fixed one-way propagation delay toward the sink, and
//! ACKs return over an uncongested reverse path with the same propagation
//! delay.

use crate::time::{SimDuration, SimTime};
use crate::trace::LinkTrace;
use serde::{Deserialize, Serialize};

/// Configuration of the bottleneck service discipline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LinkModel {
    /// Serialize packets at a constant rate (bits per second).
    FixedRate {
        /// Link rate in bits per second.
        rate_bps: u64,
    },
    /// Transmit one packet per opportunity in the given service curve.
    TraceDriven {
        /// The service curve.
        trace: LinkTrace,
    },
}

impl LinkModel {
    /// A human-readable label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            LinkModel::FixedRate { .. } => "fixed-rate",
            LinkModel::TraceDriven { .. } => "trace-driven",
        }
    }
}

/// Runtime state of the bottleneck link.
#[derive(Clone, Debug)]
pub struct LinkService {
    model: LinkModel,
    /// For `TraceDriven`: index of the next unused opportunity.
    next_opportunity: usize,
    /// For `FixedRate`: whether a packet is currently being serialized.
    busy_until: Option<SimTime>,
    /// Packets transmitted so far.
    transmitted: u64,
    /// Trace-driven opportunities that found an empty queue.
    wasted_opportunities: u64,
}

/// What the link should do next, as computed by [`LinkService::next_action`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkAction {
    /// The link can transmit a packet right now (the caller should dequeue
    /// and then call [`LinkService::on_transmit`]).
    TransmitNow,
    /// The link cannot transmit until the given time; the caller should
    /// schedule a `LinkReady` event for then.
    WaitUntil(SimTime),
    /// The link will never transmit again (trace exhausted).
    Exhausted,
}

impl LinkService {
    /// Creates the link service for a model.
    pub fn new(model: LinkModel) -> Self {
        LinkService {
            model,
            next_opportunity: 0,
            busy_until: None,
            transmitted: 0,
            wasted_opportunities: 0,
        }
    }

    /// The configured model.
    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// Consumes the service and returns its model, letting a batch driver
    /// harvest a trace-driven link's timestamp storage for reuse.
    pub fn into_model(self) -> LinkModel {
        self.model
    }

    /// Packets transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Trace opportunities that found an empty queue (trace-driven only).
    pub fn wasted_opportunities(&self) -> u64 {
        self.wasted_opportunities
    }

    /// Decides what the link can do at `now`, given whether the queue has a
    /// packet waiting (`queue_nonempty`).
    pub fn next_action(&mut self, now: SimTime, queue_nonempty: bool) -> LinkAction {
        match &self.model {
            LinkModel::FixedRate { .. } => {
                if let Some(busy_until) = self.busy_until {
                    if now < busy_until {
                        return LinkAction::WaitUntil(busy_until);
                    }
                    self.busy_until = None;
                }
                if queue_nonempty {
                    LinkAction::TransmitNow
                } else {
                    // Nothing to send; the caller re-polls when a packet arrives.
                    LinkAction::WaitUntil(SimTime::MAX)
                }
            }
            LinkModel::TraceDriven { trace } => {
                let opportunities = trace.opportunities();
                loop {
                    match opportunities.get(self.next_opportunity) {
                        None => return LinkAction::Exhausted,
                        Some(&t) if t > now => return LinkAction::WaitUntil(t),
                        Some(_) => {
                            // An opportunity is due now (or was missed while we
                            // were idle). Use it if there is a packet, otherwise
                            // it is wasted (MahiMahi semantics).
                            if queue_nonempty {
                                return LinkAction::TransmitNow;
                            }
                            self.next_opportunity += 1;
                            self.wasted_opportunities += 1;
                        }
                    }
                }
            }
        }
    }

    /// Records that a packet of `size` bytes started transmission at `now`,
    /// and returns the time at which it fully crosses the bottleneck (i.e.
    /// when it should be handed to the propagation-delay stage).
    pub fn on_transmit(&mut self, now: SimTime, size: u32) -> SimTime {
        self.transmitted += 1;
        match &self.model {
            LinkModel::FixedRate { rate_bps } => {
                let tx_time = SimDuration::transmission_time(size as u64, *rate_bps);
                let done = now + tx_time;
                self.busy_until = Some(done);
                done
            }
            LinkModel::TraceDriven { .. } => {
                // One whole packet per opportunity; the packet leaves the
                // bottleneck at the opportunity instant.
                self.next_opportunity += 1;
                now
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_serializes_back_to_back() {
        let mut link = LinkService::new(LinkModel::FixedRate {
            rate_bps: 12_000_000,
        });
        let t0 = SimTime::ZERO;
        assert_eq!(link.next_action(t0, true), LinkAction::TransmitNow);
        let done = link.on_transmit(t0, 1500);
        assert_eq!(done.as_micros(), 1000); // 1500B at 12Mbps = 1ms
                                            // While busy, must wait.
        assert_eq!(
            link.next_action(SimTime::from_micros(500), true),
            LinkAction::WaitUntil(done)
        );
        // At completion, ready again.
        assert_eq!(link.next_action(done, true), LinkAction::TransmitNow);
        assert_eq!(link.transmitted(), 1);
    }

    #[test]
    fn fixed_rate_idle_when_queue_empty() {
        let mut link = LinkService::new(LinkModel::FixedRate {
            rate_bps: 12_000_000,
        });
        assert_eq!(
            link.next_action(SimTime::ZERO, false),
            LinkAction::WaitUntil(SimTime::MAX)
        );
    }

    #[test]
    fn trace_driven_follows_opportunities() {
        let trace = LinkTrace::new(
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30),
            ],
            SimDuration::from_millis(100),
        );
        let mut link = LinkService::new(LinkModel::TraceDriven { trace });
        // Before the first opportunity: wait.
        assert_eq!(
            link.next_action(SimTime::from_millis(5), true),
            LinkAction::WaitUntil(SimTime::from_millis(10))
        );
        // At the opportunity with a packet: transmit, packet leaves immediately.
        assert_eq!(
            link.next_action(SimTime::from_millis(10), true),
            LinkAction::TransmitNow
        );
        let done = link.on_transmit(SimTime::from_millis(10), 1500);
        assert_eq!(done, SimTime::from_millis(10));
        // Next opportunity at 20ms.
        assert_eq!(
            link.next_action(SimTime::from_millis(10), true),
            LinkAction::WaitUntil(SimTime::from_millis(20))
        );
    }

    #[test]
    fn trace_driven_wastes_opportunities_on_empty_queue() {
        let trace = LinkTrace::new(
            vec![SimTime::from_millis(10), SimTime::from_millis(20)],
            SimDuration::from_millis(100),
        );
        let mut link = LinkService::new(LinkModel::TraceDriven { trace });
        // At 25ms with an empty queue both past opportunities are wasted.
        assert_eq!(
            link.next_action(SimTime::from_millis(25), false),
            LinkAction::Exhausted
        );
        assert_eq!(link.wasted_opportunities(), 2);
        assert_eq!(link.transmitted(), 0);
    }

    #[test]
    fn trace_driven_missed_opportunity_used_late() {
        // If a packet arrives after an opportunity has passed but the link was
        // never polled in between, the stale opportunity is consumed (wasted)
        // and the packet waits for the next one.
        let trace = LinkTrace::new(
            vec![SimTime::from_millis(10), SimTime::from_millis(40)],
            SimDuration::from_millis(100),
        );
        let mut link = LinkService::new(LinkModel::TraceDriven { trace });
        assert_eq!(
            link.next_action(SimTime::from_millis(10), true),
            LinkAction::TransmitNow
        );
        link.on_transmit(SimTime::from_millis(10), 1500);
        assert_eq!(
            link.next_action(SimTime::from_millis(12), true),
            LinkAction::WaitUntil(SimTime::from_millis(40))
        );
    }

    #[test]
    fn trace_driven_exhausts() {
        let trace = LinkTrace::new(vec![SimTime::from_millis(10)], SimDuration::from_millis(50));
        let mut link = LinkService::new(LinkModel::TraceDriven { trace });
        assert_eq!(
            link.next_action(SimTime::from_millis(10), true),
            LinkAction::TransmitNow
        );
        link.on_transmit(SimTime::from_millis(10), 1500);
        assert_eq!(
            link.next_action(SimTime::from_millis(11), true),
            LinkAction::Exhausted
        );
    }

    #[test]
    fn model_kind_labels() {
        assert_eq!(LinkModel::FixedRate { rate_bps: 1 }.kind(), "fixed-rate");
        assert_eq!(
            LinkModel::TraceDriven {
                trace: LinkTrace::default()
            }
            .kind(),
            "trace-driven"
        );
    }
}
