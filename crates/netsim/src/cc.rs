//! The congestion control interface.
//!
//! A [`CongestionControl`] implementation is plugged into the TCP-like sender
//! ([`crate::tcp::sender`]) and receives the same signals a Linux/NS3
//! congestion module would: per-ACK delivery-rate samples ([`RateSample`],
//! modelled on Linux `tcp_rate.c`), loss events detected by fast retransmit,
//! and RTO expirations. It exposes a congestion window (in packets) and an
//! optional pacing rate.
//!
//! Concrete algorithms (Reno, CUBIC, BBR, Vegas) live in the `ccfuzz-cca`
//! crate; this module only defines the contract plus a couple of trivial
//! reference implementations used by the simulator's own tests.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A delivery rate sample, generated for every ACK that (cumulatively or
/// selectively) acknowledges at least one packet.
///
/// Field names intentionally mirror Linux's `struct rate_sample` /
/// `tcp_rate.c`, because the BBR finding in §4.1 of the paper hinges on this
/// exact bookkeeping: `prior_delivered` is read from the *per-packet* state
/// stamped at the packet's **most recent** (possibly spurious) transmission.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateSample {
    /// Total packets delivered at the sender when this ACK was processed
    /// (`tp->delivered`).
    pub delivered: u64,
    /// `tp->delivered` stamped on the acknowledged packet when it was last
    /// transmitted (`skb->tx.delivered`, the "prior delivered" of the paper).
    pub prior_delivered: u64,
    /// Time at which `prior_delivered` was stamped (`skb->tx.delivered_mstamp`).
    pub prior_delivered_time: SimTime,
    /// Time between the first and last transmissions of the sampled
    /// packet's send window (`send_elapsed`).
    pub send_elapsed: SimDuration,
    /// Time between the stamped delivered time and now (`ack_elapsed`).
    pub ack_elapsed: SimDuration,
    /// The sampling interval: `max(send_elapsed, ack_elapsed)`.
    pub interval: SimDuration,
    /// Packets delivered over `interval` (`delivered - prior_delivered`).
    pub delivered_in_interval: u64,
    /// Delivery rate in bits per second (0 when the interval is degenerate).
    pub delivery_rate_bps: f64,
    /// RTT measured from the newest acknowledged packet's last transmission,
    /// `None` when the ACK only covered retransmitted data (Karn's rule).
    pub rtt: Option<SimDuration>,
    /// Packets newly acknowledged (cumulative + SACK) by this ACK.
    pub newly_acked: u64,
    /// Packets the *cumulative* ACK advanced by, regardless of whether they
    /// had already been SACKed. NS3 passes this count ("segments acked") to
    /// the window-increase function, which is how the CUBIC slow-start bug of
    /// §4.2 receives a huge value after a retransmission fills a large hole.
    pub cum_ack_advanced: u64,
    /// Whether the sampled packet had been retransmitted.
    pub is_retransmitted_sample: bool,
    /// Whether the sender was application limited when the packet was sent.
    pub is_app_limited: bool,
    /// Packets in flight just before this ACK was processed.
    pub in_flight_before: u64,
    /// Current time.
    pub now: SimTime,
}

impl RateSample {
    /// `true` when the sample carries a usable delivery-rate estimate.
    pub fn is_valid(&self) -> bool {
        self.interval > SimDuration::ZERO && self.delivered_in_interval > 0
    }
}

/// Snapshot of connection state passed to every congestion-control callback.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CcContext {
    /// Current simulation time.
    pub now: SimTime,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Packets currently in flight (sent, neither acked nor marked lost).
    pub in_flight: u64,
    /// Total packets delivered so far (`tp->delivered`).
    pub delivered: u64,
    /// Total packets marked lost so far.
    pub lost: u64,
    /// Smoothed RTT, if at least one sample exists.
    pub srtt: Option<SimDuration>,
    /// Latest RTT sample, if any.
    pub last_rtt: Option<SimDuration>,
    /// Minimum RTT observed over the connection.
    pub min_rtt: Option<SimDuration>,
    /// `true` while the sender is in fast-recovery.
    pub in_recovery: bool,
}

/// Loss-related congestion signals delivered to the algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionSignal {
    /// Fast retransmit detected packet loss. `new_episode` is `true` the
    /// first time loss is detected in a recovery episode (a classic
    /// loss-based CCA reacts once per episode).
    FastRetransmitLoss {
        /// Packets newly marked lost.
        newly_lost: u64,
        /// Whether this starts a new recovery episode.
        new_episode: bool,
    },
    /// The retransmission timer expired.
    Rto,
}

/// The congestion control algorithm contract.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Short algorithm name (e.g. `"reno"`, `"cubic"`, `"bbr"`).
    fn name(&self) -> &'static str;

    /// Called once when the flow starts.
    fn init(&mut self, _ctx: &CcContext) {}

    /// Called for every ACK that advances delivery, with the rate sample.
    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample);

    /// Called when loss is signalled (fast retransmit or RTO).
    fn on_congestion(&mut self, ctx: &CcContext, signal: CongestionSignal);

    /// Called when an ACK echoes ECN congestion-experienced marks
    /// (`ce_acked` = number of CE-marked packets the ACK reports). RFC 3168
    /// algorithms treat this like a loss signal (window halving, at most
    /// once per RTT); DCTCP reacts proportionally to the mark fraction.
    /// The default ignores marks, so ECN-unaware algorithms are simply
    /// mark-insensitive rather than broken.
    fn on_ecn(&mut self, _ctx: &CcContext, _ce_acked: u64) {}

    /// Called when the sender exits fast recovery.
    fn on_exit_recovery(&mut self, _ctx: &CcContext) {}

    /// Current congestion window, in packets. The sender never lets the
    /// window drop below one packet regardless of what this returns.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold, in packets (`u64::MAX` when unset).
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    /// Pacing rate in bits per second, or `None` for pure window-based
    /// sending (ACK clocking).
    fn pacing_rate_bps(&self) -> Option<f64> {
        None
    }

    /// Free-form internal state for logging/figures (e.g. BBR's bandwidth
    /// estimate and gain-cycle phase).
    fn debug_state(&self) -> String {
        String::new()
    }

    /// Drains algorithm-internal events recorded since the last call
    /// (used to build the Figure 4c timeline without coupling the simulator
    /// to any specific algorithm).
    fn take_events(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Tells the algorithm whether its debug events will actually be
    /// consumed. When `false` (the fuzzer's hot path), algorithms should
    /// skip formatting and storing events entirely — the strings would be
    /// allocated and then thrown away millions of times per campaign.
    fn set_event_recording(&mut self, _enabled: bool) {}
}

/// Boxed algorithms (including `Box<dyn CongestionControl>`) are themselves
/// algorithms. This is what lets the sender and simulator be generic over
/// the congestion-control type — statically dispatched for enum/concrete
/// controllers on the hot path — while every existing `Box<dyn ...>` call
/// site keeps working unchanged.
impl<T: CongestionControl + ?Sized> CongestionControl for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn init(&mut self, ctx: &CcContext) {
        (**self).init(ctx)
    }
    fn on_ack(&mut self, ctx: &CcContext, rs: &RateSample) {
        (**self).on_ack(ctx, rs)
    }
    fn on_congestion(&mut self, ctx: &CcContext, signal: CongestionSignal) {
        (**self).on_congestion(ctx, signal)
    }
    fn on_ecn(&mut self, ctx: &CcContext, ce_acked: u64) {
        (**self).on_ecn(ctx, ce_acked)
    }
    fn on_exit_recovery(&mut self, ctx: &CcContext) {
        (**self).on_exit_recovery(ctx)
    }
    fn cwnd(&self) -> u64 {
        (**self).cwnd()
    }
    fn ssthresh(&self) -> u64 {
        (**self).ssthresh()
    }
    fn pacing_rate_bps(&self) -> Option<f64> {
        (**self).pacing_rate_bps()
    }
    fn debug_state(&self) -> String {
        (**self).debug_state()
    }
    fn take_events(&mut self) -> Vec<String> {
        (**self).take_events()
    }
    fn set_event_recording(&mut self, enabled: bool) {
        (**self).set_event_recording(enabled)
    }
}

/// Trivial reference algorithms used by the simulator's own unit tests (the
/// real algorithms live in `ccfuzz-cca`).
pub mod reference_cc {
    use super::*;

    /// A fixed congestion window with no reaction to anything. Useful for
    /// testing transport mechanics in isolation.
    #[derive(Debug, Clone)]
    pub struct FixedWindowCc {
        window: u64,
    }

    impl FixedWindowCc {
        /// Creates a fixed-window algorithm with the given window (packets).
        pub fn new(window: u64) -> Self {
            FixedWindowCc {
                window: window.max(1),
            }
        }
    }

    impl CongestionControl for FixedWindowCc {
        fn name(&self) -> &'static str {
            "fixed-window"
        }
        fn on_ack(&mut self, _ctx: &CcContext, _rs: &RateSample) {}
        fn on_congestion(&mut self, _ctx: &CcContext, _signal: CongestionSignal) {}
        fn cwnd(&self) -> u64 {
            self.window
        }
    }

    /// A minimal AIMD algorithm (slow start + additive increase, halve on
    /// loss) used to exercise recovery paths in transport tests.
    #[derive(Debug, Clone)]
    pub struct MiniAimdCc {
        cwnd: u64,
        ssthresh: u64,
        acked_since_increase: u64,
    }

    impl MiniAimdCc {
        /// Creates the algorithm with an initial window of `initial_cwnd`.
        pub fn new(initial_cwnd: u64) -> Self {
            MiniAimdCc {
                cwnd: initial_cwnd.max(1),
                ssthresh: u64::MAX,
                acked_since_increase: 0,
            }
        }
    }

    impl CongestionControl for MiniAimdCc {
        fn name(&self) -> &'static str {
            "mini-aimd"
        }

        fn on_ack(&mut self, _ctx: &CcContext, rs: &RateSample) {
            if self.cwnd < self.ssthresh {
                self.cwnd += rs.newly_acked;
            } else {
                self.acked_since_increase += rs.newly_acked;
                if self.acked_since_increase >= self.cwnd {
                    self.acked_since_increase = 0;
                    self.cwnd += 1;
                }
            }
        }

        fn on_congestion(&mut self, _ctx: &CcContext, signal: CongestionSignal) {
            match signal {
                CongestionSignal::FastRetransmitLoss { new_episode, .. } => {
                    if new_episode {
                        self.ssthresh = (self.cwnd / 2).max(2);
                        self.cwnd = self.ssthresh;
                    }
                }
                CongestionSignal::Rto => {
                    self.ssthresh = (self.cwnd / 2).max(2);
                    self.cwnd = 1;
                }
            }
        }

        fn cwnd(&self) -> u64 {
            self.cwnd
        }

        fn ssthresh(&self) -> u64 {
            self.ssthresh
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference_cc::*;
    use super::*;

    fn ctx() -> CcContext {
        CcContext {
            now: SimTime::ZERO,
            mss: 1448,
            in_flight: 5,
            delivered: 10,
            lost: 0,
            srtt: Some(SimDuration::from_millis(40)),
            last_rtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            in_recovery: false,
        }
    }

    fn sample(newly_acked: u64) -> RateSample {
        RateSample {
            delivered: 10,
            prior_delivered: 5,
            prior_delivered_time: SimTime::ZERO,
            send_elapsed: SimDuration::from_millis(10),
            ack_elapsed: SimDuration::from_millis(12),
            interval: SimDuration::from_millis(12),
            delivered_in_interval: 5,
            delivery_rate_bps: 5.0 * 1448.0 * 8.0 / 0.012,
            rtt: Some(SimDuration::from_millis(40)),
            newly_acked,
            cum_ack_advanced: newly_acked,
            is_retransmitted_sample: false,
            is_app_limited: false,
            in_flight_before: 6,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn rate_sample_validity() {
        let mut rs = sample(1);
        assert!(rs.is_valid());
        rs.interval = SimDuration::ZERO;
        assert!(!rs.is_valid());
        rs.interval = SimDuration::from_millis(1);
        rs.delivered_in_interval = 0;
        assert!(!rs.is_valid());
    }

    #[test]
    fn fixed_window_never_changes() {
        let mut cc = FixedWindowCc::new(17);
        assert_eq!(cc.cwnd(), 17);
        cc.on_ack(&ctx(), &sample(3));
        cc.on_congestion(&ctx(), CongestionSignal::Rto);
        assert_eq!(cc.cwnd(), 17);
        assert_eq!(cc.name(), "fixed-window");
        assert_eq!(cc.pacing_rate_bps(), None);
    }

    #[test]
    fn fixed_window_minimum_one() {
        assert_eq!(FixedWindowCc::new(0).cwnd(), 1);
    }

    #[test]
    fn mini_aimd_slow_start_doubles() {
        let mut cc = MiniAimdCc::new(2);
        // In slow start every acked packet grows cwnd by one.
        cc.on_ack(&ctx(), &sample(2));
        assert_eq!(cc.cwnd(), 4);
        cc.on_ack(&ctx(), &sample(4));
        assert_eq!(cc.cwnd(), 8);
    }

    #[test]
    fn mini_aimd_reacts_to_loss_once_per_episode() {
        let mut cc = MiniAimdCc::new(16);
        cc.on_congestion(
            &ctx(),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        assert_eq!(cc.cwnd(), 8);
        // Further losses in the same episode do not halve again.
        cc.on_congestion(
            &ctx(),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 2,
                new_episode: false,
            },
        );
        assert_eq!(cc.cwnd(), 8);
        cc.on_congestion(&ctx(), CongestionSignal::Rto);
        assert_eq!(cc.cwnd(), 1);
        assert_eq!(cc.ssthresh(), 4);
    }

    #[test]
    fn mini_aimd_congestion_avoidance_is_linear() {
        let mut cc = MiniAimdCc::new(4);
        // Force out of slow start.
        cc.on_congestion(
            &ctx(),
            CongestionSignal::FastRetransmitLoss {
                newly_lost: 1,
                new_episode: true,
            },
        );
        let w0 = cc.cwnd();
        // One window's worth of ACKs grows cwnd by exactly 1.
        cc.on_ack(&ctx(), &sample(w0));
        assert_eq!(cc.cwnd(), w0 + 1);
    }
}
