//! Bottleneck gateway queue disciplines.
//!
//! The paper's topology uses a single fixed-size drop-tail FIFO queue at the
//! gateway (§3.1). The queue is sized in packets (as in the paper's NS3
//! setup); a byte-based limit is also supported for completeness.
//!
//! The gateway is pluggable: a [`Qdisc`] configuration selects between
//! classic drop-tail, RED (random early detection, marking or dropping
//! before the tail based on occupancy) and CoDel (controlled delay, marking
//! or dropping at the head based on sojourn time). The runtime queue is the
//! [`GatewayQueue`] enum, dispatched by `match` exactly like the CCA layer's
//! `CcaDispatch` — no virtual calls on the per-packet path. ECN-capable
//! packets (`ect`) are CE-marked instead of dropped wherever the discipline
//! allows; the receiver echoes marks back to the sender (see
//! [`crate::tcp::receiver`]), closing the RFC 3168 feedback loop.

use crate::packet::{DataPacket, FlowId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queue capacity specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueCapacity {
    /// At most this many packets may be queued.
    Packets(usize),
    /// At most this many bytes may be queued.
    Bytes(u64),
}

impl QueueCapacity {
    /// `true` when a queue currently holding `len` packets / `bytes` bytes
    /// can still admit `pkt` without exceeding the capacity.
    ///
    /// The byte check compares the *post-enqueue* total against the limit:
    /// a packet is admitted iff `bytes + pkt.size <= max`, so the resident
    /// byte total never exceeds the configured capacity (the exact boundary
    /// is pinned by a regression test below).
    pub fn admits(&self, len: usize, bytes: u64, pkt: &DataPacket) -> bool {
        match *self {
            QueueCapacity::Packets(max) => len < max,
            QueueCapacity::Bytes(max) => bytes + pkt.size as u64 <= max,
        }
    }
}

/// Counters describing everything that ever happened to the queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Packets accepted into the queue, per flow.
    pub enqueued_cca: u64,
    /// Cross-traffic packets accepted into the queue.
    pub enqueued_cross: u64,
    /// Packets dropped at the tail, CCA flow.
    pub dropped_cca: u64,
    /// Packets dropped at the tail, cross traffic.
    pub dropped_cross: u64,
    /// Packets dequeued (transmitted on the bottleneck), CCA flow.
    pub dequeued_cca: u64,
    /// Packets dequeued, cross traffic.
    pub dequeued_cross: u64,
    /// CCA packets CE-marked by the queue discipline (RED/CoDel with ECN).
    pub marked_cca: u64,
    /// Cross-traffic packets CE-marked (always 0: cross traffic is not
    /// ECN-capable, kept for symmetry and future sources).
    pub marked_cross: u64,
}

impl QueueCounters {
    /// Total packets that were accepted into the queue.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued_cca + self.enqueued_cross
    }

    /// Total packets dropped at the tail.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_cca + self.dropped_cross
    }

    /// Total packets dequeued onto the link.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued_cca + self.dequeued_cross
    }

    /// Total packets CE-marked by the queue discipline.
    pub fn total_marked(&self) -> u64 {
        self.marked_cca + self.marked_cross
    }

    fn count_drop(&mut self, flow: FlowId) {
        match flow {
            FlowId::Cca(_) => self.dropped_cca += 1,
            FlowId::CrossTraffic => self.dropped_cross += 1,
        }
    }

    fn count_mark(&mut self, flow: FlowId) {
        match flow {
            FlowId::Cca(_) => self.marked_cca += 1,
            FlowId::CrossTraffic => self.marked_cross += 1,
        }
    }
}

/// The FIFO storage plus byte/counter bookkeeping every discipline shares:
/// the admission/enqueue/dequeue accounting lives here exactly once, so the
/// disciplines cannot drift apart on how packets, bytes and per-flow
/// counters are tracked.
#[derive(Clone, Debug)]
struct FifoCore {
    capacity: QueueCapacity,
    queue: VecDeque<DataPacket>,
    bytes: u64,
    counters: QueueCounters,
}

impl FifoCore {
    fn new(capacity: QueueCapacity) -> Self {
        FifoCore {
            capacity,
            queue: VecDeque::new(),
            bytes: 0,
            counters: QueueCounters::default(),
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn admits(&self, pkt: &DataPacket) -> bool {
        self.capacity.admits(self.queue.len(), self.bytes, pkt)
    }

    /// Unconditionally appends `pkt` (the caller has already checked
    /// [`FifoCore::admits`]), stamping the enqueue time and counters.
    fn push(&mut self, mut pkt: DataPacket, now: SimTime) {
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        match pkt.flow {
            FlowId::Cca(_) => self.counters.enqueued_cca += 1,
            FlowId::CrossTraffic => self.counters.enqueued_cross += 1,
        }
        self.queue.push_back(pkt);
    }

    /// Removes the head-of-line packet and counts it as dequeued.
    fn pop_dequeued(&mut self) -> Option<DataPacket> {
        let pkt = self.pop_uncounted()?;
        match pkt.flow {
            FlowId::Cca(_) => self.counters.dequeued_cca += 1,
            FlowId::CrossTraffic => self.counters.dequeued_cross += 1,
        }
        Some(pkt)
    }

    /// Removes the head-of-line packet without deciding its fate (CoDel's
    /// control law counts it as dequeued or dropped afterwards).
    fn pop_uncounted(&mut self) -> Option<DataPacket> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        Some(pkt)
    }
}

/// A drop-tail FIFO queue.
#[derive(Clone, Debug)]
pub struct DropTailQueue {
    core: FifoCore,
}

impl DropTailQueue {
    /// Creates an empty queue with the given capacity.
    pub fn new(capacity: QueueCapacity) -> Self {
        DropTailQueue {
            core: FifoCore::new(capacity),
        }
    }

    /// Current queue occupancy in packets.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.core.queue.is_empty()
    }

    /// Current queue occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.core.bytes
    }

    /// The configured capacity.
    pub fn capacity(&self) -> QueueCapacity {
        self.core.capacity
    }

    /// Lifetime counters.
    pub fn counters(&self) -> QueueCounters {
        self.core.counters
    }

    /// Attempts to enqueue `pkt` at time `now`.
    ///
    /// Returns `true` if the packet was accepted and `false` if it was
    /// dropped at the tail.
    pub fn enqueue(&mut self, pkt: DataPacket, now: SimTime) -> bool {
        if !self.core.admits(&pkt) {
            self.core.counters.count_drop(pkt.flow);
            return false;
        }
        self.core.push(pkt, now);
        true
    }

    /// Removes the head-of-line packet, if any.
    pub fn dequeue(&mut self) -> Option<DataPacket> {
        self.core.pop_dequeued()
    }

    /// Peeks at the head-of-line packet without removing it.
    pub fn peek(&self) -> Option<&DataPacket> {
        self.core.queue.front()
    }
}

// ---------------------------------------------------------------------------
// Queue disciplines
// ---------------------------------------------------------------------------

/// Configuration of the gateway queue discipline.
///
/// `DropTail` is the paper's original gateway and the default everywhere; the
/// AQM variants are what the `aqm` fuzzing mode evolves. Parameters are the
/// classic ones: RED thresholds are in packets of instantaneous occupancy
/// (a deliberate simplification of the EWMA average — deterministic and easy
/// to reason about in minimized findings), CoDel uses the standard
/// target-sojourn/interval control law.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Qdisc {
    /// Plain drop-tail FIFO (the paper's gateway).
    DropTail,
    /// Random Early Detection: between `min_thresh` and `max_thresh` packets
    /// of occupancy, arriving packets are marked (ECT) or dropped (non-ECT)
    /// with probability ramping from 0 to `mark_probability`; at or beyond
    /// `max_thresh` every arrival is dropped.
    Red {
        /// Occupancy (packets) below which nothing is marked or dropped.
        min_thresh: usize,
        /// Occupancy (packets) at which the drop probability reaches 1.
        max_thresh: usize,
        /// Maximum early mark/drop probability at `max_thresh` occupancy.
        mark_probability: f64,
    },
    /// Controlled Delay: when the head-of-line sojourn time has exceeded
    /// `target` for at least `interval`, packets are marked (ECT) or dropped
    /// (non-ECT) at dequeue, at a rate that increases with the square root
    /// of the drop count (the CoDel control law).
    CoDel {
        /// Acceptable persistent queueing delay.
        target: SimDuration,
        /// Sliding window over which the delay must persist.
        interval: SimDuration,
    },
}

impl Qdisc {
    /// Short name used in reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Qdisc::DropTail => "droptail",
            Qdisc::Red { .. } => "red",
            Qdisc::CoDel { .. } => "codel",
        }
    }

    /// A deterministic human-readable label including the parameters, e.g.
    /// `red(min=20,max=60,p=0.10)`.
    pub fn label(&self) -> String {
        match self {
            Qdisc::DropTail => "droptail".to_string(),
            Qdisc::Red {
                min_thresh,
                max_thresh,
                mark_probability,
            } => format!("red(min={min_thresh},max={max_thresh},p={mark_probability:.2})"),
            Qdisc::CoDel { target, interval } => format!(
                "codel(target={}ms,interval={}ms)",
                target.as_millis(),
                interval.as_millis()
            ),
        }
    }

    /// Classic RED defaults for a queue of `capacity` packets.
    pub fn red_default(capacity: usize) -> Qdisc {
        Qdisc::Red {
            min_thresh: (capacity / 5).max(1),
            max_thresh: (3 * capacity / 5).max(2),
            mark_probability: 0.1,
        }
    }

    /// Standard CoDel parameters (5 ms target, 100 ms interval).
    pub fn codel_default() -> Qdisc {
        Qdisc::CoDel {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }

    /// Checks parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Qdisc::DropTail => Ok(()),
            Qdisc::Red {
                min_thresh,
                max_thresh,
                mark_probability,
            } => {
                if min_thresh >= max_thresh {
                    return Err(format!(
                        "RED min_thresh {min_thresh} must be below max_thresh {max_thresh}"
                    ));
                }
                if !(*mark_probability > 0.0 && *mark_probability <= 1.0) {
                    return Err(format!(
                        "RED mark_probability {mark_probability} must be in (0, 1]"
                    ));
                }
                Ok(())
            }
            Qdisc::CoDel { target, interval } => {
                if *target == SimDuration::ZERO {
                    return Err("CoDel target must be positive".into());
                }
                if *interval == SimDuration::ZERO {
                    return Err("CoDel interval must be positive".into());
                }
                Ok(())
            }
        }
    }
}

/// What happened to a packet offered to the gateway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted unmarked.
    Accepted,
    /// Accepted and CE-marked by the discipline (ECN-capable packet).
    AcceptedMarked,
    /// Dropped (tail overflow or early AQM drop).
    Dropped,
}

impl EnqueueOutcome {
    /// `true` when the packet entered the queue (marked or not).
    pub fn accepted(&self) -> bool {
        !matches!(self, EnqueueOutcome::Dropped)
    }
}

/// A RED queue: drop-tail FIFO storage plus early marking/dropping between
/// the configured thresholds. Probabilistic decisions draw from a private
/// deterministic [`SimRng`], so identical (config, trace, seed) runs remain
/// bit-identical.
#[derive(Clone, Debug)]
pub struct RedQueue {
    min_thresh: usize,
    max_thresh: usize,
    mark_probability: f64,
    core: FifoCore,
    rng: SimRng,
}

impl RedQueue {
    fn new(
        capacity: QueueCapacity,
        min_thresh: usize,
        max_thresh: usize,
        mark_probability: f64,
        seed: u64,
    ) -> Self {
        RedQueue {
            min_thresh,
            max_thresh,
            mark_probability,
            core: FifoCore::new(capacity),
            // A fixed stream offset keeps the queue's randomness independent
            // of any other consumer of the scenario seed.
            rng: SimRng::new(seed).fork(0x71d5_c0de),
        }
    }

    fn enqueue(&mut self, mut pkt: DataPacket, now: SimTime) -> EnqueueOutcome {
        let occupancy = self.core.len();
        // Hard limits first: the physical buffer and the full-drop threshold.
        if !self.core.admits(&pkt) || occupancy >= self.max_thresh {
            self.core.counters.count_drop(pkt.flow);
            return EnqueueOutcome::Dropped;
        }
        let mut marked = false;
        if occupancy >= self.min_thresh {
            // Linear ramp of the early-action probability over
            // [min_thresh, max_thresh).
            let span = (self.max_thresh - self.min_thresh).max(1) as f64;
            let p = self.mark_probability * (occupancy - self.min_thresh) as f64 / span;
            if self.rng.gen_bool(p) {
                if pkt.ect {
                    pkt.ce = true;
                    marked = true;
                    self.core.counters.count_mark(pkt.flow);
                } else {
                    self.core.counters.count_drop(pkt.flow);
                    return EnqueueOutcome::Dropped;
                }
            }
        }
        self.core.push(pkt, now);
        if marked {
            EnqueueOutcome::AcceptedMarked
        } else {
            EnqueueOutcome::Accepted
        }
    }
}

/// A CoDel queue: drop-tail FIFO storage plus sojourn-time-driven marking or
/// dropping at the head (RFC 8289, simplified to packet granularity).
#[derive(Clone, Debug)]
pub struct CoDelQueue {
    target: SimDuration,
    interval: SimDuration,
    core: FifoCore,
    /// When the sojourn time first exceeded `target` (0 = not above).
    first_above_time: Option<SimTime>,
    /// Whether the queue is in the dropping state.
    dropping: bool,
    /// Next scheduled mark/drop instant while dropping.
    drop_next: SimTime,
    /// Marks/drops performed in the current dropping episode.
    count: u64,
    /// `count` when the previous dropping episode ended.
    last_count: u64,
}

impl CoDelQueue {
    fn new(capacity: QueueCapacity, target: SimDuration, interval: SimDuration) -> Self {
        CoDelQueue {
            target,
            interval,
            core: FifoCore::new(capacity),
            first_above_time: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
        }
    }

    fn enqueue(&mut self, pkt: DataPacket, now: SimTime) -> EnqueueOutcome {
        if !self.core.admits(&pkt) {
            self.core.counters.count_drop(pkt.flow);
            return EnqueueOutcome::Dropped;
        }
        self.core.push(pkt, now);
        EnqueueOutcome::Accepted
    }

    /// `interval / sqrt(count)`, the CoDel control-law spacing.
    fn control_law(&self, from: SimTime) -> SimTime {
        let scaled = self.interval.as_nanos() as f64 / (self.count.max(1) as f64).sqrt();
        from + SimDuration::from_nanos(scaled as u64)
    }

    /// Checks whether the head packet should be acted upon at `now`.
    /// Returns `false` (and resets the above-target tracking) when the
    /// sojourn time is back below target or the queue drained.
    fn should_act(&mut self, now: SimTime) -> bool {
        let Some(head) = self.core.queue.front() else {
            self.first_above_time = None;
            return false;
        };
        let sojourn = now.saturating_since(head.enqueued_at);
        if sojourn < self.target {
            self.first_above_time = None;
            return false;
        }
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now + self.interval);
                false
            }
            Some(t) => now >= t,
        }
    }

    /// Acts on the head packet per the control law: an ECT head is marked
    /// and delivered (`Some((pkt, true))`), a non-ECT head is dropped and
    /// reported (`None` — the caller's loop continues to the next packet).
    fn act_on_head<F: FnMut(DataPacket)>(
        &mut self,
        on_drop: &mut F,
    ) -> Option<Option<(DataPacket, bool)>> {
        let mut pkt = self.core.pop_uncounted()?;
        if pkt.ect {
            pkt.ce = true;
            self.core.counters.count_mark(pkt.flow);
            match pkt.flow {
                FlowId::Cca(_) => self.core.counters.dequeued_cca += 1,
                FlowId::CrossTraffic => self.core.counters.dequeued_cross += 1,
            }
            Some(Some((pkt, true)))
        } else {
            self.core.counters.count_drop(pkt.flow);
            on_drop(pkt);
            Some(None)
        }
    }

    /// Dequeues the next deliverable packet, applying the CoDel control law:
    /// while in the dropping state, due packets are CE-marked (ECT) or
    /// dropped (non-ECT, reported through `on_drop`) at `drop_next` instants.
    /// The `bool` of a returned pair is `true` when the packet was marked by
    /// this dequeue.
    fn dequeue_at<F: FnMut(DataPacket)>(
        &mut self,
        now: SimTime,
        mut on_drop: F,
    ) -> Option<(DataPacket, bool)> {
        loop {
            let act = self.should_act(now);
            if self.dropping {
                if !act {
                    self.dropping = false;
                } else if now >= self.drop_next {
                    self.count += 1;
                    self.drop_next = self.control_law(self.drop_next);
                    match self.act_on_head(&mut on_drop)? {
                        Some(delivered) => return Some(delivered),
                        None => continue,
                    }
                }
            } else if act {
                // Enter the dropping state. Resume from the previous
                // episode's rate when it ended recently (standard CoDel
                // hysteresis), otherwise restart from 1.
                self.dropping = true;
                self.count =
                    if self.count > self.last_count + 1 && now < self.drop_next + self.interval {
                        self.count - self.last_count
                    } else {
                        1
                    };
                self.last_count = self.count;
                self.drop_next = self.control_law(now);
                match self.act_on_head(&mut on_drop)? {
                    Some(delivered) => return Some(delivered),
                    None => continue,
                }
            }
            return self.core.pop_dequeued().map(|pkt| (pkt, false));
        }
    }
}

/// The runtime gateway queue: one variant per [`Qdisc`], dispatched by
/// `match` (like `CcaDispatch`) so the per-packet path pays no virtual call.
#[derive(Clone, Debug)]
pub enum GatewayQueue {
    /// Plain drop-tail FIFO.
    DropTail(DropTailQueue),
    /// Random Early Detection.
    Red(RedQueue),
    /// Controlled Delay.
    CoDel(CoDelQueue),
}

impl GatewayQueue {
    /// Builds the gateway queue for a discipline. `seed` feeds RED's
    /// deterministic mark lottery (ignored by the other disciplines).
    pub fn new(qdisc: Qdisc, capacity: QueueCapacity, seed: u64) -> Self {
        match qdisc {
            Qdisc::DropTail => GatewayQueue::DropTail(DropTailQueue::new(capacity)),
            Qdisc::Red {
                min_thresh,
                max_thresh,
                mark_probability,
            } => GatewayQueue::Red(RedQueue::new(
                capacity,
                min_thresh,
                max_thresh,
                mark_probability,
                seed,
            )),
            Qdisc::CoDel { target, interval } => {
                GatewayQueue::CoDel(CoDelQueue::new(capacity, target, interval))
            }
        }
    }

    /// Like [`GatewayQueue::new`], but adopts a previously used FIFO ring as
    /// the queue's storage so repeated simulation set-ups skip the deque
    /// growth. The storage is cleared first: a recycled queue is
    /// indistinguishable from a fresh one apart from capacity.
    pub fn new_with_storage(
        qdisc: Qdisc,
        capacity: QueueCapacity,
        seed: u64,
        mut storage: VecDeque<DataPacket>,
    ) -> Self {
        storage.clear();
        let mut q = GatewayQueue::new(qdisc, capacity, seed);
        match &mut q {
            GatewayQueue::DropTail(d) => d.core.queue = storage,
            GatewayQueue::Red(r) => r.core.queue = storage,
            GatewayQueue::CoDel(c) => c.core.queue = storage,
        }
        q
    }

    /// Recovers the FIFO storage for reuse by a later queue (cleared).
    pub fn into_storage(self) -> VecDeque<DataPacket> {
        let mut queue = match self {
            GatewayQueue::DropTail(q) => q.core.queue,
            GatewayQueue::Red(q) => q.core.queue,
            GatewayQueue::CoDel(q) => q.core.queue,
        };
        queue.clear();
        queue
    }

    /// The configured discipline.
    pub fn qdisc(&self) -> Qdisc {
        match self {
            GatewayQueue::DropTail(_) => Qdisc::DropTail,
            GatewayQueue::Red(q) => Qdisc::Red {
                min_thresh: q.min_thresh,
                max_thresh: q.max_thresh,
                mark_probability: q.mark_probability,
            },
            GatewayQueue::CoDel(q) => Qdisc::CoDel {
                target: q.target,
                interval: q.interval,
            },
        }
    }

    /// Current queue occupancy in packets.
    pub fn len(&self) -> usize {
        match self {
            GatewayQueue::DropTail(q) => q.len(),
            GatewayQueue::Red(q) => q.core.len(),
            GatewayQueue::CoDel(q) => q.core.len(),
        }
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current queue occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            GatewayQueue::DropTail(q) => q.bytes(),
            GatewayQueue::Red(q) => q.core.bytes,
            GatewayQueue::CoDel(q) => q.core.bytes,
        }
    }

    /// Lifetime counters.
    pub fn counters(&self) -> QueueCounters {
        match self {
            GatewayQueue::DropTail(q) => q.counters(),
            GatewayQueue::Red(q) => q.core.counters,
            GatewayQueue::CoDel(q) => q.core.counters,
        }
    }

    /// Offers `pkt` to the gateway at `now`.
    pub fn enqueue(&mut self, pkt: DataPacket, now: SimTime) -> EnqueueOutcome {
        match self {
            GatewayQueue::DropTail(q) => {
                if q.enqueue(pkt, now) {
                    EnqueueOutcome::Accepted
                } else {
                    EnqueueOutcome::Dropped
                }
            }
            GatewayQueue::Red(q) => q.enqueue(pkt, now),
            GatewayQueue::CoDel(q) => q.enqueue(pkt, now),
        }
    }

    /// Removes the next deliverable packet at `now`; the returned `bool` is
    /// `true` when this dequeue CE-marked the packet (so the caller can
    /// account dequeue-time marks without knowing which discipline marks
    /// where). CoDel may drop (non-ECT) head packets while searching; each
    /// such casualty is reported through `on_drop` before the next candidate
    /// is considered. Drop-tail and RED never drop or mark at dequeue, so
    /// for them this is exactly [`DropTailQueue::dequeue`].
    pub fn dequeue_at<F: FnMut(DataPacket)>(
        &mut self,
        now: SimTime,
        on_drop: F,
    ) -> Option<(DataPacket, bool)> {
        match self {
            GatewayQueue::DropTail(q) => q.dequeue().map(|pkt| (pkt, false)),
            GatewayQueue::Red(q) => q.core.pop_dequeued().map(|pkt| (pkt, false)),
            GatewayQueue::CoDel(q) => q.dequeue_at(now, on_drop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_MSS;

    fn pkt(seq: u64) -> DataPacket {
        DataPacket::cca(seq, DEFAULT_MSS, false, SimTime::ZERO)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(10));
        for i in 0..5 {
            assert!(q.enqueue(pkt(i), SimTime::from_millis(i)));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().seq, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drop_tail_on_packet_capacity() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(3));
        assert!(q.enqueue(pkt(0), SimTime::ZERO));
        assert!(q.enqueue(pkt(1), SimTime::ZERO));
        assert!(q.enqueue(pkt(2), SimTime::ZERO));
        assert!(
            !q.enqueue(pkt(3), SimTime::ZERO),
            "fourth packet must be dropped"
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.counters().dropped_cca, 1);
        // After a dequeue there is room again.
        q.dequeue();
        assert!(q.enqueue(pkt(4), SimTime::ZERO));
    }

    #[test]
    fn drop_tail_on_byte_capacity() {
        let mut q = DropTailQueue::new(QueueCapacity::Bytes(3_000));
        assert!(q.enqueue(pkt(0), SimTime::ZERO)); // 1448
        assert!(q.enqueue(pkt(1), SimTime::ZERO)); // 2896
        assert!(!q.enqueue(pkt(2), SimTime::ZERO)); // would be 4344 > 3000
        assert_eq!(q.bytes(), 2 * DEFAULT_MSS as u64);
    }

    #[test]
    fn byte_capacity_boundary_is_exact() {
        // Regression pin for the byte-capacity admission boundary: the
        // check must compare the *post-enqueue* total against the limit
        // (admit iff bytes + size <= max). Comparing the pre-enqueue total
        // instead would admit one extra packet at the boundary and let the
        // resident bytes exceed the configured capacity.
        let sized = |seq: u64, size: u32| DataPacket::cca(seq, size, false, SimTime::ZERO);

        // Exactly filling the capacity is admitted...
        let mut q = DropTailQueue::new(QueueCapacity::Bytes(3 * 1_000));
        assert!(q.enqueue(sized(0, 1_000), SimTime::ZERO));
        assert!(q.enqueue(sized(1, 1_000), SimTime::ZERO));
        assert!(
            q.enqueue(sized(2, 1_000), SimTime::ZERO),
            "a packet that lands exactly on the byte limit is admitted"
        );
        assert_eq!(q.bytes(), 3_000);
        // ...one byte over is not, even though the pre-enqueue total
        // (3000) equals the limit.
        assert!(
            !q.enqueue(sized(3, 1), SimTime::ZERO),
            "pre-enqueue total == limit must not admit another packet"
        );
        assert_eq!(q.bytes(), 3_000, "resident bytes never exceed capacity");

        // A single packet larger than the whole capacity never fits.
        let mut q = DropTailQueue::new(QueueCapacity::Bytes(500));
        assert!(!q.enqueue(sized(0, 501), SimTime::ZERO));
        assert!(q.enqueue(sized(1, 500), SimTime::ZERO));

        // All disciplines share the same admission helper, so the boundary
        // is identical behind RED and CoDel.
        for qdisc in [Qdisc::red_default(100), Qdisc::codel_default()] {
            let mut q = GatewayQueue::new(qdisc, QueueCapacity::Bytes(2 * 1_000), 1);
            assert!(q.enqueue(sized(0, 1_000), SimTime::ZERO).accepted());
            assert!(q.enqueue(sized(1, 1_000), SimTime::ZERO).accepted());
            assert!(
                !q.enqueue(sized(2, 1), SimTime::ZERO).accepted(),
                "{}: byte boundary differs from drop-tail",
                qdisc.name()
            );
            assert_eq!(q.bytes(), 2_000);
        }
    }

    // ------------------------------------------------------------------
    // Queue disciplines
    // ------------------------------------------------------------------

    fn ect_pkt(seq: u64) -> DataPacket {
        let mut p = pkt(seq);
        p.ect = true;
        p
    }

    #[test]
    fn qdisc_validation_and_labels() {
        assert!(Qdisc::DropTail.validate().is_ok());
        assert!(Qdisc::red_default(100).validate().is_ok());
        assert!(Qdisc::codel_default().validate().is_ok());
        assert_eq!(Qdisc::DropTail.name(), "droptail");
        assert_eq!(Qdisc::red_default(100).name(), "red");
        assert_eq!(Qdisc::codel_default().name(), "codel");
        assert_eq!(Qdisc::red_default(100).label(), "red(min=20,max=60,p=0.10)");
        assert_eq!(
            Qdisc::codel_default().label(),
            "codel(target=5ms,interval=100ms)"
        );

        let bad = Qdisc::Red {
            min_thresh: 50,
            max_thresh: 50,
            mark_probability: 0.1,
        };
        assert!(bad.validate().is_err());
        let bad = Qdisc::Red {
            min_thresh: 10,
            max_thresh: 50,
            mark_probability: 0.0,
        };
        assert!(bad.validate().is_err());
        let bad = Qdisc::CoDel {
            target: SimDuration::ZERO,
            interval: SimDuration::from_millis(100),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn gateway_droptail_matches_plain_droptail() {
        // The DropTail variant must behave exactly like the standalone
        // queue: same admissions, same counters, no marks ever.
        let mut plain = DropTailQueue::new(QueueCapacity::Packets(3));
        let mut gw = GatewayQueue::new(Qdisc::DropTail, QueueCapacity::Packets(3), 42);
        for i in 0..6 {
            let a = plain.enqueue(pkt(i), SimTime::ZERO);
            let b = gw.enqueue(pkt(i), SimTime::ZERO);
            assert_eq!(a, b.accepted());
            assert_ne!(b, EnqueueOutcome::AcceptedMarked);
        }
        for _ in 0..4 {
            let a = plain.dequeue();
            let b = gw.dequeue_at(SimTime::ZERO, |_| {
                panic!("drop-tail never drops at dequeue")
            });
            assert_eq!(a, b.map(|(pkt, _)| pkt));
            assert!(
                !b.map(|(_, marked)| marked).unwrap_or(false),
                "drop-tail never marks at dequeue"
            );
        }
        assert_eq!(plain.counters(), gw.counters());
        assert_eq!(gw.counters().total_marked(), 0);
    }

    #[test]
    fn red_marks_ect_and_drops_nonect_above_min_thresh() {
        let qdisc = Qdisc::Red {
            min_thresh: 2,
            max_thresh: 8,
            mark_probability: 1.0,
        };
        // ECT traffic: above min_thresh every admitted packet is marked
        // (p=1 at full ramp is reached only at max; with p ramping linearly
        // some are marked, none dropped before max_thresh).
        let mut q = GatewayQueue::new(qdisc, QueueCapacity::Packets(100), 7);
        let mut marked = 0;
        let mut dropped = 0;
        for i in 0..100 {
            match q.enqueue(ect_pkt(i), SimTime::ZERO) {
                EnqueueOutcome::AcceptedMarked => marked += 1,
                EnqueueOutcome::Dropped => dropped += 1,
                EnqueueOutcome::Accepted => {}
            }
        }
        assert!(marked > 0, "RED must mark ECT packets above min_thresh");
        assert!(
            dropped > 0,
            "RED must hard-drop at/above max_thresh regardless of ECT"
        );
        assert_eq!(q.counters().marked_cca, marked);
        assert_eq!(q.counters().dropped_cca, dropped);
        // Marked packets carry CE through the queue; RED marks at enqueue,
        // so no dequeue ever reports a fresh mark.
        let mut ce_out = 0;
        while let Some((p, marked_now)) = q.dequeue_at(SimTime::ZERO, |_| {}) {
            assert!(!marked_now, "RED never marks at dequeue");
            if p.ce {
                ce_out += 1;
            }
        }
        assert_eq!(ce_out, marked, "every mark leaves the queue as CE");

        // Non-ECT traffic: same configuration must early-drop instead of
        // marking.
        let mut q = GatewayQueue::new(qdisc, QueueCapacity::Packets(100), 7);
        let mut early_dropped = 0;
        for i in 0..8 {
            if !q.enqueue(pkt(i), SimTime::ZERO).accepted() {
                early_dropped += 1;
            }
        }
        assert!(early_dropped > 0, "non-ECT packets are dropped, not marked");
        assert_eq!(q.counters().total_marked(), 0);
    }

    #[test]
    fn red_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut q =
                GatewayQueue::new(Qdisc::red_default(100), QueueCapacity::Packets(100), seed);
            (0..200u64)
                .map(|i| {
                    if i % 3 == 0 {
                        q.dequeue_at(SimTime::ZERO, |_| {});
                    }
                    q.enqueue(ect_pkt(i), SimTime::ZERO)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same seed, same lottery");
        assert_ne!(run(5), run(6), "different seeds explore different marks");
    }

    #[test]
    fn codel_marks_after_sojourn_exceeds_target_for_interval() {
        let qdisc = Qdisc::CoDel {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        };
        let mut q = GatewayQueue::new(qdisc, QueueCapacity::Packets(500), 1);
        // Fill at t=0, then dequeue slowly so sojourn stays far above the
        // 5 ms target for much longer than the interval.
        for i in 0..400 {
            assert!(q.enqueue(ect_pkt(i), SimTime::ZERO).accepted());
        }
        let mut marked = 0;
        let mut t = SimTime::ZERO;
        while let Some((p, marked_now)) =
            q.dequeue_at(t, |_| panic!("ECT packets are marked, not dropped"))
        {
            assert_eq!(p.ce, marked_now, "CoDel marks exactly at dequeue");
            if p.ce {
                marked += 1;
            }
            t += SimDuration::from_millis(2);
        }
        assert!(
            marked > 1,
            "persistent queue must trigger repeated CoDel marks, got {marked}"
        );
        assert_eq!(q.counters().marked_cca, marked);
        // A short queue (sojourn below target) is never marked.
        let mut q = GatewayQueue::new(qdisc, QueueCapacity::Packets(500), 1);
        let mut t = SimTime::ZERO;
        for i in 0..50 {
            q.enqueue(ect_pkt(i), t);
            let out = q.dequeue_at(t + SimDuration::from_millis(1), |_| {});
            assert!(matches!(out, Some((p, false)) if !p.ce));
            t += SimDuration::from_millis(2);
        }
        assert_eq!(q.counters().total_marked(), 0);
    }

    #[test]
    fn codel_drops_nonect_at_dequeue_and_reports_them() {
        let qdisc = Qdisc::CoDel {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(50),
        };
        let mut q = GatewayQueue::new(qdisc, QueueCapacity::Packets(500), 1);
        for i in 0..300 {
            assert!(q.enqueue(pkt(i), SimTime::ZERO).accepted());
        }
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut t = SimTime::from_millis(60);
        while let Some((p, marked_now)) = q.dequeue_at(t, |_| dropped += 1) {
            assert!(!p.ce, "non-ECT packets must never carry CE");
            assert!(!marked_now);
            delivered += 1;
            t += SimDuration::from_millis(3);
        }
        assert!(dropped > 0, "persistent non-ECT queue must shed packets");
        assert_eq!(delivered + dropped, 300, "every packet accounted for");
        let c = q.counters();
        assert_eq!(c.dropped_cca, dropped);
        assert_eq!(c.dequeued_cca, delivered);
        assert_eq!(c.total_marked(), 0);
    }

    #[test]
    fn enqueue_timestamps_recorded() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(10));
        let t = SimTime::from_millis(42);
        q.enqueue(pkt(0), t);
        assert_eq!(q.peek().unwrap().enqueued_at, t);
    }

    #[test]
    fn per_flow_counters() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(2));
        q.enqueue(pkt(0), SimTime::ZERO);
        q.enqueue(
            DataPacket::cross_traffic(0, DEFAULT_MSS, SimTime::ZERO),
            SimTime::ZERO,
        );
        // Queue full; both further arrivals dropped.
        q.enqueue(pkt(1), SimTime::ZERO);
        q.enqueue(
            DataPacket::cross_traffic(1, DEFAULT_MSS, SimTime::ZERO),
            SimTime::ZERO,
        );
        q.dequeue();
        q.dequeue();
        let c = q.counters();
        assert_eq!(c.enqueued_cca, 1);
        assert_eq!(c.enqueued_cross, 1);
        assert_eq!(c.dropped_cca, 1);
        assert_eq!(c.dropped_cross, 1);
        assert_eq!(c.dequeued_cca, 1);
        assert_eq!(c.dequeued_cross, 1);
        assert_eq!(c.total_enqueued(), 2);
        assert_eq!(c.total_dropped(), 2);
        assert_eq!(c.total_dequeued(), 2);
    }

    #[test]
    fn conservation_invariant() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(5));
        let mut accepted = 0u64;
        for i in 0..20 {
            if q.enqueue(pkt(i), SimTime::ZERO) {
                accepted += 1;
            }
            if i % 3 == 0 {
                q.dequeue();
            }
        }
        let c = q.counters();
        assert_eq!(c.total_enqueued(), accepted);
        assert_eq!(
            c.total_enqueued(),
            c.total_dequeued() + q.len() as u64,
            "every accepted packet is either dequeued or still resident"
        );
    }
}
