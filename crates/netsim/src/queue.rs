//! Bottleneck gateway queue.
//!
//! The paper's topology uses a single fixed-size drop-tail FIFO queue at the
//! gateway (§3.1). The queue is sized in packets (as in the paper's NS3
//! setup); a byte-based limit is also supported for completeness.

use crate::packet::{DataPacket, FlowId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queue capacity specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueCapacity {
    /// At most this many packets may be queued.
    Packets(usize),
    /// At most this many bytes may be queued.
    Bytes(u64),
}

/// Counters describing everything that ever happened to the queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Packets accepted into the queue, per flow.
    pub enqueued_cca: u64,
    /// Cross-traffic packets accepted into the queue.
    pub enqueued_cross: u64,
    /// Packets dropped at the tail, CCA flow.
    pub dropped_cca: u64,
    /// Packets dropped at the tail, cross traffic.
    pub dropped_cross: u64,
    /// Packets dequeued (transmitted on the bottleneck), CCA flow.
    pub dequeued_cca: u64,
    /// Packets dequeued, cross traffic.
    pub dequeued_cross: u64,
}

impl QueueCounters {
    /// Total packets that were accepted into the queue.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued_cca + self.enqueued_cross
    }

    /// Total packets dropped at the tail.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_cca + self.dropped_cross
    }

    /// Total packets dequeued onto the link.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued_cca + self.dequeued_cross
    }
}

/// A drop-tail FIFO queue.
#[derive(Clone, Debug)]
pub struct DropTailQueue {
    capacity: QueueCapacity,
    queue: VecDeque<DataPacket>,
    bytes: u64,
    counters: QueueCounters,
}

impl DropTailQueue {
    /// Creates an empty queue with the given capacity.
    pub fn new(capacity: QueueCapacity) -> Self {
        DropTailQueue {
            capacity,
            queue: VecDeque::new(),
            bytes: 0,
            counters: QueueCounters::default(),
        }
    }

    /// Current queue occupancy in packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Current queue occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured capacity.
    pub fn capacity(&self) -> QueueCapacity {
        self.capacity
    }

    /// Lifetime counters.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    fn would_overflow(&self, pkt: &DataPacket) -> bool {
        match self.capacity {
            QueueCapacity::Packets(max) => self.queue.len() + 1 > max,
            QueueCapacity::Bytes(max) => self.bytes + pkt.size as u64 > max,
        }
    }

    /// Attempts to enqueue `pkt` at time `now`.
    ///
    /// Returns `true` if the packet was accepted and `false` if it was
    /// dropped at the tail.
    pub fn enqueue(&mut self, mut pkt: DataPacket, now: SimTime) -> bool {
        if self.would_overflow(&pkt) {
            match pkt.flow {
                FlowId::Cca(_) => self.counters.dropped_cca += 1,
                FlowId::CrossTraffic => self.counters.dropped_cross += 1,
            }
            return false;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        match pkt.flow {
            FlowId::Cca(_) => self.counters.enqueued_cca += 1,
            FlowId::CrossTraffic => self.counters.enqueued_cross += 1,
        }
        self.queue.push_back(pkt);
        true
    }

    /// Removes the head-of-line packet, if any.
    pub fn dequeue(&mut self) -> Option<DataPacket> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        match pkt.flow {
            FlowId::Cca(_) => self.counters.dequeued_cca += 1,
            FlowId::CrossTraffic => self.counters.dequeued_cross += 1,
        }
        Some(pkt)
    }

    /// Peeks at the head-of-line packet without removing it.
    pub fn peek(&self) -> Option<&DataPacket> {
        self.queue.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_MSS;

    fn pkt(seq: u64) -> DataPacket {
        DataPacket::cca(seq, DEFAULT_MSS, false, SimTime::ZERO)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(10));
        for i in 0..5 {
            assert!(q.enqueue(pkt(i), SimTime::from_millis(i)));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().seq, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drop_tail_on_packet_capacity() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(3));
        assert!(q.enqueue(pkt(0), SimTime::ZERO));
        assert!(q.enqueue(pkt(1), SimTime::ZERO));
        assert!(q.enqueue(pkt(2), SimTime::ZERO));
        assert!(
            !q.enqueue(pkt(3), SimTime::ZERO),
            "fourth packet must be dropped"
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.counters().dropped_cca, 1);
        // After a dequeue there is room again.
        q.dequeue();
        assert!(q.enqueue(pkt(4), SimTime::ZERO));
    }

    #[test]
    fn drop_tail_on_byte_capacity() {
        let mut q = DropTailQueue::new(QueueCapacity::Bytes(3_000));
        assert!(q.enqueue(pkt(0), SimTime::ZERO)); // 1448
        assert!(q.enqueue(pkt(1), SimTime::ZERO)); // 2896
        assert!(!q.enqueue(pkt(2), SimTime::ZERO)); // would be 4344 > 3000
        assert_eq!(q.bytes(), 2 * DEFAULT_MSS as u64);
    }

    #[test]
    fn enqueue_timestamps_recorded() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(10));
        let t = SimTime::from_millis(42);
        q.enqueue(pkt(0), t);
        assert_eq!(q.peek().unwrap().enqueued_at, t);
    }

    #[test]
    fn per_flow_counters() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(2));
        q.enqueue(pkt(0), SimTime::ZERO);
        q.enqueue(
            DataPacket::cross_traffic(0, DEFAULT_MSS, SimTime::ZERO),
            SimTime::ZERO,
        );
        // Queue full; both further arrivals dropped.
        q.enqueue(pkt(1), SimTime::ZERO);
        q.enqueue(
            DataPacket::cross_traffic(1, DEFAULT_MSS, SimTime::ZERO),
            SimTime::ZERO,
        );
        q.dequeue();
        q.dequeue();
        let c = q.counters();
        assert_eq!(c.enqueued_cca, 1);
        assert_eq!(c.enqueued_cross, 1);
        assert_eq!(c.dropped_cca, 1);
        assert_eq!(c.dropped_cross, 1);
        assert_eq!(c.dequeued_cca, 1);
        assert_eq!(c.dequeued_cross, 1);
        assert_eq!(c.total_enqueued(), 2);
        assert_eq!(c.total_dropped(), 2);
        assert_eq!(c.total_dequeued(), 2);
    }

    #[test]
    fn conservation_invariant() {
        let mut q = DropTailQueue::new(QueueCapacity::Packets(5));
        let mut accepted = 0u64;
        for i in 0..20 {
            if q.enqueue(pkt(i), SimTime::ZERO) {
                accepted += 1;
            }
            if i % 3 == 0 {
                q.dequeue();
            }
        }
        let c = q.counters();
        assert_eq!(c.total_enqueued(), accepted);
        assert_eq!(
            c.total_enqueued(),
            c.total_dequeued() + q.len() as u64,
            "every accepted packet is either dequeued or still resident"
        );
    }
}
