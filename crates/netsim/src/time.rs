//! Simulation time.
//!
//! Time is an integer number of nanoseconds since the start of the
//! simulation. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and the simulator bit-for-bit reproducible, which the
//! genetic algorithm relies on for convergence.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never" for timers).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from (possibly fractional) seconds since start.
    ///
    /// Negative values saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime(0)
        } else {
            SimTime((secs * 1e9).round() as u64)
        }
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from (possibly fractional) seconds.
    ///
    /// Negative values saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * 1e9).round() as u64)
        }
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting and rate computation).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Multiplies the duration by a float factor (used for RTO backoff and
    /// smoothing). Negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((self.0 as f64 * factor).round() as u64)
        }
    }

    /// Integer division of the duration. Unlike `std::ops::Div`, a zero
    /// divisor is clamped to 1 instead of panicking (timer arithmetic must
    /// not abort a simulation), hence a method rather than the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor.max(1))
    }

    /// The duration needed to serialize `bytes` at `rate_bps` bits per second.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate.
    pub fn transmission_time(bytes: u64, rate_bps: u64) -> SimDuration {
        if rate_bps == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes.saturating_mul(8);
        // ns = bits / (bits/s) * 1e9, computed carefully to avoid overflow.
        let ns = (bits as u128)
            .saturating_mul(1_000_000_000u128)
            .checked_div(rate_bps as u128)
            .unwrap_or(u128::MAX);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_millis(1_500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1_500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        let d = SimDuration::from_secs_f64(0.020);
        assert_eq!(d.as_millis(), 20);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d).as_millis(), 150);
        assert_eq!((t - d).as_millis(), 50);
        assert_eq!(((t + d) - t).as_millis(), 50);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn transmission_time_12mbps() {
        // 1500 bytes at 12 Mbps = 1 ms.
        let d = SimDuration::transmission_time(1500, 12_000_000);
        assert_eq!(d.as_micros(), 1_000);
        // Zero rate never completes.
        assert_eq!(SimDuration::transmission_time(1500, 0), SimDuration::MAX);
    }

    #[test]
    fn mul_and_div() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5).as_micros(), 25_000);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.div(4).as_micros(), 2_500);
        assert_eq!(
            d.div(0).as_millis(),
            10,
            "division by zero clamps divisor to 1"
        );
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
