//! The dumbbell simulation from §3.1 of the paper, generalized to N flows
//! over a chain of N bottleneck hops.
//!
//! Wires together one or more TCP-like sender/receiver pairs, the
//! cross-traffic source, and a [`Topology`](crate::topology::Topology)-
//! defined chain of gateway-queue + bottleneck-link hops, and runs the
//! discrete-event loop. A [`Simulation`] is a pure function of its
//! [`SimConfig`], the plugged-in congestion control algorithms and the
//! per-flow schedule: running the same configuration twice produces
//! bit-identical [`SimResult`]s, which is what lets the genetic algorithm
//! converge (§3.6).
//!
//! Without a topology the chain degenerates to the paper's single
//! bottleneck, with an event sequence identical to the pre-topology engine.
//! With a topology, data packets route hop by hop: service at hop `k`
//! schedules an arrival at hop `k + 1` after hop `k`'s propagation delay,
//! and each flow's [`HopRange`] path decides where its packets enter the
//! chain and where they leave toward the sink (the parking-lot pattern).
//! ACKs return over an uncongested reverse path whose delay is the sum of
//! the propagation delays along the flow's own path.
//!
//! All congestion-controlled flows crossing a hop share that hop's queue
//! and link; arbitration between them is exactly the configured queue
//! discipline — whichever packet reaches the gateway first occupies the
//! queue slot. Every flow has its own sender, receiver, timers, start/stop
//! schedule and [`FlowStats`](crate::stats::FlowStats); flow 0 plays the
//! role of the paper's original single CCA flow and its stats are exposed
//! through the legacy accessors [`RunStats::flow`] and
//! [`RunStats::delivery_times`] (which borrow from `flows[0]` — nothing is
//! copied at the end of a run).
//!
//! ## Hot-path architecture
//!
//! The simulation is the inner loop of every fitness evaluation, so the
//! event plumbing is built to stay off the allocator:
//!
//! * the calendar is a bucketed [`EventQueue`] of 32-byte entries;
//! * packets travelling between events are parked in a [`PacketPool`] slab
//!   and referenced by 4-byte handles;
//! * the congestion controller is a generic parameter (`C`), statically
//!   dispatched when the caller provides an enum or concrete type;
//! * a [`SimScratch`] lets batch drivers (the fuzzer) recycle the calendar
//!   and pool allocations across thousands of evaluations.

use crate::cc::CongestionControl;
use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::link::{LinkAction, LinkModel, LinkService};
use crate::packet::{AckPacket, DataPacket, FlowId, PacketPool};
use crate::queue::{EnqueueOutcome, GatewayQueue};
use crate::rng::SimRng;
use crate::simtrace::{SimTrace, TraceEvent, TraceRecorder};
use crate::stats::{
    BottleneckEvent, BottleneckRecord, FctSample, FlowRates, FlowStats, RunStats, WorkloadStats,
};
use crate::tcp::receiver::{ReceiverConfig, TcpReceiver};
use crate::tcp::sender::{SendPoll, SenderConfig, TcpSender};
use crate::time::{SimDuration, SimTime};
use crate::topology::{hop_seed, HopConfig, HopRange};
use crate::workload::{
    dyn_generation, dyn_handle, dyn_slot, exp_duration, is_dynamic, ArrivalConfig, ArrivalProcess,
    GEN_MODULUS,
};
use std::collections::VecDeque;

/// Per-flow retention cap on sink-side delivery timestamps. Far above what
/// any classic (≤ 32 flow, seconds-long) scenario can deliver, so existing
/// digests never see it; its job is bounding memory when a pathological
/// config would otherwise accumulate millions of samples in one flow.
const MAX_DELIVERY_SAMPLES_PER_FLOW: usize = 1 << 20;

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Everything measured during the run.
    pub stats: RunStats,
    /// The configured duration (useful for rate normalisation downstream).
    pub duration_secs: f64,
}

impl SimResult {
    /// Average goodput of the primary CCA flow over the whole run, in bits
    /// per second.
    pub fn average_goodput_bps(&self, mss: u32) -> f64 {
        if self.duration_secs <= 0.0 {
            return 0.0;
        }
        self.stats.flow().delivered_packets as f64 * mss as f64 * 8.0 / self.duration_secs
    }

    /// Per-flow goodput (sink-side, normalised by each flow's active
    /// interval), in bits per second. Returns an inline-array
    /// [`FlowRates`], so the common single-flow (and up-to-four-flow) case
    /// performs no allocation.
    pub fn per_flow_goodput_bps(&self, mss: u32) -> FlowRates {
        let duration = crate::time::SimDuration::from_secs_f64(self.duration_secs);
        let mut rates = FlowRates::new();
        for f in &self.stats.flows {
            rates.push(f.goodput_bps(mss, duration));
        }
        rates
    }
}

/// One congestion-controlled flow to simulate: its algorithm and schedule.
pub struct FlowSpec<C: CongestionControl = Box<dyn CongestionControl>> {
    /// The congestion control algorithm driving the flow.
    pub cc: C,
    /// When the flow starts sending.
    pub start: SimTime,
    /// When the flow stops sending (`None` = runs until the scenario ends).
    /// After this instant the flow transmits nothing and ignores ACKs and
    /// timers; packets already in the network still drain normally.
    pub stop: Option<SimTime>,
}

impl<C: CongestionControl> FlowSpec<C> {
    /// A flow that runs for the whole scenario.
    pub fn new(cc: C) -> Self {
        FlowSpec {
            cc,
            start: SimTime::ZERO,
            stop: None,
        }
    }
}

/// Per-flow drop/mark/delivery counters, bumped from the queue and sink
/// paths. Grouped in one 24-byte record (three counters that are always
/// touched together) so a counter bump loads exactly one cache line slot.
#[derive(Clone, Copy, Default)]
struct FlowCounters {
    /// Packets of this flow dropped at the bottleneck queue.
    queue_drops: u64,
    /// Packets of this flow CE-marked at the bottleneck queue.
    ce_marked: u64,
    /// Data packets of this flow received at the sink (incl. duplicates).
    sink_received: u64,
}

/// Per-flow runtime state in struct-of-arrays layout.
///
/// The event loop touches exactly one facet of a flow per event — its timer
/// dedupe slot on a timer pop, its sender on an ACK, its counters on a drop.
/// Splitting the former array-of-`FlowRuntime` into parallel vectors means
/// each of those accesses walks a dense homogeneous array instead of
/// striding over whole flow records (sender + receiver together are several
/// hundred bytes), so the hot scalar state of all N flows shares a handful
/// of cache lines.
struct FlowTable<C: CongestionControl> {
    senders: Vec<TcpSender<C>>,
    receivers: Vec<TcpReceiver>,
    start: Vec<SimTime>,
    stop: Vec<Option<SimTime>>,
    /// Dedupe for pacing timer events.
    pacing_scheduled: Vec<Option<SimTime>>,
    /// Last RTO (deadline, generation) scheduled as an event.
    rto_scheduled: Vec<Option<(SimTime, u64)>>,
    /// Sink-side first-delivery times.
    delivery_times: Vec<Vec<SimTime>>,
    /// Drop / mark / sink counters.
    counters: Vec<FlowCounters>,
}

impl<C: CongestionControl> FlowTable<C> {
    fn len(&self) -> usize {
        self.senders.len()
    }

    #[inline]
    fn stopped(&self, flow: usize, now: SimTime) -> bool {
        self.stop[flow].map(|t| now >= t).unwrap_or(false)
    }
}

impl<C: CongestionControl> Default for FlowTable<C> {
    fn default() -> Self {
        FlowTable {
            senders: Vec::new(),
            receivers: Vec::new(),
            start: Vec::new(),
            stop: Vec::new(),
            pacing_scheduled: Vec::new(),
            rto_scheduled: Vec::new(),
            delivery_times: Vec::new(),
            counters: Vec::new(),
        }
    }
}

/// The dynamic-flow slab: bookkeeping for slots that spawn, complete and
/// recycle during a workload run (see [`crate::workload`]).
///
/// Slot `s` owns the [`FlowTable`] entry at index `base + s` (where `base`
/// is the static flow count), so dynamic flows reuse all the per-flow
/// machinery — senders, receivers, timer dedupe slots, counters — that
/// static flows use. The slab only adds lifecycle state: a recycle
/// generation that invalidates stale timer events, the flow's byte budget,
/// and an `in_network` reference count (data packets in queues/links plus
/// ACKs in flight) that defers recycling until nothing in the simulation
/// can still name the slot. Per-event cost is O(active): completed and
/// recycled slots are never iterated, and the slab never grows past the
/// configured concurrency cap — the peak *concurrent* population, not the
/// total arrival count, bounds both memory and bookkeeping.
#[derive(Default)]
struct FlowSlab {
    /// Recycled slot indices available for the next spawn.
    free: Vec<u32>,
    /// Per-slot recycle generation (wraps at [`GEN_MODULUS`]).
    generation: Vec<u16>,
    /// Per-slot transfer size in packets.
    budget: Vec<u64>,
    /// Per-slot spawn time (FCT = completion − spawn).
    spawned_at: Vec<SimTime>,
    /// Per-slot count of this flow's packets/ACKs still inside the
    /// simulation; the slot recycles only once complete *and* zero.
    in_network: Vec<u32>,
    /// Per-slot completion flag (whole budget cumulatively ACKed).
    complete: Vec<bool>,
}

impl FlowSlab {
    /// Slots currently live: allocated and not yet recycled.
    fn live(&self) -> usize {
        self.generation.len() - self.free.len()
    }

    /// Clears all slots, keeping every vector's capacity for the next run.
    fn clear(&mut self) {
        self.free.clear();
        self.generation.clear();
        self.budget.clear();
        self.spawned_at.clear();
        self.in_network.clear();
        self.complete.clear();
    }
}

/// Object-safe source of congestion controllers for dynamically spawned
/// flows. `Simulation<C>` itself carries no `Clone` bound, so the clone
/// happens behind this trait: [`Simulation::install_arrivals`] (which does
/// require `C: Clone`) boxes a prototype pool once per scratch lifetime and
/// refills it in place on later installs, keeping warm evaluations off the
/// allocator.
trait CcSource<C> {
    /// Number of prototypes to pick between.
    fn count(&self) -> usize;
    /// Builds a fresh controller from prototype `pick`.
    fn make(&mut self, pick: usize) -> C;
    /// Replaces the prototype set (drains `protos`, keeping its capacity).
    fn refill(&mut self, protos: &mut Vec<C>);
}

struct ClonePool<C> {
    protos: Vec<C>,
}

impl<C: CongestionControl + Clone> CcSource<C> for ClonePool<C> {
    fn count(&self) -> usize {
        self.protos.len()
    }
    fn make(&mut self, pick: usize) -> C {
        self.protos[pick].clone()
    }
    fn refill(&mut self, protos: &mut Vec<C>) {
        self.protos.clear();
        self.protos.append(protos);
    }
}

/// Runtime state of the workload arrival process (present only when
/// `SimConfig::arrivals` is configured and prototypes were installed).
struct WorkloadRt {
    cfg: ArrivalConfig,
    /// Arrival/size randomness, forked off the scenario seed.
    rng: SimRng,
    /// Independent stream for reservoir sampling, so retaining samples
    /// never perturbs the arrival process.
    reservoir_rng: SimRng,
    /// Index of the first dynamic slot in the flow table (= static count).
    base: usize,
    /// ON/OFF process: end of the current ON burst (`SimTime::MAX` for
    /// Poisson).
    on_until: SimTime,
    /// Path of every dynamic flow: the whole chain.
    dyn_path: HopRange,
    /// ACK return delay along that path.
    dyn_ack_delay: SimDuration,
    /// Sender config template; `buffer_packets` is overridden per spawn
    /// with the flow's sampled size (application-limited transfer).
    sender_cfg: SenderConfig,
    receiver_cfg: ReceiverConfig,
}

impl WorkloadRt {
    /// Draws the next arrival instant strictly after `t`, stepping the
    /// ON/OFF state machine across silent periods when configured.
    fn next_arrival_after(&mut self, t: SimTime) -> SimTime {
        let mut at = t + self.cfg.sample_gap(&mut self.rng);
        if let ArrivalProcess::OnOff {
            mean_on_secs,
            mean_off_secs,
            ..
        } = self.cfg.process
        {
            // A gap overshooting the current burst continues inside the
            // next one: the exponential's memorylessness makes the spill
            // carry over unchanged.
            while at > self.on_until {
                let spill = at.saturating_since(self.on_until);
                let off = exp_duration(1.0 / mean_off_secs, &mut self.rng);
                let burst_start = self.on_until + off;
                self.on_until = burst_start + exp_duration(1.0 / mean_on_secs, &mut self.rng);
                at = burst_start + spill;
            }
        }
        at
    }
}

/// Reusable simulation storage — the per-worker *generation arena*.
///
/// Originally this held only the event calendar's bucket ring and the packet
/// pool's slabs; it has grown into the full set of heap structures a
/// simulation touches: flow endpoints (senders keep their retransmission
/// queues, receivers their SACK buffers), gateway FIFO rings, the hop/path
/// tables, a cleared [`RunStats`] skeleton, and a shared pool of `SimTime`
/// vectors that cycle between delivery logs and trace timestamp buffers.
///
/// A batch driver creates one `SimScratch` per worker and threads it through
/// consecutive runs; after warm-up an entire generate → evaluate → select
/// generation runs through one recycled allocation set. Results are
/// bit-identical with or without scratch reuse — the scratch only donates
/// capacity, never state.
pub struct SimScratch<C: CongestionControl = Box<dyn CongestionControl>> {
    events: EventQueue,
    pool: PacketPool,
    drop_buf: Vec<DataPacket>,
    /// Retained flow endpoints; reset in place (keeping their buffers) when
    /// the next run claims them.
    flows: FlowTable<C>,
    /// Empty hop-chain vector (capacity only; hops are rebuilt per run).
    hops: Vec<Hop>,
    /// Recycled gateway FIFO rings, harvested from finished runs' hops.
    queue_bufs: Vec<VecDeque<DataPacket>>,
    paths: Vec<HopRange>,
    ack_delays: Vec<SimDuration>,
    hop_cfgs: Vec<HopConfig>,
    flow_capacity: Vec<usize>,
    /// Cleared [`RunStats`] skeleton (vectors with capacity, counters
    /// zeroed). Refilled by [`SimScratch::recycle_stats`] once the caller is
    /// done reading a run's results.
    stats: RunStats,
    /// Shared pool of timestamp vectors: per-flow delivery logs, cross
    /// traffic injection traces and link service curves all draw from (and
    /// return to) this one free list.
    time_bufs: Vec<Vec<SimTime>>,
    /// Cleared dynamic-flow slab (capacity only; see [`FlowSlab`]).
    slab: FlowSlab,
    /// Retained CCA prototype pool for workload runs; refilled in place by
    /// [`Simulation::install_arrivals`].
    cc_source: Option<Box<dyn CcSource<C>>>,
    /// Cleared [`WorkloadStats`] skeleton recycled between workload runs.
    spare_workload: Option<Box<WorkloadStats>>,
}

impl<C: CongestionControl> Default for SimScratch<C> {
    fn default() -> Self {
        SimScratch {
            events: EventQueue::default(),
            pool: PacketPool::default(),
            drop_buf: Vec::new(),
            flows: FlowTable::default(),
            hops: Vec::new(),
            queue_bufs: Vec::new(),
            paths: Vec::new(),
            ack_delays: Vec::new(),
            hop_cfgs: Vec::new(),
            flow_capacity: Vec::new(),
            stats: RunStats::default(),
            time_bufs: Vec::new(),
            slab: FlowSlab::default(),
            cc_source: None,
            spare_workload: None,
        }
    }
}

impl<C: CongestionControl> SimScratch<C> {
    /// Creates empty scratch storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared timestamp buffer from the shared pool (or a fresh one
    /// when the pool is empty). Callers use it to build traces or logs and
    /// the buffer eventually returns through [`SimScratch::recycle_time_buf`]
    /// or [`SimScratch::recycle_stats`].
    pub fn take_time_buf(&mut self) -> Vec<SimTime> {
        self.time_bufs.pop().unwrap_or_default()
    }

    /// Returns a timestamp buffer to the shared pool. Buffers without
    /// capacity are dropped (nothing to recycle).
    pub fn recycle_time_buf(&mut self, mut buf: Vec<SimTime>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        self.time_bufs.push(buf);
    }

    /// Recycles a finished run's [`RunStats`] once the caller has extracted
    /// everything it needs: per-flow delivery logs return to the timestamp
    /// pool and the cleared skeleton (vectors keeping their capacity,
    /// counters zeroed) seeds the next run's statistics. The next run's
    /// results are bit-identical whether or not its stats came from here.
    pub fn recycle_stats(&mut self, stats: RunStats) {
        let RunStats {
            mut bottleneck,
            mut transport,
            mut queue_samples,
            queue_counters: _,
            mut hop_counters,
            mut hop_samples,
            mut flows,
            cross_delivered: _,
            cross_dropped: _,
            truncated: _,
            events_processed: _,
            delivery_samples_dropped: _,
            workload,
        } = stats;
        if let Some(mut w) = workload {
            w.clear();
            self.spare_workload = Some(w);
        }
        for flow in flows.drain(..) {
            self.recycle_time_buf(flow.delivery_times);
        }
        bottleneck.clear();
        transport.clear();
        queue_samples.clear();
        hop_counters.clear();
        for samples in &mut hop_samples {
            samples.clear();
        }
        self.stats = RunStats {
            bottleneck,
            transport,
            queue_samples,
            hop_counters,
            hop_samples,
            flows,
            ..RunStats::default()
        };
    }
}

/// Runtime state of one hop of the chain: its gateway queue, its link and
/// its propagation delay toward the next stop.
struct Hop {
    queue: GatewayQueue,
    link: LinkService,
    propagation_delay: SimDuration,
    /// Dedupe for this hop's LinkReady events.
    ready_scheduled: Option<SimTime>,
}

/// The dumbbell simulation, generic over the congestion-control type shared
/// by its flows (defaults to `Box<dyn CongestionControl>` for trait-object
/// call sites; the fuzzer instantiates `C = CcaDispatch` for enum dispatch).
pub struct Simulation<C: CongestionControl = Box<dyn CongestionControl>> {
    cfg: SimConfig,
    events: EventQueue,
    pool: PacketPool,
    flows: FlowTable<C>,
    /// The hop chain, in path order (a single hop without a topology).
    hops: Vec<Hop>,
    /// Per-flow paths over the chain (entry/exit hop indices, clamped).
    paths: Vec<HopRange>,
    /// Per-flow one-way ACK return delay: the sum of the propagation
    /// delays along the flow's path.
    ack_delays: Vec<SimDuration>,
    stats: RunStats,
    finished: bool,
    /// Recycled buffer for AQM head drops in [`Simulation::try_transmit`]
    /// (CoDel can shed several packets per dequeue; the buffer keeps that
    /// path allocation-free in steady state).
    aqm_drop_buf: Vec<DataPacket>,
    /// Optional structured trace recorder (see [`crate::simtrace`]). Boxed
    /// so the disabled case costs one pointer on the struct and one
    /// null-check per hook — the same zero-cost-when-disabled shape as
    /// `record_events`.
    tracer: Option<Box<TraceRecorder>>,
    /// Dynamic-flow slab (empty unless this is a workload run).
    slab: FlowSlab,
    /// Congestion-controller source for dynamic spawns (workload runs).
    cc_source: Option<Box<dyn CcSource<C>>>,
    /// Arrival-process runtime state; `Some` once
    /// [`Simulation::install_arrivals`] has run.
    workload: Option<WorkloadRt>,
    /// Scratch pools not claimed by this run (recycled FIFO rings, spare
    /// timestamp buffers, the drained config buffers). Carried through so
    /// [`Simulation::into_scratch`] can reassemble the full arena.
    spares: SimScratch<C>,
}

impl<C: CongestionControl> Simulation<C> {
    /// Builds a single-flow simulation from a configuration and a congestion
    /// controller (the paper's original topology). The flow starts at
    /// `cfg.flow_start` and runs to the end of the scenario.
    pub fn new(cfg: SimConfig, cc: C) -> Self {
        let start = cfg.flow_start;
        Self::new_multi(
            cfg,
            vec![FlowSpec {
                cc,
                start,
                stop: None,
            }],
        )
    }

    /// Builds a simulation with N concurrent congestion-controlled flows
    /// sharing the bottleneck. Flow indices follow the order of `specs`.
    pub fn new_multi(cfg: SimConfig, specs: Vec<FlowSpec<C>>) -> Self {
        Self::new_multi_with_scratch(cfg, specs, SimScratch::default())
    }

    /// Like [`Simulation::new_multi`], but adopts previously used calendar
    /// and pool storage so repeated evaluations skip those allocations.
    /// Reclaim the storage with [`Simulation::into_scratch`] after the run.
    pub fn new_multi_with_scratch(
        cfg: SimConfig,
        specs: Vec<FlowSpec<C>>,
        scratch: SimScratch<C>,
    ) -> Self {
        let mut specs = specs;
        Self::new_multi_reusing(cfg, &mut specs, scratch)
    }

    /// The fully pooled constructor: drains `specs` (leaving the caller's
    /// vector empty but with its capacity, ready to refill) and draws every
    /// heap structure — endpoints, hops, FIFO rings, stat vectors — from
    /// the scratch arena. In steady state this builds a complete multi-flow,
    /// multi-hop simulation without touching the allocator.
    pub fn new_multi_reusing(
        cfg: SimConfig,
        specs: &mut Vec<FlowSpec<C>>,
        mut scratch: SimScratch<C>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SimConfig: {e}");
        }
        assert!(!specs.is_empty(), "a simulation needs at least one flow");
        let sender_cfg = SenderConfig {
            mss: cfg.mss,
            sack_enabled: cfg.sack_enabled,
            min_rto: cfg.min_rto,
            max_rto: cfg.max_rto,
            initial_rto: cfg.initial_rto,
            initial_cwnd: cfg.initial_cwnd,
            buffer_packets: cfg.sender_buffer_packets,
            record_log: cfg.record_events,
            ecn_enabled: cfg.ecn_enabled,
        };
        let receiver_cfg = ReceiverConfig {
            sack_enabled: cfg.sack_enabled,
            delayed_ack: cfg.delayed_ack,
            delayed_ack_count: cfg.delayed_ack_count,
            delayed_ack_timeout: cfg.delayed_ack_timeout,
            max_sack_blocks: 4,
        };
        let mut hop_cfgs = std::mem::take(&mut scratch.hop_cfgs);
        cfg.hop_configs_into(&mut hop_cfgs);
        let mut paths = std::mem::take(&mut scratch.paths);
        paths.clear();
        paths.extend((0..specs.len()).map(|i| cfg.flow_path(i)));
        let mut ack_delays = std::mem::take(&mut scratch.ack_delays);
        ack_delays.clear();
        ack_delays.extend(paths.iter().map(|p| {
            hop_cfgs[p.entry as usize..=p.exit as usize]
                .iter()
                .fold(SimDuration::ZERO, |acc, h| acc + h.propagation_delay)
        }));
        // Pre-size each flow's delivery log from the tightest hop *on its
        // own path* (a parking-lot flow that skips the slow hop can deliver
        // far more than the chain's global bottleneck allows) so the hot
        // loop never grows it.
        let hop_capacity = |h: &HopConfig| match &h.link {
            LinkModel::FixedRate { rate_bps } => {
                ((*rate_bps as f64 / 8.0) * cfg.duration.as_secs_f64() / cfg.mss as f64) as usize
            }
            LinkModel::TraceDriven { trace } => trace.len(),
        };
        let mut per_flow_capacity = std::mem::take(&mut scratch.flow_capacity);
        per_flow_capacity.clear();
        per_flow_capacity.extend(paths.iter().map(|p| {
            hop_cfgs[p.entry as usize..=p.exit as usize]
                .iter()
                .map(hop_capacity)
                .min()
                .unwrap_or(0)
                .min(1 << 22)
                / specs.len()
                + 64
        }));
        // Built by *draining* the hop configs: a trace-driven link's
        // timestamp vector moves into its LinkService instead of being
        // cloned a second time. FIFO storage comes from the recycled rings
        // of earlier runs.
        let mut hops = std::mem::take(&mut scratch.hops);
        hops.clear();
        for (k, h) in hop_cfgs.drain(..).enumerate() {
            let storage = scratch.queue_bufs.pop().unwrap_or_default();
            hops.push(Hop {
                queue: GatewayQueue::new_with_storage(
                    h.qdisc,
                    h.queue_capacity,
                    hop_seed(cfg.seed, k),
                    storage,
                ),
                link: LinkService::new(h.link),
                propagation_delay: h.propagation_delay,
                ready_scheduled: None,
            });
        }
        let n = specs.len();
        let mut flows = std::mem::take(&mut scratch.flows);
        // A previous (unrun) claimant may have left delivery buffers behind;
        // funnel them through the pool rather than dropping them.
        for buf in flows.delivery_times.drain(..) {
            scratch.recycle_time_buf(buf);
        }
        flows.start.clear();
        flows.stop.clear();
        flows.pacing_scheduled.clear();
        flows.pacing_scheduled.resize(n, None);
        flows.rto_scheduled.clear();
        flows.rto_scheduled.resize(n, None);
        flows.counters.clear();
        flows.counters.resize(n, FlowCounters::default());
        if cfg.arrivals.is_none() {
            flows.senders.truncate(n);
            flows.receivers.truncate(n);
        }
        // Workload runs keep endpoint entries beyond the static count: they
        // are last run's dynamic slots, reclaimed in place (keeping their
        // buffers) as this run's arrivals spawn.
        for (i, (spec, &capacity)) in specs.drain(..).zip(&per_flow_capacity).enumerate() {
            // Retained endpoints are reset in place (keeping their queues'
            // capacity); extra flows beyond the retained count are built
            // fresh.
            match flows.senders.get_mut(i) {
                Some(sender) => sender.reset_reusing(sender_cfg, spec.cc),
                None => flows.senders.push(TcpSender::new(sender_cfg, spec.cc)),
            }
            match flows.receivers.get_mut(i) {
                Some(receiver) => receiver.reset_reusing(receiver_cfg),
                None => flows.receivers.push(TcpReceiver::new(receiver_cfg)),
            }
            flows.start.push(spec.start);
            flows.stop.push(spec.stop);
            let mut delivery = scratch.take_time_buf();
            delivery.reserve(capacity);
            flows.delivery_times.push(delivery);
        }
        let mut stats = std::mem::take(&mut scratch.stats);
        stats.flows.reserve(n);
        let sample_capacity =
            (cfg.duration.as_nanos() / cfg.stats_interval.as_nanos().max(1)) as usize + 2;
        stats.queue_samples.reserve(sample_capacity);
        if hops.len() > 1 {
            stats.hop_samples.truncate(hops.len());
            for samples in &mut stats.hop_samples {
                samples.clear();
                samples.reserve(sample_capacity);
            }
            while stats.hop_samples.len() < hops.len() {
                stats.hop_samples.push(Vec::with_capacity(sample_capacity));
            }
        } else {
            stats.hop_samples.clear();
        }
        scratch.events.reset();
        scratch.pool.set_hop_count(hops.len());
        let events = std::mem::take(&mut scratch.events);
        let pool = std::mem::take(&mut scratch.pool);
        let drop_buf = std::mem::take(&mut scratch.drop_buf);
        let slab = std::mem::take(&mut scratch.slab);
        let cc_source = scratch.cc_source.take();
        // Return the drained (empty, capacity-keeping) buffers to the arena
        // for the next construction.
        scratch.hop_cfgs = hop_cfgs;
        scratch.flow_capacity = per_flow_capacity;
        Simulation {
            flows,
            hops,
            paths,
            ack_delays,
            events,
            pool,
            stats,
            finished: false,
            aqm_drop_buf: drop_buf,
            tracer: None,
            slab,
            cc_source,
            workload: None,
            cfg,
            spares: scratch,
        }
    }

    /// Arms the dynamic-flow workload: must be called (with at least one
    /// congestion-controller prototype) before [`Simulation::run`] whenever
    /// `SimConfig::arrivals` is configured. Each arrival clones one
    /// prototype, picked uniformly — weight a CCA by listing it several
    /// times. Drains `protos`, keeping the caller's vector and capacity.
    pub fn install_arrivals(&mut self, protos: &mut Vec<C>)
    where
        C: Clone + 'static,
    {
        assert!(!self.finished, "install_arrivals must precede run");
        let cfg = self
            .cfg
            .arrivals
            .expect("install_arrivals requires SimConfig::arrivals");
        assert!(
            !protos.is_empty(),
            "a workload needs at least one CCA prototype"
        );
        match self.cc_source.as_mut() {
            Some(src) => src.refill(protos),
            None => {
                self.cc_source = Some(Box::new(ClonePool {
                    protos: std::mem::take(protos),
                }))
            }
        }
        let root = SimRng::new(self.cfg.seed);
        let mut rng = root.fork(0xA221_57AD);
        let reservoir_rng = root.fork(0x5E5E_0115);
        let on_until = match cfg.process {
            ArrivalProcess::Poisson { .. } => SimTime::MAX,
            ArrivalProcess::OnOff { mean_on_secs, .. } => {
                SimTime::ZERO + exp_duration(1.0 / mean_on_secs, &mut rng)
            }
        };
        let dyn_path = HopRange {
            entry: 0,
            exit: (self.hops.len() - 1) as u32,
        };
        let dyn_ack_delay = self
            .hops
            .iter()
            .fold(SimDuration::ZERO, |acc, h| acc + h.propagation_delay);
        let sender_cfg = SenderConfig {
            mss: self.cfg.mss,
            sack_enabled: self.cfg.sack_enabled,
            min_rto: self.cfg.min_rto,
            max_rto: self.cfg.max_rto,
            initial_rto: self.cfg.initial_rto,
            initial_cwnd: self.cfg.initial_cwnd,
            buffer_packets: 1, // overridden with the sampled size per spawn
            // Dynamic flows never keep a transport log: a churn run spawns
            // thousands of them and the log is the one per-flow structure
            // that cannot be bounded.
            record_log: false,
            ecn_enabled: self.cfg.ecn_enabled,
        };
        let receiver_cfg = ReceiverConfig {
            sack_enabled: self.cfg.sack_enabled,
            delayed_ack: self.cfg.delayed_ack,
            delayed_ack_count: self.cfg.delayed_ack_count,
            delayed_ack_timeout: self.cfg.delayed_ack_timeout,
            max_sack_blocks: 4,
        };
        let mut w = self.spares.spare_workload.take().unwrap_or_default();
        w.clear();
        self.stats.workload = Some(w);
        self.workload = Some(WorkloadRt {
            cfg,
            rng,
            reservoir_rng,
            base: self.flows.start.len(),
            on_until,
            dyn_path,
            dyn_ack_delay,
            sender_cfg,
            receiver_cfg,
        });
    }

    /// Installs a structured trace recorder retaining the last `capacity`
    /// events. Must be called before [`Simulation::run`]; retrieve the
    /// trace afterwards with [`Simulation::take_trace`]. The recorder is a
    /// pure observer: a traced run's [`RunStats`] (including its digest)
    /// are byte-identical to an untraced run of the same config.
    pub fn install_tracer(&mut self, capacity: usize) {
        assert!(!self.finished, "install_tracer must precede run");
        self.tracer = Some(Box::new(TraceRecorder::new(capacity, self.flows.len())));
    }

    /// Removes and finalizes the installed trace recorder, if any.
    pub fn take_trace(&mut self) -> Option<SimTrace> {
        self.tracer.take().map(|t| t.finish())
    }

    #[inline]
    fn trace(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.push(at, event);
        }
    }

    /// Samples `flow`'s sender into the trace (cwnd / recovery changes
    /// only). Called after every event that can move congestion state.
    #[inline]
    fn trace_sender(&mut self, flow: usize, now: SimTime) {
        if self.tracer.is_some() {
            // Dynamic flows are too churny (and their indices too ambiguous
            // across recycles) to sample individually.
            if self.workload.as_ref().is_some_and(|rt| flow >= rt.base) {
                return;
            }
            let s = &self.flows.senders[flow];
            let (cwnd, in_flight, in_recovery) = (s.cwnd(), s.in_flight(), s.in_recovery());
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.sample_sender(now, flow as u32, cwnd, in_flight, in_recovery);
            }
        }
    }

    /// Recovers the arena for reuse by a later run: calendar, pool, flow
    /// endpoints, gateway FIFO rings and every timestamp vector the run
    /// carried (cross-traffic injections, trace-driven service curves) all
    /// return to their free lists.
    pub fn into_scratch(mut self) -> SimScratch<C> {
        let mut scratch = std::mem::take(&mut self.spares);
        let mut events = std::mem::take(&mut self.events);
        events.reset();
        scratch.events = events;
        let mut pool = std::mem::take(&mut self.pool);
        pool.reset();
        scratch.pool = pool;
        let mut drop_buf = std::mem::take(&mut self.aqm_drop_buf);
        drop_buf.clear();
        scratch.drop_buf = drop_buf;
        let mut flows = std::mem::take(&mut self.flows);
        // After a run the delivery logs have moved into RunStats (and come
        // back via recycle_stats); before a run they still hold capacity —
        // either way, funnel whatever is left through the shared pool.
        for buf in flows.delivery_times.drain(..) {
            scratch.recycle_time_buf(buf);
        }
        flows.start.clear();
        flows.stop.clear();
        flows.pacing_scheduled.clear();
        flows.rto_scheduled.clear();
        flows.counters.clear();
        scratch.flows = flows;
        let mut hops = std::mem::take(&mut self.hops);
        for hop in hops.drain(..) {
            let ring = hop.queue.into_storage();
            if ring.capacity() > 0 {
                scratch.queue_bufs.push(ring);
            }
            if let LinkModel::TraceDriven { trace } = hop.link.into_model() {
                scratch.recycle_time_buf(trace.into_opportunities());
            }
        }
        scratch.hops = hops;
        let mut paths = std::mem::take(&mut self.paths);
        paths.clear();
        scratch.paths = paths;
        let mut ack_delays = std::mem::take(&mut self.ack_delays);
        ack_delays.clear();
        scratch.ack_delays = ack_delays;
        // The slab's slots (and their endpoint entries, which stay inside
        // `flows`) recycle wholesale; generations restart at zero so a warm
        // run replays a cold run's handle stream bit-identically.
        let mut slab = std::mem::take(&mut self.slab);
        slab.clear();
        scratch.slab = slab;
        scratch.cc_source = self.cc_source.take();
        // The simulation is consumed, so the config's trace storage can be
        // harvested too (the traffic and link fuzzing paths rebuild their
        // traces from recycled buffers each evaluation).
        let cross = std::mem::replace(
            &mut self.cfg.cross_traffic,
            crate::trace::TrafficTrace::empty(self.cfg.duration),
        );
        scratch.recycle_time_buf(cross.into_injections());
        if let LinkModel::TraceDriven { trace } =
            std::mem::replace(&mut self.cfg.link, LinkModel::FixedRate { rate_bps: 0 })
        {
            scratch.recycle_time_buf(trace.into_opportunities());
        }
        scratch
    }

    /// The configuration this simulation runs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of congestion-controlled flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of hops on the simulated path (1 without a topology).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The path of CCA flow `flow` over the hop chain.
    pub fn path_of(&self, flow: usize) -> HopRange {
        self.paths[flow]
    }

    /// Immutable access to the primary flow's sender (e.g. to inspect CCA
    /// state mid-run in tests).
    pub fn sender(&self) -> &TcpSender<C> {
        &self.flows.senders[0]
    }

    /// Immutable access to the sender of an arbitrary flow.
    pub fn sender_of(&self, flow: usize) -> &TcpSender<C> {
        &self.flows.senders[flow]
    }

    fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.cfg.duration
    }

    fn record_bottleneck(
        &mut self,
        hop: usize,
        at: SimTime,
        flow: FlowId,
        size: u32,
        event: BottleneckEvent,
    ) {
        if self.cfg.record_events {
            self.stats.bottleneck.push(BottleneckRecord {
                at,
                flow,
                hop: hop as u32,
                size,
                event,
            });
        }
    }

    /// Index of the last hop on a packet's path before the sink. Cross
    /// traffic always traverses the whole chain.
    fn exit_hop(&self, flow: FlowId) -> usize {
        match flow {
            FlowId::CrossTraffic => self.hops.len() - 1,
            FlowId::Cca(raw) => self.paths[self.cca_index(raw)].exit as usize,
        }
    }

    // ------------------------------------------------------------------
    // Dynamic flow handles
    // ------------------------------------------------------------------

    /// Decodes a raw flow handle to its flow-table index. Static handles
    /// are their own index; dynamic handles resolve through the slab and
    /// come back `None` when stale (the slot recycled since the event that
    /// carries the handle was scheduled).
    #[inline]
    fn resolve_flow(&self, raw: u32) -> Option<usize> {
        if !is_dynamic(raw) {
            return Some(raw as usize);
        }
        let slot = dyn_slot(raw);
        let rt = self.workload.as_ref()?;
        (self.slab.generation.get(slot) == Some(&dyn_generation(raw))).then(|| rt.base + slot)
    }

    /// Resolves a handle carried by a packet or ACK. These can never go
    /// stale — every in-flight packet holds an `in_network` reference that
    /// blocks its slot's recycling — so failure here is a bug.
    #[inline]
    fn cca_index(&self, raw: u32) -> usize {
        self.resolve_flow(raw)
            .expect("packet refers to a recycled dynamic flow")
    }

    /// The raw handle for a flow-table index (the inverse of
    /// [`Simulation::resolve_flow`]): static flows encode as their plain
    /// index — bit-identical to the pre-slab event stream — and dynamic
    /// slots pack slot + generation with the top bit set.
    #[inline]
    fn raw_flow(&self, idx: usize) -> u32 {
        match &self.workload {
            Some(rt) if idx >= rt.base => {
                let slot = idx - rt.base;
                dyn_handle(slot as u16, self.slab.generation[slot])
            }
            _ => idx as u32,
        }
    }

    /// Whether a flow should ignore ACKs, timers and send opportunities:
    /// past its scheduled stop (static flows) or already complete (dynamic
    /// flows, which have no stop schedule).
    #[inline]
    fn flow_inactive(&self, idx: usize, now: SimTime) -> bool {
        if let Some(rt) = &self.workload {
            if idx >= rt.base {
                return self.slab.complete[idx - rt.base];
            }
        }
        self.flows.stopped(idx, now)
    }

    // ------------------------------------------------------------------
    // Link / queue plumbing
    // ------------------------------------------------------------------

    fn try_transmit(&mut self, hop: usize, now: SimTime) {
        loop {
            let queue_nonempty = !self.hops[hop].queue.is_empty();
            match self.hops[hop].link.next_action(now, queue_nonempty) {
                LinkAction::TransmitNow => {
                    // CoDel may drop (non-ECT) head packets while hunting for
                    // the next deliverable one; drop-tail and RED never do,
                    // so the recycled buffer stays empty for them.
                    let mut aqm_drops = std::mem::take(&mut self.aqm_drop_buf);
                    let pkt = self.hops[hop].queue.dequeue_at(now, |p| aqm_drops.push(p));
                    for dropped in aqm_drops.drain(..) {
                        self.record_bottleneck(
                            hop,
                            now,
                            dropped.flow,
                            dropped.size,
                            BottleneckEvent::Dropped,
                        );
                        match dropped.flow {
                            FlowId::CrossTraffic => self.stats.cross_dropped += 1,
                            FlowId::Cca(raw) => {
                                let idx = self.cca_index(raw);
                                self.flows.counters[idx].queue_drops += 1;
                                if is_dynamic(raw) {
                                    self.dyn_packet_gone(dyn_slot(raw));
                                }
                            }
                        }
                        self.trace(
                            now,
                            TraceEvent::Drop {
                                flow: dropped.flow,
                                hop: hop as u32,
                            },
                        );
                    }
                    self.aqm_drop_buf = aqm_drops;
                    let Some((pkt, marked_now)) = pkt else {
                        // The discipline consumed the whole backlog; re-poll
                        // the (now idle) link so it can park itself.
                        continue;
                    };
                    if marked_now {
                        // The queue reports *where* it marked (CoDel marks at
                        // dequeue; RED-marked packets already produced their
                        // record at enqueue time), so this accounting stays
                        // correct for any future discipline without changes
                        // here.
                        self.record_bottleneck(
                            hop,
                            now,
                            pkt.flow,
                            pkt.size,
                            BottleneckEvent::Marked,
                        );
                        if let FlowId::Cca(raw) = pkt.flow {
                            let idx = self.cca_index(raw);
                            self.flows.counters[idx].ce_marked += 1;
                        }
                        self.trace(
                            now,
                            TraceEvent::EcnMark {
                                flow: pkt.flow,
                                hop: hop as u32,
                            },
                        );
                    }
                    let queuing_delay = now.saturating_since(pkt.enqueued_at);
                    self.record_bottleneck(
                        hop,
                        now,
                        pkt.flow,
                        pkt.size,
                        BottleneckEvent::Dequeued { queuing_delay },
                    );
                    let crossed_at = self.hops[hop].link.on_transmit(now, pkt.size);
                    let arrival = crossed_at + self.hops[hop].propagation_delay;
                    let exit = self.exit_hop(pkt.flow);
                    let parked = self.pool.put_data_at(hop, pkt);
                    if hop >= exit {
                        // Last hop on this packet's path: deliver to the sink.
                        self.events.schedule(arrival, Event::SinkArrival(parked));
                    } else {
                        // Route onward: arrival at the next hop's gateway.
                        self.events.schedule(
                            arrival,
                            Event::GatewayArrival {
                                hop: (hop + 1) as u32,
                                pkt: parked,
                            },
                        );
                    }
                }
                LinkAction::WaitUntil(t) => {
                    if t != SimTime::MAX
                        && t <= self.end_time()
                        && self.hops[hop]
                            .ready_scheduled
                            .map(|s| s > t || s < now)
                            .unwrap_or(true)
                    {
                        self.events
                            .schedule(t, Event::LinkReady { hop: hop as u32 });
                        self.hops[hop].ready_scheduled = Some(t);
                    }
                    break;
                }
                LinkAction::Exhausted => break,
            }
        }
    }

    fn handle_gateway_arrival(&mut self, hop: usize, pkt: DataPacket, now: SimTime) {
        let flow = pkt.flow;
        let size = pkt.size;
        let outcome = self.hops[hop].queue.enqueue(pkt, now);
        let event = if outcome.accepted() {
            BottleneckEvent::Enqueued
        } else {
            BottleneckEvent::Dropped
        };
        self.record_bottleneck(hop, now, flow, size, event);
        match outcome {
            EnqueueOutcome::Dropped => {
                match flow {
                    FlowId::CrossTraffic => self.stats.cross_dropped += 1,
                    FlowId::Cca(raw) => {
                        let idx = self.cca_index(raw);
                        self.flows.counters[idx].queue_drops += 1;
                        if is_dynamic(raw) {
                            self.dyn_packet_gone(dyn_slot(raw));
                        }
                    }
                }
                self.trace(
                    now,
                    TraceEvent::Drop {
                        flow,
                        hop: hop as u32,
                    },
                );
            }
            EnqueueOutcome::AcceptedMarked => {
                self.record_bottleneck(hop, now, flow, size, BottleneckEvent::Marked);
                if let FlowId::Cca(raw) = flow {
                    let idx = self.cca_index(raw);
                    self.flows.counters[idx].ce_marked += 1;
                }
                self.trace(
                    now,
                    TraceEvent::EcnMark {
                        flow,
                        hop: hop as u32,
                    },
                );
            }
            EnqueueOutcome::Accepted => {}
        }
        if outcome.accepted() {
            self.try_transmit(hop, now);
        }
    }

    // ------------------------------------------------------------------
    // Sender plumbing
    // ------------------------------------------------------------------

    fn sync_rto_timer(&mut self, flow: usize) {
        if let Some((deadline, generation)) = self.flows.senders[flow].rto_deadline() {
            if self.flows.rto_scheduled[flow] != Some((deadline, generation)) {
                let raw = self.raw_flow(flow);
                self.events.schedule(
                    deadline.max(self.events.now()),
                    Event::RtoTimer {
                        flow: raw,
                        generation,
                    },
                );
                self.flows.rto_scheduled[flow] = Some((deadline, generation));
            }
        }
    }

    fn pump_sender(&mut self, flow: usize, now: SimTime) {
        if self.flow_inactive(flow, now) {
            return;
        }
        let raw = self.raw_flow(flow);
        loop {
            match self.flows.senders[flow].poll_send(now) {
                SendPoll::Packet(mut pkt) => {
                    pkt.flow = FlowId::Cca(raw);
                    if is_dynamic(raw) {
                        self.slab.in_network[dyn_slot(raw)] += 1;
                    }
                    // The access link from sender to its entry hop is
                    // unconstrained: packets arrive at that queue immediately.
                    let entry = self.paths[flow].entry as usize;
                    self.handle_gateway_arrival(entry, pkt, now);
                }
                SendPoll::Wait(t) => {
                    if t <= self.end_time()
                        && self.flows.pacing_scheduled[flow]
                            .map(|s| s > t || s <= now)
                            .unwrap_or(true)
                    {
                        self.events.schedule(
                            t,
                            Event::PacingTimer {
                                flow: raw,
                                generation: 0,
                            },
                        );
                        self.flows.pacing_scheduled[flow] = Some(t);
                    }
                    break;
                }
                SendPoll::Blocked => break,
            }
        }
        self.sync_rto_timer(flow);
    }

    fn deliver_ack_to_sender(&mut self, flow: usize, ack: AckPacket, now: SimTime) {
        if self.flow_inactive(flow, now) {
            return;
        }
        self.flows.senders[flow].on_ack(&ack, now);
        self.pump_sender(flow, now);
    }

    fn handle_sink_arrival(&mut self, pkt: DataPacket, now: SimTime) {
        match pkt.flow {
            FlowId::CrossTraffic => {
                self.stats.cross_delivered += 1;
            }
            FlowId::Cca(raw) => {
                let idx = self.cca_index(raw);
                self.flows.counters[idx].sink_received += 1;
                let receiver = &mut self.flows.receivers[idx];
                let before = receiver.cum_ack() + receiver.ooo_packets();
                let out = receiver.on_data(&pkt, now);
                let after = receiver.cum_ack() + receiver.ooo_packets();
                if is_dynamic(raw) {
                    // Dynamic flows record completion times through the
                    // bounded FCT histograms instead of per-delivery
                    // timestamp vectors — that unboundedness is exactly
                    // what a 10k-flow workload run cannot afford.
                } else {
                    for _ in before..after {
                        if self.flows.delivery_times[idx].len() < MAX_DELIVERY_SAMPLES_PER_FLOW {
                            self.flows.delivery_times[idx].push(now);
                        } else {
                            self.stats.delivery_samples_dropped += 1;
                        }
                    }
                }
                if let Some(ack) = out.ack {
                    if is_dynamic(raw) {
                        self.slab.in_network[dyn_slot(raw)] += 1;
                    }
                    let parked = self.pool.put_ack(ack);
                    self.events.schedule(
                        now + self.ack_delays[idx],
                        Event::AckArrival {
                            flow: raw,
                            ack: parked,
                        },
                    );
                }
                if let Some((deadline, generation)) = out.arm_delack {
                    self.events.schedule(
                        deadline,
                        Event::DelayedAckTimer {
                            flow: raw,
                            generation,
                        },
                    );
                }
                if is_dynamic(raw) {
                    // The data packet itself left the network (its ACK, if
                    // any, took its own reference above).
                    self.dyn_packet_gone(dyn_slot(raw));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Dynamic flow lifecycle
    // ------------------------------------------------------------------

    /// Spawns one dynamic flow at `now` (or counts a capped arrival when
    /// the concurrency limit is reached), claiming a recycled slab slot
    /// when one is free.
    fn spawn_dynamic(&mut self, now: SimTime) {
        let rt = self.workload.as_mut().expect("arrivals not installed");
        let w = self
            .stats
            .workload
            .as_mut()
            .expect("workload stats missing");
        if self.slab.live() >= rt.cfg.max_concurrent as usize {
            w.capped += 1;
            return;
        }
        let size = rt.cfg.size.sample(&mut rt.rng);
        let source = self.cc_source.as_mut().expect("CCA source missing");
        let pick = rt.rng.gen_range_usize(0, source.count());
        let cc = source.make(pick);
        let slot = match self.slab.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slab.generation.push(0);
                self.slab.budget.push(0);
                self.slab.spawned_at.push(SimTime::ZERO);
                self.slab.in_network.push(0);
                self.slab.complete.push(false);
                self.slab.generation.len() - 1
            }
        };
        self.slab.budget[slot] = size;
        self.slab.spawned_at[slot] = now;
        self.slab.in_network[slot] = 0;
        self.slab.complete[slot] = false;
        let idx = rt.base + slot;
        let sender_cfg = SenderConfig {
            buffer_packets: size,
            ..rt.sender_cfg
        };
        // Claim (or create) the slot's flow-table entry. Slots allocate
        // densely, so `idx` is at most one past the current table end.
        if self.flows.senders.len() <= idx {
            self.flows.senders.push(TcpSender::new(sender_cfg, cc));
            self.flows.receivers.push(TcpReceiver::new(rt.receiver_cfg));
        } else {
            self.flows.senders[idx].reset_reusing(sender_cfg, cc);
            self.flows.receivers[idx].reset_reusing(rt.receiver_cfg);
        }
        if self.flows.start.len() <= idx {
            self.flows.start.push(now);
            self.flows.stop.push(None);
            self.flows.pacing_scheduled.push(None);
            self.flows.rto_scheduled.push(None);
            self.flows.delivery_times.push(Vec::new());
            self.flows.counters.push(FlowCounters::default());
            self.paths.push(rt.dyn_path);
            self.ack_delays.push(rt.dyn_ack_delay);
        } else {
            self.flows.start[idx] = now;
            self.flows.stop[idx] = None;
            self.flows.pacing_scheduled[idx] = None;
            self.flows.rto_scheduled[idx] = None;
            self.flows.counters[idx] = FlowCounters::default();
            self.paths[idx] = rt.dyn_path;
            self.ack_delays[idx] = rt.dyn_ack_delay;
        }
        w.spawned += 1;
        self.flows.senders[idx].on_flow_start(now);
        self.pump_sender(idx, now);
    }

    /// Checks a dynamic flow for completion after an ACK reached its
    /// sender, then releases the consumed ACK's network reference.
    fn after_dyn_ack(&mut self, slot: usize, now: SimTime) {
        let rt = self.workload.as_mut().expect("arrivals not installed");
        let idx = rt.base + slot;
        if !self.slab.complete[slot] && self.flows.senders[idx].cum_ack() >= self.slab.budget[slot]
        {
            self.slab.complete[slot] = true;
            let fct = now.saturating_since(self.slab.spawned_at[slot]);
            let size = self.slab.budget[slot];
            let w = self
                .stats
                .workload
                .as_mut()
                .expect("workload stats missing");
            w.completed += 1;
            if rt.cfg.is_mouse(size) {
                w.fct_mice.record(fct.as_nanos());
            } else {
                w.fct_elephants.record(fct.as_nanos());
            }
            // Algorithm-R reservoir over all completions, on its own rng
            // stream so sampling never perturbs the arrival process.
            let seen = w.completed;
            if w.samples.len() < WorkloadStats::MAX_SAMPLES {
                w.samples.push(FctSample {
                    size_packets: size,
                    fct,
                });
            } else {
                let j = rt.reservoir_rng.gen_range_u64(0, seen) as usize;
                if j < WorkloadStats::MAX_SAMPLES {
                    w.samples[j] = FctSample {
                        size_packets: size,
                        fct,
                    };
                }
            }
        }
        self.dyn_packet_gone(slot);
    }

    /// Releases one `in_network` reference of a dynamic slot (a data packet
    /// delivered or dropped, or an ACK consumed) and recycles the slot once
    /// it is complete with nothing left in flight.
    fn dyn_packet_gone(&mut self, slot: usize) {
        debug_assert!(self.slab.in_network[slot] > 0, "in_network underflow");
        self.slab.in_network[slot] -= 1;
        if self.slab.complete[slot] && self.slab.in_network[slot] == 0 {
            self.recycle_dyn_slot(slot);
        }
    }

    /// Returns a completed, fully drained slot to the free list, folding
    /// its per-flow counters into the workload aggregates and bumping its
    /// generation so any still-scheduled timer event for it dies on decode.
    fn recycle_dyn_slot(&mut self, slot: usize) {
        let rt = self.workload.as_ref().expect("arrivals not installed");
        let idx = rt.base + slot;
        let c = self.flows.counters[idx];
        let tx = self.flows.senders[idx].transmissions();
        // Conservation: with nothing in the network, every packet this flow
        // ever transmitted was either delivered to the sink or dropped at a
        // gateway queue.
        debug_assert_eq!(
            tx,
            c.sink_received + c.queue_drops,
            "per-flow conservation violated at recycle (slot {slot})"
        );
        let w = self
            .stats
            .workload
            .as_mut()
            .expect("workload stats missing");
        w.completed_tx += tx;
        w.completed_delivered += c.sink_received;
        w.completed_dropped += c.queue_drops;
        self.flows.counters[idx] = FlowCounters::default();
        self.flows.pacing_scheduled[idx] = None;
        self.flows.rto_scheduled[idx] = None;
        self.slab.generation[slot] = (self.slab.generation[slot] + 1) % GEN_MODULUS;
        self.slab.free.push(slot as u32);
    }

    /// Draws and schedules the next arrival, respecting the total-arrival
    /// cap and the scenario end.
    fn schedule_next_arrival(&mut self, now: SimTime) {
        let w = self.stats.workload.as_ref().expect("workload stats");
        let attempts = w.spawned + w.capped;
        let rt = self.workload.as_mut().expect("arrivals not installed");
        if attempts >= rt.cfg.max_arrivals {
            return;
        }
        let at = rt.next_arrival_after(now);
        if at <= self.end_time() {
            self.events.schedule(at, Event::FlowArrival);
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs the simulation to completion and returns the collected results.
    pub fn run(&mut self) -> SimResult {
        assert!(!self.finished, "a Simulation can only be run once");
        assert!(
            self.cfg.arrivals.is_none() || self.workload.is_some(),
            "SimConfig::arrivals requires install_arrivals before run"
        );
        self.finished = true;

        // Seed the event calendar: flow starts in index order, then the
        // stats tick, then cross-traffic injections (known up front).
        // Static flows always occupy indices 0..base; dynamic flows spawn
        // past that boundary as arrivals fire.
        let static_flows = self
            .workload
            .as_ref()
            .map(|rt| rt.base)
            .unwrap_or(self.flows.start.len());
        for i in 0..static_flows {
            let start = self.flows.start[i];
            self.events
                .schedule(start, Event::FlowStart { flow: i as u32 });
        }
        self.events.schedule(SimTime::ZERO, Event::StatsTick);
        let seed_end = self.end_time();
        if let Some(rt) = self.workload.as_mut() {
            let at = rt.next_arrival_after(SimTime::ZERO);
            if at <= seed_end {
                self.events.schedule(at, Event::FlowArrival);
            }
        }
        {
            // Split borrows: the injection schedule is read straight from the
            // config (no intermediate copy — the former CrossTrafficSource
            // cloned the whole trace per run) while the pool and calendar
            // are driven mutably.
            let Simulation {
                cfg, pool, events, ..
            } = &mut *self;
            let packet_size = cfg.cross_traffic_packet_size;
            for (seq, &t) in cfg.cross_traffic.injections().iter().enumerate() {
                if t > seed_end {
                    break;
                }
                let pkt = DataPacket::cross_traffic(seq as u64, packet_size, t);
                let parked = pool.put_data(pkt);
                events.schedule(
                    t,
                    Event::GatewayArrival {
                        hop: 0,
                        pkt: parked,
                    },
                );
            }
        }

        let end = self.end_time();
        let mut events_processed: u64 = 0;
        while let Some((now, event)) = self.events.pop() {
            if now > end {
                break;
            }
            events_processed += 1;
            if events_processed > self.cfg.max_events {
                self.stats.truncated = true;
                break;
            }
            match event {
                Event::FlowStart { flow } => {
                    let flow = flow as usize;
                    self.flows.senders[flow].on_flow_start(now);
                    if self.tracer.is_some() {
                        self.trace(now, TraceEvent::FlowStart { flow: flow as u32 });
                        self.trace_sender(flow, now);
                    }
                    self.pump_sender(flow, now);
                }
                Event::GatewayArrival { hop, pkt: parked } => {
                    let pkt = self.pool.take_data_at(hop as usize, parked);
                    self.handle_gateway_arrival(hop as usize, pkt, now);
                }
                Event::LinkReady { hop } => {
                    let hop = hop as usize;
                    if self.hops[hop].ready_scheduled == Some(now) {
                        self.hops[hop].ready_scheduled = None;
                    }
                    self.try_transmit(hop, now);
                }
                Event::SinkArrival(parked) => {
                    let pkt = self.pool.take_data(parked);
                    self.handle_sink_arrival(pkt, now);
                }
                Event::AckArrival { flow, ack } => {
                    // ACK packets hold a network reference on dynamic flows,
                    // so the handle can never be stale here.
                    let idx = self.cca_index(flow);
                    let ack = self.pool.take_ack(ack);
                    self.deliver_ack_to_sender(idx, ack, now);
                    if is_dynamic(flow) {
                        self.after_dyn_ack(dyn_slot(flow), now);
                    } else {
                        self.trace_sender(idx, now);
                    }
                }
                Event::RtoTimer { flow, generation } => {
                    // Timers are the one event class that can outlive its
                    // flow: a recycled slot bumps its generation, so a stale
                    // handle simply fails to resolve and the event dies.
                    let Some(flow) = self.resolve_flow(flow) else {
                        continue;
                    };
                    if self.flows.rto_scheduled[flow]
                        .map(|(_, g)| g == generation)
                        .unwrap_or(false)
                    {
                        self.flows.rto_scheduled[flow] = None;
                    }
                    if self.flow_inactive(flow, now) {
                        continue;
                    }
                    if self.flows.senders[flow].on_rto_timer(generation, now) {
                        if self.tracer.is_some() {
                            self.trace(now, TraceEvent::RtoFired { flow: flow as u32 });
                            self.trace_sender(flow, now);
                        }
                        self.pump_sender(flow, now);
                    } else {
                        self.sync_rto_timer(flow);
                    }
                }
                Event::DelayedAckTimer { flow, generation } => {
                    let Some(flow_idx) = self.resolve_flow(flow) else {
                        continue;
                    };
                    if let Some(ack) =
                        self.flows.receivers[flow_idx].on_delack_timer(generation, now)
                    {
                        if is_dynamic(flow) {
                            self.slab.in_network[dyn_slot(flow)] += 1;
                        }
                        let parked = self.pool.put_ack(ack);
                        self.events.schedule(
                            now + self.ack_delays[flow_idx],
                            Event::AckArrival { flow, ack: parked },
                        );
                    }
                }
                Event::PacingTimer { flow, .. } => {
                    let Some(flow) = self.resolve_flow(flow) else {
                        continue;
                    };
                    if self.flows.pacing_scheduled[flow] == Some(now) {
                        self.flows.pacing_scheduled[flow] = None;
                    }
                    self.pump_sender(flow, now);
                }
                Event::FlowArrival => {
                    self.spawn_dynamic(now);
                    self.schedule_next_arrival(now);
                }
                Event::StatsTick => {
                    let mut len = 0usize;
                    let mut bytes = 0u64;
                    for hop in &self.hops {
                        len += hop.queue.len();
                        bytes += hop.queue.bytes();
                    }
                    self.stats.queue_samples.push((now, len, bytes));
                    if self.hops.len() > 1 {
                        for (k, hop) in self.hops.iter().enumerate() {
                            self.stats.hop_samples[k].push((
                                now,
                                hop.queue.len(),
                                hop.queue.bytes(),
                            ));
                        }
                    }
                    if let Some(tr) = self.tracer.as_deref_mut() {
                        for (k, hop) in self.hops.iter().enumerate() {
                            tr.push(
                                now,
                                TraceEvent::QueueSample {
                                    hop: k as u32,
                                    packets: hop.queue.len() as u32,
                                    bytes: hop.queue.bytes(),
                                },
                            );
                        }
                    }
                    let next = now + self.cfg.stats_interval;
                    if next <= end {
                        self.events.schedule(next, Event::StatsTick);
                    }
                }
            }
        }

        // Finalize statistics. The primary flow's summary and delivery
        // times live in `flows[0]` and are *borrowed* by the legacy
        // accessors — the former end-of-run clone of both is gone.
        self.stats.events_processed = events_processed;
        self.stats.hop_counters.clear();
        self.stats
            .hop_counters
            .extend(self.hops.iter().map(|h| h.queue.counters()));
        self.stats.queue_counters = self.stats.hop_counters[0];
        if let Some(w) = self.stats.workload.as_mut() {
            w.active_at_end = w.spawned - w.completed;
        }
        // Only static flows surface per-flow summaries; dynamic flows are
        // aggregated in the workload block.
        for i in 0..static_flows {
            let mut summary = self.flows.senders[i].summary();
            let counters = self.flows.counters[i];
            summary.queue_drops = counters.queue_drops;
            summary.ce_marked = counters.ce_marked;
            summary.ce_received = self.flows.receivers[i].ce_received();
            summary.ece_echoed = self.flows.receivers[i].ece_echoed();
            self.stats.flows.push(FlowStats {
                summary,
                delivery_times: std::mem::take(&mut self.flows.delivery_times[i]),
                start: self.flows.start[i],
                stop: self.flows.stop[i],
                sink_received: counters.sink_received,
            });
        }
        if self.cfg.record_events {
            self.stats.transport = self.flows.senders[0].drain_log();
        }

        SimResult {
            stats: std::mem::take(&mut self.stats),
            duration_secs: self.cfg.duration.as_secs_f64(),
        }
    }
}

/// Convenience helper: build and run a simulation in one call.
pub fn run_simulation<C: CongestionControl>(cfg: SimConfig, cc: C) -> SimResult {
    Simulation::new(cfg, cc).run()
}

/// Convenience helper: build and run a multi-flow simulation in one call.
pub fn run_multi_flow_simulation<C: CongestionControl>(
    cfg: SimConfig,
    specs: Vec<FlowSpec<C>>,
) -> SimResult {
    Simulation::new_multi(cfg, specs).run()
}

/// Build and run a multi-flow simulation, recycling `scratch`'s calendar and
/// pool storage. The result is bit-identical to [`run_multi_flow_simulation`];
/// only the allocation behaviour differs.
pub fn run_multi_flow_simulation_reusing<C: CongestionControl>(
    cfg: SimConfig,
    specs: Vec<FlowSpec<C>>,
    scratch: &mut SimScratch<C>,
) -> SimResult {
    let mut specs = specs;
    run_multi_flow_simulation_pooled(cfg, &mut specs, scratch)
}

/// The fully pooled entry point of the batch evaluator: drains `specs`
/// (keeping the caller's vector and its capacity) and recycles every other
/// heap structure through `scratch`, so a warm worker builds and runs the
/// whole simulation allocation-free. Results are bit-identical to
/// [`run_multi_flow_simulation`].
pub fn run_multi_flow_simulation_pooled<C: CongestionControl>(
    cfg: SimConfig,
    specs: &mut Vec<FlowSpec<C>>,
    scratch: &mut SimScratch<C>,
) -> SimResult {
    let mut sim = Simulation::new_multi_reusing(cfg, specs, std::mem::take(scratch));
    let result = sim.run();
    *scratch = sim.into_scratch();
    result
}

/// The pooled entry point for dynamic-arrival workload runs: like
/// [`run_multi_flow_simulation_pooled`] but also arms the flow-churn engine.
/// `cfg.arrivals` must be `Some`; `specs` are the static background flows
/// (elephants) and `protos` the CCA prototypes arrivals clone from (drained
/// into the scratch-held pool on first use, refilled in place thereafter, so
/// warm calls stay allocation-free).
pub fn run_workload_simulation_pooled<C: CongestionControl + Clone + 'static>(
    cfg: SimConfig,
    specs: &mut Vec<FlowSpec<C>>,
    protos: &mut Vec<C>,
    scratch: &mut SimScratch<C>,
) -> SimResult {
    let mut sim = Simulation::new_multi_reusing(cfg, specs, std::mem::take(scratch));
    sim.install_arrivals(protos);
    let result = sim.run();
    *scratch = sim.into_scratch();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reference_cc::{FixedWindowCc, MiniAimdCc};
    use crate::link::LinkModel;
    use crate::queue::QueueCapacity;
    use crate::time::SimDuration;
    use crate::trace::{LinkTrace, TrafficTrace};

    fn base_cfg() -> SimConfig {
        let mut cfg = SimConfig::short_default();
        cfg.record_events = true;
        cfg
    }

    fn boxed(cc: impl CongestionControl + 'static) -> Box<dyn CongestionControl> {
        Box::new(cc)
    }

    #[test]
    fn fixed_window_flow_delivers_packets() {
        let cfg = base_cfg();
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(10)));
        assert!(
            result.stats.flow().delivered_packets > 100,
            "delivered {}",
            result.stats.flow().delivered_packets
        );
        assert!(!result.stats.truncated);
        assert_eq!(
            result.stats.flow().queue_drops,
            0,
            "window of 10 cannot overflow a 100-packet queue"
        );
    }

    #[test]
    fn small_window_throughput_is_window_limited() {
        // With a 1-packet window every packet waits for the receiver's
        // delayed-ACK timer (200 ms) plus the 40 ms RTT: ~21 packets in 5 s.
        let cfg = base_cfg();
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(1)));
        let delivered = result.stats.flow().delivered_packets;
        assert!((15..=30).contains(&delivered), "delivered {delivered}");

        // Disabling delayed ACKs removes the penalty: one packet per RTT.
        let mut cfg = base_cfg();
        cfg.delayed_ack = false;
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(1)));
        let delivered = result.stats.flow().delivered_packets;
        assert!((100..=135).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn aimd_fills_12mbps_link() {
        let cfg = base_cfg();
        let mss = cfg.mss;
        let result = run_simulation(cfg, boxed(MiniAimdCc::new(10)));
        let goodput = result.average_goodput_bps(mss);
        // Should reach a reasonable fraction of the 12 Mbps bottleneck.
        assert!(goodput > 6e6, "goodput only {goodput} bps");
        assert!(goodput < 12.5e6, "goodput {goodput} exceeds link rate");
    }

    #[test]
    fn static_dispatch_matches_boxed_dispatch() {
        // The same controller plugged in as a concrete type and as a trait
        // object must produce byte-identical behaviour — the enum-dispatch
        // fast path cannot change results.
        let concrete = run_simulation(base_cfg(), MiniAimdCc::new(10));
        let dynamic = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        assert_eq!(concrete.stats.digest(), dynamic.stats.digest());
        assert_eq!(
            concrete.stats.events_processed,
            dynamic.stats.events_processed
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let mut scratch = SimScratch::new();
        let fresh = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        for _ in 0..3 {
            let reused = run_multi_flow_simulation_reusing(
                base_cfg(),
                vec![FlowSpec::new(boxed(MiniAimdCc::new(10)))],
                &mut scratch,
            );
            assert_eq!(fresh.stats.digest(), reused.stats.digest());
            assert_eq!(fresh.stats.events_processed, reused.stats.events_processed);
        }
    }

    #[test]
    fn oversized_window_causes_drops_and_retransmissions() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(20);
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(500)));
        assert!(
            result.stats.flow().queue_drops > 0,
            "a 500-packet window must overflow a 20-packet queue"
        );
        assert!(result.stats.flow().retransmissions > 0);
        // The flow keeps making progress regardless.
        assert!(result.stats.flow().delivered_packets > 500);
    }

    #[test]
    fn trace_driven_link_limits_delivery_to_opportunities() {
        let mut cfg = base_cfg();
        let trace = LinkTrace::constant_rate(12_000_000, cfg.mss, SimDuration::from_millis(200));
        let opportunities = trace.len() as u64;
        cfg.link = LinkModel::TraceDriven { trace };
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(50)));
        assert!(
            result.stats.flow().delivered_packets <= opportunities,
            "cannot deliver more than the trace's {} opportunities, got {}",
            opportunities,
            result.stats.flow().delivered_packets
        );
        assert!(result.stats.flow().delivered_packets > 0);
    }

    #[test]
    fn cross_traffic_competes_for_queue_and_link() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(50);
        // Heavy cross traffic: 2000 packets over 5 s ≈ 4.6 Mbps of the 12 Mbps link.
        let injections: Vec<SimTime> = (0..2000).map(|i| SimTime::from_micros(i * 2_500)).collect();
        cfg.cross_traffic = TrafficTrace::new(injections, cfg.duration);
        let mss = cfg.mss;
        let with_cross = run_simulation(cfg, boxed(MiniAimdCc::new(10)));

        let without_cross = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        assert!(
            with_cross.average_goodput_bps(mss) < without_cross.average_goodput_bps(mss),
            "cross traffic must reduce CCA goodput"
        );
        assert!(with_cross.stats.cross_delivered > 0);
    }

    #[test]
    fn deterministic_repeatability() {
        let run = || {
            let result = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
            (
                result.stats.flow().delivered_packets,
                result.stats.flow().transmissions,
                result.stats.flow().retransmissions,
                result.stats.events_processed,
            )
        };
        assert_eq!(
            run(),
            run(),
            "identical configs must produce identical results"
        );
    }

    #[test]
    fn queuing_delay_bounded_by_queue_size() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(50);
        let result = run_simulation(cfg.clone(), boxed(FixedWindowCc::new(200)));
        // Max queuing delay is bounded by 50 packets * ~1ms serialisation.
        let max_delay = result
            .stats
            .queuing_delays(FlowId::Cca(0))
            .iter()
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(SimDuration::ZERO);
        assert!(
            max_delay <= SimDuration::from_millis(60),
            "queuing delay {max_delay} exceeds what a 50-packet queue at ~1ms/pkt allows"
        );
        assert!(
            max_delay >= SimDuration::from_millis(30),
            "queue should actually fill: {max_delay}"
        );
    }

    #[test]
    fn delivery_times_monotone_and_match_summary() {
        let result = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        let times = result.stats.delivery_times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // The receiver-side count can exceed the sender's `delivered` by at
        // most the packets whose ACKs were still in flight when the run ended.
        let receiver_side = times.len() as u64;
        let sender_side = result.stats.flow().delivered_packets;
        assert!(receiver_side >= sender_side);
        assert!(
            receiver_side - sender_side <= 200,
            "receiver saw {receiver_side}, sender credited {sender_side}"
        );
    }

    #[test]
    fn stats_disabled_still_produces_summary() {
        let mut cfg = base_cfg();
        cfg.record_events = false;
        let result = run_simulation(cfg, boxed(MiniAimdCc::new(10)));
        assert!(result.stats.bottleneck.is_empty());
        assert!(result.stats.transport.is_empty());
        assert!(result.stats.flow().delivered_packets > 0);
    }

    #[test]
    fn empty_link_trace_delivers_nothing() {
        let mut cfg = base_cfg();
        cfg.link = LinkModel::TraceDriven {
            trace: LinkTrace::new(Vec::new(), cfg.duration),
        };
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(10)));
        assert_eq!(result.stats.flow().delivered_packets, 0);
        // The sender will RTO repeatedly but must not hang or panic.
        assert!(result.stats.flow().rto_count > 0);
    }

    #[test]
    fn packet_conservation_at_the_queue() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(30);
        let injections: Vec<SimTime> = (0..1000).map(|i| SimTime::from_micros(i * 4_000)).collect();
        cfg.cross_traffic = TrafficTrace::new(injections, cfg.duration);
        let result = run_simulation(cfg, boxed(MiniAimdCc::new(10)));
        let c = result.stats.queue_counters;
        assert!(
            c.total_enqueued() >= c.total_dequeued(),
            "cannot dequeue more than was enqueued"
        );
        // Whatever was enqueued was either dequeued or still resident at the
        // end (residual is small: at most the queue capacity).
        assert!(c.total_enqueued() - c.total_dequeued() <= 30);
    }

    // ------------------------------------------------------------------
    // Multi-flow engine
    // ------------------------------------------------------------------

    #[test]
    fn single_flow_and_multi_constructor_agree() {
        // A single-spec `new_multi` must be indistinguishable from `new`.
        let a = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        let b =
            run_multi_flow_simulation(base_cfg(), vec![FlowSpec::new(boxed(MiniAimdCc::new(10)))]);
        assert_eq!(a.stats.digest(), b.stats.digest());
        assert_eq!(a.stats.events_processed, b.stats.events_processed);
        assert_eq!(a.stats.flows.len(), 1);
    }

    #[test]
    fn legacy_accessors_borrow_flow_zero() {
        let result = run_multi_flow_simulation(
            base_cfg(),
            vec![
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
            ],
        );
        assert_eq!(result.stats.flows.len(), 2);
        assert_eq!(*result.stats.flow(), result.stats.flows[0].summary);
        assert_eq!(
            result.stats.delivery_times(),
            &result.stats.flows[0].delivery_times[..]
        );
    }

    #[test]
    fn two_flows_share_the_bottleneck() {
        let mss = base_cfg().mss;
        let solo = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        let pair = run_multi_flow_simulation(
            base_cfg(),
            vec![
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
            ],
        );
        let goodputs = pair.per_flow_goodput_bps(mss);
        assert_eq!(goodputs.len(), 2);
        // Each flow gets materially less than the whole link, and together
        // they do not exceed it.
        let total: f64 = goodputs.iter().sum();
        assert!(total < 12.5e6, "total {total}");
        for g in goodputs.iter() {
            assert!(
                *g < solo.average_goodput_bps(mss),
                "a competing flow cannot beat the solo flow: {g}"
            );
            assert!(*g > 1e6, "both flows must make progress: {g}");
        }
    }

    #[test]
    fn late_start_and_early_stop_are_respected() {
        let cfg = base_cfg();
        let start = SimTime::from_secs_f64(2.0);
        let stop = SimTime::from_secs_f64(3.0);
        let result = run_multi_flow_simulation(
            cfg,
            vec![
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
                FlowSpec {
                    cc: boxed(MiniAimdCc::new(10)),
                    start,
                    stop: Some(stop),
                },
            ],
        );
        let late = &result.stats.flows[1];
        assert!(late.summary.transmissions > 0, "the late flow did send");
        assert!(
            late.delivery_times
                .first()
                .map(|t| *t >= start)
                .unwrap_or(true),
            "nothing delivered before the flow started"
        );
        // Nothing new is *sent* after the stop; deliveries can trail by at
        // most the in-flight window draining through queue + link.
        let last = late.delivery_times.last().copied().unwrap_or(SimTime::ZERO);
        assert!(
            last <= stop + SimDuration::from_millis(500),
            "deliveries must cease shortly after stop, last at {last}"
        );
        assert!((late.active_secs(SimDuration::from_secs(5)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_flow_runs_are_deterministic() {
        let run = || {
            let result = run_multi_flow_simulation(
                base_cfg(),
                vec![
                    FlowSpec::new(boxed(MiniAimdCc::new(10))),
                    FlowSpec {
                        cc: boxed(FixedWindowCc::new(30)),
                        start: SimTime::from_millis(500),
                        stop: None,
                    },
                ],
            );
            result.stats.digest()
        };
        assert_eq!(run(), run());
    }

    // ------------------------------------------------------------------
    // Queue disciplines + ECN
    // ------------------------------------------------------------------

    use crate::queue::Qdisc;

    /// A window CCA that records every ECN callback, so the end-to-end
    /// feedback loop (mark at queue -> echo at receiver -> sender callback)
    /// is observable without depending on the real algorithms crate.
    #[derive(Debug)]
    struct EcnProbeCc {
        window: u64,
        ece_seen: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl CongestionControl for EcnProbeCc {
        fn name(&self) -> &'static str {
            "ecn-probe"
        }
        fn on_ack(&mut self, _: &crate::cc::CcContext, _: &crate::cc::RateSample) {}
        fn on_congestion(&mut self, _: &crate::cc::CcContext, _: crate::cc::CongestionSignal) {}
        fn on_ecn(&mut self, _: &crate::cc::CcContext, ce_acked: u64) {
            self.ece_seen
                .fetch_add(ce_acked, std::sync::atomic::Ordering::Relaxed);
        }
        fn cwnd(&self) -> u64 {
            self.window
        }
    }

    #[test]
    fn red_with_ecn_marks_and_echoes_end_to_end() {
        let mut cfg = base_cfg();
        cfg.record_events = false;
        cfg.queue_capacity = crate::queue::QueueCapacity::Packets(100);
        cfg.qdisc = Qdisc::Red {
            min_thresh: 5,
            max_thresh: 60,
            mark_probability: 0.5,
        };
        cfg.ecn_enabled = true;
        let ece_seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        // Stop the flow 1 s before the scenario ends so the queue, the link
        // and the delayed-ACK timers drain completely: with an empty
        // network the mark-conservation checks are exact equalities.
        let result = run_multi_flow_simulation(
            cfg,
            vec![FlowSpec {
                cc: boxed(EcnProbeCc {
                    window: 200, // deep standing queue, above min_thresh
                    ece_seen: ece_seen.clone(),
                }),
                start: SimTime::ZERO,
                stop: Some(SimTime::from_secs_f64(4.0)),
            }],
        );
        let f = result.stats.flow();
        assert!(f.ce_marked > 10, "RED must mark a window-heavy flow: {f:?}");
        assert_eq!(
            f.ce_marked, f.ce_received,
            "in-flight marks all drain after the flow stops"
        );
        assert_eq!(
            f.ce_received, f.ece_echoed,
            "every mark echoed exactly once"
        );
        assert!(f.ece_acked > 0, "the sender processed echoes");
        assert_eq!(
            ece_seen.load(std::sync::atomic::Ordering::Relaxed),
            f.ece_acked,
            "every processed echo reached the congestion controller"
        );
        assert_eq!(result.stats.queue_counters.marked_cca, f.ce_marked);
    }

    #[test]
    fn red_without_ecn_drops_instead_of_marking() {
        let mut cfg = base_cfg();
        cfg.record_events = false;
        cfg.qdisc = Qdisc::Red {
            min_thresh: 5,
            max_thresh: 60,
            mark_probability: 0.5,
        };
        cfg.ecn_enabled = false;
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(200)));
        let f = result.stats.flow();
        assert_eq!(f.ce_marked, 0, "no marks without ECN negotiation");
        assert_eq!(f.ece_acked, 0);
        assert!(
            f.queue_drops > 10,
            "RED sheds the standing queue by dropping instead"
        );
    }

    #[test]
    fn codel_with_ecn_marks_persistent_queues() {
        let mut cfg = base_cfg();
        cfg.record_events = false;
        cfg.qdisc = Qdisc::codel_default();
        cfg.ecn_enabled = true;
        let result = run_multi_flow_simulation(
            cfg,
            vec![FlowSpec {
                cc: boxed(FixedWindowCc::new(200)),
                start: SimTime::ZERO,
                stop: Some(SimTime::from_secs_f64(4.0)),
            }],
        );
        let f = result.stats.flow();
        assert!(
            f.ce_marked > 5,
            "a 200-packet standing queue must trip CoDel: {f:?}"
        );
        assert_eq!(f.ce_marked, f.ce_received);
        assert_eq!(f.ce_received, f.ece_echoed);
    }

    #[test]
    fn drop_tail_run_digest_is_independent_of_ecn_negotiation() {
        // ECN on a drop-tail path never marks, so the digest must not move:
        // the ECN block only mixes into the digest when marks exist.
        let plain = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        let mut cfg = base_cfg();
        cfg.ecn_enabled = true;
        let ecn = run_simulation(cfg, boxed(MiniAimdCc::new(10)));
        assert_eq!(ecn.stats.flow().ce_marked, 0);
        assert_eq!(plain.stats.digest(), ecn.stats.digest());
    }

    #[test]
    fn aqm_runs_are_deterministic() {
        let run = |qdisc: Qdisc| {
            let mut cfg = base_cfg();
            cfg.record_events = false;
            cfg.qdisc = qdisc;
            cfg.ecn_enabled = true;
            run_simulation(cfg, boxed(MiniAimdCc::new(50)))
                .stats
                .digest()
        };
        for qdisc in [Qdisc::red_default(100), Qdisc::codel_default()] {
            assert_eq!(
                run(qdisc),
                run(qdisc),
                "{} must be deterministic",
                qdisc.name()
            );
        }
    }

    // ------------------------------------------------------------------
    // Multi-hop topology
    // ------------------------------------------------------------------

    use crate::topology::{HopConfig, HopRange, Topology};

    #[test]
    fn explicit_single_hop_topology_matches_legacy_config() {
        // A one-hop topology assembled from the legacy fields must be
        // indistinguishable from the config without a topology: same
        // digest, same event count (the seed of hop 0 is the legacy seed).
        let legacy = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        let mut cfg = base_cfg();
        cfg.topology = Some(Topology::chain(vec![HopConfig {
            link: cfg.link.clone(),
            propagation_delay: cfg.propagation_delay,
            queue_capacity: cfg.queue_capacity,
            qdisc: cfg.qdisc,
        }]));
        let topo = run_simulation(cfg, boxed(MiniAimdCc::new(10)));
        assert_eq!(legacy.stats.digest(), topo.stats.digest());
        assert_eq!(legacy.stats.events_processed, topo.stats.events_processed);
        assert_eq!(topo.stats.hop_counters.len(), 1);
        assert_eq!(topo.stats.hop_counters[0], topo.stats.queue_counters);
        assert!(topo.stats.hop_samples.is_empty());
    }

    fn chain_cfg(rates_mbps: &[u64]) -> SimConfig {
        let mut cfg = base_cfg();
        cfg.topology = Some(Topology::chain(
            rates_mbps
                .iter()
                .map(|&mbps| {
                    HopConfig::fixed_rate(mbps * 1_000_000, SimDuration::from_millis(10), 100)
                })
                .collect(),
        ));
        cfg
    }

    #[test]
    fn two_hop_chain_delivers_and_conserves_per_hop() {
        // Stop the flow 1 s before the scenario ends so every packet in
        // flight between the hops drains and conservation is exact.
        let cfg = chain_cfg(&[12, 8]);
        let result = run_multi_flow_simulation(
            cfg,
            vec![FlowSpec {
                cc: boxed(MiniAimdCc::new(10)),
                start: SimTime::ZERO,
                stop: Some(SimTime::from_secs_f64(4.0)),
            }],
        );
        assert!(result.stats.flow().delivered_packets > 100);
        assert_eq!(result.stats.hop_counters.len(), 2);
        let [h0, h1] = [result.stats.hop_counters[0], result.stats.hop_counters[1]];
        // Every packet hop 0 served arrived at hop 1 and was either
        // admitted or dropped there (the inter-hop path loses nothing).
        assert_eq!(
            h0.total_dequeued(),
            h1.total_enqueued() + h1.total_dropped()
        );
        // The second hop is the 8 Mbps bottleneck; goodput respects it.
        let goodput = result.average_goodput_bps(1448);
        assert!(goodput < 8.5e6, "goodput {goodput} exceeds the tight hop");
        assert!(goodput > 4e6, "goodput {goodput} too low for an 8 Mbps hop");
        // Multi-hop runs expose per-hop occupancy samples.
        assert_eq!(result.stats.hop_samples.len(), 2);
        assert!(!result.stats.hop_samples[0].is_empty());
    }

    #[test]
    fn multi_hop_rtt_is_the_sum_of_hop_delays() {
        // Two 10 ms hops = 20 ms one-way = 40 ms RTT, same as the paper's
        // single 20 ms hop; min_rtt must reflect the summed path.
        let cfg = chain_cfg(&[12, 12]);
        let result = run_simulation(cfg, boxed(FixedWindowCc::new(2)));
        let min_rtt_us = result.stats.flow().min_rtt_us;
        assert!(
            (40_000..46_000).contains(&min_rtt_us),
            "min_rtt {min_rtt_us}us should be ~40ms + serialization"
        );
    }

    #[test]
    fn parking_lot_short_flow_skips_other_hops() {
        // Flow 0 crosses all three hops; flow 1 enters and exits at hop 1.
        let mut cfg = chain_cfg(&[12, 6, 12]);
        cfg.topology.as_mut().unwrap().paths = vec![HopRange::full(3), HopRange::new(1, 1)];
        let result = run_multi_flow_simulation(
            cfg,
            vec![
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
            ],
        );
        let hops = &result.stats.hop_counters;
        assert_eq!(hops.len(), 3);
        // Hops 0 and 2 only ever see flow 0's packets; hop 1 sees both.
        let f0_tx = result.stats.flows[0].summary.transmissions;
        let f1_tx = result.stats.flows[1].summary.transmissions;
        assert!(f1_tx > 0);
        assert_eq!(hops[0].enqueued_cca + hops[0].dropped_cca, f0_tx);
        assert!(hops[1].enqueued_cca + hops[1].dropped_cca >= f1_tx);
        // Everything flow 1 delivered exited after hop 1: hop 2 carries
        // only what hop 1 passed of flow 0.
        assert!(hops[2].enqueued_cca <= hops[1].dequeued_cca);
        // Both flows make progress through the shared 6 Mbps bottleneck.
        let goodputs = result.per_flow_goodput_bps(1448);
        assert!(goodputs[0] > 0.5e6 && goodputs[1] > 0.5e6);
    }

    #[test]
    fn multi_hop_runs_are_deterministic_and_digest_hop_sensitive() {
        let run = |rates: &[u64]| {
            run_simulation(chain_cfg(rates), boxed(MiniAimdCc::new(10)))
                .stats
                .digest()
        };
        assert_eq!(run(&[12, 8]), run(&[12, 8]));
        assert_ne!(
            run(&[12, 8]),
            run(&[8, 12]),
            "hop order shapes behaviour and the digest"
        );
    }

    #[test]
    fn per_hop_red_lotteries_are_independent() {
        // Two RED hops must not mirror each other's mark decisions: their
        // seeded lotteries are forked per hop. The second hop is slower so
        // a standing queue (and therefore marking) develops at both.
        let mut cfg = chain_cfg(&[12, 8]);
        {
            let topo = cfg.topology.as_mut().unwrap();
            for hop in &mut topo.hops {
                hop.qdisc = Qdisc::Red {
                    min_thresh: 2,
                    max_thresh: 90,
                    mark_probability: 0.6,
                };
            }
        }
        cfg.ecn_enabled = true;
        cfg.record_events = false;
        let result = run_multi_flow_simulation(
            cfg,
            vec![FlowSpec {
                cc: boxed(FixedWindowCc::new(120)),
                start: SimTime::ZERO,
                stop: Some(SimTime::from_secs_f64(4.0)),
            }],
        );
        let hops = &result.stats.hop_counters;
        assert!(hops[0].marked_cca > 0, "first RED hop marks");
        assert!(hops[1].marked_cca > 0, "second RED hop marks");
        assert_ne!(
            hops[0].marked_cca, hops[1].marked_cca,
            "independent lotteries should not coincide exactly"
        );
        // Cascaded marking: the flow counts one mark event per hop, while
        // the receiver sees each CE *packet* once — a packet marked at both
        // hops contributes two mark events but one CE arrival.
        let f = result.stats.flow();
        assert_eq!(f.ce_marked, hops[0].marked_cca + hops[1].marked_cca);
        assert!(f.ce_received > 0 && f.ce_received <= f.ce_marked);
        assert_eq!(f.ce_received, f.ece_echoed, "every CE arrival echoed once");
    }

    // ------------------------------------------------------------------
    // Structured tracing
    // ------------------------------------------------------------------

    use crate::simtrace::TraceEvent;

    fn run_traced(
        cfg: SimConfig,
        cc: Box<dyn CongestionControl>,
    ) -> (SimResult, crate::simtrace::SimTrace) {
        let mut sim = Simulation::new(cfg, cc);
        sim.install_tracer(1 << 14);
        let result = sim.run();
        let trace = sim.take_trace().expect("tracer installed");
        (result, trace)
    }

    #[test]
    fn traced_run_digest_matches_untraced_run() {
        // The recorder is a pure observer: digests and event counts are
        // byte-identical with and without it, for drop-tail and AQM+ECN.
        let plain = run_simulation(base_cfg(), boxed(MiniAimdCc::new(50)));
        let (traced, trace) = run_traced(base_cfg(), boxed(MiniAimdCc::new(50)));
        assert_eq!(plain.stats.digest(), traced.stats.digest());
        assert_eq!(plain.stats.events_processed, traced.stats.events_processed);
        assert!(!trace.events.is_empty());

        let mut aqm_cfg = base_cfg();
        aqm_cfg.qdisc = Qdisc::red_default(100);
        aqm_cfg.ecn_enabled = true;
        let plain = run_simulation(aqm_cfg.clone(), boxed(MiniAimdCc::new(50)));
        let (traced, _) = run_traced(aqm_cfg, boxed(MiniAimdCc::new(50)));
        assert_eq!(plain.stats.digest(), traced.stats.digest());
    }

    #[test]
    fn trace_captures_cwnd_queue_samples_and_drops() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(20);
        let (result, trace) = run_traced(cfg, boxed(MiniAimdCc::new(200)));
        assert!(result.stats.flow().queue_drops > 0);
        let kinds = |k: &str| trace.events.iter().filter(|r| r.event.kind() == k).count();
        assert!(kinds("cwnd") > 0, "cwnd updates recorded");
        assert!(kinds("queue") > 0, "queue samples recorded");
        assert!(kinds("drop") > 0, "drops recorded");
        assert_eq!(kinds("queue"), trace.hop_samples(0).count());
        // Events come out in time order.
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
        // Every CCA drop in the trace is mirrored in the stats (ring did
        // not overflow at this capacity).
        if trace.overwritten == 0 {
            let traced_drops = trace
                .events
                .iter()
                .filter(|r| {
                    matches!(
                        r.event,
                        TraceEvent::Drop {
                            flow: FlowId::Cca(0),
                            ..
                        }
                    )
                })
                .count() as u64;
            assert_eq!(traced_drops, result.stats.flow().queue_drops);
        }
    }

    #[test]
    fn trace_captures_ecn_marks_and_recovery_transitions() {
        let mut cfg = base_cfg();
        cfg.qdisc = Qdisc::Red {
            min_thresh: 5,
            max_thresh: 60,
            mark_probability: 0.5,
        };
        cfg.ecn_enabled = true;
        let (result, trace) = run_traced(cfg, boxed(MiniAimdCc::new(120)));
        assert!(result.stats.flow().ce_marked > 0);
        let marks = trace
            .events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::EcnMark { .. }))
            .count() as u64;
        assert!(marks > 0, "ECN marks recorded");
        // A 120-packet AIMD window over a 100-packet queue loses packets
        // and recovers; the state transitions show up in the trace.
        let enters = trace
            .events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RecoveryEnter { .. }))
            .count();
        let exits = trace
            .events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RecoveryExit { .. }))
            .count();
        assert!(enters > 0, "recovery entries recorded");
        assert!(exits > 0 && exits <= enters);
    }

    #[test]
    fn per_flow_transmissions_match_queue_counters() {
        // Conservation: every transmitted packet of every flow reaches the
        // gateway and is either enqueued or dropped there.
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(25);
        let injections: Vec<SimTime> = (0..800).map(|i| SimTime::from_micros(i * 5_000)).collect();
        cfg.cross_traffic = TrafficTrace::new(injections, cfg.duration);
        let result = run_multi_flow_simulation(
            cfg,
            vec![
                FlowSpec::new(boxed(MiniAimdCc::new(10))),
                FlowSpec::new(boxed(FixedWindowCc::new(40))),
                FlowSpec {
                    cc: boxed(MiniAimdCc::new(5)),
                    start: SimTime::from_secs_f64(1.0),
                    stop: Some(SimTime::from_secs_f64(4.0)),
                },
            ],
        );
        let c = result.stats.queue_counters;
        let sent: u64 = result
            .stats
            .flows
            .iter()
            .map(|f| f.summary.transmissions)
            .sum();
        let drops: u64 = result
            .stats
            .flows
            .iter()
            .map(|f| f.summary.queue_drops)
            .sum();
        assert_eq!(sent, c.enqueued_cca + c.dropped_cca);
        assert_eq!(drops, c.dropped_cca);
    }

    // ------------------------------------------------------------------
    // Dynamic-flow workload (flow churn engine)
    // ------------------------------------------------------------------

    use crate::workload::{ArrivalConfig, ArrivalProcess, SizeDistribution};

    fn workload_cfg(rate_per_sec: f64, max_concurrent: u32) -> SimConfig {
        let mut cfg = SimConfig::short_default();
        cfg.arrivals = Some(ArrivalConfig {
            process: ArrivalProcess::Poisson { rate_per_sec },
            size: SizeDistribution {
                shape: 1.2,
                min_packets: 2,
                max_packets: 200,
            },
            mice_threshold_packets: 32,
            max_concurrent,
            max_arrivals: 100_000,
        });
        cfg
    }

    fn run_workload(cfg: SimConfig, scratch: &mut SimScratch<MiniAimdCc>) -> SimResult {
        let mut specs = vec![FlowSpec::new(MiniAimdCc::new(10))];
        let mut protos = vec![MiniAimdCc::new(4)];
        run_workload_simulation_pooled(cfg, &mut specs, &mut protos, scratch)
    }

    #[test]
    fn workload_spawns_and_completes_flows() {
        let mut scratch = SimScratch::new();
        let result = run_workload(workload_cfg(60.0, 32), &mut scratch);
        let w = result.stats.workload().expect("workload stats");
        // 60 arrivals/s over 5 s: the process is random, but far from the
        // tails — well over 100 spawns, and most mice finish within the run.
        assert!(w.spawned > 100, "spawned {}", w.spawned);
        assert!(w.completed > 50, "completed {}", w.completed);
        assert!(w.completed <= w.spawned);
        assert_eq!(w.spawned, w.completed + w.active_at_end);
        assert_eq!(w.fct_count(), w.completed);
        assert!(!w.samples.is_empty());
        // Per-flow conservation folds into the aggregates at recycle time.
        assert_eq!(w.completed_tx, w.completed_delivered + w.completed_dropped);
        assert!(w.completed_tx > 0);
        // The static background flow still makes progress and is the only
        // flow surfaced per-flow.
        assert_eq!(result.stats.flows.len(), 1);
        assert!(result.stats.flow().delivered_packets > 0);
    }

    #[test]
    fn workload_stats_absent_without_arrivals() {
        let result = run_simulation(base_cfg(), boxed(MiniAimdCc::new(10)));
        assert!(result.stats.workload().is_none());
        assert_eq!(result.stats.delivery_samples_dropped, 0);
    }

    #[test]
    fn workload_is_deterministic_and_scratch_reuse_is_bit_identical() {
        let fresh = run_workload(workload_cfg(60.0, 32), &mut SimScratch::new());
        let mut scratch = SimScratch::new();
        for _ in 0..3 {
            let reused = run_workload(workload_cfg(60.0, 32), &mut scratch);
            assert_eq!(fresh.stats.digest(), reused.stats.digest());
            assert_eq!(fresh.stats.events_processed, reused.stats.events_processed);
            let (a, b) = (
                fresh.stats.workload().unwrap(),
                reused.stats.workload().unwrap(),
            );
            assert_eq!(a.spawned, b.spawned);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.fct_mice.count(), b.fct_mice.count());
            scratch.recycle_stats(reused.stats);
        }
    }

    #[test]
    fn workload_seed_changes_digest() {
        let a = run_workload(workload_cfg(60.0, 32), &mut SimScratch::new());
        let mut cfg = workload_cfg(60.0, 32);
        cfg.seed ^= 0xDEAD_BEEF;
        let b = run_workload(cfg, &mut SimScratch::new());
        assert_ne!(a.stats.digest(), b.stats.digest());
    }

    #[test]
    fn workload_concurrency_cap_recycles_slots() {
        // A tiny concurrency cap under a heavy arrival rate: the engine must
        // shed arrivals (capped) and keep running flows through recycled
        // slots instead of growing the flow table.
        let result = run_workload(workload_cfg(200.0, 4), &mut SimScratch::new());
        let w = result.stats.workload().expect("workload stats");
        assert!(w.capped > 0, "a 4-slot cap under 200/s must shed arrivals");
        assert!(
            w.completed > 4,
            "slots must recycle: completed {}",
            w.completed
        );
        assert!(w.active_at_end <= 4);
    }

    #[test]
    fn workload_max_arrivals_caps_attempts() {
        let mut cfg = workload_cfg(200.0, 32);
        cfg.arrivals.as_mut().unwrap().max_arrivals = 7;
        let result = run_workload(cfg, &mut SimScratch::new());
        let w = result.stats.workload().expect("workload stats");
        assert_eq!(w.spawned + w.capped, 7);
    }

    #[test]
    fn workload_onoff_process_also_completes_flows() {
        let mut cfg = workload_cfg(120.0, 32);
        cfg.arrivals.as_mut().unwrap().process = ArrivalProcess::OnOff {
            rate_per_sec: 120.0,
            mean_on_secs: 0.5,
            mean_off_secs: 0.5,
        };
        let result = run_workload(cfg.clone(), &mut SimScratch::new());
        let w = result.stats.workload().expect("workload stats");
        assert!(w.spawned > 20, "spawned {}", w.spawned);
        assert!(w.completed > 0);
        // Determinism holds for the bursty process too.
        let again = run_workload(cfg, &mut SimScratch::new());
        assert_eq!(result.stats.digest(), again.stats.digest());
    }

    #[test]
    fn workload_mice_finish_faster_than_elephants() {
        let result = run_workload(workload_cfg(60.0, 32), &mut SimScratch::new());
        let w = result.stats.workload().expect("workload stats");
        if w.fct_mice.count() > 10 && w.fct_elephants.count() > 3 {
            assert!(
                w.fct_mice.percentile_nanos(50.0) < w.fct_elephants.percentile_nanos(50.0),
                "median mouse FCT must undercut median elephant FCT"
            );
        }
    }

    #[test]
    fn workload_requires_install_arrivals() {
        let cfg = workload_cfg(60.0, 32);
        let result = std::panic::catch_unwind(|| {
            let mut sim = Simulation::new_multi(cfg, vec![FlowSpec::new(MiniAimdCc::new(10))]);
            sim.run()
        });
        assert!(result.is_err(), "run without install_arrivals must panic");
    }
}
