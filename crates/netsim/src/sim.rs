//! The dumbbell simulation from §3.1 of the paper.
//!
//! Wires together the TCP-like sender/receiver, the cross-traffic source,
//! the drop-tail gateway queue and the bottleneck link, and runs the
//! discrete-event loop. A [`Simulation`] is a pure function of its
//! [`SimConfig`] and the plugged-in congestion control algorithm: running the
//! same configuration twice produces bit-identical [`SimResult`]s, which is
//! what lets the genetic algorithm converge (§3.6).

use crate::cc::CongestionControl;
use crate::config::SimConfig;
use crate::crosstraffic::CrossTrafficSource;
use crate::event::{Event, EventQueue};
use crate::link::{LinkAction, LinkService};
use crate::packet::{AckPacket, DataPacket, FlowId};
use crate::queue::DropTailQueue;
use crate::stats::{BottleneckEvent, BottleneckRecord, RunStats};
use crate::tcp::receiver::{ReceiverConfig, TcpReceiver};
use crate::tcp::sender::{SendPoll, SenderConfig, TcpSender};
use crate::time::SimTime;

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Everything measured during the run.
    pub stats: RunStats,
    /// The configured duration (useful for rate normalisation downstream).
    pub duration_secs: f64,
}

impl SimResult {
    /// Average goodput of the CCA flow over the whole run, in bits per second.
    pub fn average_goodput_bps(&self, mss: u32) -> f64 {
        if self.duration_secs <= 0.0 {
            return 0.0;
        }
        self.stats.flow.delivered_packets as f64 * mss as f64 * 8.0 / self.duration_secs
    }
}

/// The dumbbell simulation.
pub struct Simulation {
    cfg: SimConfig,
    events: EventQueue,
    sender: TcpSender,
    receiver: TcpReceiver,
    queue: DropTailQueue,
    link: LinkService,
    cross: CrossTrafficSource,
    stats: RunStats,
    /// Dedupe for LinkReady events.
    link_ready_scheduled: Option<SimTime>,
    /// Dedupe for pacing timer events.
    pacing_scheduled: Option<SimTime>,
    /// Last RTO (deadline, generation) scheduled as an event.
    rto_scheduled: Option<(SimTime, u64)>,
    finished: bool,
}

impl Simulation {
    /// Builds a simulation from a configuration and a congestion controller.
    pub fn new(cfg: SimConfig, cc: Box<dyn CongestionControl>) -> Self {
        debug_assert!(
            cfg.validate().is_ok(),
            "invalid SimConfig: {:?}",
            cfg.validate()
        );
        let sender_cfg = SenderConfig {
            mss: cfg.mss,
            sack_enabled: cfg.sack_enabled,
            min_rto: cfg.min_rto,
            max_rto: cfg.max_rto,
            initial_rto: cfg.initial_rto,
            initial_cwnd: cfg.initial_cwnd,
            buffer_packets: cfg.sender_buffer_packets,
        };
        let receiver_cfg = ReceiverConfig {
            sack_enabled: cfg.sack_enabled,
            delayed_ack: cfg.delayed_ack,
            delayed_ack_count: cfg.delayed_ack_count,
            delayed_ack_timeout: cfg.delayed_ack_timeout,
            max_sack_blocks: 4,
        };
        let link = LinkService::new(cfg.link.clone());
        let cross = CrossTrafficSource::new(&cfg.cross_traffic, cfg.cross_traffic_packet_size);
        let queue = DropTailQueue::new(cfg.queue_capacity);
        Simulation {
            sender: TcpSender::new(sender_cfg, cc),
            receiver: TcpReceiver::new(receiver_cfg),
            queue,
            link,
            cross,
            events: EventQueue::new(),
            stats: RunStats::default(),
            link_ready_scheduled: None,
            pacing_scheduled: None,
            rto_scheduled: None,
            finished: false,
            cfg,
        }
    }

    /// The configuration this simulation runs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Immutable access to the sender (e.g. to inspect CCA state mid-run in
    /// tests).
    pub fn sender(&self) -> &TcpSender {
        &self.sender
    }

    fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.cfg.duration
    }

    fn record_bottleneck(&mut self, at: SimTime, flow: FlowId, size: u32, event: BottleneckEvent) {
        if self.cfg.record_events {
            self.stats.bottleneck.push(BottleneckRecord {
                at,
                flow,
                size,
                event,
            });
        }
    }

    // ------------------------------------------------------------------
    // Link / queue plumbing
    // ------------------------------------------------------------------

    fn try_transmit(&mut self, now: SimTime) {
        loop {
            match self.link.next_action(now, !self.queue.is_empty()) {
                LinkAction::TransmitNow => {
                    let pkt = self.queue.dequeue().expect("queue non-empty");
                    let queuing_delay = now.saturating_since(pkt.enqueued_at);
                    self.record_bottleneck(
                        now,
                        pkt.flow,
                        pkt.size,
                        BottleneckEvent::Dequeued { queuing_delay },
                    );
                    let crossed_at = self.link.on_transmit(now, pkt.size);
                    let arrival = crossed_at + self.cfg.propagation_delay;
                    self.events.schedule(arrival, Event::SinkArrival(pkt));
                }
                LinkAction::WaitUntil(t) => {
                    if t != SimTime::MAX
                        && t <= self.end_time()
                        && self
                            .link_ready_scheduled
                            .map(|s| s > t || s < now)
                            .unwrap_or(true)
                    {
                        self.events.schedule(t, Event::LinkReady);
                        self.link_ready_scheduled = Some(t);
                    }
                    break;
                }
                LinkAction::Exhausted => break,
            }
        }
    }

    fn handle_gateway_arrival(&mut self, pkt: DataPacket, now: SimTime) {
        let flow = pkt.flow;
        let size = pkt.size;
        let accepted = self.queue.enqueue(pkt, now);
        let event = if accepted {
            BottleneckEvent::Enqueued
        } else {
            BottleneckEvent::Dropped
        };
        self.record_bottleneck(now, flow, size, event);
        if !accepted && flow == FlowId::CrossTraffic {
            self.stats.cross_dropped += 1;
        }
        if accepted {
            self.try_transmit(now);
        }
    }

    // ------------------------------------------------------------------
    // Sender plumbing
    // ------------------------------------------------------------------

    fn sync_rto_timer(&mut self) {
        if let Some((deadline, generation)) = self.sender.rto_deadline() {
            if self.rto_scheduled != Some((deadline, generation)) {
                self.events.schedule(
                    deadline.max(self.events.now()),
                    Event::RtoTimer { generation },
                );
                self.rto_scheduled = Some((deadline, generation));
            }
        }
    }

    fn pump_sender(&mut self, now: SimTime) {
        loop {
            match self.sender.poll_send(now) {
                SendPoll::Packet(pkt) => {
                    // The access link from sender to gateway is unconstrained:
                    // packets arrive at the queue immediately.
                    self.handle_gateway_arrival(pkt, now);
                }
                SendPoll::Wait(t) => {
                    if t <= self.end_time()
                        && self
                            .pacing_scheduled
                            .map(|s| s > t || s <= now)
                            .unwrap_or(true)
                    {
                        self.events
                            .schedule(t, Event::PacingTimer { generation: 0 });
                        self.pacing_scheduled = Some(t);
                    }
                    break;
                }
                SendPoll::Blocked => break,
            }
        }
        self.sync_rto_timer();
    }

    fn deliver_ack_to_sender(&mut self, ack: AckPacket, now: SimTime) {
        self.sender.on_ack(&ack, now);
        self.pump_sender(now);
    }

    fn handle_sink_arrival(&mut self, pkt: DataPacket, now: SimTime) {
        match pkt.flow {
            FlowId::CrossTraffic => {
                self.stats.cross_delivered += 1;
            }
            FlowId::Cca => {
                let before = self.receiver.cum_ack() + self.receiver.ooo_packets();
                let out = self.receiver.on_data(&pkt, now);
                let after = self.receiver.cum_ack() + self.receiver.ooo_packets();
                for _ in before..after {
                    self.stats.delivery_times.push(now);
                }
                for ack in out.acks {
                    self.events
                        .schedule(now + self.cfg.propagation_delay, Event::AckArrival(ack));
                }
                if let Some((deadline, generation)) = out.arm_delack {
                    self.events
                        .schedule(deadline, Event::DelayedAckTimer { generation });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs the simulation to completion and returns the collected results.
    pub fn run(&mut self) -> SimResult {
        assert!(!self.finished, "a Simulation can only be run once");
        self.finished = true;

        // Seed the event calendar.
        self.events.schedule(self.cfg.flow_start, Event::FlowStart);
        self.events.schedule(SimTime::ZERO, Event::StatsTick);
        // Cross-traffic injections are known up front.
        while let Some(t) = self.cross.next_injection_time() {
            if t > self.end_time() {
                break;
            }
            let pkt = self.cross.poll(t).expect("injection due");
            self.events.schedule(t, Event::GatewayArrival(pkt));
        }

        let end = self.end_time();
        let mut events_processed: u64 = 0;
        while let Some((now, event)) = self.events.pop() {
            if now > end {
                break;
            }
            events_processed += 1;
            if events_processed > self.cfg.max_events {
                self.stats.truncated = true;
                break;
            }
            match event {
                Event::FlowStart => {
                    self.sender.on_flow_start(now);
                    self.pump_sender(now);
                }
                Event::GatewayArrival(pkt) => {
                    self.handle_gateway_arrival(pkt, now);
                }
                Event::LinkReady => {
                    if self.link_ready_scheduled == Some(now) {
                        self.link_ready_scheduled = None;
                    }
                    self.try_transmit(now);
                }
                Event::SinkArrival(pkt) => {
                    self.handle_sink_arrival(pkt, now);
                }
                Event::AckArrival(ack) => {
                    self.deliver_ack_to_sender(ack, now);
                }
                Event::RtoTimer { generation } => {
                    if self
                        .rto_scheduled
                        .map(|(_, g)| g == generation)
                        .unwrap_or(false)
                    {
                        self.rto_scheduled = None;
                    }
                    if self.sender.on_rto_timer(generation, now) {
                        self.pump_sender(now);
                    } else {
                        self.sync_rto_timer();
                    }
                }
                Event::DelayedAckTimer { generation } => {
                    if let Some(ack) = self.receiver.on_delack_timer(generation, now) {
                        self.events
                            .schedule(now + self.cfg.propagation_delay, Event::AckArrival(ack));
                    }
                }
                Event::PacingTimer { .. } => {
                    if self.pacing_scheduled == Some(now) {
                        self.pacing_scheduled = None;
                    }
                    self.pump_sender(now);
                }
                Event::StatsTick => {
                    self.stats
                        .queue_samples
                        .push((now, self.queue.len(), self.queue.bytes()));
                    let next = now + self.cfg.stats_interval;
                    if next <= end {
                        self.events.schedule(next, Event::StatsTick);
                    }
                }
            }
        }

        // Finalize statistics.
        self.stats.events_processed = events_processed;
        self.stats.queue_counters = self.queue.counters();
        let mut summary = self.sender.summary();
        summary.queue_drops = self.queue.counters().dropped_cca;
        self.stats.flow = summary;
        if self.cfg.record_events {
            self.stats.transport = self.sender.drain_log();
        }

        SimResult {
            stats: std::mem::take(&mut self.stats),
            duration_secs: self.cfg.duration.as_secs_f64(),
        }
    }
}

/// Convenience helper: build and run a simulation in one call.
pub fn run_simulation(cfg: SimConfig, cc: Box<dyn CongestionControl>) -> SimResult {
    Simulation::new(cfg, cc).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reference_cc::{FixedWindowCc, MiniAimdCc};
    use crate::link::LinkModel;
    use crate::queue::QueueCapacity;
    use crate::time::SimDuration;
    use crate::trace::{LinkTrace, TrafficTrace};

    fn base_cfg() -> SimConfig {
        let mut cfg = SimConfig::short_default();
        cfg.record_events = true;
        cfg
    }

    #[test]
    fn fixed_window_flow_delivers_packets() {
        let cfg = base_cfg();
        let result = run_simulation(cfg, Box::new(FixedWindowCc::new(10)));
        assert!(
            result.stats.flow.delivered_packets > 100,
            "delivered {}",
            result.stats.flow.delivered_packets
        );
        assert!(!result.stats.truncated);
        assert_eq!(
            result.stats.flow.queue_drops, 0,
            "window of 10 cannot overflow a 100-packet queue"
        );
    }

    #[test]
    fn small_window_throughput_is_window_limited() {
        // With a 1-packet window every packet waits for the receiver's
        // delayed-ACK timer (200 ms) plus the 40 ms RTT: ~21 packets in 5 s.
        let cfg = base_cfg();
        let result = run_simulation(cfg, Box::new(FixedWindowCc::new(1)));
        let delivered = result.stats.flow.delivered_packets;
        assert!((15..=30).contains(&delivered), "delivered {delivered}");

        // Disabling delayed ACKs removes the penalty: one packet per RTT.
        let mut cfg = base_cfg();
        cfg.delayed_ack = false;
        let result = run_simulation(cfg, Box::new(FixedWindowCc::new(1)));
        let delivered = result.stats.flow.delivered_packets;
        assert!((100..=135).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn aimd_fills_12mbps_link() {
        let cfg = base_cfg();
        let mss = cfg.mss;
        let result = run_simulation(cfg, Box::new(MiniAimdCc::new(10)));
        let goodput = result.average_goodput_bps(mss);
        // Should reach a reasonable fraction of the 12 Mbps bottleneck.
        assert!(goodput > 6e6, "goodput only {goodput} bps");
        assert!(goodput < 12.5e6, "goodput {goodput} exceeds link rate");
    }

    #[test]
    fn oversized_window_causes_drops_and_retransmissions() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(20);
        let result = run_simulation(cfg, Box::new(FixedWindowCc::new(500)));
        assert!(
            result.stats.flow.queue_drops > 0,
            "a 500-packet window must overflow a 20-packet queue"
        );
        assert!(result.stats.flow.retransmissions > 0);
        // The flow keeps making progress regardless.
        assert!(result.stats.flow.delivered_packets > 500);
    }

    #[test]
    fn trace_driven_link_limits_delivery_to_opportunities() {
        let mut cfg = base_cfg();
        let trace = LinkTrace::constant_rate(12_000_000, cfg.mss, SimDuration::from_millis(200));
        let opportunities = trace.len() as u64;
        cfg.link = LinkModel::TraceDriven { trace };
        let result = run_simulation(cfg, Box::new(FixedWindowCc::new(50)));
        assert!(
            result.stats.flow.delivered_packets <= opportunities,
            "cannot deliver more than the trace's {} opportunities, got {}",
            opportunities,
            result.stats.flow.delivered_packets
        );
        assert!(result.stats.flow.delivered_packets > 0);
    }

    #[test]
    fn cross_traffic_competes_for_queue_and_link() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(50);
        // Heavy cross traffic: 2000 packets over 5 s ≈ 4.6 Mbps of the 12 Mbps link.
        let injections: Vec<SimTime> = (0..2000).map(|i| SimTime::from_micros(i * 2_500)).collect();
        cfg.cross_traffic = TrafficTrace::new(injections, cfg.duration);
        let mss = cfg.mss;
        let with_cross = run_simulation(cfg, Box::new(MiniAimdCc::new(10)));

        let without_cross = run_simulation(base_cfg(), Box::new(MiniAimdCc::new(10)));
        assert!(
            with_cross.average_goodput_bps(mss) < without_cross.average_goodput_bps(mss),
            "cross traffic must reduce CCA goodput"
        );
        assert!(with_cross.stats.cross_delivered > 0);
    }

    #[test]
    fn deterministic_repeatability() {
        let run = || {
            let result = run_simulation(base_cfg(), Box::new(MiniAimdCc::new(10)));
            (
                result.stats.flow.delivered_packets,
                result.stats.flow.transmissions,
                result.stats.flow.retransmissions,
                result.stats.events_processed,
            )
        };
        assert_eq!(
            run(),
            run(),
            "identical configs must produce identical results"
        );
    }

    #[test]
    fn queuing_delay_bounded_by_queue_size() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(50);
        let result = run_simulation(cfg.clone(), Box::new(FixedWindowCc::new(200)));
        // Max queuing delay is bounded by 50 packets * ~1ms serialisation.
        let max_delay = result
            .stats
            .queuing_delays(FlowId::Cca)
            .iter()
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(SimDuration::ZERO);
        assert!(
            max_delay <= SimDuration::from_millis(60),
            "queuing delay {max_delay} exceeds what a 50-packet queue at ~1ms/pkt allows"
        );
        assert!(
            max_delay >= SimDuration::from_millis(30),
            "queue should actually fill: {max_delay}"
        );
    }

    #[test]
    fn delivery_times_monotone_and_match_summary() {
        let result = run_simulation(base_cfg(), Box::new(MiniAimdCc::new(10)));
        let times = &result.stats.delivery_times;
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // The receiver-side count can exceed the sender's `delivered` by at
        // most the packets whose ACKs were still in flight when the run ended.
        let receiver_side = times.len() as u64;
        let sender_side = result.stats.flow.delivered_packets;
        assert!(receiver_side >= sender_side);
        assert!(
            receiver_side - sender_side <= 200,
            "receiver saw {receiver_side}, sender credited {sender_side}"
        );
    }

    #[test]
    fn stats_disabled_still_produces_summary() {
        let mut cfg = base_cfg();
        cfg.record_events = false;
        let result = run_simulation(cfg, Box::new(MiniAimdCc::new(10)));
        assert!(result.stats.bottleneck.is_empty());
        assert!(result.stats.transport.is_empty());
        assert!(result.stats.flow.delivered_packets > 0);
    }

    #[test]
    fn empty_link_trace_delivers_nothing() {
        let mut cfg = base_cfg();
        cfg.link = LinkModel::TraceDriven {
            trace: LinkTrace::new(Vec::new(), cfg.duration),
        };
        let result = run_simulation(cfg, Box::new(FixedWindowCc::new(10)));
        assert_eq!(result.stats.flow.delivered_packets, 0);
        // The sender will RTO repeatedly but must not hang or panic.
        assert!(result.stats.flow.rto_count > 0);
    }

    #[test]
    fn packet_conservation_at_the_queue() {
        let mut cfg = base_cfg();
        cfg.queue_capacity = QueueCapacity::Packets(30);
        let injections: Vec<SimTime> = (0..1000).map(|i| SimTime::from_micros(i * 4_000)).collect();
        cfg.cross_traffic = TrafficTrace::new(injections, cfg.duration);
        let result = run_simulation(cfg, Box::new(MiniAimdCc::new(10)));
        let c = result.stats.queue_counters;
        assert!(
            c.total_enqueued() >= c.total_dequeued(),
            "cannot dequeue more than was enqueued"
        );
        // Whatever was enqueued was either dequeued or still resident at the
        // end (residual is small: at most the queue capacity).
        assert!(c.total_enqueued() - c.total_dequeued() <= 30);
    }
}
