//! Structured simulation tracing: a bounded ring of typed events.
//!
//! When a [`TraceRecorder`] is installed on a
//! [`Simulation`](crate::sim::Simulation) (via
//! [`install_tracer`](crate::sim::Simulation::install_tracer)), the event
//! loop records congestion-window updates, queue/AQM drops, ECN marks,
//! per-hop queue-depth samples and sender state transitions into a
//! fixed-capacity [`RingBuffer`]. The recorder is a passive observer: it
//! schedules no events, mutates no simulation state and allocates only at
//! construction, so a traced run is event-for-event identical to an
//! untraced one ([`RunStats::digest`](crate::stats::RunStats::digest) is
//! byte-identical — the determinism tests pin this).
//!
//! Like the transport log behind `SimConfig::record_events`, the gate is
//! zero-cost when disabled: every hook is a branch on an `Option` that the
//! fuzzing hot path never takes (the bench regression gate keeps this
//! honest).

use crate::packet::FlowId;
use crate::time::SimTime;
use ccfuzz_obs::RingBuffer;

/// Default ring capacity used by the trace helpers: enough for several
/// seconds of per-event history at the paper's link rate.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One typed trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A congestion-controlled flow started sending.
    FlowStart {
        /// Flow index.
        flow: u32,
    },
    /// The flow's congestion window changed.
    CwndUpdate {
        /// Flow index.
        flow: u32,
        /// New congestion window, in packets.
        cwnd: u64,
        /// Packets currently in flight.
        in_flight: u64,
    },
    /// The flow entered loss recovery.
    RecoveryEnter {
        /// Flow index.
        flow: u32,
    },
    /// The flow left loss recovery.
    RecoveryExit {
        /// Flow index.
        flow: u32,
    },
    /// The flow's retransmission timer fired.
    RtoFired {
        /// Flow index.
        flow: u32,
    },
    /// A packet was dropped at a gateway queue (tail drop or RED early
    /// drop at enqueue; CoDel head drop at dequeue).
    Drop {
        /// Owning flow of the dropped packet.
        flow: FlowId,
        /// Hop index where the drop happened.
        hop: u32,
    },
    /// A packet was CE-marked by the hop's queue discipline.
    EcnMark {
        /// Owning flow of the marked packet.
        flow: FlowId,
        /// Hop index where the mark happened.
        hop: u32,
    },
    /// Periodic queue-depth sample for one hop.
    QueueSample {
        /// Hop index.
        hop: u32,
        /// Queue occupancy in packets.
        packets: u32,
        /// Queue occupancy in bytes.
        bytes: u64,
    },
}

impl TraceEvent {
    /// Stable lower-case kind name (used by exports and table rendering).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FlowStart { .. } => "flow-start",
            TraceEvent::CwndUpdate { .. } => "cwnd",
            TraceEvent::RecoveryEnter { .. } => "recovery-enter",
            TraceEvent::RecoveryExit { .. } => "recovery-exit",
            TraceEvent::RtoFired { .. } => "rto",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::EcnMark { .. } => "ecn-mark",
            TraceEvent::QueueSample { .. } => "queue",
        }
    }
}

/// A timestamped trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// The live recorder installed on a running simulation.
#[derive(Debug)]
pub struct TraceRecorder {
    ring: RingBuffer<TraceRecord>,
    /// Last cwnd reported per flow (dedupe: only changes are recorded).
    last_cwnd: Vec<u64>,
    /// Last recovery flag per flow.
    last_recovery: Vec<bool>,
}

impl TraceRecorder {
    /// A recorder retaining at most `capacity` events for `flows` flows.
    pub fn new(capacity: usize, flows: usize) -> Self {
        TraceRecorder {
            ring: RingBuffer::new(capacity),
            last_cwnd: vec![0; flows],
            last_recovery: vec![false; flows],
        }
    }

    /// Records one event.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        self.ring.push(TraceRecord { at, event });
    }

    /// Samples a flow's sender after an ACK / timer was processed,
    /// recording cwnd updates and recovery transitions only when they
    /// changed since the last sample.
    pub fn sample_sender(
        &mut self,
        at: SimTime,
        flow: u32,
        cwnd: u64,
        in_flight: u64,
        in_recovery: bool,
    ) {
        let i = flow as usize;
        if self.last_cwnd[i] != cwnd {
            self.last_cwnd[i] = cwnd;
            self.push(
                at,
                TraceEvent::CwndUpdate {
                    flow,
                    cwnd,
                    in_flight,
                },
            );
        }
        if self.last_recovery[i] != in_recovery {
            self.last_recovery[i] = in_recovery;
            let event = if in_recovery {
                TraceEvent::RecoveryEnter { flow }
            } else {
                TraceEvent::RecoveryExit { flow }
            };
            self.push(at, event);
        }
    }

    /// Finalizes the recorder into an immutable [`SimTrace`].
    pub fn finish(self) -> SimTrace {
        let capacity = self.ring.capacity();
        let overwritten = self.ring.overwritten();
        SimTrace {
            events: self.ring.into_vec(),
            overwritten,
            capacity,
        }
    }
}

/// A finished trace: the retained events in time order, plus how much
/// history the ring shed.
#[derive(Clone, Debug, Default)]
pub struct SimTrace {
    /// Retained events, oldest first.
    pub events: Vec<TraceRecord>,
    /// Events evicted because the ring was full.
    pub overwritten: u64,
    /// The ring capacity the trace was recorded with.
    pub capacity: usize,
}

impl SimTrace {
    /// Total events observed (retained + evicted).
    pub fn total_observed(&self) -> u64 {
        self.events.len() as u64 + self.overwritten
    }

    /// Iterates events belonging to one CCA flow (samples excluded).
    pub fn flow_events(&self, flow: u32) -> impl Iterator<Item = &TraceRecord> {
        self.events.iter().filter(move |r| match r.event {
            TraceEvent::FlowStart { flow: f }
            | TraceEvent::CwndUpdate { flow: f, .. }
            | TraceEvent::RecoveryEnter { flow: f }
            | TraceEvent::RecoveryExit { flow: f }
            | TraceEvent::RtoFired { flow: f } => f == flow,
            TraceEvent::Drop { flow: f, .. } | TraceEvent::EcnMark { flow: f, .. } => {
                f == FlowId::Cca(flow)
            }
            TraceEvent::QueueSample { .. } => false,
        })
    }

    /// Iterates the queue-depth samples of one hop.
    pub fn hop_samples(&self, hop: u32) -> impl Iterator<Item = (SimTime, u32, u64)> + '_ {
        self.events.iter().filter_map(move |r| match r.event {
            TraceEvent::QueueSample {
                hop: h,
                packets,
                bytes,
            } if h == hop => Some((r.at, packets, bytes)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_sampling_dedupes_unchanged_state() {
        let mut rec = TraceRecorder::new(16, 1);
        rec.sample_sender(SimTime::from_millis(1), 0, 10, 5, false);
        rec.sample_sender(SimTime::from_millis(2), 0, 10, 6, false); // no change
        rec.sample_sender(SimTime::from_millis(3), 0, 12, 6, false);
        rec.sample_sender(SimTime::from_millis(4), 0, 12, 6, true);
        rec.sample_sender(SimTime::from_millis(5), 0, 6, 3, false);
        let trace = rec.finish();
        let kinds: Vec<&str> = trace.events.iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec!["cwnd", "cwnd", "recovery-enter", "cwnd", "recovery-exit"]
        );
    }

    #[test]
    fn ring_overflow_keeps_newest_events() {
        let mut rec = TraceRecorder::new(4, 1);
        for i in 0..10u64 {
            rec.push(SimTime::from_millis(i), TraceEvent::RtoFired { flow: 0 });
        }
        let trace = rec.finish();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.overwritten, 6);
        assert_eq!(trace.total_observed(), 10);
        assert_eq!(trace.events[0].at, SimTime::from_millis(6));
    }

    #[test]
    fn flow_and_hop_filters_select_correctly() {
        let mut rec = TraceRecorder::new(16, 2);
        rec.push(
            SimTime::from_millis(1),
            TraceEvent::Drop {
                flow: FlowId::Cca(0),
                hop: 0,
            },
        );
        rec.push(
            SimTime::from_millis(2),
            TraceEvent::Drop {
                flow: FlowId::CrossTraffic,
                hop: 0,
            },
        );
        rec.push(
            SimTime::from_millis(3),
            TraceEvent::QueueSample {
                hop: 1,
                packets: 7,
                bytes: 10_000,
            },
        );
        rec.sample_sender(SimTime::from_millis(4), 1, 4, 2, false);
        let trace = rec.finish();
        assert_eq!(trace.flow_events(0).count(), 1);
        assert_eq!(trace.flow_events(1).count(), 1);
        assert_eq!(trace.hop_samples(1).count(), 1);
        assert_eq!(trace.hop_samples(0).count(), 0);
    }
}
