//! Multi-hop topology: a chain of bottleneck hops with per-flow paths.
//!
//! The paper's dumbbell has exactly one gateway queue and one bottleneck
//! link. A [`Topology`] generalizes that to a *chain* of N hops, each with
//! its own service model, propagation delay, queue capacity and queue
//! discipline — the classic "parking lot" used to study RTT unfairness,
//! cascaded AQM marking and queue-of-queues latency:
//!
//! ```text
//!   long flow ──▶ [q0]──link0──▶ [q1]──link1──▶ [q2]──link2──▶ sink
//!                      short flow ──▶ [q1]──────▶ (exits after hop 1)
//! ```
//!
//! Per-flow [`HopRange`]s let short flows enter and leave the chain at
//! interior hops, so a two-hop flow can compete with a full-path flow on a
//! strict subset of the bottlenecks. Cross traffic always traverses the
//! whole chain.
//!
//! A configuration without a topology (`SimConfig::topology == None`) is
//! the single-hop dumbbell, built from the legacy `link` /
//! `propagation_delay` / `queue_capacity` / `qdisc` fields — the simulation
//! event sequence for that case is identical to the pre-topology engine, so
//! every golden digest and corpus fixture is preserved bit for bit.

use crate::link::LinkModel;
use crate::queue::{Qdisc, QueueCapacity};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One hop of the chain: its own bottleneck link, delay, queue and qdisc.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopConfig {
    /// Service model of this hop's bottleneck link.
    pub link: LinkModel,
    /// One-way propagation delay from this hop toward the next (or, for the
    /// last hop on a flow's path, toward the sink).
    pub propagation_delay: SimDuration,
    /// Capacity of this hop's gateway queue.
    pub queue_capacity: QueueCapacity,
    /// Queue discipline at this hop's gateway.
    pub qdisc: Qdisc,
}

impl HopConfig {
    /// A fixed-rate drop-tail hop.
    pub fn fixed_rate(
        rate_bps: u64,
        propagation_delay: SimDuration,
        capacity_packets: usize,
    ) -> Self {
        HopConfig {
            link: LinkModel::FixedRate { rate_bps },
            propagation_delay,
            queue_capacity: QueueCapacity::Packets(capacity_packets),
            qdisc: Qdisc::DropTail,
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if let LinkModel::FixedRate { rate_bps: 0 } = self.link {
            return Err("hop link rate must be positive".into());
        }
        if let LinkModel::TraceDriven { trace } = &self.link {
            trace.validate()?;
        }
        if let QueueCapacity::Packets(0) = self.queue_capacity {
            return Err("hop queue capacity must admit at least one packet".into());
        }
        self.qdisc.validate()?;
        Ok(())
    }
}

/// The contiguous slice of hops a flow traverses: entry and exit hop
/// indices, both inclusive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRange {
    /// Index of the first hop the flow's packets enter.
    pub entry: u32,
    /// Index of the last hop the flow's packets cross before the sink.
    pub exit: u32,
}

impl HopRange {
    /// The full path over a chain of `hops` hops.
    pub fn full(hops: usize) -> Self {
        HopRange {
            entry: 0,
            exit: hops.saturating_sub(1) as u32,
        }
    }

    /// A path from hop `entry` through hop `exit`, both inclusive.
    pub fn new(entry: u32, exit: u32) -> Self {
        HopRange { entry, exit }
    }

    /// Number of hops on the path.
    pub fn len(&self) -> usize {
        (self.exit.saturating_sub(self.entry) as usize) + 1
    }

    /// `HopRange` always covers at least one hop; provided for clippy's
    /// `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` when the path crosses hop `hop`.
    pub fn contains(&self, hop: usize) -> bool {
        (self.entry as usize) <= hop && hop <= (self.exit as usize)
    }

    /// Checks the range against a chain of `hops` hops.
    pub fn validate(&self, hops: usize) -> Result<(), String> {
        if self.entry > self.exit {
            return Err(format!(
                "path entry hop {} is beyond its exit hop {}",
                self.entry, self.exit
            ));
        }
        if self.exit as usize >= hops {
            return Err(format!(
                "path exit hop {} is outside the {hops}-hop chain",
                self.exit
            ));
        }
        Ok(())
    }

    /// The range clamped into a chain of `hops` hops.
    pub fn clamped(&self, hops: usize) -> HopRange {
        let last = hops.saturating_sub(1) as u32;
        let entry = self.entry.min(last);
        HopRange {
            entry,
            exit: self.exit.clamp(entry, last),
        }
    }
}

/// A chain of bottleneck hops plus per-flow paths.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// The hops, in path order (hop 0 is nearest the senders).
    pub hops: Vec<HopConfig>,
    /// Per-flow paths, indexed by CCA flow index. Flows beyond the end of
    /// this list (and cross traffic, always) traverse the full chain.
    pub paths: Vec<HopRange>,
}

impl Topology {
    /// A topology where every flow traverses the whole chain.
    pub fn chain(hops: Vec<HopConfig>) -> Self {
        Topology {
            hops,
            paths: Vec::new(),
        }
    }

    /// A uniform chain of `hops` identical fixed-rate drop-tail hops.
    pub fn uniform_chain(
        hops: usize,
        rate_bps: u64,
        propagation_delay: SimDuration,
        capacity_packets: usize,
    ) -> Self {
        Topology::chain(
            (0..hops)
                .map(|_| HopConfig::fixed_rate(rate_bps, propagation_delay, capacity_packets))
                .collect(),
        )
    }

    /// Number of hops in the chain.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The path of CCA flow `flow` (the full chain when unspecified).
    pub fn path_of(&self, flow: usize) -> HopRange {
        self.paths
            .get(flow)
            .copied()
            .unwrap_or_else(|| HopRange::full(self.hops.len()))
            .clamped(self.hops.len())
    }

    /// Checks internal consistency: at least one hop, every hop valid,
    /// every explicit path inside the chain.
    pub fn validate(&self) -> Result<(), String> {
        if self.hops.is_empty() {
            return Err("topology has no hops".into());
        }
        for (i, hop) in self.hops.iter().enumerate() {
            hop.validate().map_err(|e| format!("hop {i}: {e}"))?;
        }
        for (i, path) in self.paths.iter().enumerate() {
            path.validate(self.hops.len())
                .map_err(|e| format!("flow {i} path: {e}"))?;
        }
        Ok(())
    }
}

/// The RED-lottery seed of hop `hop`. Hop 0 keeps the scenario seed
/// untouched so a single-hop topology reproduces the legacy gateway's
/// random stream exactly; later hops fork deterministic, distinct streams.
pub fn hop_seed(seed: u64, hop: usize) -> u64 {
    if hop == 0 {
        seed
    } else {
        seed ^ (hop as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json;

    fn three_hops() -> Topology {
        Topology::chain(vec![
            HopConfig::fixed_rate(12_000_000, SimDuration::from_millis(10), 100),
            HopConfig::fixed_rate(8_000_000, SimDuration::from_millis(5), 60),
            HopConfig::fixed_rate(10_000_000, SimDuration::from_millis(5), 80),
        ])
    }

    #[test]
    fn chain_defaults_every_flow_to_the_full_path() {
        let topo = three_hops();
        topo.validate().unwrap();
        assert_eq!(topo.hop_count(), 3);
        for flow in 0..4 {
            assert_eq!(topo.path_of(flow), HopRange::new(0, 2));
        }
    }

    #[test]
    fn explicit_paths_are_honoured_and_clamped() {
        let mut topo = three_hops();
        topo.paths = vec![HopRange::full(3), HopRange::new(1, 1)];
        topo.validate().unwrap();
        assert_eq!(topo.path_of(0), HopRange::new(0, 2));
        assert_eq!(topo.path_of(1), HopRange::new(1, 1));
        assert_eq!(topo.path_of(2), HopRange::new(0, 2), "unspecified = full");
        assert!(topo.path_of(1).contains(1));
        assert!(!topo.path_of(1).contains(0));
        assert_eq!(topo.path_of(1).len(), 1);
        // Out-of-chain ranges clamp rather than panic.
        assert_eq!(HopRange::new(5, 9).clamped(3), HopRange::new(2, 2));
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        let empty = Topology::chain(Vec::new());
        assert!(empty.validate().unwrap_err().contains("no hops"));

        let mut zero_rate = three_hops();
        zero_rate.hops[1].link = LinkModel::FixedRate { rate_bps: 0 };
        assert!(zero_rate.validate().unwrap_err().contains("hop 1"));

        let mut zero_queue = three_hops();
        zero_queue.hops[0].queue_capacity = QueueCapacity::Packets(0);
        assert!(zero_queue.validate().is_err());

        let mut bad_path = three_hops();
        bad_path.paths = vec![HopRange::new(2, 1)];
        assert!(bad_path.validate().unwrap_err().contains("flow 0 path"));

        let mut out_of_chain = three_hops();
        out_of_chain.paths = vec![HopRange::new(0, 7)];
        assert!(out_of_chain.validate().is_err());

        let mut bad_qdisc = three_hops();
        bad_qdisc.hops[2].qdisc = Qdisc::Red {
            min_thresh: 50,
            max_thresh: 10,
            mark_probability: 0.2,
        };
        assert!(bad_qdisc.validate().is_err());
    }

    #[test]
    fn uniform_chain_is_uniform() {
        let topo = Topology::uniform_chain(4, 12_000_000, SimDuration::from_millis(5), 100);
        topo.validate().unwrap();
        assert_eq!(topo.hop_count(), 4);
        assert!(topo.hops.iter().all(|h| h == &topo.hops[0]));
    }

    #[test]
    fn hop_seed_preserves_hop_zero_and_differs_beyond() {
        assert_eq!(hop_seed(42, 0), 42, "hop 0 keeps the legacy seed");
        assert_ne!(hop_seed(42, 1), 42);
        assert_ne!(hop_seed(42, 1), hop_seed(42, 2));
        assert_ne!(hop_seed(41, 1), hop_seed(42, 1));
    }

    #[test]
    fn serde_roundtrip() {
        let mut topo = three_hops();
        topo.paths = vec![HopRange::new(0, 2), HopRange::new(1, 2)];
        topo.hops[1].qdisc = Qdisc::codel_default();
        let json = serde_json::to_string(&topo).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(topo, back);
    }
}
