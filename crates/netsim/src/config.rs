//! Simulation configuration.

use crate::link::LinkModel;
use crate::packet::DEFAULT_MSS;
use crate::queue::{Qdisc, QueueCapacity};
use crate::time::{SimDuration, SimTime};
use crate::topology::{HopConfig, HopRange, Topology};
use crate::trace::TrafficTrace;
use crate::workload::ArrivalConfig;
use serde::{Deserialize, Serialize};

/// Complete description of one simulated scenario.
///
/// [`SimConfig::paper_default`] reproduces the settings from §4 of the paper:
/// a 12 Mbps bottleneck, 20 ms propagation delay, SACK and delayed ACKs
/// enabled and a 1 second minimum RTO.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Bottleneck service model (fixed rate for traffic fuzzing, trace driven
    /// for link fuzzing).
    pub link: LinkModel,
    /// One-way propagation delay of the bottleneck link.
    pub propagation_delay: SimDuration,
    /// Gateway queue capacity.
    pub queue_capacity: QueueCapacity,
    /// Cross-traffic injection pattern (empty for link fuzzing).
    pub cross_traffic: TrafficTrace,
    /// Maximum segment size for the CCA flow, bytes.
    pub mss: u32,
    /// Cross-traffic packet size, bytes.
    pub cross_traffic_packet_size: u32,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Time at which the CCA flow starts.
    pub flow_start: SimTime,
    /// Enable selective acknowledgements.
    pub sack_enabled: bool,
    /// Enable delayed ACKs at the receiver.
    pub delayed_ack: bool,
    /// Delayed-ACK timeout (Linux/NS3 default: 200 ms).
    pub delayed_ack_timeout: SimDuration,
    /// Delayed-ACK packet threshold (ACK every n-th packet; 2 is standard).
    pub delayed_ack_count: u32,
    /// Minimum retransmission timeout. The paper uses 1 s (RFC 6298 §2.4).
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout (backoff cap).
    pub max_rto: SimDuration,
    /// Initial RTO before any RTT sample exists (RFC 6298: 1 s).
    pub initial_rto: SimDuration,
    /// Sender buffer: the maximum number of packets the application will ever
    /// have outstanding (effectively unlimited for bulk transfer).
    pub sender_buffer_packets: u64,
    /// Initial congestion window in packets.
    pub initial_cwnd: u64,
    /// Interval between periodic statistics samples.
    pub stats_interval: SimDuration,
    /// Record the per-event transport log and per-packet bottleneck records.
    /// The fuzzer's inner loop disables this for speed; figure generation and
    /// debugging enable it.
    pub record_events: bool,
    /// Event-budget safety valve: the simulation aborts (with a flag in the
    /// result) after this many events, protecting the fuzzer from adversarial
    /// traces that would otherwise run forever.
    pub max_events: u64,
    /// Seed for any randomized behaviour inside the simulator (kept fixed so
    /// that the genetic algorithm converges, §3.6).
    pub seed: u64,
    /// Gateway queue discipline (drop-tail in the paper; RED/CoDel for the
    /// `aqm` fuzzing mode). Serialized only when not drop-tail, so
    /// pre-qdisc configurations round-trip byte-identically.
    pub qdisc: Qdisc,
    /// ECN negotiated end to end: senders emit ECT packets, an AQM gateway
    /// marks instead of dropping them, receivers echo the marks, senders
    /// feed them to the congestion controller. Serialized only when `true`.
    pub ecn_enabled: bool,
    /// Optional multi-hop topology. `None` (the default everywhere) is the
    /// paper's single-bottleneck dumbbell built from the `link` /
    /// `propagation_delay` / `queue_capacity` / `qdisc` fields above; when
    /// set, those four fields are ignored and the chain of
    /// [`HopConfig`]s (with per-flow [`HopRange`] paths) replaces them.
    /// Serialized only when present, so pre-topology configurations
    /// round-trip byte-identically.
    pub topology: Option<Topology>,
    /// Optional dynamic-flow workload: an arrival process spawning
    /// application-limited flows with heavy-tailed sizes through the flow
    /// slab (see [`crate::workload`]). `None` (the default everywhere)
    /// keeps the fixed flow population of the classic modes. Serialized
    /// only when present, so pre-workload configurations round-trip
    /// byte-identically.
    pub arrivals: Option<ArrivalConfig>,
}

// Serde is written by hand (not derived) so the two qdisc-era fields are
// omitted at their defaults and tolerated when missing: configurations
// embedded in findings committed before the qdisc layer existed deserialize
// unchanged and re-serialize byte-identically. Field order matches the
// declaration order the derive produced.
impl Serialize for SimConfig {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            ("link".to_string(), self.link.to_value()),
            (
                "propagation_delay".to_string(),
                self.propagation_delay.to_value(),
            ),
            ("queue_capacity".to_string(), self.queue_capacity.to_value()),
            ("cross_traffic".to_string(), self.cross_traffic.to_value()),
            ("mss".to_string(), self.mss.to_value()),
            (
                "cross_traffic_packet_size".to_string(),
                self.cross_traffic_packet_size.to_value(),
            ),
            ("duration".to_string(), self.duration.to_value()),
            ("flow_start".to_string(), self.flow_start.to_value()),
            ("sack_enabled".to_string(), self.sack_enabled.to_value()),
            ("delayed_ack".to_string(), self.delayed_ack.to_value()),
            (
                "delayed_ack_timeout".to_string(),
                self.delayed_ack_timeout.to_value(),
            ),
            (
                "delayed_ack_count".to_string(),
                self.delayed_ack_count.to_value(),
            ),
            ("min_rto".to_string(), self.min_rto.to_value()),
            ("max_rto".to_string(), self.max_rto.to_value()),
            ("initial_rto".to_string(), self.initial_rto.to_value()),
            (
                "sender_buffer_packets".to_string(),
                self.sender_buffer_packets.to_value(),
            ),
            ("initial_cwnd".to_string(), self.initial_cwnd.to_value()),
            ("stats_interval".to_string(), self.stats_interval.to_value()),
            ("record_events".to_string(), self.record_events.to_value()),
            ("max_events".to_string(), self.max_events.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if self.qdisc != Qdisc::DropTail {
            fields.push(("qdisc".to_string(), self.qdisc.to_value()));
        }
        if self.ecn_enabled {
            fields.push(("ecn_enabled".to_string(), self.ecn_enabled.to_value()));
        }
        if let Some(topology) = &self.topology {
            fields.push(("topology".to_string(), topology.to_value()));
        }
        if let Some(arrivals) = &self.arrivals {
            fields.push(("arrivals".to_string(), arrivals.to_value()));
        }
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for SimConfig {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        use serde::value::map_get;
        let m = v.as_map("SimConfig")?;
        Ok(SimConfig {
            link: Deserialize::from_value(map_get(m, "link")?)?,
            propagation_delay: Deserialize::from_value(map_get(m, "propagation_delay")?)?,
            queue_capacity: Deserialize::from_value(map_get(m, "queue_capacity")?)?,
            cross_traffic: Deserialize::from_value(map_get(m, "cross_traffic")?)?,
            mss: Deserialize::from_value(map_get(m, "mss")?)?,
            cross_traffic_packet_size: Deserialize::from_value(map_get(
                m,
                "cross_traffic_packet_size",
            )?)?,
            duration: Deserialize::from_value(map_get(m, "duration")?)?,
            flow_start: Deserialize::from_value(map_get(m, "flow_start")?)?,
            sack_enabled: Deserialize::from_value(map_get(m, "sack_enabled")?)?,
            delayed_ack: Deserialize::from_value(map_get(m, "delayed_ack")?)?,
            delayed_ack_timeout: Deserialize::from_value(map_get(m, "delayed_ack_timeout")?)?,
            delayed_ack_count: Deserialize::from_value(map_get(m, "delayed_ack_count")?)?,
            min_rto: Deserialize::from_value(map_get(m, "min_rto")?)?,
            max_rto: Deserialize::from_value(map_get(m, "max_rto")?)?,
            initial_rto: Deserialize::from_value(map_get(m, "initial_rto")?)?,
            sender_buffer_packets: Deserialize::from_value(map_get(m, "sender_buffer_packets")?)?,
            initial_cwnd: Deserialize::from_value(map_get(m, "initial_cwnd")?)?,
            stats_interval: Deserialize::from_value(map_get(m, "stats_interval")?)?,
            record_events: Deserialize::from_value(map_get(m, "record_events")?)?,
            max_events: Deserialize::from_value(map_get(m, "max_events")?)?,
            seed: Deserialize::from_value(map_get(m, "seed")?)?,
            qdisc: match map_get(m, "qdisc") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => Qdisc::DropTail,
            },
            ecn_enabled: match map_get(m, "ecn_enabled") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => false,
            },
            topology: match map_get(m, "topology") {
                Ok(v) => Some(Deserialize::from_value(v)?),
                Err(_) => None,
            },
            arrivals: match map_get(m, "arrivals") {
                Ok(v) => Some(Deserialize::from_value(v)?),
                Err(_) => None,
            },
        })
    }
}

impl SimConfig {
    /// The paper's evaluation settings (§4): 12 Mbps bottleneck, 20 ms
    /// propagation delay, SACK + delayed ACKs, 1 s min RTO, and a queue of
    /// one bandwidth-delay product (~40 packets) — with a 30 s scenario.
    pub fn paper_default() -> Self {
        SimConfig {
            link: LinkModel::FixedRate {
                rate_bps: 12_000_000,
            },
            propagation_delay: SimDuration::from_millis(20),
            queue_capacity: QueueCapacity::Packets(100),
            cross_traffic: TrafficTrace::empty(SimDuration::from_secs(30)),
            mss: DEFAULT_MSS,
            cross_traffic_packet_size: DEFAULT_MSS,
            duration: SimDuration::from_secs(30),
            flow_start: SimTime::ZERO,
            sack_enabled: true,
            delayed_ack: true,
            delayed_ack_timeout: SimDuration::from_millis(200),
            delayed_ack_count: 2,
            min_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            sender_buffer_packets: u64::MAX / 4,
            initial_cwnd: 10,
            stats_interval: SimDuration::from_millis(10),
            record_events: true,
            max_events: 20_000_000,
            seed: 1,
            qdisc: Qdisc::DropTail,
            ecn_enabled: false,
            topology: None,
            arrivals: None,
        }
    }

    /// A short scenario (5 s) used throughout the fuzzer's inner loop and in
    /// tests, matching the trace lengths plotted in the paper's figures.
    pub fn short_default() -> Self {
        let mut cfg = Self::paper_default();
        cfg.duration = SimDuration::from_secs(5);
        cfg.cross_traffic = TrafficTrace::empty(cfg.duration);
        cfg
    }

    /// Round-trip propagation time (both directions).
    pub fn base_rtt(&self) -> SimDuration {
        self.propagation_delay + self.propagation_delay
    }

    /// The bandwidth-delay product in packets for a given bottleneck rate.
    pub fn bdp_packets(&self, rate_bps: u64) -> u64 {
        let bdp_bytes = (rate_bps as f64 / 8.0) * self.base_rtt().as_secs_f64();
        (bdp_bytes / self.mss as f64).ceil() as u64
    }

    /// Number of hops the simulated path crosses (1 without a topology).
    pub fn hop_count(&self) -> usize {
        self.topology.as_ref().map(|t| t.hop_count()).unwrap_or(1)
    }

    /// The hop chain this configuration describes: the topology's hops when
    /// one is set, otherwise a single hop assembled from the legacy
    /// single-bottleneck fields.
    pub fn hop_configs(&self) -> Vec<HopConfig> {
        let mut out = Vec::new();
        self.hop_configs_into(&mut out);
        out
    }

    /// Like [`SimConfig::hop_configs`], but fills a caller-provided buffer so
    /// batch drivers reuse one allocation across evaluations. The buffer is
    /// cleared first.
    pub fn hop_configs_into(&self, out: &mut Vec<HopConfig>) {
        out.clear();
        match &self.topology {
            Some(topology) => out.extend(topology.hops.iter().cloned()),
            None => out.push(HopConfig {
                link: self.link.clone(),
                propagation_delay: self.propagation_delay,
                queue_capacity: self.queue_capacity,
                qdisc: self.qdisc,
            }),
        }
    }

    /// The path of CCA flow `flow` (the full chain without a topology or
    /// when the topology does not pin that flow explicitly).
    pub fn flow_path(&self, flow: usize) -> HopRange {
        match &self.topology {
            Some(topology) => topology.path_of(flow),
            None => HopRange::full(1),
        }
    }

    /// Validates internal consistency, returning a descriptive error for
    /// the first violated invariant instead of letting the simulator panic
    /// (or spin) downstream.
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.duration == SimDuration::ZERO {
            return Err("duration must be positive".into());
        }
        if self.flow_start.as_nanos() >= self.duration.as_nanos() {
            return Err(format!(
                "flow_start {} is at or beyond the scenario duration {}",
                self.flow_start, self.duration
            ));
        }
        if self.initial_cwnd == 0 {
            return Err("initial cwnd must be at least 1".into());
        }
        if self.delayed_ack && self.delayed_ack_count == 0 {
            return Err("delayed_ack_count must be at least 1".into());
        }
        if self.min_rto > self.max_rto {
            return Err("min_rto must not exceed max_rto".into());
        }
        match &self.link {
            LinkModel::FixedRate { rate_bps: 0 } => {
                return Err("link rate must be positive (a zero-rate link never serves)".into())
            }
            LinkModel::TraceDriven { trace } => trace.validate()?,
            LinkModel::FixedRate { .. } => {}
        }
        self.qdisc.validate()?;
        self.cross_traffic.validate()?;
        if let Some(topology) = &self.topology {
            topology.validate()?;
        }
        if let Some(arrivals) = &self.arrivals {
            arrivals.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_matches_paper() {
        let cfg = SimConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.propagation_delay, SimDuration::from_millis(20));
        assert_eq!(cfg.min_rto, SimDuration::from_secs(1));
        assert!(cfg.sack_enabled);
        assert!(cfg.delayed_ack);
        match cfg.link {
            LinkModel::FixedRate { rate_bps } => assert_eq!(rate_bps, 12_000_000),
            _ => panic!("paper default should be a fixed-rate link"),
        }
    }

    #[test]
    fn bdp_computation() {
        let cfg = SimConfig::paper_default();
        // 12 Mbps * 40 ms = 60 kB ≈ 42 packets of 1448 B.
        let bdp = cfg.bdp_packets(12_000_000);
        assert!((40..=45).contains(&bdp), "bdp {bdp}");
        assert_eq!(cfg.base_rtt(), SimDuration::from_millis(40));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = SimConfig::paper_default();
        cfg.mss = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.duration = SimDuration::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.initial_cwnd = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.min_rto = SimDuration::from_secs(90);
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.delayed_ack_count = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = SimConfig::paper_default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn qdisc_fields_are_omitted_at_defaults() {
        // Drop-tail + no ECN serializes exactly as before the qdisc layer
        // existed: configurations embedded in committed findings must
        // re-serialize byte-identically.
        let cfg = SimConfig::paper_default();
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(!json.contains("qdisc"), "default qdisc must be omitted");
        assert!(!json.contains("ecn_enabled"), "ecn=false must be omitted");
        // A pre-qdisc JSON (no such fields) parses to the defaults.
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.qdisc, Qdisc::DropTail);
        assert!(!back.ecn_enabled);
    }

    #[test]
    fn qdisc_fields_roundtrip_when_set() {
        let mut cfg = SimConfig::paper_default();
        cfg.qdisc = Qdisc::red_default(100);
        cfg.ecn_enabled = true;
        cfg.validate().unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("qdisc"));
        assert!(json.contains("ecn_enabled"));
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);

        let mut cfg = SimConfig::paper_default();
        cfg.qdisc = Qdisc::codel_default();
        let back: SimConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn topology_field_is_omitted_when_absent_and_roundtrips_when_set() {
        // No topology serializes exactly as before the hop-chain engine
        // existed: configurations embedded in committed findings must
        // re-serialize byte-identically.
        let cfg = SimConfig::paper_default();
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(
            !json.contains("topology"),
            "absent topology must be omitted"
        );
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert!(back.topology.is_none());
        assert_eq!(back.hop_count(), 1);

        let mut cfg = SimConfig::paper_default();
        cfg.topology = Some(Topology::chain(vec![
            HopConfig::fixed_rate(12_000_000, SimDuration::from_millis(10), 100),
            HopConfig::fixed_rate(8_000_000, SimDuration::from_millis(10), 60),
        ]));
        cfg.topology.as_mut().unwrap().paths = vec![HopRange::new(0, 1), HopRange::new(1, 1)];
        cfg.validate().unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("topology"));
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(back.hop_count(), 2);
        assert_eq!(back.flow_path(1), HopRange::new(1, 1));
        assert_eq!(back.flow_path(7), HopRange::full(2), "unpinned = full path");
    }

    #[test]
    fn hop_configs_fall_back_to_the_legacy_single_bottleneck() {
        let cfg = SimConfig::paper_default();
        let hops = cfg.hop_configs();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].link, cfg.link);
        assert_eq!(hops[0].propagation_delay, cfg.propagation_delay);
        assert_eq!(hops[0].queue_capacity, cfg.queue_capacity);
        assert_eq!(hops[0].qdisc, cfg.qdisc);
    }

    #[test]
    fn validation_reports_descriptive_errors() {
        let mut cfg = SimConfig::paper_default();
        cfg.link = LinkModel::FixedRate { rate_bps: 0 };
        assert!(cfg.validate().unwrap_err().contains("link rate"));

        let mut cfg = SimConfig::paper_default();
        cfg.flow_start = SimTime::ZERO + cfg.duration;
        assert!(cfg.validate().unwrap_err().contains("flow_start"));

        let mut cfg = SimConfig::paper_default();
        cfg.topology = Some(Topology::chain(Vec::new()));
        assert!(cfg.validate().unwrap_err().contains("no hops"));

        let mut cfg = SimConfig::paper_default();
        let mut topo = Topology::uniform_chain(2, 12_000_000, SimDuration::from_millis(5), 50);
        topo.hops[1].link = LinkModel::FixedRate { rate_bps: 0 };
        cfg.topology = Some(topo);
        assert!(cfg.validate().unwrap_err().contains("hop 1"));
    }

    #[test]
    fn validation_catches_bad_qdisc() {
        let mut cfg = SimConfig::paper_default();
        cfg.qdisc = Qdisc::Red {
            min_thresh: 60,
            max_thresh: 20,
            mark_probability: 0.1,
        };
        assert!(cfg.validate().is_err());
    }
}
