//! Packet model.
//!
//! The simulator is packet-granular: the CCA flow sends fixed-size (MSS)
//! data packets identified by a packet-level sequence number, the receiver
//! returns ACK packets carrying a cumulative ACK plus SACK blocks, and the
//! cross-traffic source injects opaque packets that only occupy queue space
//! and link capacity.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Default maximum segment size in bytes (Ethernet MTU minus typical
/// IP + TCP headers), used for both the CCA flow and cross traffic.
pub const DEFAULT_MSS: u32 = 1448;

/// Size in bytes used for pure ACK packets on the (uncongested) reverse path.
pub const ACK_SIZE: u32 = 60;

/// Identifies which traffic source a packet belongs to.
///
/// The simulator supports N concurrent congestion-controlled flows; each
/// carries its index (flow 0 is the "primary" flow, the only one that exists
/// in single-flow scenarios).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowId {
    /// A congestion-controlled flow under test, identified by its index.
    Cca(u32),
    /// The unresponsive cross-traffic source.
    CrossTraffic,
}

impl FlowId {
    /// The primary (index 0) congestion-controlled flow.
    pub const PRIMARY: FlowId = FlowId::Cca(0);

    /// `true` for any congestion-controlled flow.
    pub fn is_cca(&self) -> bool {
        matches!(self, FlowId::Cca(_))
    }

    /// The flow index for congestion-controlled flows, `None` for cross
    /// traffic.
    pub fn cca_index(&self) -> Option<u32> {
        match self {
            FlowId::Cca(i) => Some(*i),
            FlowId::CrossTraffic => None,
        }
    }
}

/// A data packet traversing the forward path (sender → gateway → sink).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Owning flow.
    pub flow: FlowId,
    /// Packet-level sequence number. Cross-traffic packets carry their
    /// injection index here; CCA packets carry the transport sequence number.
    pub seq: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// `true` when this transmission is a retransmission of `seq`.
    pub is_retransmission: bool,
    /// Time at which the sender handed the packet to the network.
    pub sent_at: SimTime,
    /// Time the packet entered the bottleneck queue (set by the gateway).
    pub enqueued_at: SimTime,
}

impl DataPacket {
    /// Creates a data packet for the primary (index 0) CCA flow.
    pub fn cca(seq: u64, size: u32, is_retransmission: bool, sent_at: SimTime) -> Self {
        Self::cca_flow(0, seq, size, is_retransmission, sent_at)
    }

    /// Creates a data packet for the CCA flow with the given index.
    pub fn cca_flow(
        flow_index: u32,
        seq: u64,
        size: u32,
        is_retransmission: bool,
        sent_at: SimTime,
    ) -> Self {
        DataPacket {
            flow: FlowId::Cca(flow_index),
            seq,
            size,
            is_retransmission,
            sent_at,
            enqueued_at: sent_at,
        }
    }

    /// Creates a cross-traffic packet.
    pub fn cross_traffic(index: u64, size: u32, sent_at: SimTime) -> Self {
        DataPacket {
            flow: FlowId::CrossTraffic,
            seq: index,
            size,
            is_retransmission: false,
            sent_at,
            enqueued_at: sent_at,
        }
    }
}

/// A selective acknowledgement block: packets in `[start, end)` have been
/// received (packet-level sequence numbers, end exclusive).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SackBlock {
    /// First packet covered by the block.
    pub start: u64,
    /// One past the last packet covered by the block.
    pub end: u64,
}

impl SackBlock {
    /// Number of packets covered by the block.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` if the block covers no packets.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` if the block covers `seq`.
    pub fn contains(&self, seq: u64) -> bool {
        (self.start..self.end).contains(&seq)
    }
}

/// An acknowledgement travelling on the reverse path (sink → sender).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AckPacket {
    /// Cumulative ACK: all packets with `seq < cum_ack` have been received.
    pub cum_ack: u64,
    /// SACK blocks above the cumulative ACK (most recently changed first),
    /// empty when SACK is disabled.
    pub sack_blocks: Vec<SackBlock>,
    /// Number of data packets this ACK acknowledges at the receiver (1 for an
    /// immediate ACK, 2+ when delayed ACKs coalesce).
    pub acked_now: u64,
    /// Receiver timestamp at which the ACK was generated.
    pub generated_at: SimTime,
    /// Echo of the newest data packet's send timestamp, used by the sender
    /// for RTT measurement of the cumulative ACK.
    pub echo_sent_at: SimTime,
    /// Sequence number of the newest data packet that triggered this ACK.
    pub for_seq: u64,
    /// `true` if the newest data packet covered was a retransmission.
    pub for_retransmission: bool,
}

/// ACK packet wire size used when modelling the reverse path.
impl AckPacket {
    /// Wire size of an ACK in bytes.
    pub const fn size(&self) -> u32 {
        ACK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sack_block_helpers() {
        let b = SackBlock { start: 10, end: 15 };
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(b.contains(10));
        assert!(b.contains(14));
        assert!(!b.contains(15));
        assert!(!b.contains(9));

        let empty = SackBlock { start: 7, end: 7 };
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let inverted = SackBlock { start: 9, end: 3 };
        assert!(inverted.is_empty());
        assert_eq!(inverted.len(), 0);
    }

    #[test]
    fn packet_constructors() {
        let t = SimTime::from_millis(5);
        let p = DataPacket::cca(42, DEFAULT_MSS, false, t);
        assert_eq!(p.flow, FlowId::Cca(0));
        assert_eq!(p.flow, FlowId::PRIMARY);
        assert!(p.flow.is_cca());
        assert_eq!(p.flow.cca_index(), Some(0));
        assert_eq!(p.seq, 42);
        assert_eq!(p.enqueued_at, t);
        assert!(!p.is_retransmission);

        let p1 = DataPacket::cca_flow(3, 7, DEFAULT_MSS, false, t);
        assert_eq!(p1.flow, FlowId::Cca(3));
        assert_eq!(p1.flow.cca_index(), Some(3));

        let x = DataPacket::cross_traffic(7, 1200, t);
        assert_eq!(x.flow, FlowId::CrossTraffic);
        assert!(!x.flow.is_cca());
        assert_eq!(x.flow.cca_index(), None);
        assert_eq!(x.size, 1200);
    }

    #[test]
    fn ack_size_constant() {
        let ack = AckPacket {
            cum_ack: 3,
            sack_blocks: vec![],
            acked_now: 1,
            generated_at: SimTime::ZERO,
            echo_sent_at: SimTime::ZERO,
            for_seq: 2,
            for_retransmission: false,
        };
        assert_eq!(ack.size(), ACK_SIZE);
    }
}
