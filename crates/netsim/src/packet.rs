//! Packet model.
//!
//! The simulator is packet-granular: the CCA flow sends fixed-size (MSS)
//! data packets identified by a packet-level sequence number, the receiver
//! returns ACK packets carrying a cumulative ACK plus SACK blocks, and the
//! cross-traffic source injects opaque packets that only occupy queue space
//! and link capacity.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Default maximum segment size in bytes (Ethernet MTU minus typical
/// IP + TCP headers), used for both the CCA flow and cross traffic.
pub const DEFAULT_MSS: u32 = 1448;

/// Size in bytes used for pure ACK packets on the (uncongested) reverse path.
pub const ACK_SIZE: u32 = 60;

/// Identifies which traffic source a packet belongs to.
///
/// The simulator supports N concurrent congestion-controlled flows; each
/// carries its index (flow 0 is the "primary" flow, the only one that exists
/// in single-flow scenarios).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowId {
    /// A congestion-controlled flow under test, identified by its index.
    Cca(u32),
    /// The unresponsive cross-traffic source.
    CrossTraffic,
}

impl FlowId {
    /// The primary (index 0) congestion-controlled flow.
    pub const PRIMARY: FlowId = FlowId::Cca(0);

    /// `true` for any congestion-controlled flow.
    pub fn is_cca(&self) -> bool {
        matches!(self, FlowId::Cca(_))
    }

    /// The flow index for congestion-controlled flows, `None` for cross
    /// traffic.
    pub fn cca_index(&self) -> Option<u32> {
        match self {
            FlowId::Cca(i) => Some(*i),
            FlowId::CrossTraffic => None,
        }
    }
}

/// A data packet traversing the forward path (sender → gateway → sink).
///
/// `Copy`: the packet is a flat 48-byte record, so moving it through the
/// queue, the calendar's packet pool and the statistics never touches the
/// allocator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Owning flow.
    pub flow: FlowId,
    /// Packet-level sequence number. Cross-traffic packets carry their
    /// injection index here; CCA packets carry the transport sequence number.
    pub seq: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// `true` when this transmission is a retransmission of `seq`.
    pub is_retransmission: bool,
    /// ECN-Capable Transport: `true` when the sender negotiated ECN, so an
    /// AQM gateway may mark the packet instead of dropping it (RFC 3168).
    pub ect: bool,
    /// Congestion Experienced: set by the gateway queue when the active
    /// queue-management discipline decides to mark rather than drop.
    pub ce: bool,
    /// Time at which the sender handed the packet to the network.
    pub sent_at: SimTime,
    /// Time the packet entered the bottleneck queue (set by the gateway).
    pub enqueued_at: SimTime,
}

impl DataPacket {
    /// Creates a data packet for the primary (index 0) CCA flow.
    pub fn cca(seq: u64, size: u32, is_retransmission: bool, sent_at: SimTime) -> Self {
        Self::cca_flow(0, seq, size, is_retransmission, sent_at)
    }

    /// Creates a data packet for the CCA flow with the given index.
    pub fn cca_flow(
        flow_index: u32,
        seq: u64,
        size: u32,
        is_retransmission: bool,
        sent_at: SimTime,
    ) -> Self {
        DataPacket {
            flow: FlowId::Cca(flow_index),
            seq,
            size,
            is_retransmission,
            ect: false,
            ce: false,
            sent_at,
            enqueued_at: sent_at,
        }
    }

    /// Creates a cross-traffic packet (never ECN-capable: the unresponsive
    /// source would ignore marks, so an AQM must drop it).
    pub fn cross_traffic(index: u64, size: u32, sent_at: SimTime) -> Self {
        DataPacket {
            flow: FlowId::CrossTraffic,
            seq: index,
            size,
            is_retransmission: false,
            ect: false,
            ce: false,
            sent_at,
            enqueued_at: sent_at,
        }
    }
}

/// A selective acknowledgement block: packets in `[start, end)` have been
/// received (packet-level sequence numbers, end exclusive).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SackBlock {
    /// First packet covered by the block.
    pub start: u64,
    /// One past the last packet covered by the block.
    pub end: u64,
}

impl SackBlock {
    /// Number of packets covered by the block.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` if the block covers no packets.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` if the block covers `seq`.
    pub fn contains(&self, seq: u64) -> bool {
        (self.start..self.end).contains(&seq)
    }
}

/// Maximum SACK blocks an ACK can carry (TCP options fit 3–4 blocks).
pub const MAX_SACK_BLOCKS: usize = 4;

/// A fixed-capacity, inline list of SACK blocks.
///
/// Replaces the previous `Vec<SackBlock>`: ACKs are generated once per data
/// packet (or two, with delayed ACKs), and a heap allocation per ACK was the
/// single largest allocator load in the simulator's hot loop. The list lives
/// inline in [`AckPacket`], which keeps the whole ACK `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SackList {
    blocks: [SackBlock; MAX_SACK_BLOCKS],
    len: u8,
}

impl SackList {
    /// An empty list.
    pub const fn new() -> Self {
        SackList {
            blocks: [SackBlock { start: 0, end: 0 }; MAX_SACK_BLOCKS],
            len: 0,
        }
    }

    /// Number of blocks stored.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a block; silently ignored once [`MAX_SACK_BLOCKS`] is reached
    /// (exactly the cap real TCP option space imposes).
    pub fn push(&mut self, block: SackBlock) {
        if (self.len as usize) < MAX_SACK_BLOCKS {
            self.blocks[self.len as usize] = block;
            self.len += 1;
        }
    }

    /// The stored blocks as a slice.
    pub fn as_slice(&self) -> &[SackBlock] {
        &self.blocks[..self.len as usize]
    }

    /// Iterates over the stored blocks.
    pub fn iter(&self) -> std::slice::Iter<'_, SackBlock> {
        self.as_slice().iter()
    }

    /// `true` if any stored block equals `block`.
    pub fn contains(&self, block: &SackBlock) -> bool {
        self.as_slice().contains(block)
    }
}

impl Default for SackList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for SackList {
    type Target = [SackBlock];
    fn deref(&self) -> &[SackBlock] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a SackList {
    type Item = &'a SackBlock;
    type IntoIter = std::slice::Iter<'a, SackBlock>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<SackBlock> for SackList {
    fn from_iter<I: IntoIterator<Item = SackBlock>>(iter: I) -> Self {
        let mut list = SackList::new();
        for block in iter {
            list.push(block);
        }
        list
    }
}

/// An acknowledgement travelling on the reverse path (sink → sender).
///
/// `Copy`: the SACK blocks are stored inline ([`SackList`]), so generating,
/// queueing and delivering an ACK is allocation-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AckPacket {
    /// Cumulative ACK: all packets with `seq < cum_ack` have been received.
    pub cum_ack: u64,
    /// SACK blocks above the cumulative ACK (most recently changed first),
    /// empty when SACK is disabled.
    pub sack_blocks: SackList,
    /// Number of data packets this ACK acknowledges at the receiver (1 for an
    /// immediate ACK, 2+ when delayed ACKs coalesce).
    pub acked_now: u64,
    /// Receiver timestamp at which the ACK was generated.
    pub generated_at: SimTime,
    /// Echo of the newest data packet's send timestamp, used by the sender
    /// for RTT measurement of the cumulative ACK.
    pub echo_sent_at: SimTime,
    /// Sequence number of the newest data packet that triggered this ACK.
    pub for_seq: u64,
    /// `true` if the newest data packet covered was a retransmission.
    pub for_retransmission: bool,
    /// ECN Echo: number of CE-marked data packets this ACK reports (0 when
    /// ECN is off or nothing was marked). Real TCP latches a single ECE bit
    /// until CWR; carrying the exact count instead keeps the feedback loop
    /// conservation-testable (every mark is echoed exactly once) and gives
    /// DCTCP its per-ACK mark fraction without a separate option.
    pub ece_marks: u64,
}

/// ACK packet wire size used when modelling the reverse path.
impl AckPacket {
    /// Wire size of an ACK in bytes.
    pub const fn size(&self) -> u32 {
        ACK_SIZE
    }
}

/// Handle to a [`DataPacket`] parked in a [`PacketPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketRef(pub u32);

/// Handle to an [`AckPacket`] parked in a [`PacketPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckRef(pub u32);

/// Slab storage with a free list: O(1) alloc/free, no per-packet heap
/// allocation once warm, and stable `u32` handles small enough to ride
/// inside calendar events.
#[derive(Clone, Debug)]
struct Slab<T> {
    slots: Vec<T>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T: Copy> Slab<T> {
    fn alloc(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = value;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(value);
                idx
            }
        }
    }

    /// Copies the value out and recycles the slot. The handle must come from
    /// a prior `alloc` and must not be taken twice (enforced by the event
    /// calendar's single-consumer discipline, checked in debug builds).
    fn take(&mut self, idx: u32) -> T {
        debug_assert!(!self.free.contains(&idx), "double take of pool slot {idx}");
        let value = self.slots[idx as usize];
        self.free.push(idx);
        value
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// Packet parking for in-flight calendar payloads.
///
/// Events in the calendar carry 4-byte [`PacketRef`]/[`AckRef`] handles
/// instead of the packets themselves, which keeps calendar entries small
/// (cheap to sift/sort) and reuses slab slots instead of allocating per
/// packet. A packet is parked when its arrival event is scheduled and taken
/// exactly once when the event fires.
#[derive(Clone, Debug, Default)]
pub struct PacketPool {
    data: Slab<DataPacket>,
    acks: Slab<AckPacket>,
    /// Per-hop free lists for data slots (see [`PacketPool::put_data_at`]).
    hop_free: Vec<Vec<u32>>,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares how many hops will use the hop-local slot recycling of
    /// [`PacketPool::put_data_at`] / [`PacketPool::take_data_at`]. Existing
    /// per-hop lists (and their capacity) survive; surplus lists spill their
    /// slots back to the shared free list.
    pub fn set_hop_count(&mut self, hops: usize) {
        while self.hop_free.len() > hops {
            let mut spilled = self.hop_free.pop().expect("len checked");
            self.data.free.append(&mut spilled);
        }
        while self.hop_free.len() < hops {
            self.hop_free.push(Vec::new());
        }
    }

    /// Parks a data packet, returning its handle.
    pub fn put_data(&mut self, pkt: DataPacket) -> PacketRef {
        PacketRef(self.data.alloc(pkt))
    }

    /// Retrieves (and recycles the slot of) a parked data packet.
    pub fn take_data(&mut self, r: PacketRef) -> DataPacket {
        self.data.take(r.0)
    }

    /// Parks a data packet in transit out of hop `hop`, preferring a slot
    /// that hop recently released. Multi-hop routing re-parks every packet
    /// at each hop it crosses; with one shared LIFO free list those slots
    /// interleave across all hops and flows, so consecutive packets of one
    /// hop's pipeline scatter over the slab. A small per-hop free list keeps
    /// each hop cycling through its own compact, cache-resident slot set.
    /// Purely an allocation-policy hint: handles stay opaque and results are
    /// byte-identical to the shared-list path.
    pub fn put_data_at(&mut self, hop: usize, pkt: DataPacket) -> PacketRef {
        if let Some(idx) = self.hop_free.get_mut(hop).and_then(Vec::pop) {
            self.data.slots[idx as usize] = pkt;
            return PacketRef(idx);
        }
        PacketRef(self.data.alloc(pkt))
    }

    /// Retrieves a parked data packet, recycling its slot onto hop `hop`'s
    /// local free list (the packet is about to be enqueued there, and that
    /// hop's next transmission is the likeliest next allocation).
    pub fn take_data_at(&mut self, hop: usize, r: PacketRef) -> DataPacket {
        match self.hop_free.get_mut(hop) {
            Some(local) => {
                debug_assert!(
                    !local.contains(&r.0) && !self.data.free.contains(&r.0),
                    "double take of pool slot {}",
                    r.0
                );
                let value = self.data.slots[r.0 as usize];
                local.push(r.0);
                value
            }
            None => self.data.take(r.0),
        }
    }

    /// Parks an ACK, returning its handle.
    pub fn put_ack(&mut self, ack: AckPacket) -> AckRef {
        AckRef(self.acks.alloc(ack))
    }

    /// Retrieves (and recycles the slot of) a parked ACK.
    pub fn take_ack(&mut self, r: AckRef) -> AckPacket {
        self.acks.take(r.0)
    }

    /// Packets currently parked (data + ACKs).
    pub fn live(&self) -> usize {
        let hop_freed: usize = self.hop_free.iter().map(Vec::len).sum();
        self.data.live() + self.acks.live() - hop_freed
    }

    /// Clears the pool, keeping allocated capacity for reuse across runs.
    pub fn reset(&mut self) {
        self.data.reset();
        self.acks.reset();
        for local in &mut self.hop_free {
            local.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sack_block_helpers() {
        let b = SackBlock { start: 10, end: 15 };
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(b.contains(10));
        assert!(b.contains(14));
        assert!(!b.contains(15));
        assert!(!b.contains(9));

        let empty = SackBlock { start: 7, end: 7 };
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let inverted = SackBlock { start: 9, end: 3 };
        assert!(inverted.is_empty());
        assert_eq!(inverted.len(), 0);
    }

    #[test]
    fn packet_constructors() {
        let t = SimTime::from_millis(5);
        let p = DataPacket::cca(42, DEFAULT_MSS, false, t);
        assert_eq!(p.flow, FlowId::Cca(0));
        assert_eq!(p.flow, FlowId::PRIMARY);
        assert!(p.flow.is_cca());
        assert_eq!(p.flow.cca_index(), Some(0));
        assert_eq!(p.seq, 42);
        assert_eq!(p.enqueued_at, t);
        assert!(!p.is_retransmission);

        let p1 = DataPacket::cca_flow(3, 7, DEFAULT_MSS, false, t);
        assert_eq!(p1.flow, FlowId::Cca(3));
        assert_eq!(p1.flow.cca_index(), Some(3));

        let x = DataPacket::cross_traffic(7, 1200, t);
        assert_eq!(x.flow, FlowId::CrossTraffic);
        assert!(!x.flow.is_cca());
        assert_eq!(x.flow.cca_index(), None);
        assert_eq!(x.size, 1200);
    }

    #[test]
    fn ack_size_constant() {
        let ack = AckPacket {
            cum_ack: 3,
            sack_blocks: SackList::new(),
            acked_now: 1,
            generated_at: SimTime::ZERO,
            echo_sent_at: SimTime::ZERO,
            for_seq: 2,
            for_retransmission: false,
            ece_marks: 0,
        };
        assert_eq!(ack.size(), ACK_SIZE);
    }

    #[test]
    fn sack_list_caps_at_max_blocks() {
        let mut list = SackList::new();
        assert!(list.is_empty());
        for i in 0..(MAX_SACK_BLOCKS as u64 + 2) {
            list.push(SackBlock {
                start: i * 10,
                end: i * 10 + 1,
            });
        }
        assert_eq!(list.len(), MAX_SACK_BLOCKS);
        assert_eq!(list.as_slice()[0], SackBlock { start: 0, end: 1 });
        assert!(list.contains(&SackBlock { start: 10, end: 11 }));
        assert!(!list.contains(&SackBlock { start: 40, end: 41 }));
        let collected: SackList = (0..2)
            .map(|i| SackBlock {
                start: i,
                end: i + 1,
            })
            .collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn packet_pool_recycles_slots() {
        let mut pool = PacketPool::new();
        let t = SimTime::ZERO;
        let a = pool.put_data(DataPacket::cca(1, 100, false, t));
        let b = pool.put_data(DataPacket::cca(2, 100, false, t));
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.take_data(a).seq, 1);
        // The freed slot is reused for the next packet.
        let c = pool.put_data(DataPacket::cca(3, 100, false, t));
        assert_eq!(c, a);
        assert_eq!(pool.take_data(b).seq, 2);
        assert_eq!(pool.take_data(c).seq, 3);
        assert_eq!(pool.live(), 0);
        pool.reset();
        assert_eq!(pool.live(), 0);
    }
}
