//! Network traces: the genomes the fuzzer evolves.
//!
//! * A [`LinkTrace`] is a *service curve*: a sorted list of timestamps, each
//!   of which is an opportunity for the bottleneck to transmit exactly one
//!   MTU-sized packet (the MahiMahi representation the paper adopts, §3.2).
//! * A [`TrafficTrace`] is a sorted list of timestamps at which the
//!   cross-traffic source injects one packet into the bottleneck queue
//!   (§3.3).
//!
//! Both are plain data and are (de)serializable so that interesting traces
//! found by the fuzzer can be saved and replayed.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A bottleneck service curve: sorted per-packet transmission opportunities.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkTrace {
    /// Sorted timestamps; each is an opportunity to transmit one packet.
    opportunities: Vec<SimTime>,
    /// Total duration the trace describes (the link is silent after the last
    /// opportunity unless the trace is replayed cyclically by the caller).
    duration: SimDuration,
}

impl LinkTrace {
    /// Builds a trace from transmission opportunities, sorting them.
    pub fn new(mut opportunities: Vec<SimTime>, duration: SimDuration) -> Self {
        opportunities.sort_unstable();
        LinkTrace {
            opportunities,
            duration,
        }
    }

    /// A constant-rate trace: packets of `packet_size` bytes at `rate_bps`
    /// over `duration`, evenly spaced.
    pub fn constant_rate(rate_bps: u64, packet_size: u32, duration: SimDuration) -> Self {
        let interval = SimDuration::transmission_time(packet_size as u64, rate_bps);
        if interval == SimDuration::MAX || interval == SimDuration::ZERO {
            return LinkTrace::new(Vec::new(), duration);
        }
        let mut opportunities = Vec::new();
        let mut t = SimTime::ZERO + interval;
        while t.as_nanos() <= duration.as_nanos() {
            opportunities.push(t);
            t += interval;
        }
        LinkTrace {
            opportunities,
            duration,
        }
    }

    /// The sorted transmission opportunities.
    pub fn opportunities(&self) -> &[SimTime] {
        &self.opportunities
    }

    /// Consumes the trace, returning the opportunity timestamps.
    pub fn into_opportunities(self) -> Vec<SimTime> {
        self.opportunities
    }

    /// Number of transmission opportunities (i.e. total packets the link can
    /// serve over the trace).
    pub fn len(&self) -> usize {
        self.opportunities.len()
    }

    /// `true` when the link never transmits.
    pub fn is_empty(&self) -> bool {
        self.opportunities.is_empty()
    }

    /// The duration the trace covers.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Average service rate in bits per second for `packet_size`-byte packets.
    pub fn average_rate_bps(&self, packet_size: u32) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.opportunities.len() as f64) * (packet_size as f64) * 8.0 / secs
    }

    /// Cumulative packet count at each of `samples` evenly spaced instants —
    /// the curve plotted in Figure 3 of the paper.
    pub fn cumulative_curve(&self, samples: usize) -> Vec<(SimTime, u64)> {
        let samples = samples.max(2);
        let mut out = Vec::with_capacity(samples);
        let total_ns = self.duration.as_nanos().max(1);
        let mut idx = 0usize;
        for s in 0..samples {
            let t_ns = total_ns * s as u64 / (samples as u64 - 1);
            let t = SimTime::from_nanos(t_ns);
            while idx < self.opportunities.len() && self.opportunities[idx] <= t {
                idx += 1;
            }
            out.push((t, idx as u64));
        }
        out
    }

    /// Checks internal invariants (sorted, within duration). Used by tests
    /// and by the fuzzer after mutation operators run.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.opportunities.windows(2) {
            if w[0] > w[1] {
                return Err(format!("opportunities out of order: {} > {}", w[0], w[1]));
            }
        }
        if let Some(last) = self.opportunities.last() {
            if last.as_nanos() > self.duration.as_nanos() {
                return Err(format!(
                    "opportunity {last} beyond trace duration {}",
                    self.duration
                ));
            }
        }
        Ok(())
    }
}

/// A cross-traffic injection pattern: sorted injection timestamps.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficTrace {
    /// Sorted timestamps; each injects one cross-traffic packet.
    injections: Vec<SimTime>,
    /// Duration of the scenario.
    duration: SimDuration,
}

impl TrafficTrace {
    /// Builds a trace from injection timestamps, sorting them.
    pub fn new(mut injections: Vec<SimTime>, duration: SimDuration) -> Self {
        injections.sort_unstable();
        TrafficTrace {
            injections,
            duration,
        }
    }

    /// An empty trace (no cross traffic) over `duration`.
    pub fn empty(duration: SimDuration) -> Self {
        TrafficTrace {
            injections: Vec::new(),
            duration,
        }
    }

    /// A periodic burst pattern: every `period`, inject `burst_len` packets
    /// back-to-back spaced by `spacing`. Useful for constructing the
    /// low-rate-attack-style baselines from §4.3 by hand.
    pub fn periodic_bursts(
        period: SimDuration,
        burst_len: usize,
        spacing: SimDuration,
        duration: SimDuration,
    ) -> Self {
        let mut injections = Vec::new();
        if period == SimDuration::ZERO {
            return TrafficTrace::empty(duration);
        }
        let mut burst_start = SimTime::ZERO;
        while burst_start.as_nanos() < duration.as_nanos() {
            for i in 0..burst_len {
                let t = burst_start + SimDuration::from_nanos(spacing.as_nanos() * i as u64);
                if t.as_nanos() < duration.as_nanos() {
                    injections.push(t);
                }
            }
            burst_start += period;
        }
        TrafficTrace::new(injections, duration)
    }

    /// The sorted injection timestamps.
    pub fn injections(&self) -> &[SimTime] {
        &self.injections
    }

    /// Consumes the trace, returning the injection timestamps.
    pub fn into_injections(self) -> Vec<SimTime> {
        self.injections
    }

    /// Number of cross-traffic packets.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// `true` when there is no cross traffic.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The duration the trace covers.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Average cross-traffic rate in bits per second for `packet_size`-byte packets.
    pub fn average_rate_bps(&self, packet_size: u32) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.injections.len() as f64) * (packet_size as f64) * 8.0 / secs
    }

    /// Checks internal invariants (sorted, within duration).
    pub fn validate(&self) -> Result<(), String> {
        for w in self.injections.windows(2) {
            if w[0] > w[1] {
                return Err(format!("injections out of order: {} > {}", w[0], w[1]));
            }
        }
        if let Some(last) = self.injections.last() {
            if last.as_nanos() > self.duration.as_nanos() {
                return Err(format!(
                    "injection {last} beyond trace duration {}",
                    self.duration
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_trace_has_expected_count_and_rate() {
        // 12 Mbps with 1500-byte packets = 1000 packets/s.
        let tr = LinkTrace::constant_rate(12_000_000, 1500, SimDuration::from_secs(5));
        assert_eq!(tr.len(), 5_000);
        let rate = tr.average_rate_bps(1500);
        assert!((rate - 12e6).abs() / 12e6 < 0.01, "rate {rate}");
        tr.validate().unwrap();
    }

    #[test]
    fn constant_rate_zero_rate_is_empty() {
        let tr = LinkTrace::constant_rate(0, 1500, SimDuration::from_secs(1));
        assert!(tr.is_empty());
        assert_eq!(tr.average_rate_bps(1500), 0.0);
    }

    #[test]
    fn new_sorts_opportunities() {
        let tr = LinkTrace::new(
            vec![
                SimTime::from_millis(30),
                SimTime::from_millis(10),
                SimTime::from_millis(20),
            ],
            SimDuration::from_millis(100),
        );
        let opp = tr.opportunities();
        assert!(opp.windows(2).all(|w| w[0] <= w[1]));
        tr.validate().unwrap();
    }

    #[test]
    fn cumulative_curve_monotone_and_complete() {
        let tr = LinkTrace::constant_rate(12_000_000, 1500, SimDuration::from_secs(2));
        let curve = tr.cumulative_curve(50);
        assert_eq!(curve.len(), 50);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve.last().unwrap().1, tr.len() as u64);
        assert_eq!(curve.first().unwrap().1, 0);
    }

    #[test]
    fn periodic_bursts_shape() {
        let tr = TrafficTrace::periodic_bursts(
            SimDuration::from_millis(1_000),
            5,
            SimDuration::from_micros(100),
            SimDuration::from_secs(3),
        );
        assert_eq!(tr.len(), 15);
        tr.validate().unwrap();
        // Burst starts at 0, 1s, 2s.
        assert_eq!(tr.injections()[0], SimTime::ZERO);
        assert_eq!(tr.injections()[5], SimTime::from_millis(1_000));
        assert_eq!(tr.injections()[10], SimTime::from_millis(2_000));
    }

    #[test]
    fn periodic_bursts_zero_period_is_empty() {
        let tr = TrafficTrace::periodic_bursts(
            SimDuration::ZERO,
            5,
            SimDuration::from_micros(100),
            SimDuration::from_secs(3),
        );
        assert!(tr.is_empty());
    }

    #[test]
    fn empty_traces_are_valid_and_rate_zero() {
        let lt = LinkTrace::new(Vec::new(), SimDuration::from_secs(2));
        lt.validate().unwrap();
        assert!(lt.is_empty());
        assert_eq!(lt.len(), 0);
        assert_eq!(lt.average_rate_bps(1500), 0.0);
        // The cumulative curve of an empty trace is a flat zero line.
        let curve = lt.cumulative_curve(10);
        assert_eq!(curve.len(), 10);
        assert!(curve.iter().all(|(_, count)| *count == 0));

        let tt = TrafficTrace::empty(SimDuration::from_secs(2));
        tt.validate().unwrap();
        assert!(tt.is_empty());
        assert_eq!(tt.average_rate_bps(1500), 0.0);

        // Degenerate duration: rates divide by zero seconds and must not
        // produce NaN/inf.
        let zero_dur = TrafficTrace::empty(SimDuration::ZERO);
        assert_eq!(zero_dur.average_rate_bps(1500), 0.0);
        assert_eq!(
            LinkTrace::new(Vec::new(), SimDuration::ZERO).average_rate_bps(1500),
            0.0
        );
    }

    #[test]
    fn single_entry_traces_roundtrip_and_measure() {
        // One opportunity exactly on the duration boundary is valid.
        let at = SimTime::from_secs_f64(1.0);
        let lt = LinkTrace::new(vec![at], SimDuration::from_secs(1));
        lt.validate().unwrap();
        assert_eq!(lt.len(), 1);
        // 1 packet of 1500 B over 1 s = 12 kbps.
        assert!((lt.average_rate_bps(1500) - 12_000.0).abs() < 1e-9);
        let curve = lt.cumulative_curve(5);
        assert_eq!(curve.first().unwrap().1, 0);
        assert_eq!(curve.last().unwrap().1, 1);

        let tt = TrafficTrace::new(vec![at], SimDuration::from_secs(1));
        tt.validate().unwrap();
        assert_eq!(tt.len(), 1);
        let json = serde_json::to_string(&tt).unwrap();
        let back: TrafficTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(tt, back);
        // One nanosecond beyond the duration is rejected.
        let beyond = TrafficTrace {
            injections: vec![at + SimDuration::from_nanos(1)],
            duration: SimDuration::from_secs(1),
        };
        assert!(beyond.validate().is_err());
    }

    #[test]
    fn back_to_back_bursts_at_one_timestamp_are_legal_and_stable() {
        // Duplicate timestamps (a burst with zero spacing) are a legal
        // trace: sorting is stable about them, validation accepts them,
        // and they survive a serde roundtrip verbatim.
        let t0 = SimTime::from_millis(10);
        let tt = TrafficTrace::new(
            vec![t0, t0, t0, SimTime::from_millis(5)],
            SimDuration::from_millis(50),
        );
        tt.validate().unwrap();
        assert_eq!(tt.len(), 4);
        assert_eq!(tt.injections()[0], SimTime::from_millis(5));
        assert_eq!(&tt.injections()[1..], &[t0, t0, t0]);
        let back: TrafficTrace =
            serde_json::from_str(&serde_json::to_string(&tt).unwrap()).unwrap();
        assert_eq!(tt, back);

        // periodic_bursts with zero spacing lands the whole burst on one
        // timestamp.
        let burst = TrafficTrace::periodic_bursts(
            SimDuration::from_millis(20),
            3,
            SimDuration::ZERO,
            SimDuration::from_millis(40),
        );
        assert_eq!(burst.len(), 6);
        assert_eq!(&burst.injections()[..3], &[SimTime::ZERO; 3]);
        assert_eq!(&burst.injections()[3..], &[SimTime::from_millis(20); 3]);
        burst.validate().unwrap();

        // Link traces accept duplicate opportunities the same way (two
        // packets servable at one instant).
        let lt = LinkTrace::new(vec![t0, t0], SimDuration::from_millis(50));
        lt.validate().unwrap();
        assert_eq!(lt.len(), 2);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let tr = LinkTrace {
            opportunities: vec![SimTime::from_secs_f64(10.0)],
            duration: SimDuration::from_secs(5),
        };
        assert!(tr.validate().is_err());
        let tt = TrafficTrace {
            injections: vec![SimTime::from_millis(10), SimTime::from_millis(5)],
            duration: SimDuration::from_secs(5),
        };
        assert!(tt.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let tr = LinkTrace::constant_rate(12_000_000, 1500, SimDuration::from_millis(500));
        let json = serde_json::to_string(&tr).unwrap();
        let back: LinkTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(tr, back);

        let tt = TrafficTrace::periodic_bursts(
            SimDuration::from_millis(200),
            3,
            SimDuration::from_micros(50),
            SimDuration::from_secs(1),
        );
        let json = serde_json::to_string(&tt).unwrap();
        let back: TrafficTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(tt, back);
    }
}
