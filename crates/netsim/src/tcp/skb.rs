//! Per-packet sender state (the simulator's equivalent of a Linux SKB).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// State the sender keeps for every transmitted-but-unacknowledged packet.
///
/// The `tx_*` fields are re-stamped on **every** transmission of the packet,
/// including retransmissions — mirroring Linux `tcp_rate_skb_sent()`. The
/// paper's BBR finding (§4.1) arises precisely because a *spurious*
/// retransmission refreshes `tx_delivered` right before the SACK for the
/// original copy arrives.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Skb {
    /// Packet-level sequence number.
    pub seq: u64,
    /// Packet size in bytes.
    pub size: u32,
    /// Number of times this packet has been transmitted.
    pub transmissions: u32,
    /// Time of the first transmission.
    pub first_tx: SimTime,
    /// Time of the most recent transmission.
    pub last_tx: SimTime,
    /// `tp->delivered` stamped at the most recent transmission
    /// ("prior delivered").
    pub tx_delivered: u64,
    /// `tp->delivered_mstamp` stamped at the most recent transmission.
    pub tx_delivered_time: SimTime,
    /// `tp->first_tx_mstamp` stamped at the most recent transmission (start
    /// of the send window used for `send_elapsed`).
    pub tx_first_sent_time: SimTime,
    /// Whether the sender was application-limited at the last transmission.
    pub tx_app_limited: bool,
    /// The packet has been selectively acknowledged.
    pub sacked: bool,
    /// The packet is currently marked lost (awaiting retransmission).
    pub lost: bool,
    /// A copy of the packet is currently in the network and unacknowledged.
    pub outstanding: bool,
}

impl Skb {
    /// Creates the SKB for a packet about to be transmitted for the first time.
    pub fn new(seq: u64, size: u32) -> Self {
        Skb {
            seq,
            size,
            transmissions: 0,
            first_tx: SimTime::ZERO,
            last_tx: SimTime::ZERO,
            tx_delivered: 0,
            tx_delivered_time: SimTime::ZERO,
            tx_first_sent_time: SimTime::ZERO,
            tx_app_limited: false,
            sacked: false,
            lost: false,
            outstanding: false,
        }
    }

    /// Stamps the SKB for a transmission at `now` (mirrors
    /// `tcp_rate_skb_sent`): records the connection-level delivery state so a
    /// later ACK of this packet can form a rate sample.
    pub fn stamp_transmission(
        &mut self,
        now: SimTime,
        delivered: u64,
        delivered_time: SimTime,
        first_sent_time: SimTime,
        app_limited: bool,
    ) {
        if self.transmissions == 0 {
            self.first_tx = now;
        }
        self.transmissions += 1;
        self.last_tx = now;
        self.tx_delivered = delivered;
        self.tx_delivered_time = delivered_time;
        self.tx_first_sent_time = first_sent_time;
        self.tx_app_limited = app_limited;
        self.lost = false;
        self.outstanding = true;
    }

    /// `true` if this packet has been retransmitted at least once.
    pub fn retransmitted(&self) -> bool {
        self.transmissions > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_transmission_sets_first_tx() {
        let mut skb = Skb::new(5, 1448);
        assert_eq!(skb.transmissions, 0);
        skb.stamp_transmission(
            SimTime::from_millis(10),
            3,
            SimTime::from_millis(9),
            SimTime::from_millis(8),
            false,
        );
        assert_eq!(skb.transmissions, 1);
        assert_eq!(skb.first_tx, SimTime::from_millis(10));
        assert_eq!(skb.last_tx, SimTime::from_millis(10));
        assert_eq!(skb.tx_delivered, 3);
        assert!(skb.outstanding);
        assert!(!skb.retransmitted());
    }

    #[test]
    fn retransmission_restamps_delivery_state() {
        // This is the mechanism behind the paper's BBR finding: the second
        // (spurious) transmission refreshes tx_delivered to the *current*
        // delivered count.
        let mut skb = Skb::new(7, 1448);
        skb.stamp_transmission(
            SimTime::from_millis(10),
            3,
            SimTime::from_millis(9),
            SimTime::from_millis(8),
            false,
        );
        skb.lost = true;
        skb.outstanding = false;
        skb.stamp_transmission(
            SimTime::from_millis(1200),
            57,
            SimTime::from_millis(1190),
            SimTime::from_millis(1195),
            false,
        );
        assert_eq!(skb.transmissions, 2);
        assert!(skb.retransmitted());
        assert_eq!(
            skb.first_tx,
            SimTime::from_millis(10),
            "first_tx is preserved"
        );
        assert_eq!(skb.last_tx, SimTime::from_millis(1200));
        assert_eq!(
            skb.tx_delivered, 57,
            "prior delivered refreshed by retransmission"
        );
        assert!(!skb.lost, "retransmission clears the lost mark");
        assert!(skb.outstanding);
    }
}
