//! The receiving endpoint of the CCA flow.
//!
//! Tracks which packet sequences have arrived, generates cumulative ACKs and
//! SACK blocks, and implements delayed ACKs (ACK every n-th in-order packet
//! or when the delayed-ACK timer fires; out-of-order arrivals and duplicates
//! are acknowledged immediately, as in Linux/NS3).

use crate::packet::{AckPacket, DataPacket, SackBlock, SackList, MAX_SACK_BLOCKS};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Receiver configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReceiverConfig {
    /// Whether SACK blocks are generated.
    pub sack_enabled: bool,
    /// Whether delayed ACKs are enabled.
    pub delayed_ack: bool,
    /// ACK after this many unacknowledged in-order packets (2 is standard).
    pub delayed_ack_count: u32,
    /// Delayed-ACK timeout.
    pub delayed_ack_timeout: SimDuration,
    /// Maximum number of SACK blocks carried per ACK (TCP options fit 3–4).
    pub max_sack_blocks: usize,
}

impl ReceiverConfig {
    /// Linux/NS3-like defaults matching the paper's setup: SACK on, delayed
    /// ACKs on with a 200 ms timer and a 2-packet threshold.
    pub fn paper_default() -> Self {
        ReceiverConfig {
            sack_enabled: true,
            delayed_ack: true,
            delayed_ack_count: 2,
            delayed_ack_timeout: SimDuration::from_millis(200),
            max_sack_blocks: 4,
        }
    }
}

/// What the receiver wants the network to do after processing a packet or a
/// timer: send this ACK now (at most one per data packet), and (re)arm or
/// disarm the delayed-ACK timer. The output is `Copy`, so the per-packet
/// receive path is allocation-free.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReceiverOutput {
    /// ACK to send immediately, if any.
    pub ack: Option<AckPacket>,
    /// If set, the delayed-ACK timer should fire at this time with the given
    /// generation. A `None` leaves any previously armed timer in place.
    pub arm_delack: Option<(SimTime, u64)>,
}

/// The receiver state machine.
#[derive(Clone, Debug)]
pub struct TcpReceiver {
    cfg: ReceiverConfig,
    /// All packets below this sequence have been received.
    cum_ack: u64,
    /// Received out-of-order ranges above `cum_ack`, sorted and disjoint.
    ooo_ranges: Vec<SackBlock>,
    /// Index into `ooo_ranges` of the most recently updated range (reported
    /// first in SACK blocks, as real receivers do).
    last_updated_range: Option<usize>,
    /// In-order packets received since the last ACK was sent.
    unacked_count: u32,
    /// Info about the newest data packet (for ACK echo fields).
    newest_seq: u64,
    newest_sent_at: SimTime,
    newest_was_retransmission: bool,
    /// Delayed-ACK timer generation (incremented on every arm/disarm).
    delack_generation: u64,
    delack_armed: bool,
    /// Total data packets received (including duplicates).
    total_received: u64,
    /// Duplicate data packets received.
    duplicates: u64,
    /// CE-marked data packets received (every wire arrival counts: a marked
    /// duplicate is still a congestion signal from the network).
    ce_received: u64,
    /// CE marks not yet echoed in an ACK.
    pending_ece: u64,
    /// CE marks echoed into generated ACKs so far. Every received mark is
    /// echoed exactly once, so after the network drains
    /// `ce_received == ece_echoed` — the conservation law the ECN property
    /// test pins.
    ece_echoed: u64,
}

impl TcpReceiver {
    /// Creates a receiver.
    ///
    /// Panics if `cfg.max_sack_blocks` exceeds [`MAX_SACK_BLOCKS`]: the
    /// inline [`SackList`] cannot carry more, and silently truncating would
    /// change ACK content (and run digests) behind the caller's back.
    pub fn new(cfg: ReceiverConfig) -> Self {
        assert!(
            cfg.max_sack_blocks <= MAX_SACK_BLOCKS,
            "max_sack_blocks {} exceeds the wire-format cap {MAX_SACK_BLOCKS}",
            cfg.max_sack_blocks
        );
        TcpReceiver {
            cfg,
            cum_ack: 0,
            ooo_ranges: Vec::new(),
            last_updated_range: None,
            unacked_count: 0,
            newest_seq: 0,
            newest_sent_at: SimTime::ZERO,
            newest_was_retransmission: false,
            delack_generation: 0,
            delack_armed: false,
            total_received: 0,
            duplicates: 0,
            ce_received: 0,
            pending_ece: 0,
            ece_echoed: 0,
        }
    }

    /// Reinitializes this receiver in place for a fresh flow, keeping the
    /// out-of-order range buffer. Equivalent to `*self = TcpReceiver::new(cfg)`
    /// apart from recycled capacity.
    pub fn reset_reusing(&mut self, cfg: ReceiverConfig) {
        let mut fresh = TcpReceiver::new(cfg);
        fresh.ooo_ranges = std::mem::take(&mut self.ooo_ranges);
        fresh.ooo_ranges.clear();
        *self = fresh;
    }

    /// Current cumulative ACK (first sequence not yet received in order).
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Total data packets received, including duplicates.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }

    /// Duplicate data packets received.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// CE-marked data packets received (including marked duplicates).
    pub fn ce_received(&self) -> u64 {
        self.ce_received
    }

    /// CE marks echoed into generated ACKs so far.
    pub fn ece_echoed(&self) -> u64 {
        self.ece_echoed
    }

    /// Number of distinct packets received out of order (currently above the
    /// cumulative ACK).
    pub fn ooo_packets(&self) -> u64 {
        self.ooo_ranges.iter().map(|r| r.len()).sum()
    }

    fn record_newest(&mut self, pkt: &DataPacket) {
        self.newest_seq = pkt.seq;
        self.newest_sent_at = pkt.sent_at;
        self.newest_was_retransmission = pkt.is_retransmission;
    }

    /// Inserts `seq` into the out-of-order ranges. Returns `true` if the
    /// packet was new.
    fn insert_ooo(&mut self, seq: u64) -> bool {
        // Find insertion position among sorted disjoint ranges.
        let mut i = 0;
        while i < self.ooo_ranges.len() && self.ooo_ranges[i].end < seq {
            i += 1;
        }
        if i < self.ooo_ranges.len() && self.ooo_ranges[i].contains(seq) {
            return false; // duplicate
        }
        // Can we extend the range at i (seq == range.start - 1 is not possible
        // since ranges are [start,end); extend when seq == end) or the one
        // before it?
        let extends_prev = i < self.ooo_ranges.len() && self.ooo_ranges[i].start == seq + 1;
        let extends_next_end = i < self.ooo_ranges.len() && self.ooo_ranges[i].end == seq;
        match (extends_next_end, extends_prev) {
            (true, _) => {
                self.ooo_ranges[i].end += 1;
                // May now touch the following range; merge.
                if i + 1 < self.ooo_ranges.len()
                    && self.ooo_ranges[i].end == self.ooo_ranges[i + 1].start
                {
                    self.ooo_ranges[i].end = self.ooo_ranges[i + 1].end;
                    self.ooo_ranges.remove(i + 1);
                }
                self.last_updated_range = Some(i);
            }
            (false, true) => {
                self.ooo_ranges[i].start = seq;
                self.last_updated_range = Some(i);
            }
            (false, false) => {
                self.ooo_ranges.insert(
                    i,
                    SackBlock {
                        start: seq,
                        end: seq + 1,
                    },
                );
                self.last_updated_range = Some(i);
            }
        }
        true
    }

    /// Advances the cumulative ACK through any out-of-order ranges it now
    /// touches.
    fn advance_cum_ack(&mut self) {
        while let Some(first) = self.ooo_ranges.first() {
            if first.start <= self.cum_ack {
                self.cum_ack = self.cum_ack.max(first.end);
                self.ooo_ranges.remove(0);
                self.last_updated_range = None;
            } else {
                break;
            }
        }
    }

    fn sack_blocks(&self) -> SackList {
        let mut blocks = SackList::new();
        if !self.cfg.sack_enabled || self.ooo_ranges.is_empty() {
            return blocks;
        }
        let cap = self.cfg.max_sack_blocks;
        if let Some(idx) = self.last_updated_range {
            if let Some(b) = self.ooo_ranges.get(idx) {
                blocks.push(*b);
            }
        }
        for (i, b) in self.ooo_ranges.iter().enumerate() {
            if blocks.len() >= cap {
                break;
            }
            if Some(i) != self.last_updated_range {
                blocks.push(*b);
            }
        }
        blocks
    }

    fn make_ack(&mut self, now: SimTime, acked_now: u64) -> AckPacket {
        self.unacked_count = 0;
        let ece_marks = self.pending_ece;
        self.pending_ece = 0;
        self.ece_echoed += ece_marks;
        AckPacket {
            cum_ack: self.cum_ack,
            sack_blocks: self.sack_blocks(),
            acked_now,
            generated_at: now,
            echo_sent_at: self.newest_sent_at,
            for_seq: self.newest_seq,
            for_retransmission: self.newest_was_retransmission,
            ece_marks,
        }
    }

    fn disarm_delack(&mut self) {
        if self.delack_armed {
            self.delack_armed = false;
            self.delack_generation += 1;
        }
    }

    /// Processes an arriving data packet and returns the ACKs to send plus
    /// any delayed-ACK timer request.
    pub fn on_data(&mut self, pkt: &DataPacket, now: SimTime) -> ReceiverOutput {
        self.total_received += 1;
        if pkt.ce {
            self.ce_received += 1;
            self.pending_ece += 1;
        }
        self.record_newest(pkt);
        let mut out = ReceiverOutput::default();

        let is_duplicate =
            pkt.seq < self.cum_ack || self.ooo_ranges.iter().any(|r| r.contains(pkt.seq));
        if is_duplicate {
            self.duplicates += 1;
            // Duplicate data: acknowledge immediately (flushes anything pending).
            self.disarm_delack();
            out.ack = Some(self.make_ack(now, 0));
            return out;
        }

        if pkt.seq == self.cum_ack {
            // In-order arrival.
            self.cum_ack += 1;
            self.advance_cum_ack();
            // If this arrival filled a gap (there were out-of-order packets),
            // acknowledge immediately so the sender learns promptly.
            let filled_gap = self.cum_ack > pkt.seq + 1 || !self.ooo_ranges.is_empty();
            self.unacked_count += 1;
            if filled_gap
                || !self.cfg.delayed_ack
                || self.unacked_count >= self.cfg.delayed_ack_count
            {
                let acked = self.unacked_count as u64;
                self.disarm_delack();
                out.ack = Some(self.make_ack(now, acked));
            } else {
                // Arm (or re-arm) the delayed-ACK timer.
                self.delack_armed = true;
                self.delack_generation += 1;
                out.arm_delack = Some((now + self.cfg.delayed_ack_timeout, self.delack_generation));
            }
        } else {
            // Out of order: record and ACK immediately (duplicate ACK with SACK).
            debug_assert!(pkt.seq > self.cum_ack);
            self.insert_ooo(pkt.seq);
            let pending = self.unacked_count as u64;
            self.disarm_delack();
            out.ack = Some(self.make_ack(now, pending));
        }
        out
    }

    /// Handles a delayed-ACK timer expiry for `generation`. Returns an ACK if
    /// the timer is still valid and data is pending acknowledgement.
    pub fn on_delack_timer(&mut self, generation: u64, now: SimTime) -> Option<AckPacket> {
        if !self.delack_armed || generation != self.delack_generation {
            return None;
        }
        self.delack_armed = false;
        if self.unacked_count == 0 {
            return None;
        }
        let acked = self.unacked_count as u64;
        Some(self.make_ack(now, acked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_MSS;

    fn pkt(seq: u64) -> DataPacket {
        DataPacket::cca(seq, DEFAULT_MSS, false, SimTime::from_millis(seq))
    }

    fn recv(cfg: ReceiverConfig) -> TcpReceiver {
        TcpReceiver::new(cfg)
    }

    fn no_delack() -> ReceiverConfig {
        ReceiverConfig {
            delayed_ack: false,
            ..ReceiverConfig::paper_default()
        }
    }

    #[test]
    fn in_order_without_delayed_ack_acks_every_packet() {
        let mut r = recv(no_delack());
        for i in 0..5 {
            let out = r.on_data(&pkt(i), SimTime::from_millis(i));
            let ack = out.ack.expect("immediate ack");
            assert_eq!(ack.cum_ack, i + 1);
            assert!(ack.sack_blocks.is_empty());
        }
        assert_eq!(r.cum_ack(), 5);
    }

    #[test]
    fn delayed_ack_coalesces_two_packets() {
        let mut r = recv(ReceiverConfig::paper_default());
        let out0 = r.on_data(&pkt(0), SimTime::from_millis(0));
        assert!(out0.ack.is_none(), "first in-order packet is delayed");
        assert!(out0.arm_delack.is_some());
        let out1 = r.on_data(&pkt(1), SimTime::from_millis(1));
        let ack1 = out1.ack.expect("coalesced ack");
        assert_eq!(ack1.cum_ack, 2);
        assert_eq!(ack1.acked_now, 2);
    }

    #[test]
    fn delayed_ack_timer_flushes_pending() {
        let mut r = recv(ReceiverConfig::paper_default());
        let out = r.on_data(&pkt(0), SimTime::from_millis(0));
        let (deadline, generation) = out.arm_delack.unwrap();
        assert_eq!(deadline, SimTime::from_millis(200));
        // A stale generation does nothing.
        assert!(r.on_delack_timer(generation + 5, deadline).is_none());
        let ack = r.on_delack_timer(generation, deadline).unwrap();
        assert_eq!(ack.cum_ack, 1);
        assert_eq!(ack.acked_now, 1);
        // Timer is one-shot.
        assert!(r.on_delack_timer(generation, deadline).is_none());
    }

    #[test]
    fn out_of_order_generates_immediate_sack() {
        let mut r = recv(ReceiverConfig::paper_default());
        r.on_data(&pkt(0), SimTime::ZERO);
        r.on_data(&pkt(1), SimTime::ZERO);
        // Packet 2 is missing; 3 and 4 arrive.
        let out3 = r.on_data(&pkt(3), SimTime::from_millis(3));
        let ack3 = out3.ack.expect("out-of-order data is ACKed immediately");
        assert_eq!(ack3.cum_ack, 2);
        assert_eq!(
            ack3.sack_blocks.as_slice(),
            [SackBlock { start: 3, end: 4 }]
        );
        let out4 = r.on_data(&pkt(4), SimTime::from_millis(4));
        assert_eq!(
            out4.ack.unwrap().sack_blocks.as_slice(),
            [SackBlock { start: 3, end: 5 }]
        );
        assert_eq!(r.ooo_packets(), 2);
        // The retransmitted packet 2 fills the gap; cum ack jumps to 5.
        let out2 = r.on_data(&pkt(2), SimTime::from_millis(10));
        let ack2 = out2.ack.expect("gap fill is ACKed immediately");
        assert_eq!(ack2.cum_ack, 5);
        assert!(ack2.sack_blocks.is_empty());
        assert_eq!(r.ooo_packets(), 0);
    }

    #[test]
    fn multiple_gaps_produce_multiple_sack_blocks_most_recent_first() {
        let mut r = recv(no_delack());
        r.on_data(&pkt(0), SimTime::ZERO);
        // Gaps at 1, 3, 5: receive 2, 4, 6.
        r.on_data(&pkt(2), SimTime::ZERO);
        r.on_data(&pkt(4), SimTime::ZERO);
        let out = r.on_data(&pkt(6), SimTime::ZERO);
        let ack = out.ack.unwrap();
        let blocks = &ack.sack_blocks;
        assert_eq!(blocks.len(), 3);
        assert_eq!(
            blocks[0],
            SackBlock { start: 6, end: 7 },
            "most recently updated first"
        );
        assert!(blocks.contains(&SackBlock { start: 2, end: 3 }));
        assert!(blocks.contains(&SackBlock { start: 4, end: 5 }));
    }

    #[test]
    fn sack_blocks_capped() {
        let mut cfg = no_delack();
        cfg.max_sack_blocks = 2;
        let mut r = recv(cfg);
        // Create 4 disjoint SACK ranges: 1,3,5,7 received, 0,2,4,6 missing.
        for seq in [1u64, 3, 5, 7] {
            r.on_data(&pkt(seq), SimTime::ZERO);
        }
        let out = r.on_data(&pkt(9), SimTime::ZERO);
        assert_eq!(out.ack.unwrap().sack_blocks.len(), 2);
    }

    #[test]
    fn duplicates_are_acked_immediately_and_counted() {
        let mut r = recv(ReceiverConfig::paper_default());
        r.on_data(&pkt(0), SimTime::ZERO);
        r.on_data(&pkt(1), SimTime::ZERO);
        let out = r.on_data(&pkt(0), SimTime::from_millis(5));
        assert_eq!(out.ack.unwrap().cum_ack, 2);
        assert_eq!(r.duplicates(), 1);
        // Duplicate of an out-of-order packet.
        r.on_data(&pkt(5), SimTime::from_millis(6));
        let out = r.on_data(&pkt(5), SimTime::from_millis(7));
        assert!(out.ack.is_some());
        assert_eq!(r.duplicates(), 2);
    }

    #[test]
    fn sack_disabled_produces_plain_dup_acks() {
        let mut cfg = no_delack();
        cfg.sack_enabled = false;
        let mut r = recv(cfg);
        r.on_data(&pkt(0), SimTime::ZERO);
        let out = r.on_data(&pkt(2), SimTime::ZERO);
        let ack = out.ack.unwrap();
        assert_eq!(ack.cum_ack, 1);
        assert!(ack.sack_blocks.is_empty());
    }

    #[test]
    fn ack_echo_fields_reflect_newest_packet() {
        let mut r = recv(no_delack());
        let mut p = pkt(0);
        p.sent_at = SimTime::from_millis(123);
        p.is_retransmission = true;
        let out = r.on_data(&p, SimTime::from_millis(150));
        let ack = out.ack.unwrap();
        assert_eq!(ack.echo_sent_at, SimTime::from_millis(123));
        assert_eq!(ack.for_seq, 0);
        assert!(ack.for_retransmission);
        assert_eq!(ack.generated_at, SimTime::from_millis(150));
    }

    #[test]
    fn ce_marks_are_echoed_exactly_once() {
        let mut r = recv(no_delack());
        let ce = |seq: u64| {
            let mut p = pkt(seq);
            p.ce = true;
            p
        };
        // Unmarked packet: no echo.
        let out = r.on_data(&pkt(0), SimTime::ZERO);
        assert_eq!(out.ack.unwrap().ece_marks, 0);
        // Marked packet: echoed on the very next ACK.
        let out = r.on_data(&ce(1), SimTime::ZERO);
        assert_eq!(out.ack.unwrap().ece_marks, 1);
        assert_eq!(r.ce_received(), 1);
        assert_eq!(r.ece_echoed(), 1);
        // Echo is one-shot: the following ACK carries nothing.
        let out = r.on_data(&pkt(2), SimTime::ZERO);
        assert_eq!(out.ack.unwrap().ece_marks, 0);
        // A marked duplicate still signals congestion.
        let out = r.on_data(&ce(1), SimTime::from_millis(1));
        assert_eq!(out.ack.unwrap().ece_marks, 1);
        assert_eq!(r.ce_received(), 2);
        assert_eq!(r.ece_echoed(), 2);
    }

    #[test]
    fn ce_marks_coalesce_under_delayed_acks() {
        let mut r = recv(ReceiverConfig::paper_default());
        let ce = |seq: u64| {
            let mut p = pkt(seq);
            p.ce = true;
            p
        };
        // First marked in-order packet is held by the delayed-ACK timer...
        let out = r.on_data(&ce(0), SimTime::ZERO);
        assert!(out.ack.is_none());
        // ...and both marks ride the coalesced ACK.
        let out = r.on_data(&ce(1), SimTime::from_millis(1));
        let ack = out.ack.expect("second packet flushes the delayed ACK");
        assert_eq!(ack.ece_marks, 2);
        assert_eq!(r.ece_echoed(), 2);
        // A mark pending when the delack timer fires is echoed by it.
        let out = r.on_data(&ce(2), SimTime::from_millis(2));
        let (deadline, generation) = out.arm_delack.unwrap();
        let ack = r.on_delack_timer(generation, deadline).unwrap();
        assert_eq!(ack.ece_marks, 1);
        assert_eq!(r.ce_received(), 3);
        assert_eq!(r.ece_echoed(), 3);
    }

    #[test]
    fn gap_fill_merges_ranges() {
        let mut r = recv(no_delack());
        r.on_data(&pkt(0), SimTime::ZERO);
        r.on_data(&pkt(2), SimTime::ZERO);
        r.on_data(&pkt(4), SimTime::ZERO);
        // 3 arrives: ranges [2,3) and [4,5) must merge into [2,5).
        let out = r.on_data(&pkt(3), SimTime::ZERO);
        let ack = out.ack.unwrap();
        let blocks = &ack.sack_blocks;
        assert!(blocks.contains(&SackBlock { start: 2, end: 5 }));
        assert_eq!(r.ooo_packets(), 3);
    }
}
