//! A TCP-like reliable transport for the CCA flow.
//!
//! This is not a byte-stream TCP: sequence numbers are in packets (fixed
//! MSS), there is no handshake, and the application is an infinite bulk
//! source. What *is* modelled faithfully — because the paper's findings
//! depend on it — is the loss-recovery and measurement machinery:
//!
//! * SACK scoreboard and SACK-based loss detection (3-dup threshold),
//!   plus classic dup-ACK counting when SACK is disabled;
//! * fast retransmit / fast recovery with a recovery-exit point;
//! * RTO per RFC 6298 with a configurable minimum (1 s in the paper) and
//!   exponential backoff, including the *spurious retransmissions* of
//!   packets whose ACKs are still in flight after a timeout;
//! * delayed ACKs at the receiver (count- and timer-based);
//! * Linux-style delivery-rate sampling (`tcp_rate.c`): every transmission
//!   stamps the packet with the current `delivered` count and timestamps,
//!   and every ACK produces a [`RateSample`](crate::cc::RateSample) from the
//!   stamps of the most recently transmitted packet it acknowledges. This is
//!   exactly the state the BBR stall in §4.1 of the paper is built on.

pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod skb;

pub use receiver::{ReceiverConfig, ReceiverOutput, TcpReceiver};
pub use rtt::RttEstimator;
pub use sender::{SendPoll, SenderConfig, TcpSender};
pub use skb::Skb;
