//! The sending endpoint of the CCA flow.
//!
//! Owns the retransmission queue (per-packet [`Skb`]s), the SACK scoreboard,
//! loss detection (SACK-based and dup-ACK based), fast retransmit / recovery,
//! the RTO state machine with exponential backoff, Linux-style delivery-rate
//! sampling, and the plugged-in [`CongestionControl`] algorithm.
//!
//! The sender is deliberately written as a passive state machine: the
//! simulator polls it for transmissions ([`TcpSender::poll_send`]) and feeds
//! it ACKs and timer expirations. This keeps it trivially testable without a
//! network.
//!
//! ## Hot-path design
//!
//! The sender sits on the per-ACK critical path of every fuzzer evaluation,
//! so its data structures are chosen for that loop:
//!
//! * The retransmission queue is a dense `VecDeque<Skb>` indexed by
//!   `seq - cum_ack` — sequences are contiguous in `[cum_ack, next_seq)`
//!   because packets are sent in order and only removed from the front when
//!   cumulatively acknowledged. This replaces a `BTreeMap` (pointer-chasing,
//!   per-node allocation) with O(1) indexed access and cache-linear scans.
//! * `in_flight`, SACKed and retransmit-pending counts are maintained
//!   incrementally instead of recomputed by scanning the queue.
//! * SACK-based loss detection is a single reverse pass with a running
//!   "SACKed above" count instead of the former O(window²) per-ACK scan.
//! * The congestion controller is a generic parameter, so enum-dispatched
//!   controllers ([`ccfuzz-cca`]'s `CcaDispatch`) avoid virtual calls on
//!   every ACK; `Box<dyn CongestionControl>` remains the default for
//!   API compatibility.

use crate::cc::{CcContext, CongestionControl, CongestionSignal, RateSample};
use crate::packet::{AckPacket, DataPacket};
use crate::stats::{TransportEvent, TransportRecord};
use crate::tcp::rtt::RttEstimator;
use crate::tcp::skb::Skb;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Number of SACKed packets above an un-SACKed packet that marks it lost
/// (the classic dupthresh of 3).
pub const LOSS_REORDER_THRESHOLD: u64 = 3;

/// Sender configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SenderConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Whether the sender processes SACK blocks.
    pub sack_enabled: bool,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout.
    pub max_rto: SimDuration,
    /// RTO before the first RTT sample.
    pub initial_rto: SimDuration,
    /// Initial congestion window (packets); also the floor applied on top of
    /// whatever the CCA requests is 1 packet.
    pub initial_cwnd: u64,
    /// Maximum packets the application will ever provide (bulk transfer:
    /// effectively unlimited).
    pub buffer_packets: u64,
    /// Record the transport event log. The fuzzer's inner loop turns this
    /// off: the log is only consumed by figure/timeline tooling, and
    /// appending per-ACK records would be the last remaining per-packet
    /// allocation on the hot path.
    pub record_log: bool,
    /// ECN negotiated: data packets go out ECT (markable at an AQM gateway)
    /// and echoed CE marks are fed to the congestion controller.
    pub ecn_enabled: bool,
}

impl SenderConfig {
    /// Paper-default sender parameters (1 s min RTO, SACK enabled).
    pub fn paper_default() -> Self {
        SenderConfig {
            mss: crate::packet::DEFAULT_MSS,
            sack_enabled: true,
            min_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            initial_cwnd: 10,
            buffer_packets: u64::MAX / 4,
            record_log: true,
            ecn_enabled: false,
        }
    }
}

/// Merges `[start, end)` into a sorted list of disjoint, non-adjacent
/// ranges (the sender's SACK-processing cache).
fn insert_sack_range(cache: &mut Vec<(u64, u64)>, start: u64, end: u64) {
    if start >= end {
        return;
    }
    // First range that overlaps or is adjacent to the new one.
    let mut i = 0;
    while i < cache.len() && cache[i].1 < start {
        i += 1;
    }
    // Absorb every range overlapping or adjacent to [start, end).
    let mut lo = start;
    let mut hi = end;
    let mut j = i;
    while j < cache.len() && cache[j].0 <= end {
        lo = lo.min(cache[j].0);
        hi = hi.max(cache[j].1);
        j += 1;
    }
    cache.drain(i..j);
    cache.insert(i, (lo, hi));
}

/// Result of polling the sender for a transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SendPoll {
    /// Transmit this packet now.
    Packet(DataPacket),
    /// Nothing may be sent before this time (pacing gate); poll again then.
    Wait(SimTime),
    /// The sender is window-limited or has nothing to send; poll again after
    /// the next ACK or timer.
    Blocked,
}

/// The sender state machine, generic over its congestion controller.
///
/// `C` defaults to `Box<dyn CongestionControl>` so existing trait-object
/// call sites work unchanged; the fuzzer instantiates it with the
/// enum-dispatched controller from `ccfuzz-cca` for static dispatch.
pub struct TcpSender<C: CongestionControl = Box<dyn CongestionControl>> {
    cfg: SenderConfig,
    cc: C,

    /// Next never-sent sequence number.
    next_seq: u64,
    /// First unacknowledged sequence (snd_una).
    cum_ack: u64,
    /// Retransmission queue: every sent-but-not-cumulatively-acked packet,
    /// dense by sequence — `skbs[i]` is the SKB for `cum_ack + i`.
    skbs: VecDeque<Skb>,
    /// Packets currently outstanding (`outstanding == true`), maintained
    /// incrementally.
    outstanding_count: u64,
    /// SKBs currently SACKed, maintained incrementally (lets the loss
    /// detector skip its scan entirely on SACK-free ACKs).
    sacked_count: u64,
    /// Lost packets awaiting retransmission (`lost && !outstanding`),
    /// maintained incrementally (lets `poll_send` skip the retransmit scan).
    rtx_pending: u64,
    /// SKBs still eligible for dupthresh loss marking
    /// (`!lost && !sacked && transmissions == 1`), maintained incrementally.
    /// The SACK loss scan walks the queue from the top and stops as soon as
    /// no candidates remain below — in recovery, with a large window of
    /// already-lost/SACKed packets, that turns an O(window) pass per ACK
    /// into a walk of just the recently sent tail.
    loss_candidates: u64,
    /// Lowest index in `skbs` that can hold a retransmit-pending packet.
    /// The retransmit scan in `next_to_send` starts here instead of at the
    /// queue head; maintained on marks (min), transmissions (found index)
    /// and cumulative ACKs (shift left with the queue).
    rtx_search_from: usize,
    /// Sorted, disjoint ranges of sequences already processed as SACKed
    /// (the equivalent of Linux's `tcp_sack_cache`). Receivers repeat their
    /// SACK blocks on every ACK, so without the cache the per-sequence walk
    /// re-visits the whole SACKed region each time — quadratic over a
    /// recovery episode. Clipping each block against the cache leaves only
    /// newly SACKed sequences to walk. Exact because a SACKed packet never
    /// becomes un-SACKed while it remains in the queue.
    sack_cache: Vec<(u64, u64)>,

    // --- Delivery accounting (Linux tcp_rate.c style) ---
    /// Total packets delivered (cumulatively or selectively acknowledged).
    delivered: u64,
    /// Time of the most recent delivery.
    delivered_time: SimTime,
    /// Start of the current send window (for send_elapsed).
    first_sent_time: SimTime,
    /// Total packets ever marked lost.
    lost_total: u64,

    // --- RTT / RTO ---
    rtt: RttEstimator,
    rto_backoff: u32,
    rto_deadline: Option<SimTime>,
    rto_generation: u64,

    // --- Recovery state ---
    in_recovery: bool,
    /// When in recovery: exit once `cum_ack` reaches this sequence.
    recovery_high: u64,
    /// Dup-ACK counter used when SACK is disabled.
    dup_acks: u64,

    // --- Pacing ---
    earliest_next_send: SimTime,

    // --- Flow lifecycle ---
    started: bool,

    // --- Logging / counters ---
    log: Vec<TransportRecord>,
    /// Reusable scratch for ascending-order loss logging.
    mark_log_buf: Vec<u64>,
    transmissions: u64,
    retransmissions: u64,
    rto_count: u64,
    recovery_episodes: u64,
    /// CE echoes processed from arriving ACKs (ECN only).
    ece_acked: u64,
}

impl<C: CongestionControl> std::fmt::Debug for TcpSender<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("cc", &self.cc.name())
            .field("next_seq", &self.next_seq)
            .field("cum_ack", &self.cum_ack)
            .field("delivered", &self.delivered)
            .field("in_flight", &self.in_flight())
            .field("in_recovery", &self.in_recovery)
            .finish()
    }
}

impl<C: CongestionControl> TcpSender<C> {
    /// Creates a sender with the given configuration and congestion control.
    pub fn new(cfg: SenderConfig, mut cc: C) -> Self {
        cc.set_event_recording(cfg.record_log);
        TcpSender {
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto, cfg.initial_rto),
            cfg,
            cc,
            next_seq: 0,
            cum_ack: 0,
            skbs: VecDeque::new(),
            outstanding_count: 0,
            sacked_count: 0,
            rtx_pending: 0,
            loss_candidates: 0,
            rtx_search_from: 0,
            sack_cache: Vec::new(),
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_sent_time: SimTime::ZERO,
            lost_total: 0,
            rto_backoff: 0,
            rto_deadline: None,
            rto_generation: 0,
            in_recovery: false,
            recovery_high: 0,
            dup_acks: 0,
            earliest_next_send: SimTime::ZERO,
            started: false,
            log: Vec::new(),
            mark_log_buf: Vec::new(),
            transmissions: 0,
            retransmissions: 0,
            rto_count: 0,
            recovery_episodes: 0,
            ece_acked: 0,
        }
    }

    /// Reinitializes this sender in place for a fresh flow, keeping the
    /// retransmission queue, SACK-cache and log allocations. Equivalent to
    /// `*self = TcpSender::new(cfg, cc)` except that heap storage is
    /// recycled — a batch evaluator resets pooled senders between runs
    /// instead of reallocating them.
    pub fn reset_reusing(&mut self, cfg: SenderConfig, cc: C) {
        let mut fresh = TcpSender::new(cfg, cc);
        fresh.skbs = std::mem::take(&mut self.skbs);
        fresh.skbs.clear();
        fresh.sack_cache = std::mem::take(&mut self.sack_cache);
        fresh.sack_cache.clear();
        fresh.log = std::mem::take(&mut self.log);
        fresh.log.clear();
        fresh.mark_log_buf = std::mem::take(&mut self.mark_log_buf);
        fresh.mark_log_buf.clear();
        *self = fresh;
    }

    // ----------------------------------------------------------------------
    // Accessors
    // ----------------------------------------------------------------------

    /// Packets currently outstanding in the network.
    pub fn in_flight(&self) -> u64 {
        self.outstanding_count
    }

    /// Total packets delivered (`tp->delivered`).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// First unacknowledged sequence.
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Next new sequence to be sent.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether the sender is currently in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// The congestion control algorithm (for state inspection).
    pub fn cc(&self) -> &C {
        &self.cc
    }

    /// Current congestion window in packets (never below 1).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd().max(1)
    }

    /// Current RTO deadline and its generation, if a timer is armed.
    pub fn rto_deadline(&self) -> Option<(SimTime, u64)> {
        self.rto_deadline.map(|d| (d, self.rto_generation))
    }

    /// RTT estimator (read only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Total transmissions including retransmissions.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Retransmissions only.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Number of RTO expirations.
    pub fn rto_count(&self) -> u64 {
        self.rto_count
    }

    /// Number of fast-recovery episodes entered.
    pub fn recovery_episodes(&self) -> u64 {
        self.recovery_episodes
    }

    /// Total packets marked lost.
    pub fn lost_total(&self) -> u64 {
        self.lost_total
    }

    /// CE echoes processed from arriving ACKs.
    pub fn ece_acked(&self) -> u64 {
        self.ece_acked
    }

    /// Drains the transport event log collected since the last call.
    pub fn drain_log(&mut self) -> Vec<TransportRecord> {
        std::mem::take(&mut self.log)
    }

    #[inline]
    fn log_event(&mut self, at: SimTime, event: TransportEvent) {
        if self.cfg.record_log {
            self.log.push(TransportRecord { at, event });
        }
    }

    /// SKB for `seq`, which must lie in `[cum_ack, next_seq)`.
    #[inline]
    fn skb_mut(&mut self, seq: u64) -> &mut Skb {
        let idx = (seq - self.cum_ack) as usize;
        &mut self.skbs[idx]
    }

    fn ctx(&self, now: SimTime) -> CcContext {
        CcContext {
            now,
            mss: self.cfg.mss,
            in_flight: self.outstanding_count,
            delivered: self.delivered,
            lost: self.lost_total,
            srtt: self.rtt.srtt(),
            last_rtt: self.rtt.latest(),
            min_rtt: self.rtt.min_rtt(),
            in_recovery: self.in_recovery,
        }
    }

    fn drain_cc_events(&mut self, now: SimTime) {
        if !self.cfg.record_log {
            // Still drain (and discard) so an algorithm that ignores the
            // recording hint cannot accumulate events unread all run long.
            self.cc.take_events();
            return;
        }
        for detail in self.cc.take_events() {
            self.log.push(TransportRecord {
                at: now,
                event: TransportEvent::Cc { detail },
            });
        }
    }

    // ----------------------------------------------------------------------
    // Flow start
    // ----------------------------------------------------------------------

    /// Starts the flow at `now`.
    pub fn on_flow_start(&mut self, now: SimTime) {
        if self.started {
            return;
        }
        self.started = true;
        self.delivered_time = now;
        self.first_sent_time = now;
        let ctx = self.ctx(now);
        self.cc.init(&ctx);
        self.drain_cc_events(now);
    }

    // ----------------------------------------------------------------------
    // Transmission path
    // ----------------------------------------------------------------------

    /// Sequence number of the next packet that would be (re)transmitted, or
    /// `None` if there is nothing to send.
    fn next_to_send(&self) -> Option<(u64, bool)> {
        // Retransmissions of lost packets take priority (lowest sequence
        // first); the scan is skipped entirely unless something is pending,
        // and starts at the maintained lower bound rather than the head.
        if self.rtx_pending > 0 {
            if let Some(pos) = self
                .skbs
                .range(self.rtx_search_from..)
                .position(|skb| skb.lost && !skb.sacked && !skb.outstanding)
            {
                let idx = self.rtx_search_from + pos;
                return Some((self.cum_ack + idx as u64, true));
            }
        }
        if self.next_seq < self.cfg.buffer_packets {
            return Some((self.next_seq, false));
        }
        None
    }

    /// Polls the sender for the next transmission at `now`.
    pub fn poll_send(&mut self, now: SimTime) -> SendPoll {
        if !self.started {
            return SendPoll::Blocked;
        }
        // Pacing gate.
        if self.cc.pacing_rate_bps().is_some() && now < self.earliest_next_send {
            return SendPoll::Wait(self.earliest_next_send);
        }
        // Window gate.
        if self.outstanding_count >= self.cwnd() {
            return SendPoll::Blocked;
        }
        let Some((seq, is_retransmission)) = self.next_to_send() else {
            return SendPoll::Blocked;
        };

        // Stamp connection-level rate-sampling state into the packet's SKB
        // (tcp_rate_skb_sent). When nothing is in flight, restart the send
        // window so send_elapsed doesn't span idle periods.
        if self.outstanding_count == 0 {
            self.first_sent_time = now;
            self.delivered_time = now;
        }
        let (delivered, delivered_time, first_sent_time) =
            (self.delivered, self.delivered_time, self.first_sent_time);

        if !is_retransmission && seq == self.cum_ack + self.skbs.len() as u64 {
            self.skbs.push_back(Skb::new(seq, self.cfg.mss));
        }
        let cum_ack = self.cum_ack;
        let skb = self.skb_mut(seq);
        let was_rtx_pending = skb.lost && !skb.sacked && !skb.outstanding;
        let was_first_transmission = skb.transmissions == 0;
        skb.stamp_transmission(now, delivered, delivered_time, first_sent_time, false);
        let delivered_stamp = skb.tx_delivered;
        self.outstanding_count += 1;
        if was_first_transmission {
            // Freshly sent once, not lost, not SACKed: a dupthresh candidate.
            self.loss_candidates += 1;
        }
        if was_rtx_pending {
            self.rtx_pending -= 1;
            // This was the lowest pending index; the next pending one (if
            // any) lies strictly above it.
            self.rtx_search_from = (seq - cum_ack) as usize + 1;
        }

        self.transmissions += 1;
        if is_retransmission {
            self.retransmissions += 1;
        } else {
            debug_assert_eq!(seq, self.next_seq);
            self.next_seq += 1;
        }

        // Pacing: space the next transmission according to the CCA's rate.
        if let Some(rate_bps) = self.cc.pacing_rate_bps() {
            if rate_bps > 0.0 {
                let gap = SimDuration::from_secs_f64(self.cfg.mss as f64 * 8.0 / rate_bps);
                let base = self.earliest_next_send.max(now);
                self.earliest_next_send = base + gap;
            }
        }

        // Arm the RTO if not already armed.
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }

        self.log_event(
            now,
            TransportEvent::Sent {
                seq,
                retransmission: is_retransmission,
                delivered_stamp,
            },
        );

        let mut pkt = DataPacket::cca(seq, self.cfg.mss, is_retransmission, now);
        pkt.ect = self.cfg.ecn_enabled;
        SendPoll::Packet(pkt)
    }

    // ----------------------------------------------------------------------
    // RTO management
    // ----------------------------------------------------------------------

    fn arm_rto(&mut self, now: SimTime) {
        let timeout = self.rtt.rto_backed_off(self.rto_backoff);
        self.rto_deadline = Some(now + timeout);
        self.rto_generation += 1;
    }

    fn disarm_rto(&mut self) {
        self.rto_deadline = None;
        self.rto_generation += 1;
    }

    /// Handles an RTO timer expiry for `generation` at `now`.
    ///
    /// Returns `true` if the timer was valid and a timeout was processed.
    pub fn on_rto_timer(&mut self, generation: u64, now: SimTime) -> bool {
        let valid = self.rto_deadline.is_some()
            && generation == self.rto_generation
            && self.rto_deadline.map(|d| now >= d).unwrap_or(false);
        if !valid {
            return false;
        }
        // Nothing outstanding and nothing queued: nothing to do.
        if self.skbs.is_empty() {
            self.disarm_rto();
            return false;
        }

        self.rto_count += 1;
        self.log_event(
            now,
            TransportEvent::RtoFired {
                backoff: self.rto_backoff,
            },
        );
        self.rto_backoff = (self.rto_backoff + 1).min(16);

        // tcp_enter_loss: every un-SACKed packet below next_seq is marked
        // lost and will be retransmitted, head first. Packets whose ACKs are
        // still in flight become *spurious* retransmissions — the trigger for
        // the paper's BBR finding.
        let mut newly_lost = 0u64;
        for skb in self.skbs.iter_mut() {
            if !skb.sacked && !skb.lost {
                skb.lost = true;
                skb.outstanding = false;
                newly_lost += 1;
                if skb.transmissions == 1 {
                    self.loss_candidates -= 1;
                }
            } else if skb.outstanding && !skb.sacked {
                skb.outstanding = false;
            }
        }
        // Every un-SACKed packet is now lost-and-pending; SACKed packets are
        // never outstanding.
        self.lost_total += newly_lost;
        self.rtx_pending += newly_lost;
        self.outstanding_count = 0;
        self.rtx_search_from = 0;
        if self.cfg.record_log {
            let lost_seqs: Vec<u64> = self.skbs.iter().filter(|s| s.lost).map(|s| s.seq).collect();
            for seq in lost_seqs {
                self.log_event(now, TransportEvent::MarkedLost { seq });
            }
        }

        // Leave fast recovery (RTO recovery supersedes it) and reset pacing
        // so the retransmission goes out immediately.
        self.in_recovery = false;
        self.recovery_high = self.next_seq;
        self.earliest_next_send = now;

        let ctx = self.ctx(now);
        self.cc.on_congestion(&ctx, CongestionSignal::Rto);
        self.drain_cc_events(now);

        // Re-arm with backoff for the retransmission we are about to send.
        self.arm_rto(now);
        true
    }

    // ----------------------------------------------------------------------
    // ACK path
    // ----------------------------------------------------------------------

    /// Processes an arriving ACK at `now`.
    pub fn on_ack(&mut self, ack: &AckPacket, now: SimTime) {
        let in_flight_before = self.outstanding_count;
        let prior_cum_ack = self.cum_ack;
        let mut newly_acked = 0u64;
        // The rate sample is taken from the newly acknowledged packet that
        // was transmitted most recently (largest tx_delivered), mirroring
        // tcp_rate_skb_delivered. `Skb` is `Copy`, so snapshotting the
        // candidate is a register move, not an allocation.
        let mut sample_skb: Option<Skb> = None;
        let mut rtt_candidate: Option<(SimTime, bool)> = None; // (last_tx, retransmitted)

        let consider_sample = |skb: &Skb, sample_skb: &mut Option<Skb>| {
            let better = match sample_skb {
                None => true,
                Some(cur) => {
                    skb.tx_delivered > cur.tx_delivered
                        || (skb.tx_delivered == cur.tx_delivered && skb.last_tx > cur.last_tx)
                }
            };
            if better {
                *sample_skb = Some(*skb);
            }
        };

        // --- Cumulative ACK ---
        if ack.cum_ack > self.cum_ack {
            // Clamp a (protocol-violating) ACK beyond the highest sent
            // sequence: the paired simulator receiver never produces one,
            // but the sender is public API and the dense `seq - cum_ack`
            // indexing must not be poisoned by an out-of-range cum_ack.
            let cum_ack = ack.cum_ack.min(self.next_seq);
            while self.cum_ack < cum_ack {
                let Some(skb) = self.skbs.pop_front() else {
                    break;
                };
                self.rtx_search_from = self.rtx_search_from.saturating_sub(1);
                if skb.outstanding {
                    self.outstanding_count -= 1;
                }
                if skb.sacked {
                    self.sacked_count -= 1;
                } else {
                    if skb.lost {
                        self.rtx_pending -= 1;
                    } else if skb.transmissions == 1 {
                        self.loss_candidates -= 1;
                    }
                    // Newly delivered by this cumulative ACK.
                    self.delivered += 1;
                    self.delivered_time = now;
                    newly_acked += 1;
                    consider_sample(&skb, &mut sample_skb);
                    // RTT sample per Karn's rule: only from never-retransmitted
                    // packets; take the newest.
                    if !skb.retransmitted() {
                        match rtt_candidate {
                            Some((t, _)) if t >= skb.last_tx => {}
                            _ => rtt_candidate = Some((skb.last_tx, false)),
                        }
                    }
                }
                self.cum_ack += 1;
            }
            self.cum_ack = cum_ack;
            self.dup_acks = 0;
            self.log_event(
                now,
                TransportEvent::CumAckAdvanced {
                    cum_ack: ack.cum_ack,
                },
            );
        }

        // --- SACK blocks ---
        let mut newly_sacked = 0u64;
        if self.cfg.sack_enabled {
            let queue_end = self.cum_ack + self.skbs.len() as u64;
            // Drop cache entries the cumulative ACK has passed; the queue no
            // longer holds those sequences.
            if ack.cum_ack > prior_cum_ack && !self.sack_cache.is_empty() {
                let cum = self.cum_ack;
                self.sack_cache.retain_mut(|r| {
                    r.0 = r.0.max(cum);
                    r.0 < r.1
                });
            }
            for block in ack.sack_blocks.iter() {
                let start = block.start.max(self.cum_ack);
                let end = block.end.min(queue_end);
                if start >= end {
                    continue;
                }
                // Walk only the sub-ranges not covered by the cache: covered
                // sequences are guaranteed already SACKed, and the loop body
                // below is a no-op for them.
                let mut cursor = start;
                let mut cache_idx = 0;
                while cursor < end {
                    // Skip cache ranges entirely below the cursor.
                    while cache_idx < self.sack_cache.len()
                        && self.sack_cache[cache_idx].1 <= cursor
                    {
                        cache_idx += 1;
                    }
                    let (gap_end, resume) = match self.sack_cache.get(cache_idx) {
                        Some(&(rs, re)) if rs < end => (rs.min(end).max(cursor), re),
                        _ => (end, end),
                    };
                    for seq in cursor..gap_end {
                        let idx = (seq - self.cum_ack) as usize;
                        let skb = &mut self.skbs[idx];
                        if skb.sacked {
                            continue;
                        }
                        skb.sacked = true;
                        if skb.outstanding {
                            self.outstanding_count -= 1;
                        }
                        skb.outstanding = false;
                        let was_lost = skb.lost;
                        skb.lost = false;
                        self.sacked_count += 1;
                        newly_sacked += 1;
                        self.delivered += 1;
                        self.delivered_time = now;
                        newly_acked += 1;
                        let skb_snapshot = *skb;
                        consider_sample(&skb_snapshot, &mut sample_skb);
                        if !skb_snapshot.retransmitted() {
                            match rtt_candidate {
                                Some((t, _)) if t >= skb_snapshot.last_tx => {}
                                _ => rtt_candidate = Some((skb_snapshot.last_tx, false)),
                            }
                        }
                        if was_lost {
                            // The packet had been marked lost but the original
                            // copy arrived after all; undo the loss accounting.
                            self.lost_total = self.lost_total.saturating_sub(1);
                            self.rtx_pending -= 1;
                        } else if skb_snapshot.transmissions == 1 {
                            self.loss_candidates -= 1;
                        }
                        self.log_event(now, TransportEvent::Sacked { seq });
                    }
                    cursor = resume.max(gap_end);
                }
                insert_sack_range(&mut self.sack_cache, start, end);
            }
        }

        // --- Dup-ACK counting (only meaningful when nothing new was acked) ---
        if ack.cum_ack == prior_cum_ack && newly_acked == 0 && in_flight_before > 0 {
            self.dup_acks += 1;
        }

        // --- RTT / RTO updates ---
        if let Some((last_tx, _)) = rtt_candidate {
            let rtt = now.saturating_since(last_tx);
            if rtt > SimDuration::ZERO {
                self.rtt.on_sample(rtt);
            }
        }
        if ack.cum_ack > prior_cum_ack {
            // Progress: reset backoff and restart the timer.
            self.rto_backoff = 0;
        }
        if self.skbs.is_empty() {
            self.disarm_rto();
        } else if ack.cum_ack > prior_cum_ack {
            // RFC 6298: restart the timer when new data is *cumulatively*
            // acknowledged. Pure-SACK ACKs do not push the timer back, which
            // is what lets the RTO for a lost head (and its lost fast
            // retransmission) fire roughly min-RTO after the loss even though
            // SACKs keep arriving — the timing the paper's §4.1 scenario
            // depends on.
            self.arm_rto(now);
        }

        // --- Rate sample ---
        // Linux `tcp_rate_skb_delivered` re-anchors the send-window start
        // (`tp->first_tx_mstamp`) to the send time of the most recently ACKed
        // packet, so the next packets' send_elapsed measures just their own
        // send window rather than time since the connection started.
        if let Some(skb) = &sample_skb {
            if skb.last_tx > self.first_sent_time {
                self.first_sent_time = skb.last_tx;
            }
        }
        let rate_sample = sample_skb.map(|skb| {
            let send_elapsed = skb.last_tx.saturating_since(skb.tx_first_sent_time);
            let ack_elapsed = self.delivered_time.saturating_since(skb.tx_delivered_time);
            let interval = send_elapsed.max(ack_elapsed);
            let delivered_in_interval = self.delivered.saturating_sub(skb.tx_delivered);
            let delivery_rate_bps = if interval > SimDuration::ZERO {
                delivered_in_interval as f64 * self.cfg.mss as f64 * 8.0 / interval.as_secs_f64()
            } else {
                0.0
            };
            RateSample {
                delivered: self.delivered,
                prior_delivered: skb.tx_delivered,
                prior_delivered_time: skb.tx_delivered_time,
                send_elapsed,
                ack_elapsed,
                interval,
                delivered_in_interval,
                delivery_rate_bps,
                rtt: if skb.retransmitted() {
                    None
                } else {
                    Some(now.saturating_since(skb.last_tx))
                },
                newly_acked,
                cum_ack_advanced: ack.cum_ack.saturating_sub(prior_cum_ack),
                is_retransmitted_sample: skb.retransmitted(),
                is_app_limited: skb.tx_app_limited,
                in_flight_before,
                now,
            }
        });

        // --- Loss detection ---
        let newly_lost = self.detect_losses(now, newly_sacked);

        // --- Recovery exit ---
        if self.in_recovery && self.cum_ack >= self.recovery_high {
            self.in_recovery = false;
            self.log_event(now, TransportEvent::ExitRecovery);
            let ctx = self.ctx(now);
            self.cc.on_exit_recovery(&ctx);
        }

        // --- Feed the congestion controller ---
        // ECN echoes first (mirroring Linux, where in_ack_event sees the
        // ECE flag before the cong_control hooks run): an algorithm that
        // windows its mark statistics (DCTCP) must receive this ACK's marks
        // before on_ack can close the observation window, or the marks
        // would be misattributed to the next window. Off-path when ECN was
        // never negotiated.
        if self.cfg.ecn_enabled && ack.ece_marks > 0 {
            self.ece_acked += ack.ece_marks;
            let ctx = self.ctx(now);
            self.cc.on_ecn(&ctx, ack.ece_marks);
        }
        if let Some(rs) = rate_sample {
            let ctx = self.ctx(now);
            self.cc.on_ack(&ctx, &rs);
        }
        if newly_lost > 0 {
            let new_episode = !self.in_recovery;
            if new_episode {
                self.in_recovery = true;
                self.recovery_high = self.next_seq;
                self.recovery_episodes += 1;
                self.log_event(now, TransportEvent::EnterRecovery);
            }
            let ctx = self.ctx(now);
            self.cc.on_congestion(
                &ctx,
                CongestionSignal::FastRetransmitLoss {
                    newly_lost,
                    new_episode,
                },
            );
        }
        self.drain_cc_events(now);
    }

    /// SACK-based (and dup-ACK based) loss detection. Returns the number of
    /// packets newly marked lost.
    fn detect_losses(&mut self, now: SimTime, newly_sacked: u64) -> u64 {
        let mut newly_lost = 0u64;
        if self.cfg.sack_enabled {
            // A packet is deemed lost when at least LOSS_REORDER_THRESHOLD
            // packets with higher sequence numbers have been SACKed
            // (simplified RFC 6675). Packets that have already been
            // retransmitted are exempt while their retransmission is
            // outstanding: a lost retransmission is recovered by the RTO, not
            // by dupthresh (otherwise every ACK would re-mark and re-send the
            // same holes, a retransmission storm real stacks avoid).
            //
            // One reverse pass with a running "SACKed above" count replaces
            // the former quadratic rescan; marking a packet lost never
            // changes the SACKed count, so in-place marking is exact.
            //
            // The pass is skipped outright when this ACK SACKed nothing new:
            // a packet's SACKed-above count only grows when a SACK flag is
            // set, so the previous pass already marked everything markable.
            // It also terminates as soon as no marking candidates remain
            // below the scan position (`loss_candidates` bookkeeping): the
            // rest of the queue can only be re-skipped, never re-marked.
            if self.sacked_count == 0 || newly_sacked == 0 || self.loss_candidates == 0 {
                return 0;
            }
            let record_log = self.cfg.record_log;
            self.mark_log_buf.clear();
            let mut higher_sacked = 0u64;
            let mut marked = 0u64;
            let mut marked_outstanding = 0u64;
            let mut remaining = self.loss_candidates;
            let mut lowest_marked_idx = usize::MAX;
            for (idx, skb) in self.skbs.iter_mut().enumerate().rev() {
                if skb.sacked {
                    higher_sacked += 1;
                    continue;
                }
                if !skb.lost && skb.transmissions == 1 {
                    if higher_sacked >= LOSS_REORDER_THRESHOLD {
                        skb.lost = true;
                        if skb.outstanding {
                            marked_outstanding += 1;
                        }
                        skb.outstanding = false;
                        marked += 1;
                        lowest_marked_idx = idx;
                        if record_log {
                            self.mark_log_buf.push(skb.seq);
                        }
                    }
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
            }
            self.lost_total += marked;
            self.rtx_pending += marked;
            self.outstanding_count -= marked_outstanding;
            self.loss_candidates -= marked;
            if lowest_marked_idx < self.rtx_search_from {
                self.rtx_search_from = lowest_marked_idx;
            }
            newly_lost += marked;
            if record_log && !self.mark_log_buf.is_empty() {
                // The reverse pass collected marks highest-sequence first;
                // the log reports them in ascending order as before.
                let seqs = std::mem::take(&mut self.mark_log_buf);
                for &seq in seqs.iter().rev() {
                    self.log_event(now, TransportEvent::MarkedLost { seq });
                }
                self.mark_log_buf = seqs;
            }
        } else if self.dup_acks >= LOSS_REORDER_THRESHOLD {
            // Classic fast retransmit: mark the head lost once per dup-ACK burst.
            if let Some(skb) = self.skbs.front_mut() {
                if !skb.lost && !skb.sacked && skb.transmissions > 0 {
                    skb.lost = true;
                    if skb.outstanding {
                        self.outstanding_count -= 1;
                    }
                    skb.outstanding = false;
                    if skb.transmissions == 1 {
                        self.loss_candidates -= 1;
                    }
                    self.lost_total += 1;
                    self.rtx_pending += 1;
                    self.rtx_search_from = 0;
                    newly_lost += 1;
                    self.log_event(now, TransportEvent::MarkedLost { seq: self.cum_ack });
                }
            }
            self.dup_acks = 0;
        }
        newly_lost
    }

    /// Builds the summary statistics for this sender.
    pub fn summary(&self) -> crate::stats::FlowSummary {
        crate::stats::FlowSummary {
            delivered_packets: self.delivered,
            delivered_bytes: self.delivered * self.cfg.mss as u64,
            transmissions: self.transmissions,
            retransmissions: self.retransmissions,
            marked_lost: self.lost_total,
            queue_drops: 0, // filled in by the simulator
            rto_count: self.rto_count,
            recovery_episodes: self.recovery_episodes,
            final_srtt_us: self.rtt.srtt().map(|d| d.as_micros()).unwrap_or(0),
            min_rtt_us: self.rtt.min_rtt().map(|d| d.as_micros()).unwrap_or(0),
            highest_sent: self.next_seq,
            final_cum_ack: self.cum_ack,
            ce_marked: 0,   // filled in by the simulator
            ce_received: 0, // filled in by the simulator
            ece_echoed: 0,  // filled in by the simulator
            ece_acked: self.ece_acked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reference_cc::{FixedWindowCc, MiniAimdCc};
    use crate::packet::{SackBlock, SackList};

    fn sender_with_window(window: u64) -> TcpSender {
        let mut s = TcpSender::new(
            SenderConfig::paper_default(),
            Box::new(FixedWindowCc::new(window)) as Box<dyn CongestionControl>,
        );
        s.on_flow_start(SimTime::ZERO);
        s
    }

    fn ack(cum: u64, blocks: Vec<SackBlock>, now: SimTime) -> AckPacket {
        AckPacket {
            cum_ack: cum,
            sack_blocks: blocks.into_iter().collect::<SackList>(),
            acked_now: 1,
            generated_at: now,
            echo_sent_at: now,
            for_seq: cum.saturating_sub(1),
            for_retransmission: false,
            ece_marks: 0,
        }
    }

    fn drain_packets<C: CongestionControl>(s: &mut TcpSender<C>, now: SimTime) -> Vec<DataPacket> {
        let mut out = Vec::new();
        while let SendPoll::Packet(p) = s.poll_send(now) {
            out.push(p);
        }
        out
    }

    #[test]
    fn sends_up_to_cwnd_then_blocks() {
        let mut s = sender_with_window(4);
        let pkts = drain_packets(&mut s, SimTime::ZERO);
        assert_eq!(pkts.len(), 4);
        assert_eq!(
            pkts.iter().map(|p| p.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(s.in_flight(), 4);
        assert_eq!(s.poll_send(SimTime::ZERO), SendPoll::Blocked);
        assert!(
            s.rto_deadline().is_some(),
            "RTO armed after first transmission"
        );
    }

    #[test]
    fn does_not_send_before_flow_start() {
        let mut s = TcpSender::new(
            SenderConfig::paper_default(),
            Box::new(FixedWindowCc::new(4)) as Box<dyn CongestionControl>,
        );
        assert_eq!(s.poll_send(SimTime::ZERO), SendPoll::Blocked);
    }

    #[test]
    fn cumulative_ack_frees_window_and_updates_delivery() {
        let mut s = sender_with_window(4);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(2, vec![], now), now);
        assert_eq!(s.cum_ack(), 2);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.in_flight(), 2);
        // Two more packets may now be sent.
        let pkts = drain_packets(&mut s, now);
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].seq, 4);
    }

    #[test]
    fn rtt_estimated_from_acks() {
        let mut s = sender_with_window(2);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(1, vec![], now), now);
        assert_eq!(s.rtt().latest(), Some(SimDuration::from_millis(40)));
        assert_eq!(s.rtt().srtt(), Some(SimDuration::from_millis(40)));
    }

    #[test]
    fn sack_marks_packets_and_detects_loss_after_three() {
        let mut s = sender_with_window(10);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        // Packet 0 missing; 1, 2, 3 SACKed one at a time.
        s.on_ack(&ack(0, vec![SackBlock { start: 1, end: 2 }], now), now);
        assert_eq!(s.lost_total(), 0);
        s.on_ack(&ack(0, vec![SackBlock { start: 1, end: 3 }], now), now);
        assert_eq!(s.lost_total(), 0);
        s.on_ack(&ack(0, vec![SackBlock { start: 1, end: 4 }], now), now);
        assert_eq!(
            s.lost_total(),
            1,
            "3 SACKed packets above seq 0 mark it lost"
        );
        assert!(s.in_recovery());
        assert_eq!(s.delivered(), 3);
        // The retransmission goes out next.
        let next = drain_packets(&mut s, now);
        assert!(!next.is_empty());
        assert_eq!(next[0].seq, 0);
        assert!(next[0].is_retransmission);
        assert_eq!(s.retransmissions(), 1);
    }

    #[test]
    fn recovery_exits_when_cum_ack_passes_recovery_high() {
        let mut s = TcpSender::new(
            SenderConfig::paper_default(),
            Box::new(MiniAimdCc::new(10)) as Box<dyn CongestionControl>,
        );
        s.on_flow_start(SimTime::ZERO);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(0, vec![SackBlock { start: 1, end: 5 }], now), now);
        assert!(s.in_recovery());
        let recovery_high = s.next_seq();
        // Retransmit and then cumulative ACK beyond recovery_high.
        drain_packets(&mut s, now);
        let later = SimTime::from_millis(120);
        s.on_ack(&ack(recovery_high, vec![], later), later);
        assert!(
            !s.in_recovery(),
            "recovery exits once cum_ack reaches recovery point"
        );
    }

    #[test]
    fn dup_ack_fast_retransmit_without_sack() {
        let mut cfg = SenderConfig::paper_default();
        cfg.sack_enabled = false;
        let mut s = TcpSender::new(
            cfg,
            Box::new(FixedWindowCc::new(10)) as Box<dyn CongestionControl>,
        );
        s.on_flow_start(SimTime::ZERO);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        // First ACK advances to 1; then three duplicate ACKs for 1.
        s.on_ack(&ack(1, vec![], now), now);
        for _ in 0..3 {
            s.on_ack(&ack(1, vec![], now), now);
        }
        assert_eq!(s.lost_total(), 1);
        let pkts = drain_packets(&mut s, now);
        assert_eq!(pkts[0].seq, 1);
        assert!(pkts[0].is_retransmission);
    }

    #[test]
    fn rto_marks_everything_lost_and_retransmits_head_first() {
        let mut s = sender_with_window(5);
        drain_packets(&mut s, SimTime::ZERO);
        let (deadline, generation) = s.rto_deadline().unwrap();
        assert_eq!(
            deadline,
            SimTime::from_secs_f64(1.0),
            "initial RTO is 1s (min-RTO)"
        );
        assert!(s.on_rto_timer(generation, deadline));
        assert_eq!(s.rto_count(), 1);
        assert_eq!(s.lost_total(), 5);
        assert_eq!(s.in_flight(), 0, "nothing considered in flight after RTO");
        let pkts = drain_packets(&mut s, deadline);
        assert_eq!(pkts[0].seq, 0, "head retransmitted first");
        assert!(pkts[0].is_retransmission);
        // Stale generation is ignored.
        assert!(!s.on_rto_timer(generation, deadline + SimDuration::from_secs(5)));
    }

    #[test]
    fn rto_backoff_doubles_deadline() {
        let mut s = sender_with_window(1);
        drain_packets(&mut s, SimTime::ZERO);
        let (d1, g1) = s.rto_deadline().unwrap();
        assert!(s.on_rto_timer(g1, d1));
        // After the retransmission the timer uses the backed-off RTO (2s).
        drain_packets(&mut s, d1);
        let (d2, g2) = s.rto_deadline().unwrap();
        assert!(d2.saturating_since(d1) >= SimDuration::from_secs(2));
        assert!(s.on_rto_timer(g2, d2));
        drain_packets(&mut s, d2);
        let (d3, _) = s.rto_deadline().unwrap();
        assert!(d3.saturating_since(d2) >= SimDuration::from_secs(4));
    }

    #[test]
    fn spurious_retransmission_restamps_prior_delivered() {
        // Reproduces the core mechanism of the paper's §4.1 finding at the
        // sender level: after an RTO, a packet whose original copy was
        // actually delivered is retransmitted; the retransmission refreshes
        // tx_delivered, so the SACK that then arrives yields a rate sample
        // with a large prior_delivered.
        let mut s = sender_with_window(10);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        // Packets 1..8 SACKed (packet 0 lost): delivered = 8.
        s.on_ack(&ack(0, vec![SackBlock { start: 1, end: 9 }], now), now);
        assert_eq!(s.delivered(), 8);
        // RTO fires (the retransmission of 0 was also lost, say).
        let (deadline, generation) = s.rto_deadline().unwrap();
        assert!(s.on_rto_timer(generation, deadline.max(now)));
        // Head (0) and then 9 (never SACKed) get retransmitted; 9's original
        // SACK is still "in the network".
        let pkts = drain_packets(&mut s, deadline);
        assert!(
            pkts.iter().any(|p| p.seq == 9 && p.is_retransmission),
            "packet 9 spuriously retransmitted after RTO: {pkts:?}"
        );
        // Now the SACK for the *original* transmission of 9 arrives.
        let later = deadline + SimDuration::from_millis(5);
        s.on_ack(&ack(0, vec![SackBlock { start: 9, end: 10 }], later), later);
        // The rate sample's prior_delivered must reflect the freshly stamped
        // (post-RTO) value, not the value at 9's original transmission (0).
        let log = s.drain_log();
        let stamped: Vec<u64> = log
            .iter()
            .filter_map(|r| match r.event {
                TransportEvent::Sent {
                    seq: 9,
                    retransmission: true,
                    delivered_stamp,
                } => Some(delivered_stamp),
                _ => None,
            })
            .collect();
        assert_eq!(
            stamped,
            vec![8],
            "spurious retransmission stamped with current delivered"
        );
    }

    #[test]
    fn sacked_then_cum_acked_not_double_counted() {
        let mut s = sender_with_window(5);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(0, vec![SackBlock { start: 1, end: 3 }], now), now);
        assert_eq!(s.delivered(), 2);
        // Cumulative ACK now covers 0..3; only packet 0 is newly delivered.
        let later = SimTime::from_millis(45);
        s.on_ack(&ack(3, vec![], later), later);
        assert_eq!(s.delivered(), 3);
        assert_eq!(s.cum_ack(), 3);
    }

    #[test]
    fn rto_disarmed_when_everything_acked() {
        let mut s = sender_with_window(2);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(2, vec![], now), now);
        assert!(
            s.rto_deadline().is_none(),
            "no data outstanding, no RTO armed"
        );
    }

    #[test]
    fn pacing_gate_respected() {
        #[derive(Debug)]
        struct PacedCc;
        impl CongestionControl for PacedCc {
            fn name(&self) -> &'static str {
                "paced"
            }
            fn on_ack(&mut self, _: &CcContext, _: &RateSample) {}
            fn on_congestion(&mut self, _: &CcContext, _: CongestionSignal) {}
            fn cwnd(&self) -> u64 {
                100
            }
            fn pacing_rate_bps(&self) -> Option<f64> {
                Some(1_448.0 * 8.0 * 100.0) // 100 packets per second
            }
        }
        let mut s = TcpSender::new(SenderConfig::paper_default(), PacedCc);
        s.on_flow_start(SimTime::ZERO);
        // First packet goes out immediately; second must wait ~10ms.
        assert!(matches!(s.poll_send(SimTime::ZERO), SendPoll::Packet(_)));
        match s.poll_send(SimTime::ZERO) {
            SendPoll::Wait(t) => assert_eq!(t.as_millis(), 10),
            other => panic!("expected pacing wait, got {other:?}"),
        }
        // At the pacing deadline the next packet is released.
        assert!(matches!(
            s.poll_send(SimTime::from_millis(10)),
            SendPoll::Packet(_)
        ));
    }

    #[test]
    fn summary_reflects_counters() {
        let mut s = sender_with_window(3);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(3, vec![], now), now);
        let summary = s.summary();
        assert_eq!(summary.delivered_packets, 3);
        assert_eq!(summary.transmissions, 3);
        assert_eq!(summary.retransmissions, 0);
        assert_eq!(summary.highest_sent, 3);
        assert_eq!(summary.final_cum_ack, 3);
        assert_eq!(summary.min_rtt_us, 40_000);
    }

    #[test]
    fn log_recording_can_be_disabled() {
        let mut cfg = SenderConfig::paper_default();
        cfg.record_log = false;
        let mut s = TcpSender::new(
            cfg,
            Box::new(FixedWindowCc::new(4)) as Box<dyn CongestionControl>,
        );
        s.on_flow_start(SimTime::ZERO);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(2, vec![], now), now);
        assert!(s.drain_log().is_empty(), "no log entries when disabled");
        // Counters are unaffected by the logging switch.
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.transmissions(), 4);
    }

    #[test]
    fn ack_beyond_highest_sent_is_clamped() {
        // A protocol-violating cumulative ACK above next_seq must not
        // poison the dense retransmission-queue indexing (the old BTreeMap
        // implementation tolerated it; the dense queue must too).
        let mut s = sender_with_window(4);
        drain_packets(&mut s, SimTime::ZERO);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(100, vec![], now), now);
        assert_eq!(s.cum_ack(), 4, "clamped to highest sent");
        assert_eq!(s.delivered(), 4);
        assert_eq!(s.in_flight(), 0);
        // The sender keeps working: new packets pick up from next_seq.
        let pkts = drain_packets(&mut s, now);
        assert_eq!(pkts.first().map(|p| p.seq), Some(4));
    }

    #[test]
    fn maintained_counters_match_queue_scan() {
        // Drive the sender through sends, SACKs, losses and an RTO, checking
        // the incrementally maintained counters against a full scan at every
        // step (the scan was the previous implementation's source of truth).
        let mut s = sender_with_window(12);
        let check = |s: &TcpSender| {
            let outstanding = s.skbs.iter().filter(|k| k.outstanding).count() as u64;
            let sacked = s.skbs.iter().filter(|k| k.sacked).count() as u64;
            let pending = s
                .skbs
                .iter()
                .filter(|k| k.lost && !k.sacked && !k.outstanding)
                .count() as u64;
            let candidates = s
                .skbs
                .iter()
                .filter(|k| !k.lost && !k.sacked && k.transmissions == 1)
                .count() as u64;
            assert_eq!(s.outstanding_count, outstanding, "outstanding");
            assert_eq!(s.sacked_count, sacked, "sacked");
            assert_eq!(s.rtx_pending, pending, "rtx pending");
            assert_eq!(s.loss_candidates, candidates, "loss candidates");
            // No retransmit-pending SKB may hide below the scan hint.
            let first_pending = s
                .skbs
                .iter()
                .position(|k| k.lost && !k.sacked && !k.outstanding);
            if let Some(idx) = first_pending {
                assert!(
                    s.rtx_search_from <= idx,
                    "rtx hint {} skips pending at {idx}",
                    s.rtx_search_from
                );
            }
            // Every cached SACK range must hold only SACKed sequences.
            for &(rs, re) in &s.sack_cache {
                for seq in rs.max(s.cum_ack)..re.min(s.cum_ack + s.skbs.len() as u64) {
                    assert!(
                        s.skbs[(seq - s.cum_ack) as usize].sacked,
                        "cache claims unSACKed seq {seq}"
                    );
                }
            }
        };
        drain_packets(&mut s, SimTime::ZERO);
        check(&s);
        let now = SimTime::from_millis(40);
        s.on_ack(&ack(2, vec![SackBlock { start: 5, end: 9 }], now), now);
        check(&s);
        s.on_ack(&ack(2, vec![SackBlock { start: 5, end: 11 }], now), now);
        check(&s);
        drain_packets(&mut s, now);
        check(&s);
        let (deadline, generation) = s.rto_deadline().unwrap();
        s.on_rto_timer(generation, deadline);
        check(&s);
        drain_packets(&mut s, deadline);
        check(&s);
        let later = deadline + SimDuration::from_millis(50);
        s.on_ack(&ack(9, vec![], later), later);
        check(&s);
    }
}
