//! RTT estimation and retransmission timeout computation (RFC 6298).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// RFC 6298 smoothed-RTT estimator with configurable RTO clamps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    latest: Option<SimDuration>,
    min_rtt: Option<SimDuration>,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator. `min_rto` is 1 s in the paper's setup
    /// (RFC 6298 §2.4); `initial_rto` applies before the first sample.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration, initial_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            latest: None,
            min_rtt: None,
            min_rto,
            max_rto,
            initial_rto,
        }
    }

    /// Feeds one RTT measurement (callers must respect Karn's rule and never
    /// sample retransmitted packets).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.latest = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt.div(2);
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                //           srtt   = 7/8 srtt + 1/8 rtt
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + diff.mul_f64(0.25);
                self.srtt = Some(srtt.mul_f64(7.0 / 8.0) + rtt.mul_f64(1.0 / 8.0));
            }
        }
    }

    /// Smoothed RTT, if at least one sample has been recorded.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// The minimum RTT observed.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The base retransmission timeout (before backoff): `srtt + 4·rttvar`,
    /// clamped to `[min_rto, max_rto]`, or `initial_rto` before any sample.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.initial_rto.max(self.min_rto).min(self.max_rto),
            Some(srtt) => {
                let raw = srtt + self.rttvar.saturating_mul(4);
                raw.max(self.min_rto).min(self.max_rto)
            }
        }
    }

    /// The RTO after `backoff` consecutive expirations (doubles each time,
    /// clamped to `max_rto`).
    pub fn rto_backed_off(&self, backoff: u32) -> SimDuration {
        let base = self.rto();
        let factor = 1u64.checked_shl(backoff.min(32)).unwrap_or(u64::MAX);
        base.saturating_mul(factor).min(self.max_rto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = estimator();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
        assert_eq!(e.min_rtt(), None);
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = estimator();
        e.on_sample(SimDuration::from_millis(40));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(40)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(20));
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(40)));
        // 40ms + 4*20ms = 120ms, but the 1 s minimum dominates (paper setting).
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn min_rto_floor_enforced() {
        let mut e = estimator();
        for _ in 0..50 {
            e.on_sample(SimDuration::from_millis(40));
        }
        assert_eq!(
            e.rto(),
            SimDuration::from_secs(1),
            "min-RTO of 1s always applies at 40ms RTT"
        );
    }

    #[test]
    fn large_rtts_raise_rto_above_floor() {
        let mut e = estimator();
        e.on_sample(SimDuration::from_millis(800));
        e.on_sample(SimDuration::from_millis(1200));
        assert!(e.rto() > SimDuration::from_secs(1));
        assert!(e.rto() <= SimDuration::from_secs(60));
    }

    #[test]
    fn smoothing_converges_toward_stable_rtt() {
        let mut e = estimator();
        e.on_sample(SimDuration::from_millis(200));
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_millis() as i64 - 50).abs() <= 2,
            "srtt should converge to ~50ms, got {srtt}"
        );
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut e = estimator();
        e.on_sample(SimDuration::from_millis(60));
        e.on_sample(SimDuration::from_millis(45));
        e.on_sample(SimDuration::from_millis(90));
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(45)));
        assert_eq!(e.latest(), Some(SimDuration::from_millis(90)));
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let mut e = estimator();
        e.on_sample(SimDuration::from_millis(40));
        assert_eq!(e.rto_backed_off(0), SimDuration::from_secs(1));
        assert_eq!(e.rto_backed_off(1), SimDuration::from_secs(2));
        assert_eq!(e.rto_backed_off(3), SimDuration::from_secs(8));
        assert_eq!(
            e.rto_backed_off(10),
            SimDuration::from_secs(60),
            "capped at max_rto"
        );
        assert_eq!(e.rto_backed_off(63), SimDuration::from_secs(60));
    }
}
